"""Pragma and baseline escape hatches: suppression must be explicit,
justified, and keyed stably."""

import pytest

from repro.analysis import analyze_source
from repro.analysis.findings import (
    Finding,
    load_baseline,
    save_baseline,
)
from repro.errors import AnalysisError, ReproError

LEAKY = (
    "def peek(pool, pid):\n"
    "    page = pool.fetch(pid){pragma}\n"
    "    return page.data[0]\n"
)


def test_justified_inline_pragma_suppresses():
    source = LEAKY.format(
        pragma="  # replint: ignore[RPL001] -- pin owned by C extension")
    assert analyze_source(source, "sql/x.py") == []


def test_unjustified_pragma_is_itself_a_finding():
    source = LEAKY.format(pragma="  # replint: ignore[RPL001]")
    rules = sorted(f.rule for f in analyze_source(source, "sql/x.py"))
    # The suppression does not take effect AND the pragma is flagged.
    assert rules == ["RPL000", "RPL001"]


def test_unknown_pragma_directive_is_flagged():
    source = "x = 1  # replint: snooze-everything -- please\n"
    findings = analyze_source(source, "sql/x.py")
    assert [f.rule for f in findings] == ["RPL000"]
    assert "unrecognized" in findings[0].message


def test_named_alias_on_def_line_exempts_the_function():
    source = (
        "def drop_cache(pager):  # replint: wal-exempt -- clean pages\n"
        "    pager.flush_all()\n"
    )
    assert analyze_source(source, "storage/x.py") == []


def test_pragma_text_inside_a_docstring_is_inert():
    source = (
        '"""Docs may mention # replint: wal-exempt without effect."""\n'
        "x = 1\n"
    )
    assert analyze_source(source, "sql/x.py") == []


def test_pragma_only_covers_the_named_rule():
    source = LEAKY.format(
        pragma="  # replint: ignore[RPL003] -- wrong rule entirely")
    assert [f.rule for f in analyze_source(source, "sql/x.py")] == ["RPL001"]


def test_syntax_error_reports_as_rpl000():
    findings = analyze_source("def broken(:\n", "sql/x.py")
    assert [f.rule for f in findings] == ["RPL000"]
    assert "syntax error" in findings[0].message


# -- baselines --------------------------------------------------------------


def _finding(symbol="peek"):
    return Finding(file="sql/x.py", line=2, rule="RPL001",
                   severity="error", message="m", symbol=symbol)


def test_baseline_round_trip(tmp_path):
    path = tmp_path / "replint.baseline"
    save_baseline(path, [_finding(), _finding()])
    assert load_baseline(path) == {"RPL001:sql/x.py:peek"}


def test_baseline_key_ignores_line_numbers():
    early = _finding()
    late = Finding(file="sql/x.py", line=99, rule="RPL001",
                   severity="error", message="m", symbol="peek")
    assert early.baseline_key == late.baseline_key


def test_missing_baseline_is_empty():
    from pathlib import Path

    assert load_baseline(Path("/nonexistent/replint.baseline")) == set()


def test_malformed_baseline_raises_analysis_error(tmp_path):
    path = tmp_path / "replint.baseline"
    path.write_text('{"not": "a list"}', encoding="utf-8")
    with pytest.raises(AnalysisError):
        load_baseline(path)
    # Catchable at the taxonomy root, like every repro failure.
    with pytest.raises(ReproError):
        load_baseline(path)


def test_baselined_findings_do_not_fail_the_run(tmp_path):
    from repro.analysis import analyze_paths

    bad = tmp_path / "leaky.py"
    bad.write_text(LEAKY.format(pragma=""), encoding="utf-8")
    report = analyze_paths([bad])
    assert not report.ok and len(report.errors) == 1

    baseline = {f.baseline_key for f in report.findings}
    accepted = analyze_paths([bad], baseline)
    assert accepted.ok
    assert not accepted.findings
    assert [f.rule for f in accepted.baselined] == ["RPL001"]
