"""Pragma and baseline escape hatches: suppression must be explicit,
justified, and keyed stably."""

import pytest

from repro.analysis import analyze_source
from repro.analysis.findings import (
    Finding,
    load_baseline,
    save_baseline,
)
from repro.errors import AnalysisError, ReproError

LEAKY = (
    "def peek(pool, pid):\n"
    "    page = pool.fetch(pid){pragma}\n"
    "    return page.data[0]\n"
)


def test_justified_inline_pragma_suppresses():
    source = LEAKY.format(
        pragma="  # replint: ignore[RPL010] -- pin owned by C extension")
    assert analyze_source(source, "sql/x.py") == []


def test_unjustified_pragma_is_itself_a_finding():
    source = LEAKY.format(pragma="  # replint: ignore[RPL010]")
    rules = sorted(f.rule for f in analyze_source(source, "sql/x.py"))
    # The suppression does not take effect AND the pragma is flagged.
    assert rules == ["RPL000", "RPL010"]


def test_unknown_pragma_directive_is_flagged():
    source = "x = 1  # replint: snooze-everything -- please\n"
    findings = analyze_source(source, "sql/x.py")
    assert [f.rule for f in findings] == ["RPL000"]
    assert "unrecognized" in findings[0].message


def test_named_alias_on_def_line_exempts_the_function():
    source = (
        "def drop_cache(pager):  # replint: wal-exempt -- clean pages\n"
        "    pager.flush_all()\n"
    )
    assert analyze_source(source, "storage/x.py") == []


def test_lifecycle_alias_exempts_the_function():
    source = LEAKY.format(
        pragma="  # replint: lifecycle-exempt -- released by the caller map")
    assert analyze_source(source, "sql/x.py") == []


def test_pragma_text_inside_a_docstring_is_inert():
    source = (
        '"""Docs may mention # replint: wal-exempt without effect."""\n'
        "x = 1\n"
    )
    assert analyze_source(source, "sql/x.py") == []


def test_pragma_only_covers_the_named_rule():
    source = LEAKY.format(
        pragma="  # replint: ignore[RPL003] -- wrong rule entirely")
    assert [f.rule for f in analyze_source(source, "sql/x.py")] == ["RPL010"]


def test_syntax_error_reports_as_rpl000():
    findings = analyze_source("def broken(:\n", "sql/x.py")
    assert [f.rule for f in findings] == ["RPL000"]
    assert "syntax error" in findings[0].message


# -- baselines --------------------------------------------------------------


def _finding(symbol="peek", content_hash=""):
    return Finding(file="sql/x.py", line=2, rule="RPL010",
                   severity="error", message="m", symbol=symbol,
                   content_hash=content_hash)


def test_baseline_round_trip(tmp_path):
    path = tmp_path / "replint.baseline"
    save_baseline(path, [_finding(), _finding()])
    assert load_baseline(path) == {"RPL010:sql/x.py:peek"}


def test_baseline_key_ignores_line_numbers():
    early = _finding()
    late = Finding(file="sql/x.py", line=99, rule="RPL010",
                   severity="error", message="m", symbol="peek")
    assert early.baseline_key == late.baseline_key


def test_hashed_key_appends_the_content_hash():
    hashed = _finding(content_hash="abc123")
    assert hashed.hashed_key == "RPL010:sql/x.py:peek#abc123"
    assert hashed.baseline_key == "RPL010:sql/x.py:peek"
    # A finding without a hash degrades to the v1 key.
    assert _finding().hashed_key == _finding().baseline_key


def test_matches_accepts_v2_and_v1_entries():
    finding = _finding(content_hash="abc123")
    assert finding.matches({"RPL010:sql/x.py:peek#abc123"})   # v2
    assert finding.matches({"RPL010:sql/x.py:peek"})          # v1 compat
    # A v2 entry with a different hash is an *expired* baseline entry.
    assert not finding.matches({"RPL010:sql/x.py:peek#000000"})


def test_real_findings_carry_a_function_hash():
    findings = analyze_source(LEAKY.format(pragma=""), "sql/x.py")
    (finding,) = findings
    assert finding.content_hash and len(finding.content_hash) == 12
    assert finding.hashed_key.endswith(f"#{finding.content_hash}")


def test_content_hash_is_line_stable_but_edit_sensitive():
    base = LEAKY.format(pragma="")
    (before,) = analyze_source(base, "sql/x.py")
    # Unrelated code above shifts every line: the hash must not move.
    (shifted,) = analyze_source("x = 1\n\n\n" + base, "sql/x.py")
    assert shifted.line != before.line
    assert shifted.content_hash == before.content_hash
    # Editing the flagged function itself expires the hash.
    (edited,) = analyze_source(
        base.replace("page.data[0]", "page.data[1]"), "sql/x.py")
    assert edited.content_hash != before.content_hash


def test_missing_baseline_is_empty():
    from pathlib import Path

    assert load_baseline(Path("/nonexistent/replint.baseline")) == set()


def test_malformed_baseline_raises_analysis_error(tmp_path):
    path = tmp_path / "replint.baseline"
    path.write_text('{"not": "a list"}', encoding="utf-8")
    with pytest.raises(AnalysisError):
        load_baseline(path)
    # Catchable at the taxonomy root, like every repro failure.
    with pytest.raises(ReproError):
        load_baseline(path)


def test_baselined_findings_do_not_fail_the_run(tmp_path):
    from repro.analysis import analyze_paths

    bad = tmp_path / "leaky.py"
    bad.write_text(LEAKY.format(pragma=""), encoding="utf-8")
    report = analyze_paths([bad])
    assert not report.ok and len(report.errors) == 1

    baseline = {f.hashed_key for f in report.findings}
    accepted = analyze_paths([bad], baseline)
    assert accepted.ok
    assert not accepted.findings
    assert [f.rule for f in accepted.baselined] == ["RPL010"]


def test_typestate_alias_suppresses_rpl030():
    source = (
        "def settle(engine):\n"
        "    txn = engine.begin()\n"
        "    engine.commit(txn)\n"
        "    engine.rollback(txn)"
        "  # replint: typestate-exempt -- exercising the error path\n"
    )
    assert analyze_source(source, "core/x.py") == []


def test_confinement_alias_suppresses_rpl033():
    source = (
        "import threading\n"
        "\n"
        "def fan_out(engine, consume):\n"
        "    ctx = engine.begin_read()\n"
        "\n"
        "    def worker():\n"
        "        consume(engine.read_source(ctx))\n"
        "\n"
        "    t = threading.Thread(target=worker)"
        "  # replint: confinement-exempt -- worker joins before close\n"
        "    t.start()\n"
        "    t.join()\n"
        "    ctx.close()\n"
    )
    assert analyze_source(source, "core/x.py") == []
