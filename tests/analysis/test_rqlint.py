"""rqlint: per-rule certification units, .sql corpus parsing, pragma
suppression, and the CLI/SARIF surface."""

import io
import json
import pathlib

import pytest

from repro.analysis import main as lint_main
from repro.analysis.query import (
    CONCAT,
    INTERVAL_STITCH,
    MONOID,
    SERIAL_ONLY,
    STORED_ROW,
    QUERY_REGISTRY,
    certify_mechanism,
)
from repro.analysis.query.driver import lint_sql_source, run_query_lint
from repro.errors import AggregateError
from repro.sql.semantic import StaticSchema

DDL = """
CREATE TABLE LoggedIn (l_userid TEXT, l_time TEXT, l_country TEXT);
CREATE TABLE SnapIds (snap_id INTEGER PRIMARY KEY, snap_ts TEXT,
                      snap_name TEXT);
"""

QS = ("SELECT snap_id FROM SnapIds "
      "WHERE snap_id BETWEEN 1 AND 3 ORDER BY snap_id")
QQ = "SELECT l_userid FROM LoggedIn"


def schema():
    built = StaticSchema.from_ddl(DDL)
    built.add_function("rql_workers")
    return built


def certify(mechanism="CollateData", qs=QS, qq=QQ, arg=None):
    return certify_mechanism(mechanism, qs, qq, arg=arg, schema=schema())


def rules_of(certificate):
    return sorted({f.rule for f in certificate.findings})


class TestMechanismClasses:
    def test_each_mechanism_maps_to_its_class(self):
        assert certify("CollateData").merge_class == CONCAT
        assert certify("AggregateDataInVariable",
                       qq="SELECT COUNT(*) AS n FROM LoggedIn",
                       arg="sum").merge_class == MONOID
        assert certify(
            "AggregateDataInTable",
            qq="SELECT l_country, COUNT(*) AS n FROM LoggedIn "
               "GROUP BY l_country",
            arg=[("n", "sum")]).merge_class == STORED_ROW
        assert certify("CollateDataIntoIntervals").merge_class \
            == INTERVAL_STITCH

    def test_mechanism_name_is_canonicalized(self):
        assert certify("collate_data").merge_class == CONCAT

    def test_unknown_mechanism_raises(self):
        with pytest.raises(AggregateError):
            certify("Bogus")

    def test_certificate_carries_read_set_and_bounds(self):
        certificate = certify(
            qq="SELECT l_userid FROM LoggedIn WHERE l_country = 'UK'")
        assert certificate.read_tables == ("LoggedIn",)
        assert "l_userid" in certificate.read_columns["LoggedIn"]
        assert certificate.pushable_predicates == ("l_country = 'UK'",)
        assert certificate.index_candidates == (("LoggedIn", "l_country"),)
        assert (certificate.qs_lower, certificate.qs_upper) == (1, 3)
        assert certificate.qs_range() == "[1, 3]"
        assert certificate.mergeable

    def test_summary_lines_render(self):
        lines = certify().summary_lines()
        assert lines[0] == "mechanism CollateData: merge class concat"
        assert "Qs range [1, 3]" in lines


class TestRules:
    def test_rql100_parse_error(self):
        certificate = certify(qq="SELEKT nope")
        assert any(f.rule == "RQL100" and f.severity == "error"
                   for f in certificate.findings)

    def test_rql100_qq_as_of(self):
        certificate = certify(qq="SELECT AS OF 2 l_userid FROM LoggedIn")
        assert rules_of(certificate) == ["RQL100"]
        assert certificate.merge_class == CONCAT  # hygiene, not refusal

    def test_rql100_bad_qs_shape(self):
        certificate = certify(qs="SELECT snap_id, snap_ts FROM SnapIds")
        assert "RQL100" in rules_of(certificate)

    def test_rql100_resolution_failure(self):
        certificate = certify(qq="SELECT ghost FROM LoggedIn")
        assert rules_of(certificate) == ["RQL100"]

    def test_rql101_non_monoid_aggregate(self):
        certificate = certify("AggregateDataInVariable",
                              qq="SELECT COUNT(*) AS n FROM LoggedIn",
                              arg="group_concat")
        assert certificate.merge_class == SERIAL_ONLY
        assert "RQL101" in rules_of(certificate)
        assert not certificate.mergeable

    def test_rql101_avg_is_fine(self):
        certificate = certify("AggregateDataInVariable",
                              qq="SELECT COUNT(*) AS n FROM LoggedIn",
                              arg="avg")
        assert certificate.merge_class == MONOID

    def test_rql100_multi_column_variable_qq(self):
        certificate = certify("AggregateDataInVariable",
                              qq="SELECT l_userid, l_time FROM LoggedIn",
                              arg="sum")
        assert "RQL100" in rules_of(certificate)

    def test_rql102_non_mergeable_pairs(self):
        certificate = certify("AggregateDataInTable",
                              qq="SELECT l_country, COUNT(*) AS n "
                                 "FROM LoggedIn GROUP BY l_country",
                              arg=[("n", "group_concat")])
        assert certificate.merge_class == SERIAL_ONLY
        assert "RQL102" in rules_of(certificate)

    def test_rql100_pair_column_not_in_qq(self):
        certificate = certify("AggregateDataInTable",
                              qq="SELECT l_country, COUNT(*) AS n "
                                 "FROM LoggedIn GROUP BY l_country",
                              arg=[("ghost", "sum")])
        assert "RQL100" in rules_of(certificate)

    def test_rql103_unbounded(self):
        certificate = certify(qs="SELECT snap_id FROM SnapIds")
        assert rules_of(certificate) == ["RQL103"]
        assert certificate.mergeable  # warning only

    def test_rql103_upper_bound_is_enough(self):
        certificate = certify(
            qs="SELECT snap_id FROM SnapIds WHERE snap_id <= 9")
        assert rules_of(certificate) == []

    def test_rql103_statically_empty(self):
        certificate = certify(
            qs="SELECT snap_id FROM SnapIds "
               "WHERE snap_id > 5 AND snap_id < 3")
        assert rules_of(certificate) == ["RQL103"]

    def test_rql104_unindexed_pushdown(self):
        certificate = certify(
            qq="SELECT l_userid FROM LoggedIn WHERE l_country = 'UK'")
        findings = [f for f in certificate.findings if f.rule == "RQL104"]
        assert len(findings) == 1
        assert "CREATE INDEX" in findings[0].hint
        assert certificate.mergeable

    def test_rql104_silenced_by_index(self):
        indexed = schema()
        indexed.add_index("li_country", "LoggedIn", ["l_country"])
        certificate = certify_mechanism(
            "CollateData", QS,
            "SELECT l_userid FROM LoggedIn WHERE l_country = 'UK'",
            schema=indexed)
        assert rules_of(certificate) == []

    def test_rql105_order_and_limit(self):
        certificate = certify(
            qq="SELECT l_userid FROM LoggedIn ORDER BY l_userid LIMIT 5")
        assert rules_of(certificate) == ["RQL105"]
        assert certificate.mergeable  # never a refusal

    def test_rql106_stateful_refuses(self):
        certificate = certify(
            qq="SELECT l_userid, rql_workers() FROM LoggedIn")
        assert certificate.merge_class == SERIAL_ONLY
        assert any(f.rule == "RQL106" and f.severity == "error"
                   for f in certificate.findings)

    def test_rql106_unknown_function_warns_only(self):
        certificate = certify(
            qq="SELECT mystery(l_userid) FROM LoggedIn")
        findings = [f for f in certificate.findings if f.rule == "RQL106"]
        assert [f.severity for f in findings] == ["warning"]
        assert certificate.merge_class == CONCAT

    def test_current_snapshot_is_whitelisted(self):
        certificate = certify(
            qq="SELECT l_userid, current_snapshot() FROM LoggedIn")
        assert rules_of(certificate) == []


CORPUS_SQL = DDL + """
-- rqlint: mechanism=CollateData name=roster qs="SELECT snap_id FROM SnapIds WHERE snap_id <= 3"
SELECT l_userid FROM LoggedIn WHERE l_country = 'UK';

-- rqlint: mechanism=AggregateDataInVariable name=peak arg="max" qs="SELECT snap_id FROM SnapIds"
SELECT COUNT(*) AS online FROM LoggedIn;
"""


class TestSqlCorpus:
    def test_cases_certify_with_file_schema(self):
        findings = lint_sql_source(CORPUS_SQL, "corpus.sql")
        assert {f.rule for f in findings} == {"RQL103", "RQL104"}
        by_rule = {f.rule: f for f in findings}
        assert by_rule["RQL104"].symbol == "roster"
        assert by_rule["RQL103"].symbol == "peak"

    def test_findings_anchor_to_case_lines(self):
        findings = lint_sql_source(CORPUS_SQL, "corpus.sql")
        lines = CORPUS_SQL.splitlines()
        for finding in findings:
            assert "mechanism=" in lines[finding.line - 2]

    def test_ignore_pragma_suppresses_case(self):
        source = CORPUS_SQL.replace(
            "SELECT COUNT(*) AS online FROM LoggedIn;",
            "-- rqlint: ignore[RQL103] -- audits walk all history\n"
            "SELECT COUNT(*) AS online FROM LoggedIn;")
        findings = lint_sql_source(source, "corpus.sql")
        assert {f.rule for f in findings} == {"RQL104"}

    def test_alias_pragmas_expand(self):
        source = DDL + """
-- rqlint: mechanism=AggregateDataInVariable arg="group_concat" qs="SELECT snap_id FROM SnapIds WHERE snap_id <= 3"
-- rqlint: mergeclass-exempt -- legacy, runs serially
SELECT l_userid FROM LoggedIn ORDER BY l_userid;
"""
        findings = lint_sql_source(source, "corpus.sql")
        assert findings == []  # RQL101 + RQL105 both covered

    def test_query_exempt_covers_everything(self):
        source = DDL + """
-- rqlint: query-exempt -- quarantined legacy corpus
-- rqlint: mechanism=CollateData qs="SELECT snap_id FROM SnapIds"
SELECT ghost FROM LoggedIn ORDER BY ghost;
"""
        assert lint_sql_source(source, "corpus.sql") == []

    def test_unjustified_pragma_is_an_error(self):
        source = DDL + """
-- rqlint: mechanism=CollateData qs="SELECT snap_id FROM SnapIds WHERE snap_id <= 3"
-- rqlint: ignore[RQL104]
SELECT l_userid FROM LoggedIn WHERE l_country = 'UK';
"""
        findings = lint_sql_source(source, "corpus.sql")
        assert any(f.rule == "RQL100" and "justification" in f.message
                   for f in findings)
        # The unjustified pragma must NOT suppress.
        assert any(f.rule == "RQL104" for f in findings)

    def test_unrecognized_pragma_is_an_error(self):
        source = "-- rqlint: frobnicate -- because\n"
        findings = lint_sql_source(source, "corpus.sql")
        assert [f.rule for f in findings] == ["RQL100"]

    def test_directive_missing_qs_is_an_error(self):
        source = DDL + """
-- rqlint: mechanism=CollateData
SELECT l_userid FROM LoggedIn;
"""
        findings = lint_sql_source(source, "corpus.sql")
        assert any("missing qs" in f.message for f in findings)

    def test_case_without_qq_is_an_error(self):
        source = DDL + (
            '-- rqlint: mechanism=CollateData '
            'qs="SELECT snap_id FROM SnapIds WHERE snap_id <= 3"\n')
        findings = lint_sql_source(source, "corpus.sql")
        assert any("has no Qq text" in f.message for f in findings)

    def test_pair_list_arg_parses(self):
        source = DDL + """
-- rqlint: mechanism=AggregateDataInTable arg="online:sum" qs="SELECT snap_id FROM SnapIds WHERE snap_id <= 3"
SELECT l_country, COUNT(*) AS online FROM LoggedIn GROUP BY l_country;
"""
        assert lint_sql_source(source, "corpus.sql") == []


class TestCli:
    def test_lint_queries_over_examples(self):
        repo = pathlib.Path(__file__).resolve().parents[2]
        out = io.StringIO()
        code = lint_main(
            ["--queries", str(repo / "examples"), "--baseline",
             str(repo / "does-not-exist.baseline")], out=out)
        assert code == 0, out.getvalue()
        assert "rqlint:" in out.getvalue()
        assert "0 errors" in out.getvalue()

    def test_exit_one_on_errors(self, tmp_path):
        bad = tmp_path / "bad.sql"
        bad.write_text(
            '-- rqlint: mechanism=CollateData '
            'qs="SELECT snap_id FROM SnapIds WHERE snap_id <= 3"\n'
            "SELECT ghost FROM nowhere;\n")
        out = io.StringIO()
        code = run_query_lint(
            [str(bad), "--no-corpus",
             "--baseline", str(tmp_path / "none")], out=out)
        assert code == 1
        assert "RQL100" in out.getvalue()

    def test_json_output(self, tmp_path):
        bad = tmp_path / "bad.sql"
        bad.write_text(
            '-- rqlint: mechanism=CollateData '
            'qs="SELECT snap_id FROM SnapIds"\n'
            "SELECT snap_name FROM SnapIds;\n")
        out = io.StringIO()
        run_query_lint([str(bad), "--no-corpus", "--json",
                        "--baseline", str(tmp_path / "none")], out=out)
        payload = json.loads(out.getvalue())
        assert {f["rule"] for f in payload["findings"]} == {"RQL103"}

    def test_sarif_names_rqlint(self, tmp_path):
        out = io.StringIO()
        code = run_query_lint(
            ["--format", "sarif",
             "--baseline", str(tmp_path / "none")], out=out)
        assert code == 0
        log = json.loads(out.getvalue())
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "rqlint"
        rule_ids = {r["id"] for r in driver["rules"]}
        assert {"RQL100", "RQL104", "RQL106"} <= rule_ids

    def test_replint_sarif_unchanged(self, tmp_path):
        """The tool parameter must not disturb the replint rendering."""
        fixture = (pathlib.Path(__file__).parent / "fixtures"
                   / "rpl010_bad.py")
        out = io.StringIO()
        lint_main([str(fixture), "--format", "sarif",
                   "--baseline", str(tmp_path / "none")], out=out)
        log = json.loads(out.getvalue())
        assert log["runs"][0]["tool"]["driver"]["name"] == "replint"
        result = log["runs"][0]["results"][0]
        assert "replintKey/v2" in result["partialFingerprints"]

    def test_baseline_round_trip(self, tmp_path):
        bad = tmp_path / "bad.sql"
        bad.write_text(
            '-- rqlint: mechanism=CollateData '
            'qs="SELECT snap_id FROM SnapIds WHERE snap_id <= 3"\n'
            "SELECT ghost FROM nowhere;\n")
        baseline = tmp_path / "rqlint.baseline"
        out = io.StringIO()
        assert run_query_lint(
            [str(bad), "--no-corpus", "--write-baseline",
             "--baseline", str(baseline)], out=out) == 0
        out = io.StringIO()
        code = run_query_lint(
            [str(bad), "--no-corpus", "--baseline", str(baseline)],
            out=out)
        assert code == 0
        assert "baselined" in out.getvalue()

    def test_missing_path_is_usage_error(self, tmp_path):
        out = io.StringIO()
        assert run_query_lint(
            [str(tmp_path / "ghost.sql")], out=out) == 2

    def test_explain_rql_rule(self):
        out = io.StringIO()
        assert lint_main(["--explain", "rql104"], out=out) == 0
        text = out.getvalue()
        assert "RQL104 — unindexed-pushdown" in text
        assert "example:" in text and "fix:" in text

    def test_explain_unknown_rule_exits_two(self):
        out = io.StringIO()
        assert lint_main(["--explain", "RQL999"], out=out) == 2

    def test_list_rules_includes_query_rules(self):
        out = io.StringIO()
        lint_main(["--list-rules"], out=out)
        text = out.getvalue()
        for rule_id in QUERY_REGISTRY:
            assert rule_id in text
        assert "RPL010" in text  # replint rules still listed
