"""Known-good RPL031 counterpart: one critical section.

The read and the dependent write share the same ``with`` block, so the
latch is held continuously from observation to publication.
"""

import threading


class Counter:
    def __init__(self):
        self._latch = threading.Lock()
        self._count = 0

    def bump(self):
        with self._latch:
            current = self._count
            self._count = current + 1
