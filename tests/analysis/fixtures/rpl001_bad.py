"""Known-bad RPL001 fixture: leaked pin + out-of-pool pin accounting."""


def peek_header(pool, page_id):
    # Pinned fetch bound to a variable that is neither returned nor
    # released in a finally block: the pin leaks.
    page = pool.fetch(page_id)
    return page.data[0]


def steal_pin(page):
    # Pin accounting outside the buffer pool module.
    page.pin_count += 1
