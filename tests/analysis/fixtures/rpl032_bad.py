"""Known-bad RPL032: read through a snapshot just marked unavailable.

After ``mark_unavailable`` the manager is definitely degraded; serving
``snapshot_source`` without re-checking availability reads through a
snapshot known to be damaged.
"""


def reread(retro, snap_id, read_page, size):
    retro.mark_unavailable(snap_id)
    return retro.snapshot_source(snap_id, read_page, size)
