"""Known-bad RPL020: a scheduler's shared admission queue written
without its latch from a dispatcher thread.

``AdmissionQueue`` escapes into every dispatcher closure; ``admit``
writes under the latch, but ``retire`` — reached from the dispatcher
thread when a ticket finishes — rebinds the queue unlatched, so two
dispatchers retiring concurrently can lose each other's removal.
This is the race the real scheduler avoids by popping tickets from
``_active`` under ``_latch``.
"""

import threading


class AdmissionQueue:
    def __init__(self):
        self._latch = threading.Lock()
        self.pending = ()
        self.admitted = 0

    def admit(self, ticket):
        with self._latch:
            self.pending = self.pending + (ticket,)
            self.admitted += 1

    def retire(self, ticket):
        self.pending = tuple(t for t in self.pending if t is not ticket)


class Dispatcher:
    def run(self, tickets):
        queue = AdmissionQueue()

        def body(ticket):
            queue.admit(ticket)
            ticket()
            queue.retire(ticket)

        threads = [threading.Thread(target=body, args=(ticket,))
                   for ticket in tickets]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return queue.admitted
