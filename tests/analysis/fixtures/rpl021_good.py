"""Known-good RPL021: blocking happens outside every latched region,
and join-lookalikes on non-thread receivers stay quiet."""

import threading


class Sweeper:
    def __init__(self):
        self._latch = threading.Lock()
        self.cancel = threading.Event()
        self.pending = []

    def drain(self):
        while not self.cancel.is_set():
            with self._latch:
                if not self.pending:
                    return

    def run(self):
        def body():
            self.drain()

        worker = threading.Thread(target=body)
        worker.start()
        worker.join()

    def stop(self, thread):
        with self._latch:
            self.pending = []
        thread.join()

    def render(self, columns):
        with self._latch:
            # A str.join under the latch is not a blocking call.
            return ", ".join(columns)
