"""Known-bad RPL010 fixture: intra- and inter-procedural pin leaks."""


def peek_header(pool, page_id):
    # Pinned fetch bound to a variable that is neither returned nor
    # released in a finally block: the pin leaks on normal return.
    page = pool.fetch(page_id)
    return page.data[0]


def steal_pin(page):
    # Pin accounting outside the buffer pool module.
    page.pin_count += 1


def open_page(pool, page_id):
    # Ownership transfer: fine on its own, the caller must release.
    return pool.fetch(page_id)


def sum_header(pool, page_id):
    # Interprocedural leak: the acquisition happens inside open_page.
    # No fetch-like call appears in this function, so a checker that
    # looks at one function at a time sees nothing to track here.
    page = open_page(pool, page_id)
    return page.data[0]
