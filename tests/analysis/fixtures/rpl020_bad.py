"""Known-bad RPL020: one unlatched write to worker-shared state.

``Counters`` escapes into the worker closure; ``note_done`` writes
under the latch, ``note_failed`` does not.  The finding needs the whole
picture — thread root, closure capture, and the latched sibling site
that establishes the guard.
"""

import threading


class Counters:
    def __init__(self):
        self._latch = threading.Lock()
        self.done = 0
        self.failed = 0

    def note_done(self):
        with self._latch:
            self.done += 1

    def note_failed(self):
        self.failed += 1


class Runner:
    def run(self, jobs):
        counters = Counters()

        def body(job):
            if job is None:
                counters.note_failed()
            else:
                job()
                counters.note_done()

        threads = [threading.Thread(target=body, args=(job,))
                   for job in jobs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return counters.done
