"""Known-good RPL002 fixture: taxonomy raises, honest broad handlers."""

from repro.errors import ReproError, WorkloadError


class ScaleError(WorkloadError):
    """Local subclass of a taxonomy class: also allowed."""


def parse_scale(text):
    if not text:
        raise ScaleError("empty scale factor")
    return float(text)


def read_required(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except Exception:
        # Broad, but re-raises wrapped in the taxonomy.
        raise ReproError(f"cannot read {path}")


def read_logged(path, log):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except Exception as exc:
        # Broad, but hands the error to a logger.
        log.warning("read failed: %s", exc)
        return None
