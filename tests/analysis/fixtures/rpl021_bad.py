"""Known-bad RPL021: blocking calls reached with a latch held.

``drain`` polls the cancel event holding no latch of its own — the
latch arrives through the worker entry context (``body`` calls it under
``self._latch``), which is exactly the cross-function case.  ``stop``
joins a thread while holding the latch directly.
"""

import threading


class Sweeper:
    def __init__(self):
        self._latch = threading.Lock()
        self.cancel = threading.Event()
        self.pending = []

    def drain(self):
        while not self.cancel.is_set():
            if not self.pending:
                return

    def run(self):
        def body():
            with self._latch:
                self.drain()

        worker = threading.Thread(target=body)
        worker.start()
        worker.join()

    def stop(self, thread):
        with self._latch:
            thread.join()
