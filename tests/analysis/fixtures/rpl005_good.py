"""Known-good RPL005 fixture: snapshot ids always flow from data."""

FIRST_SNAPSHOT = 1


def rows_at(db, snapshot_id):
    return db.query("SELECT * FROM t", as_of=snapshot_id)


def latest_logins(db, session):
    return rows_at(db, session.latest_snapshot_id)


def earliest_logins(db):
    # A named constant is fine — the literal has a home and a meaning.
    return rows_at(db, FIRST_SNAPSHOT)


def all_snapshots(db, session):
    return [
        rows_at(db, sid)
        for (sid,) in session.execute("SELECT snap_id FROM SnapIds").rows
    ]
