"""Known-bad RPL031: check-then-act across a latch release.

``bump`` reads ``self._count`` under the latch, releases it, then
publishes a write computed from the stale read — the window between
the two is a lost update waiting to happen.
"""

import threading


class Counter:
    def __init__(self):
        self._latch = threading.Lock()
        self._count = 0

    def bump(self):
        with self._latch:
            current = self._count
        self._count = current + 1
