"""Known-bad RPL005 fixture: raw int literals in snapshot-id positions.

Only meaningful when analyzed under a ``core/`` or ``retro/`` relpath.
"""


def rows_at(db, snapshot_id):
    return db.query("SELECT * FROM t", as_of=snapshot_id)


def logins_at_three(db):
    # Keyword form: bakes one history's shape into the code.
    return db.query("SELECT * FROM LoggedIn", as_of=3)


def warm_cache(db):
    # Positional form, resolved against the local signature of rows_at.
    return rows_at(db, 7)
