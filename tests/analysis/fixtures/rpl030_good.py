"""Known-good RPL030 counterpart.

``settle`` reaches exactly one terminal state per path — commit on the
happy path, rollback on the unwind — and nothing fires afterwards.
``scan`` deregisters in a ``finally``, so the exceptional exit
completes the reader protocol too.
"""


def settle(engine, pages):
    txn = engine.begin()
    try:
        for page_id, payload in pages:
            engine.page_source(txn).write(page_id, payload)
        engine.commit(txn)
    except Exception:
        engine.rollback(txn)
        raise


def scan(versions, ts, pages):
    reader = versions.register_reader(ts)
    try:
        return sum(pages)
    finally:
        versions.deregister_reader(reader)
