"""Known-bad RPL033: a live read context crosses a thread boundary.

``ctx`` is captured by the worker closure handed to ``Thread`` — the
MVCC reader behind it was registered on this thread but is consumed on
another, with no handoff protocol.
"""

import threading


def fan_out(engine, consume):
    ctx = engine.begin_read()

    def worker():
        consume(engine.read_source(ctx))

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    ctx.close()
