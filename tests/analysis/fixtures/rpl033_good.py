"""Known-good RPL033 counterpart: per-thread read contexts.

Each worker begins and closes its own context; no live handle crosses
the spawn boundary.
"""

import threading


def fan_out(engine, consume):
    def worker():
        ctx = engine.begin_read()
        try:
            consume(engine.read_source(ctx))
        finally:
            ctx.close()

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
