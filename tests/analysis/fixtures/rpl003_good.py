"""Known-good RPL003 fixture: WAL append precedes every flush."""


class Engine:
    def commit(self, txn):
        self.wal.log_commit(txn.txn_id, txn.pages)
        for page_id, image in txn.pages.items():
            self.pager.install(page_id, image)

    def recover(self):
        for txn in self.wal.replay(0):
            for page_id, image in txn.pages.items():
                self.pager.install(page_id, image)

    def install(self, page_id, image):
        # Pass-through wrapper: ordering is the caller's contract.
        self.pool.put_raw(page_id, image)
