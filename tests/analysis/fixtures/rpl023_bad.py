"""Known-bad RPL023: impure merge functions.

``CrossSnapshotAggregate.merge`` clobbers its *other* input;
``CountingAggregate.merge`` looks pure on its own but reaches session
state through ``bump`` — visible only with the callee's summary.
"""


class Session:
    def __init__(self):
        self.merges = 0


def bump(session: Session) -> None:
    session.merges += 1


class CrossSnapshotAggregate:
    def __init__(self):
        self.total = 0

    def merge(self, other):
        self.total += other.total
        other.total = 0
        return self


class CountingAggregate(CrossSnapshotAggregate):
    def __init__(self, session: Session):
        CrossSnapshotAggregate.__init__(self)
        self.session = session

    def merge(self, other):
        bump(self.session)
        self.total += other.total
        return self
