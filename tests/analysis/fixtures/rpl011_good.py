"""Known-good RPL011 fixture: consistent Pager -> Pool latch order."""

from __future__ import annotations

import threading


class Pool:
    def __init__(self) -> None:
        self._latch = threading.Lock()

    def evict(self) -> None:
        # Leaf: never calls upward while latched.
        with self._latch:
            pass

    def admit(self) -> None:
        with self._latch:
            pass


class Pager:
    def __init__(self, pool: Pool) -> None:
        self._latch = threading.Lock()
        self.pool = pool

    def sync_meta(self) -> None:
        with self._latch:
            pass

    def checkpoint(self) -> None:
        # Pager -> Pool nesting everywhere: the order graph is acyclic.
        with self._latch:
            self.pool.admit()
            self.pool.evict()
