"""Known-bad RPL022: raw writes on a durable block-log surface.

``flush_header`` appends an unsealed constant, ``rewind`` seeks the
durable file, and ``write_trailer`` pushes an unsealed local through
the durable *sink* ``flush`` — that last finding lands in the caller
and only exists because the sink-parameter summary crossed the call.
"""

import zlib


def seal_block(payload: bytes) -> bytes:
    crc = zlib.crc32(payload)
    return payload + crc.to_bytes(4, "big")


class BlockLogWriter:
    def __init__(self, log_file):
        self._file = log_file

    def flush(self, payload: bytes) -> None:
        self._file.append(payload)

    def flush_header(self) -> None:
        self._file.append(b"\x00" * 16)

    def rewind(self) -> None:
        self._file.seek(0)


def write_trailer(writer: BlockLogWriter) -> None:
    blob = b"end-of-log"
    writer.flush(blob)
