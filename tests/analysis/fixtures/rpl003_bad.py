"""Known-bad RPL003 fixture: flush with no preceding WAL append.

Only meaningful when analyzed under a ``storage/`` relpath.
"""


class Engine:
    def commit(self, txn):
        # After-images reach the database file without ever touching
        # the WAL: unreplayable after a crash.
        for page_id, image in txn.pages.items():
            self.pager.install(page_id, image)
        self.pager.flush_all()
