"""Known-good RPL020: every write to the shared admission queue —
admission and retirement alike — holds the queue's latch."""

import threading


class AdmissionQueue:
    def __init__(self):
        self._latch = threading.Lock()
        self.pending = ()
        self.admitted = 0

    def admit(self, ticket):
        with self._latch:
            self.pending = self.pending + (ticket,)
            self.admitted += 1

    def retire(self, ticket):
        with self._latch:
            self.pending = tuple(
                t for t in self.pending if t is not ticket)


class Dispatcher:
    def run(self, tickets):
        queue = AdmissionQueue()

        def body(ticket):
            queue.admit(ticket)
            ticket()
            queue.retire(ticket)

        threads = [threading.Thread(target=body, args=(ticket,))
                   for ticket in tickets]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return queue.admitted
