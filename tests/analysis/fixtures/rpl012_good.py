"""Known-good RPL012 fixture: the legitimate uses of snapshot data.

Reading snapshot pages, decoding them into fresh row values, and
writing *those* through the normal write path is exactly what
retrospective queries do; none of it touches a mutation sink with
snapshot-scoped bytes.
"""


def decode_row(raw):
    return list(raw)


def report(engine, writer, snapshot_id, ctx):
    snap = engine.snapshot_source(snapshot_id, ctx)
    page = snap.fetch(7)
    # Decoded into a new row object; the sink-free write path gets a
    # value the decoder built, not the snapshot bytes themselves.
    row = decode_row(page.data)
    writer.add_row(row)


def current_install(pager, pool, raw):
    # Mutation sinks fed from current-epoch bytes are fine.
    pager.install(4, bytes(raw))
    pool.put_raw(5, bytes(raw))
