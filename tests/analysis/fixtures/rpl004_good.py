"""Known-good RPL004 fixture: a complete monoid registration."""


class _BaseState:
    def result(self):
        return self.value


class SumState(_BaseState):
    name = "sum"

    def __init__(self):
        self.value = 0

    def absorb(self, item):
        self.value += item

    def merge(self, other):
        self.value += other.value


class CountState(_BaseState):
    name = "count"

    def __init__(self):
        self.value = 0

    def absorb(self, item):
        if item is not None:
            self.value += 1

    def merge(self, other):
        self.value += other.value


MONOID_AGGREGATES = ("sum", "count")

_FACTORIES = {
    "sum": SumState,
    "count": CountState,
}


def binary_op(name):
    if name in ("sum", "count"):
        return lambda a, b: a + b
    return None


def identity_element(name):
    if name in ("sum", "count"):
        return 0
    return None
