"""Known-good RPL032 counterpart: availability re-checked.

``snapshot_available`` moves the manager out of the degraded state, so
the subsequent read is ordered behind an explicit re-check.
"""


def reread(retro, snap_id, read_page, size):
    retro.mark_unavailable(snap_id)
    if retro.snapshot_available(snap_id):
        return retro.snapshot_source(snap_id, read_page, size)
    return None
