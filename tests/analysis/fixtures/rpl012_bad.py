"""Known-bad RPL012 fixture: snapshot bytes reach current-epoch sinks.

``backfill`` never names a mutation sink itself: the flow is only
visible because ``copy_into_current``'s summary marks its ``page``
parameter as sink-reaching, which an intraprocedural checker cannot do.
"""


def copy_into_current(pager, page):
    # Sink on a parameter: callers with tainted arguments inherit it.
    pager.install(page.page_id, bytes(page.data))


def backfill(engine, pager, snapshot_id, ctx):
    snap = engine.snapshot_source(snapshot_id, ctx)
    page = snap.fetch(7)
    copy_into_current(pager, page)


def clobber(engine, pool, snapshot_id, ctx):
    # Direct flow: snapshot page bytes installed as current bytes.
    snap = engine.snapshot_source(snapshot_id, ctx)
    raw = snap.fetch(3).data
    pool.put_raw(3, bytes(raw))
