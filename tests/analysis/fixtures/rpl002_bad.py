"""Known-bad RPL002 fixture: foreign raise + silent broad except."""


def parse_scale(text):
    if not text:
        # ValueError is outside the repro.errors taxonomy.
        raise ValueError("empty scale factor")
    return float(text)


def read_optional(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except Exception:
        # Swallowed: no re-raise, no logging.
        return None
