"""Known-good RPL022: every durable payload flows through the sealer,
and the block log's own end-of-block truncation stays allowed."""

import zlib


def seal_block(payload: bytes) -> bytes:
    crc = zlib.crc32(payload)
    return payload + crc.to_bytes(4, "big")


class BlockLogWriter:
    def __init__(self, log_file):
        self._file = log_file

    def flush(self, payload: bytes) -> None:
        self._file.append(seal_block(payload))

    def flush_header(self) -> None:
        image = seal_block(b"\x00" * 16)
        self._file.append(image)

    def reset(self) -> None:
        self._file.truncate(0)


def write_trailer(writer: BlockLogWriter) -> None:
    writer.flush(b"end-of-log")
