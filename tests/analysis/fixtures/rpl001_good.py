"""Known-good RPL001 fixture: every sanctioned pin pattern."""


def checksum(pool, page_id):
    # Pin taken inside a try whose finally releases it.
    page = None
    try:
        page = pool.fetch(page_id)
        return sum(page.data)
    finally:
        if page is not None:
            pool.unpin(page)


def borrow(pool, page_id):
    # Ownership transfer: the caller releases.
    return pool.fetch(page_id)


def materialize(pool, page_id):
    # Assigned then returned: still an ownership transfer.
    page = pool.create(page_id)
    page.dirty = True
    return page


def peek(pool, page_id):
    # Opted out of pinning.
    page = pool.fetch(page_id, pin=False)
    return page.data[0]
