"""Known-bad RPL030: two protocol-typestate violations.

``settle`` drives a transaction to *two* terminal states — the late
rollback fires on a definitely-committed transaction.  ``scan`` only
deregisters its MVCC reader on the happy path; the exceptional exit of
the dual CFG still holds a registered handle.
"""


def settle(engine, pages):
    txn = engine.begin()
    try:
        for page_id, payload in pages:
            engine.page_source(txn).write(page_id, payload)
        engine.commit(txn)
    except Exception:
        engine.rollback(txn)
        raise
    engine.rollback(txn)


def scan(versions, ts, pages):
    reader = versions.register_reader(ts)
    total = sum(pages)
    versions.deregister_reader(reader)
    return total
