"""Known-bad RPL011 fixture: AB/BA latch order across two classes.

Neither function takes both latches lexically: each edge of the cycle
exists only because a *callee* (resolved through the call graph, with
its transitive ``acquires_locks`` summary) takes the second latch.
"""

from __future__ import annotations

import threading


class Pool:
    def __init__(self) -> None:
        self._latch = threading.Lock()

    def evict(self, pager: Pager) -> None:
        # Holds Pool._latch, then transitively takes Pager._latch.
        with self._latch:
            pager.sync_meta()

    def admit(self) -> None:
        with self._latch:
            pass


class Pager:
    def __init__(self, pool: Pool) -> None:
        self._latch = threading.Lock()
        self.pool = pool

    def sync_meta(self) -> None:
        with self._latch:
            pass

    def checkpoint(self) -> None:
        # Holds Pager._latch, then transitively takes Pool._latch.
        with self._latch:
            self.pool.admit()
