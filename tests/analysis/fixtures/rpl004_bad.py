"""Known-bad RPL004 fixture: incomplete monoid registrations."""


class SumState:
    name = "sum"

    def __init__(self):
        self.total = 0

    def absorb(self, value):
        self.total += value

    def merge(self, other):
        # A stub does not count as an implementation.
        raise NotImplementedError

    def result(self):
        return self.total


class MaxState:
    # Registry key is "max" but the declared name disagrees, and the
    # class implements neither merge nor result.
    name = "maximum"

    def absorb(self, value):
        self.best = value


MONOID_AGGREGATES = ("sum", "max", "avg")

_FACTORIES = {
    "sum": SumState,
    "max": MaxState,
}


def binary_op(name):
    if name == "sum":
        return lambda a, b: a + b
    return None


def identity_element(name):
    if name == "sum":
        return 0
    return None
