"""Known-good RPL020: every worker-shared write holds the latch, and
per-worker payload objects may be mutated freely."""

import threading


class Counters:
    def __init__(self):
        self._latch = threading.Lock()
        self.done = 0
        self.failed = 0

    def note_done(self):
        with self._latch:
            self.done += 1

    def note_failed(self):
        with self._latch:
            self.failed += 1


class Job:
    def __init__(self):
        self.attempts = 0


class Runner:
    def run(self, jobs):
        counters = Counters()

        def body(job: Job):
            # Per-worker payload: Job came in through the thread args,
            # so unlatched mutation is fine.
            job.attempts += 1
            if job.attempts > 1:
                counters.note_failed()
            else:
                counters.note_done()

        threads = [threading.Thread(target=body, args=(job,))
                   for job in jobs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return counters.done
