"""Known-good RPL010 fixture: every sanctioned pin pattern."""


def checksum(pool, page_id):
    # Pin taken inside a try whose finally conditionally releases it.
    page = None
    try:
        page = pool.fetch(page_id)
        return sum(page.data)
    finally:
        if page is not None:
            pool.unpin(page)


def borrow(pool, page_id):
    # Ownership transfer: the caller releases.
    return pool.fetch(page_id)


def materialize(pool, page_id):
    # Assigned then returned: still an ownership transfer.
    page = pool.create(page_id)
    page.dirty = True
    return page


def peek(pool, page_id):
    # Opted out of pinning.
    page = pool.fetch(page_id, pin=False)
    return page.data[0]


def open_page(pool, page_id):
    return pool.fetch(page_id)


def consume(pool, page_id):
    # Interprocedural acquisition (via open_page's summary) with a
    # correct try/finally release in the caller.
    page = open_page(pool, page_id)
    try:
        return page.data[0]
    finally:
        pool.unpin(page)
