"""Known-good RPL023: merges fold into the accumulator (``self``) and
touch nothing else."""


class Session:
    def __init__(self):
        self.merges = 0


class CrossSnapshotAggregate:
    def __init__(self):
        self.total = 0
        self.count = 0

    def merge(self, other):
        self.total += other.total
        self.count += other.count
        return self


class AvgAggregate(CrossSnapshotAggregate):
    def merge(self, other):
        CrossSnapshotAggregate.merge(self, other)
        return self

    def result(self):
        if self.count == 0:
            return None
        return self.total / self.count
