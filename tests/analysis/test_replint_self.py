"""replint dogfood: the shipped tree must be clean, and the CLI entry
points must report honestly."""

import io
import json
import pathlib

from repro.analysis import analyze_paths, main, package_root
from repro.cli import main as cli_main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def test_shipped_tree_is_clean_with_empty_baseline():
    """The acceptance bar: zero non-baselined findings over src/repro."""
    report = analyze_paths([package_root()])
    assert report.files_scanned > 50
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.findings == [], f"replint found:\n{rendered}"
    assert report.ok


def test_cli_exit_one_on_findings(tmp_path):
    out = io.StringIO()
    bad = FIXTURES / "rpl001_bad.py"
    code = main([str(bad), "--baseline", str(tmp_path / "none")], out=out)
    assert code == 1
    assert "RPL001" in out.getvalue()
    assert "hint:" in out.getvalue()


def test_cli_exit_zero_on_clean_input(tmp_path):
    out = io.StringIO()
    good = FIXTURES / "rpl001_good.py"
    code = main([str(good), "--baseline", str(tmp_path / "none")], out=out)
    assert code == 0
    assert "0 errors" in out.getvalue()


def test_cli_json_output(tmp_path):
    out = io.StringIO()
    main([str(FIXTURES / "rpl001_bad.py"), "--json",
          "--baseline", str(tmp_path / "none")], out=out)
    payload = json.loads(out.getvalue())
    assert payload["files_scanned"] == 1
    assert {f["rule"] for f in payload["findings"]} == {"RPL001"}


def test_cli_list_rules():
    out = io.StringIO()
    assert main(["--list-rules"], out=out) == 0
    listed = out.getvalue()
    for rule in ("RPL000", "RPL001", "RPL002", "RPL003", "RPL004",
                 "RPL005"):
        assert rule in listed


def test_cli_write_baseline_then_accept(tmp_path):
    baseline = tmp_path / "replint.baseline"
    bad = str(FIXTURES / "rpl001_bad.py")
    out = io.StringIO()
    assert main([bad, "--baseline", str(baseline),
                 "--write-baseline"], out=out) == 0
    assert baseline.exists()
    # With the findings accepted, the same input now passes.
    out = io.StringIO()
    assert main([bad, "--baseline", str(baseline)], out=out) == 0
    assert "baselined" in out.getvalue()


def test_cli_missing_path_is_an_error(tmp_path):
    # A typo'd path must not read as "0 findings, exit 0" in CI.
    out = io.StringIO()
    code = main([str(tmp_path / "nope"), "--baseline",
                 str(tmp_path / "none")], out=out)
    assert code == 2
    assert "no such path" in out.getvalue()


def test_cli_malformed_baseline_is_a_clean_error(tmp_path):
    baseline = tmp_path / "replint.baseline"
    baseline.write_text('{"not": "a list"}', encoding="utf-8")
    out = io.StringIO()
    code = main([str(FIXTURES / "rpl001_good.py"),
                 "--baseline", str(baseline)], out=out)
    assert code == 2
    assert "JSON list of strings" in out.getvalue()


def test_repro_cli_lint_subcommand(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    assert "RPL003 wal-ordering" in capsys.readouterr().out
