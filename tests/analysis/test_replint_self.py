"""replint dogfood: the shipped tree must be clean, and the CLI entry
points must report honestly."""

import io
import json
import pathlib

from repro.analysis import analyze_paths, main, package_root
from repro.cli import main as cli_main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def test_shipped_tree_is_clean_with_empty_baseline():
    """The acceptance bar: zero non-baselined findings over src/repro."""
    report = analyze_paths([package_root()])
    assert report.files_scanned > 50
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.findings == [], f"replint found:\n{rendered}"
    assert report.ok


def test_benchmarks_and_examples_are_clean_too():
    """CI lints benchmarks/ and examples/ alongside src — keep them at
    the same bar (multi-root, exercising the relpath disambiguation)."""
    repo = pathlib.Path(__file__).resolve().parents[2]
    roots = [package_root(), repo / "benchmarks", repo / "examples"]
    assert all(root.is_dir() for root in roots)
    report = analyze_paths(roots)
    assert report.files_scanned > 100
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.findings == [], f"replint found:\n{rendered}"


def test_cli_exit_one_on_findings(tmp_path):
    out = io.StringIO()
    bad = FIXTURES / "rpl010_bad.py"
    code = main([str(bad), "--baseline", str(tmp_path / "none")], out=out)
    assert code == 1
    assert "RPL010" in out.getvalue()
    assert "hint:" in out.getvalue()


def test_cli_exit_zero_on_clean_input(tmp_path):
    out = io.StringIO()
    good = FIXTURES / "rpl010_good.py"
    code = main([str(good), "--baseline", str(tmp_path / "none")], out=out)
    assert code == 0
    assert "0 errors" in out.getvalue()


def test_cli_json_output(tmp_path):
    out = io.StringIO()
    main([str(FIXTURES / "rpl010_bad.py"), "--json",
          "--baseline", str(tmp_path / "none")], out=out)
    payload = json.loads(out.getvalue())
    assert payload["files_scanned"] == 1
    assert {f["rule"] for f in payload["findings"]} == {"RPL010"}


def test_cli_sarif_output(tmp_path):
    out = io.StringIO()
    code = main([str(FIXTURES / "rpl010_bad.py"), "--format", "sarif",
                 "--baseline", str(tmp_path / "none")], out=out)
    assert code == 1  # findings still fail the run in SARIF mode
    log = json.loads(out.getvalue())
    assert log["version"] == "2.1.0"
    (run,) = log["runs"]
    assert run["tool"]["driver"]["name"] == "replint"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"RPL010", "RPL011", "RPL012"} <= rule_ids
    results = run["results"]
    assert results and all(r["ruleId"] == "RPL010" for r in results)
    for result in results:
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("rpl010_bad.py")
        assert location["region"]["startLine"] >= 1
        assert "replintKey/v2" in result["partialFingerprints"]


def test_cli_graph_dumps(tmp_path):
    out = io.StringIO()
    assert main([str(FIXTURES / "rpl011_bad.py"), "--graph",
                 "latches"], out=out) == 0
    dot = out.getvalue()
    assert dot.startswith("digraph latchorder")
    assert '"Pool._latch" -> "Pager._latch"' in dot

    out = io.StringIO()
    assert main([str(FIXTURES / "rpl010_bad.py"), "--graph",
                 "calls"], out=out) == 0
    dot = out.getvalue()
    assert dot.startswith("digraph callgraph")
    assert "open_page" in dot


def test_cli_cache_dir_roundtrip(tmp_path):
    cache = tmp_path / "cache"
    cache.mkdir()
    bad = str(FIXTURES / "rpl010_bad.py")
    first = io.StringIO()
    assert main([bad, "--baseline", str(tmp_path / "none"),
                 "--cache-dir", str(cache)], out=first) == 1
    artifacts = list(cache.glob("replint-summaries-*.json"))
    assert len(artifacts) == 1
    # Second run loads the summary cache and reports identically.
    second = io.StringIO()
    assert main([bad, "--baseline", str(tmp_path / "none"),
                 "--cache-dir", str(cache)], out=second) == 1
    assert first.getvalue() == second.getvalue()
    assert list(cache.glob("replint-summaries-*.json")) == artifacts


def test_cli_list_rules():
    out = io.StringIO()
    assert main(["--list-rules"], out=out) == 0
    listed = out.getvalue()
    for rule in ("RPL000", "RPL002", "RPL003", "RPL004", "RPL005",
                 "RPL010", "RPL011", "RPL012", "RPL020", "RPL021",
                 "RPL022", "RPL023", "RPL030", "RPL031", "RPL032",
                 "RPL033"):
        assert rule in listed
    # RPL001 is retired into RPL010: no rule line may claim it.
    assert not any(line.startswith("RPL001 ")
                   for line in listed.splitlines())


def test_cli_write_baseline_then_accept(tmp_path):
    baseline = tmp_path / "replint.baseline"
    bad = str(FIXTURES / "rpl010_bad.py")
    out = io.StringIO()
    assert main([bad, "--baseline", str(baseline),
                 "--write-baseline"], out=out) == 0
    assert baseline.exists()
    # Written entries are v2: keyed on rule:file:symbol plus a content
    # hash of the enclosing function.
    entries = json.loads(baseline.read_text(encoding="utf-8"))
    assert entries and all("#" in entry for entry in entries)
    # With the findings accepted, the same input now passes.
    out = io.StringIO()
    assert main([bad, "--baseline", str(baseline)], out=out) == 0
    assert "baselined" in out.getvalue()


def test_cli_missing_path_is_an_error(tmp_path):
    # A typo'd path must not read as "0 findings, exit 0" in CI.
    out = io.StringIO()
    code = main([str(tmp_path / "nope"), "--baseline",
                 str(tmp_path / "none")], out=out)
    assert code == 2
    assert "no such path" in out.getvalue()


def test_cli_malformed_baseline_is_a_clean_error(tmp_path):
    baseline = tmp_path / "replint.baseline"
    baseline.write_text('{"not": "a list"}', encoding="utf-8")
    out = io.StringIO()
    code = main([str(FIXTURES / "rpl010_good.py"),
                 "--baseline", str(baseline)], out=out)
    assert code == 2
    assert "JSON list of strings" in out.getvalue()


def test_repro_cli_lint_subcommand(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    assert "RPL003 wal-ordering" in capsys.readouterr().out


def test_repro_cli_lint_explain(capsys):
    assert cli_main(["lint", "--explain", "RPL031"]) == 0
    text = capsys.readouterr().out
    assert text.startswith("RPL031 — check-then-act")
    assert "example:" in text
    assert "fix:" in text
