"""Dataflow engine behaviors that the fixture corpus exercises only
indirectly: branch refinement, strong closes on rebinding loops, the
try/finally unwind path, and escape tracking.

Each case is a tiny program run through ``analyze_source`` under a
pin-scoped path, so what is asserted is the *user-visible* consequence
of the engine decision (finding or no finding), not internal state.
"""

from repro.analysis import analyze_source

SCOPE = "sql/engine_fixture.py"


def rules(source: str):
    return sorted(f.rule for f in analyze_source(source, SCOPE))


def test_rebinding_loop_release_is_a_strong_close():
    # ``release(page); page = fetch(child)`` in a loop makes the name
    # point at many acquisition sites.  The release must close all of
    # them (strong update) or the loop head would report a phantom
    # leak on every iteration after the first.
    source = (
        "def descend(pool, page_id, steps):\n"
        "    page = pool.fetch(page_id)\n"
        "    try:\n"
        "        for child in steps:\n"
        "            pool.unpin(page)\n"
        "            page = pool.fetch(child)\n"
        "        return page.data[0]\n"
        "    finally:\n"
        "        pool.unpin(page)\n"
    )
    assert rules(source) == []


def test_none_guard_in_finally_is_understood():
    # Path-sensitive refinement: on the branch where ``page is None``
    # holds, the pin provably was not taken.
    source = (
        "def checksum(pool, page_id):\n"
        "    page = None\n"
        "    try:\n"
        "        page = pool.fetch(page_id)\n"
        "        return sum(page.data)\n"
        "    finally:\n"
        "        if page is not None:\n"
        "            pool.unpin(page)\n"
    )
    assert rules(source) == []


def test_truthiness_guard_is_understood():
    source = (
        "def checksum(pool, page_id):\n"
        "    page = None\n"
        "    try:\n"
        "        page = pool.fetch(page_id)\n"
        "        return sum(page.data)\n"
        "    finally:\n"
        "        if page:\n"
        "            pool.unpin(page)\n"
    )
    assert rules(source) == []


def test_release_only_outside_finally_leaks_on_the_exception_path():
    # The happy path releases, but an exception between fetch and unpin
    # escapes with the pin held: the unwind edge keeps the site OPEN.
    source = (
        "def copy_out(pool, page_id, sink):\n"
        "    page = pool.fetch(page_id)\n"
        "    sink.write(bytes(page.data))\n"
        "    pool.unpin(page)\n"
    )
    findings = analyze_source(source, SCOPE)
    assert [f.rule for f in findings] == ["RPL010"]
    assert "exception" in findings[0].message


def test_escape_into_a_container_transfers_ownership():
    # Appending the resource to a caller-visible container is an
    # ownership transfer, not a leak.
    source = (
        "def preload(pool, page_ids, out):\n"
        "    for pid in page_ids:\n"
        "        out.append(pool.fetch(pid))\n"
    )
    assert rules(source) == []


def test_storing_on_self_transfers_ownership():
    source = (
        "class Cursor:\n"
        "    def seek(self, pool, page_id):\n"
        "        self.page = pool.fetch(page_id)\n"
    )
    assert rules(source) == []


def test_with_statement_scopes_the_resource():
    # ``with`` transparency: the context manager owns the release.
    source = (
        "def scan(engine):\n"
        "    with engine.begin() as txn:\n"
        "        return txn.rows()\n"
    )
    assert rules(source) == []


def test_reassignment_without_release_still_leaks_the_first_pin():
    # Rebinding the only name for an OPEN site loses the pin.
    source = (
        "def double_fetch(pool, a, b):\n"
        "    page = pool.fetch(a)\n"
        "    page = pool.fetch(b)\n"
        "    pool.unpin(page)\n"
        "    return 0\n"
    )
    findings = analyze_source(source, SCOPE)
    assert [f.rule for f in findings] == ["RPL010"]
    assert findings[0].symbol == "double_fetch"


def test_interprocedural_release_helper_counts():
    # The release happens inside a helper whose summary says it
    # releases its parameter.
    source = (
        "def put_back(pool, page):\n"
        "    pool.unpin(page)\n"
        "\n"
        "\n"
        "def peek(pool, page_id):\n"
        "    page = pool.fetch(page_id)\n"
        "    try:\n"
        "        return page.data[0]\n"
        "    finally:\n"
        "        put_back(pool, page)\n"
    )
    assert rules(source) == []
