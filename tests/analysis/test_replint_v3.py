"""replint v3 gates: escape/durability layer over the real tree.

Four contracts beyond the fixture corpus:

* the ``--graph latches`` inventory reflects every latch the codebase
  assigns (not just latches that already participate in an ordering
  edge) — this is what keeps the RPL011 order graph honest as latches
  are added;
* the escape analysis really connects the parallel executor's thread
  root to the code workers run;
* seeded mutants — deleting the ``_ErrorBoard`` latch acquire in
  ``core/parallel.py``, replacing the checksummed block append in
  ``storage/logfile.py`` with a raw append — are each caught by the
  matching rule;
* the summary disk cache invalidates on an analysis-version bump and
  on payloads missing the v3 summary fields, not only on source digest.
"""

import json
import subprocess
import textwrap

import pytest

from repro.analysis.dataflow.program import ANALYSIS_VERSION, Program
from repro.analysis.driver import (
    _collect_contexts,
    analyze_paths,
    analyze_source,
    package_root,
    _rule_descriptions,
)
from repro.analysis.findings import AnalysisReport
from repro.analysis.sarif import render_sarif

SRC = package_root()


@pytest.fixture(scope="module")
def tree_program():
    contexts, findings, _ = _collect_contexts([SRC])
    assert findings == []
    return Program.from_contexts(contexts)


# -- latch-graph inventory ----------------------------------------------------

EXPECTED_LATCHES = {
    "BufferPool._latch",
    "ChaosController._latch",
    "DeviceStats._latch",
    "Pager._latch",
    "QueryScheduler._latch",
    "RQLServer._latch",
    "RetroManager._spt_latch",
    "SessionRegistry._latch",
    "SharedStore._latch",
    "SnapshotPageCache._latch",
    "VersionStore._latch",
    "WireServer._latch",
    "WorkerPool._latch",
    "WriteAheadLog._latch",
    "WriteGate._cond",
    "_ErrorBoard._latch",
}


def test_latch_graph_lists_every_assigned_latch(tree_program):
    dot = tree_program.latch_graph_dot()
    nodes = {
        line.strip().strip(';').strip('"')
        for line in dot.splitlines()
        if line.startswith('  "') and line.endswith('";')
    }
    missing = EXPECTED_LATCHES - nodes
    assert not missing, f"latch graph misses {sorted(missing)}"


def test_worker_region_reaches_the_executor_internals(tree_program):
    effects = tree_program.effects
    roots = {r.qualname for r in effects.thread_roots}
    assert "core/parallel.py::ParallelExecutor._run_partitions.body" \
        in roots
    region = effects.worker_region
    # Closure-parameter callees and closure-typed receivers are in.
    assert any(q.endswith(".eval_partition") for q in region)
    assert "core/parallel.py::_ErrorBoard.record" in region
    assert "core/parallel.py::ParallelExecutor._eval_qq" in region
    # The error board counts as shared; the per-worker payload handed
    # to each thread (annotated ``partial: _Partial``) does not.
    assert "core/parallel.py::_ErrorBoard" in effects.shared_classes
    assert all(not c.endswith("::_Partial")
               for c in effects.shared_classes)


# -- seeded mutants -----------------------------------------------------------


def _real_source(relpath: str) -> str:
    return (SRC / relpath).read_text(encoding="utf-8")


def test_parallel_module_is_clean_solo():
    assert analyze_source(_real_source("core/parallel.py"),
                          "core/parallel.py") == []


def test_dropped_error_board_latch_is_caught():
    source = _real_source("core/parallel.py")
    mutated = source.replace(
        "    def record(self, index: int, error: BaseException) -> None:\n"
        "        with self._latch:\n"
        "            if index < self._index:\n"
        "                self._index = index\n"
        "                self._error = error\n",
        "    def record(self, index: int, error: BaseException) -> None:\n"
        "        if index < self._index:\n"
        "            self._index = index\n"
        "            self._error = error\n",
    )
    assert mutated != source, "mutation target moved; update the test"
    findings = analyze_source(mutated, "core/parallel.py")
    assert findings, "dropping the error-board latch went unnoticed"
    assert {f.rule for f in findings} == {"RPL020"}
    assert all("_ErrorBoard" in f.message for f in findings)


def test_logfile_module_is_clean_solo():
    assert analyze_source(_real_source("storage/logfile.py"),
                          "storage/logfile.py") == []


def test_raw_block_append_is_caught():
    source = _real_source("storage/logfile.py")
    mutated = source.replace(
        "checksums.seal_block(bytes(self._buffer[:capacity]))",
        "bytes(self._buffer[:capacity])",
    )
    assert mutated != source, "mutation target moved; update the test"
    findings = analyze_source(mutated, "storage/logfile.py")
    assert findings, "raw append on the block log went unnoticed"
    assert {f.rule for f in findings} == {"RPL022"}
    assert all("BlockLogWriter._file" in f.message for f in findings)


# -- SARIF round-trip ---------------------------------------------------------

FIXTURE_SCOPES = (
    ("rpl020_bad.py", "core/parallel_fixture.py"),
    ("rpl021_bad.py", "core/executor_fixture.py"),
    ("rpl022_bad.py", "storage/logfile_fixture.py"),
)


def test_sarif_round_trip_covers_rules_regions_and_suppressions(tmp_path):
    import pathlib
    fixtures = pathlib.Path(__file__).parent / "fixtures"
    report = AnalysisReport()
    for name, scope in FIXTURE_SCOPES:
        source = (fixtures / name).read_text(encoding="utf-8")
        report.findings.extend(analyze_source(source, scope))
    report.findings.sort()
    # Move one finding into the baseline to exercise suppressions.
    report.baselined.append(report.findings.pop())
    rules_seen = {f.rule for f in report.findings} \
        | {f.rule for f in report.baselined}
    assert len(rules_seen) >= 3

    log = json.loads(render_sarif(report, _rule_descriptions()))
    assert log["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in log["$schema"]
    (run,) = log["runs"]
    declared = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert rules_seen <= declared
    results = run["results"]
    assert len(results) == len(report.findings) + len(report.baselined)
    for result in results:
        assert result["ruleId"] in declared
        (location,) = result["locations"]
        region = location["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        uri = location["physicalLocation"]["artifactLocation"]["uri"]
        assert uri.endswith("_fixture.py")
        assert result["partialFingerprints"]["replintKey/v2"]
    # Exactly the baselined tail carries an external suppression.
    suppressed = [r for r in results if "suppressions" in r]
    assert len(suppressed) == 1
    (suppression,) = suppressed[0]["suppressions"]
    assert suppression["kind"] == "external"
    assert suppression["justification"]


# -- summary-cache versioning -------------------------------------------------

CACHE_MODULE = textwrap.dedent(
    """
    def helper(x):
        return x + 1

    def caller(x):
        return helper(x)
    """
)


def _program(cache_dir):
    from repro.analysis.context import ModuleContext

    ctx = ModuleContext.from_source(CACHE_MODULE, "core/cachemod.py")
    return Program({"core/cachemod.py": ctx}, cache_dir=cache_dir)


def test_cache_round_trip_hits(tmp_path):
    first = _program(tmp_path)
    assert not first.cache_hit
    second = _program(tmp_path)
    assert second.cache_hit
    assert second.summaries.keys() == first.summaries.keys()


def test_cache_rejects_older_analysis_version(tmp_path):
    first = _program(tmp_path)
    path = first._cache_path(tmp_path)
    payload = json.loads(path.read_text())
    # A payload written by the previous analysis version at the SAME
    # digest path must be treated as a miss, not deserialized.
    payload["version"] = ANALYSIS_VERSION - 1
    path.write_text(json.dumps(payload))
    again = _program(tmp_path)
    assert not again.cache_hit


def test_cache_rejects_payload_missing_v3_fields(tmp_path):
    first = _program(tmp_path)
    path = first._cache_path(tmp_path)
    payload = json.loads(path.read_text())
    for entry in payload["summaries"]:
        # A PR-2-era summary: right version stamp (say, a hand-rolled
        # or corrupted artifact), missing the escape/effect fields.
        entry.pop("attr_writes", None)
        entry.pop("durable_sink_params", None)
    path.write_text(json.dumps(payload))
    again = _program(tmp_path)
    assert not again.cache_hit


def test_digest_folds_the_analysis_version(tmp_path):
    program = _program(tmp_path)
    assert f"v{ANALYSIS_VERSION}" != "v1"
    digest = program.digest()
    # Recompute by hand with the version constant to pin the contract.
    import hashlib

    hasher = hashlib.sha256()
    hasher.update(f"v{ANALYSIS_VERSION}".encode())
    for relpath in sorted(program.contexts):
        ctx = program.contexts[relpath]
        hasher.update(relpath.encode())
        hasher.update(b"\0")
        hasher.update("\n".join(ctx.lines).encode())
        hasher.update(b"\0")
    assert digest == hasher.hexdigest()


# -- lint --changed -----------------------------------------------------------

CHANGED_CLEAN = textwrap.dedent(
    """
    def stable(x):
        return x + 1
    """
)

CHANGED_DIRTY = textwrap.dedent(
    """
    import threading


    class Gate:
        def __init__(self):
            self._latch = threading.Lock()

        def stop(self, thread):
            with self._latch:
                thread.join()
    """
)


def _git(tmp_path, *args):
    subprocess.run(
        ["git", "-C", str(tmp_path), *args], check=True,
        capture_output=True,
        env={"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
             "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
             "HOME": str(tmp_path), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )


def test_changed_mode_scopes_to_the_git_diff(tmp_path):
    package = tmp_path / "core"
    package.mkdir()
    (package / "stable.py").write_text(CHANGED_CLEAN, encoding="utf-8")
    (package / "gate.py").write_text(CHANGED_CLEAN, encoding="utf-8")
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "seed")

    # Nothing changed: --changed analyzes (and reports) nothing.
    report = analyze_paths([tmp_path], changed_only=True,
                           repo_dir=tmp_path)
    assert report.findings == []

    # Dirty one file with an RPL021 case: only it is reported.
    (package / "gate.py").write_text(CHANGED_DIRTY, encoding="utf-8")
    report = analyze_paths([tmp_path], changed_only=True,
                           repo_dir=tmp_path)
    assert report.findings, "--changed missed a finding in a dirty file"
    assert {f.file for f in report.findings} == {"core/gate.py"}
    assert {f.rule for f in report.findings} == {"RPL021"}

    # The same tree without --changed reports the same findings (the
    # scoped run is a subset filter, not a different analysis).
    full = analyze_paths([tmp_path])
    assert {(f.rule, f.file, f.line) for f in report.findings} \
        <= {(f.rule, f.file, f.line) for f in full.findings}
