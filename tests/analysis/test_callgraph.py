"""Call-graph builder: dynamic dispatch must resolve where the types
are knowable and degrade to *conservatively unresolved* where not.

Resolution status is load-bearing for the program rules: RPL010 only
trusts acquisitions through RESOLVED edges, and an UNRESOLVED site is
the documented reason a cross-function fixture stops firing when its
callee is removed.  These tests pin the three dispatch shapes named in
the design: method override, aliased self attribute, and a function
stored in a dict.
"""

from repro.analysis.context import ModuleContext
from repro.analysis.dataflow.callgraph import (
    EXTERNAL,
    RESOLVED,
    UNRESOLVED,
    CallGraph,
)


def build(source: str, relpath: str = "core/fixture.py") -> CallGraph:
    ctx = ModuleContext.from_source(source, relpath)
    return CallGraph({ctx.relpath: ctx})


def sites_by_caller(graph: CallGraph):
    out = {}
    for site in graph.sites:
        out.setdefault(site.caller.qualname.split("::")[1], []).append(site)
    return out


OVERRIDE = """
class Base:
    def run(self):
        return 1


class Sub(Base):
    def run(self):
        return 2


def drive(worker: Base):
    return worker.run()
"""


def test_method_override_resolves_to_all_implementations():
    graph = build(OVERRIDE)
    (site,) = sites_by_caller(graph)["drive"]
    assert site.status == RESOLVED
    targets = {t.qualname.split("::")[1] for t in site.targets}
    # Dispatch through a Base-typed receiver may land on the override:
    # both implementations are edges, or RPL010 would miss a leak that
    # only the subclass introduces.
    assert targets == {"Base.run", "Sub.run"}


SELF_ATTR = """
class Pool:
    def fetch(self, pid):
        return pid


class Cache:
    def __init__(self, pool: Pool):
        self._pool = pool

    def read(self, pid):
        source = self._pool
        return source.fetch(pid)

    def helper(self, pid):
        return self.read(pid)
"""


def test_aliased_self_attribute_resolves_through_the_local_name():
    graph = build(SELF_ATTR)
    sites = sites_by_caller(graph)
    # ``source = self._pool`` then ``source.fetch(...)``: the local
    # alias carries the annotated attribute type.
    (fetch,) = sites["Cache.read"]
    assert fetch.status == RESOLVED
    assert [t.qualname.split("::")[1] for t in fetch.targets] == ["Pool.fetch"]
    # Plain self-dispatch resolves within the class.
    (read,) = sites["Cache.helper"]
    assert read.status == RESOLVED
    assert [t.qualname.split("::")[1] for t in read.targets] == ["Cache.read"]


ATTR_OF_ATTR = """
class Pool:
    def fetch(self, pid):
        return pid


class Cache:
    def __init__(self, pool: Pool):
        self._pool = pool
        self.alias = self._pool

    def read(self, pid):
        return self.alias.fetch(pid)
"""


def test_self_attribute_aliasing_another_attribute_is_unresolved():
    # ``self.alias = self._pool`` is one indirection beyond what the
    # builder tracks: the site must degrade to UNRESOLVED (with a
    # reason), never silently to an empty RESOLVED edge set.
    graph = build(ATTR_OF_ATTR)
    (site,) = sites_by_caller(graph)["Cache.read"]
    assert site.status == UNRESOLVED
    assert site.targets == []
    assert site.reason
    assert site in graph.unresolved_sites()


DICT_DISPATCH = """
def handle_a(x):
    return x


def handle_b(x):
    return -x


def dispatch(key, x):
    handlers = {"a": handle_a, "b": handle_b}
    return handlers[key](x)
"""


def test_function_stored_in_a_dict_is_conservatively_unresolved():
    graph = build(DICT_DISPATCH)
    (site,) = sites_by_caller(graph)["dispatch"]
    assert site.status == UNRESOLVED
    assert site.targets == []
    assert "computed" in site.reason


def test_stdlib_calls_are_external_not_unresolved():
    graph = build(
        "import json\n"
        "\n"
        "\n"
        "def encode(x):\n"
        "    return json.dumps(x)\n"
    )
    (site,) = sites_by_caller(graph)["encode"]
    assert site.status == EXTERNAL
    assert site not in graph.unresolved_sites()


def test_edges_and_callees_agree():
    graph = build(SELF_ATTR)
    edges = set(graph.edges())
    assert ("core/fixture.py::Cache.helper",
            "core/fixture.py::Cache.read") in edges
    assert graph.callees("core/fixture.py::Cache.read") == {
        "core/fixture.py::Pool.fetch"
    }


def test_cross_module_resolution():
    pool = ModuleContext.from_source(
        "class Pool:\n"
        "    def fetch(self, pid):\n"
        "        return pid\n",
        "storage/pool_fixture.py")
    user = ModuleContext.from_source(
        "from repro.storage.pool_fixture import Pool\n"
        "\n"
        "\n"
        "def peek(pool: Pool, pid):\n"
        "    return pool.fetch(pid)\n",
        "sql/user_fixture.py")
    graph = CallGraph({pool.relpath: pool, user.relpath: user})
    (site,) = [s for s in graph.sites
               if s.caller.qualname.endswith("peek")]
    assert site.status == RESOLVED
    assert [t.qualname for t in site.targets] == [
        "storage/pool_fixture.py::Pool.fetch"
    ]
