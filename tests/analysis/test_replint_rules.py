"""Fixture-corpus contract: every rule fires on its known-bad fixture
and stays silent on the known-good one.

The fixtures under ``fixtures/`` are analyzed as source text with an
explicit package-relative path, so scoped rules (RPL003 in ``storage/``,
RPL005 in ``core/``/``retro/``) see the layer they police.
"""

import pathlib

import pytest

from repro.analysis import analyze_source

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

#: rule -> the package-relative path its fixtures are analyzed under
SCOPES = {
    "RPL001": "sql/pins_fixture.py",
    "RPL002": "sql/errors_fixture.py",
    "RPL003": "storage/engine_fixture.py",
    "RPL004": "core/aggregates_fixture.py",
    "RPL005": "core/retroquery_fixture.py",
}


def run_fixture(rule: str, flavor: str):
    source = (FIXTURES / f"{rule.lower()}_{flavor}.py").read_text(
        encoding="utf-8")
    return analyze_source(source, SCOPES[rule])


@pytest.mark.parametrize("rule", sorted(SCOPES))
def test_bad_fixture_fires(rule):
    findings = run_fixture(rule, "bad")
    assert findings, f"{rule} known-bad fixture produced no findings"
    # And nothing else fires: each fixture isolates exactly one rule.
    assert {f.rule for f in findings} == {rule}


@pytest.mark.parametrize("rule", sorted(SCOPES))
def test_good_fixture_is_clean(rule):
    assert run_fixture(rule, "good") == []


def test_pin_leak_names_the_variable():
    messages = [f.message for f in run_fixture("RPL001", "bad")]
    assert any("'page'" in m for m in messages)
    assert any("pin_count" in m for m in messages)


def test_swallowed_exception_is_called_out():
    messages = [f.message for f in run_fixture("RPL002", "bad")]
    assert any("swallows" in m for m in messages)
    assert any("ValueError" in m for m in messages)


def test_wal_findings_anchor_to_the_flush_calls():
    findings = run_fixture("RPL003", "bad")
    assert {f.line for f in findings} == {12, 13}
    assert all(f.symbol == "Engine.commit" for f in findings)


def test_monoid_findings_cover_every_leg():
    messages = " | ".join(f.message for f in run_fixture("RPL004", "bad"))
    assert "does not implement merge()" in messages      # stub in SumState
    assert "does not implement result()" in messages     # missing in MaxState
    assert "name attribute is 'maximum'" in messages     # key/name mismatch
    assert "'avg' has no factory" in messages            # unregistered monoid
    assert "'max' is not handled in binary_op()" in messages
    assert "'avg' is not handled in identity_element()" in messages


def test_snapshot_literals_found_in_both_forms():
    findings = run_fixture("RPL005", "bad")
    assert len(findings) == 2
    assert {f.message for f in findings} == {
        "raw int literal 3 passed as as_of",
        "raw int literal 7 passed as snapshot_id",
    }


def test_scoped_rules_stay_quiet_outside_their_layer():
    # The same bad sources are fine when they live outside the scoped
    # layers: workloads/ may flush without a WAL and use literal ids.
    for rule in ("RPL003", "RPL005"):
        source = (FIXTURES / f"{rule.lower()}_bad.py").read_text(
            encoding="utf-8")
        assert analyze_source(source, "workloads/fixture.py") == []
