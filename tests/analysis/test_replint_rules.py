"""Fixture-corpus contract: every rule fires on its known-bad fixture
and stays silent on the known-good one.

The fixtures under ``fixtures/`` are analyzed as source text with an
explicit package-relative path, so scoped rules (RPL003 in ``storage/``,
RPL005 in ``core/``/``retro/``) see the layer they police.  The RPL010–
RPL012 fixtures contain cross-function cases whose evidence spans a
caller and a callee; the ``*_caller_only`` tests prove that the flagged
function is innocent-looking on its own — the finding exists only
because the dataflow engine sees the callee too.
"""

import pathlib

import pytest

from repro.analysis import analyze_source

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

#: rule -> the package-relative path its fixtures are analyzed under
SCOPES = {
    "RPL002": "sql/errors_fixture.py",
    "RPL003": "storage/engine_fixture.py",
    "RPL004": "core/aggregates_fixture.py",
    "RPL005": "core/retroquery_fixture.py",
    "RPL010": "sql/pins_fixture.py",
    "RPL011": "storage/latch_fixture.py",
    "RPL012": "retro/taint_fixture.py",
    "RPL020": "core/parallel_fixture.py",
    "RPL021": "core/executor_fixture.py",
    "RPL022": "storage/logfile_fixture.py",
    "RPL023": "core/merges_fixture.py",
}


def run_fixture(rule: str, flavor: str):
    source = (FIXTURES / f"{rule.lower()}_{flavor}.py").read_text(
        encoding="utf-8")
    return analyze_source(source, SCOPES[rule])


@pytest.mark.parametrize("rule", sorted(SCOPES))
def test_bad_fixture_fires(rule):
    findings = run_fixture(rule, "bad")
    assert findings, f"{rule} known-bad fixture produced no findings"
    # And nothing else fires: each fixture isolates exactly one rule.
    assert {f.rule for f in findings} == {rule}


@pytest.mark.parametrize("rule", sorted(SCOPES))
def test_good_fixture_is_clean(rule):
    assert run_fixture(rule, "good") == []


def test_swallowed_exception_is_called_out():
    messages = [f.message for f in run_fixture("RPL002", "bad")]
    assert any("swallows" in m for m in messages)
    assert any("ValueError" in m for m in messages)


def test_wal_findings_anchor_to_the_flush_calls():
    findings = run_fixture("RPL003", "bad")
    assert {f.line for f in findings} == {12, 13}
    assert all(f.symbol == "Engine.commit" for f in findings)


def test_monoid_findings_cover_every_leg():
    messages = " | ".join(f.message for f in run_fixture("RPL004", "bad"))
    assert "does not implement merge()" in messages      # stub in SumState
    assert "does not implement result()" in messages     # missing in MaxState
    assert "name attribute is 'maximum'" in messages     # key/name mismatch
    assert "'avg' has no factory" in messages            # unregistered monoid
    assert "'max' is not handled in binary_op()" in messages
    assert "'avg' is not handled in identity_element()" in messages


def test_snapshot_literals_found_in_both_forms():
    findings = run_fixture("RPL005", "bad")
    assert len(findings) == 2
    assert {f.message for f in findings} == {
        "raw int literal 3 passed as as_of",
        "raw int literal 7 passed as snapshot_id",
    }


def test_scoped_rules_stay_quiet_outside_their_layer():
    # The same bad sources are fine when they live outside the scoped
    # layers: workloads/ may flush without a WAL and use literal ids.
    for rule in ("RPL003", "RPL005"):
        source = (FIXTURES / f"{rule.lower()}_bad.py").read_text(
            encoding="utf-8")
        assert analyze_source(source, "workloads/fixture.py") == []


# -- RPL010: resource lifecycle ---------------------------------------------


def test_pin_leak_messages_name_the_resource_and_paths():
    findings = run_fixture("RPL010", "bad")
    by_symbol = {f.symbol: f.message for f in findings}
    assert "pinned page" in by_symbol["peek_header"]
    assert "normal return" in by_symbol["peek_header"]
    assert "pin_count" in by_symbol["steal_pin"]


def test_interprocedural_leak_is_flagged_in_the_caller():
    findings = run_fixture("RPL010", "bad")
    symbols = {f.symbol for f in findings}
    assert "sum_header" in symbols      # caller leaks the callee's pin
    assert "open_page" not in symbols   # transferring ownership is fine


RPL010_CALLER_ONLY = (
    "def sum_header(pool, page_id):\n"
    "    page = open_page(pool, page_id)\n"
    "    return page.data[0]\n"
)


def test_rpl010_cross_function_case_needs_the_callee():
    # The flagged caller alone produces nothing: the acquisition is
    # only visible through open_page's summary.  This is the case an
    # intraprocedural checker provably cannot catch.
    assert analyze_source(RPL010_CALLER_ONLY, SCOPES["RPL010"]) == []
    full = run_fixture("RPL010", "bad")
    assert any(f.symbol == "sum_header" for f in full)


# -- RPL011: latch ordering --------------------------------------------------


def test_latch_cycle_names_both_latches():
    findings = run_fixture("RPL011", "bad")
    assert len(findings) == 1
    (finding,) = findings
    assert "Pool._latch" in finding.message
    assert "Pager._latch" in finding.message
    assert "deadlock" in finding.message
    # The witness edges (function:line) ride along in the hint.
    assert "Pool.evict" in finding.hint
    assert "Pager.checkpoint" in finding.hint


RPL011_CALLER_ONLY = (
    "import threading\n"
    "\n"
    "\n"
    "class Pool:\n"
    "    def __init__(self):\n"
    "        self._latch = threading.Lock()\n"
    "\n"
    "    def evict(self, pager):\n"
    "        with self._latch:\n"
    "            pager.sync_meta()\n"
)


def test_rpl011_cross_function_case_needs_the_callee():
    # One class alone holds a single latch and calls an unknown method:
    # no ordering edge exists without the callee's acquires_locks
    # summary, so nothing can fire intraprocedurally.
    assert analyze_source(RPL011_CALLER_ONLY, SCOPES["RPL011"]) == []
    assert run_fixture("RPL011", "bad")


# -- RPL012: snapshot-epoch taint --------------------------------------------


def test_taint_findings_name_source_and_sink():
    findings = run_fixture("RPL012", "bad")
    by_symbol = {f.symbol: f.message for f in findings}
    assert "snapshot" in by_symbol["backfill"]
    assert "put_raw" in by_symbol["clobber"]


RPL012_CALLER_ONLY = (
    "def backfill(engine, pager, snapshot_id, ctx):\n"
    "    snap = engine.snapshot_source(snapshot_id, ctx)\n"
    "    page = snap.fetch(7)\n"
    "    copy_into_current(pager, page)\n"
)


def test_rpl012_cross_function_case_needs_the_callee():
    # backfill names no mutation sink itself; the flow is only visible
    # through copy_into_current's sink-parameter summary.
    assert analyze_source(RPL012_CALLER_ONLY, SCOPES["RPL012"]) == []
    full = run_fixture("RPL012", "bad")
    assert any(f.symbol == "backfill" for f in full)


# -- RPL020: worker-escape races ----------------------------------------------


def test_worker_escape_names_class_attr_and_guard():
    findings = run_fixture("RPL020", "bad")
    assert len(findings) == 1
    (finding,) = findings
    assert finding.symbol == "Counters.note_failed"
    assert "Counters.failed" in finding.message
    assert "Counters._latch" in finding.hint
    assert "worker thread roots" in finding.hint


RPL020_WRITER_ONLY = (
    "import threading\n"
    "\n"
    "\n"
    "class Counters:\n"
    "    def __init__(self):\n"
    "        self._latch = threading.Lock()\n"
    "        self.done = 0\n"
    "        self.failed = 0\n"
    "\n"
    "    def note_done(self):\n"
    "        with self._latch:\n"
    "            self.done += 1\n"
    "\n"
    "    def note_failed(self):\n"
    "        self.failed += 1\n"
)


def _run_scheduler_fixture(flavor):
    source = (FIXTURES / f"rpl020_scheduler_{flavor}.py").read_text(
        encoding="utf-8")
    return analyze_source(source, "server/scheduler_fixture.py")


def test_scheduler_admission_queue_race_fires():
    # The server-scheduler shape: tickets admitted under the latch but
    # retired without it from dispatcher threads.
    findings = _run_scheduler_fixture("bad")
    assert {f.rule for f in findings} == {"RPL020"}
    assert any(f.symbol == "AdmissionQueue.retire"
               and "pending" in f.message for f in findings)
    assert all(f.symbol != "AdmissionQueue.admit" for f in findings)


def test_scheduler_admission_queue_clean_when_latched():
    assert _run_scheduler_fixture("good") == []


def test_rpl020_cross_function_case_needs_the_thread_root():
    # The unlatched writer alone is innocent: without the spawner the
    # escape analysis has no thread root, so Counters never becomes
    # worker-shared.  The finding exists only because the worker-region
    # closure connects Thread(target=body) to note_failed.
    assert analyze_source(RPL020_WRITER_ONLY, SCOPES["RPL020"]) == []
    assert run_fixture("RPL020", "bad")


# -- RPL021: blocking under latch ---------------------------------------------


def test_blocking_findings_split_local_and_entry_context():
    findings = run_fixture("RPL021", "bad")
    by_symbol = {f.symbol: f for f in findings}
    # stop() takes the latch in the same frame.
    assert "held here" in by_symbol["Sweeper.stop"].message
    # drain() holds nothing itself: the latch arrives with the workers.
    assert "held by a caller" in by_symbol["Sweeper.drain"].message
    assert "Sweeper._latch" in by_symbol["Sweeper.drain"].message


RPL021_CALLEE_ONLY = (
    "import threading\n"
    "\n"
    "\n"
    "class Sweeper:\n"
    "    def __init__(self):\n"
    "        self._latch = threading.Lock()\n"
    "        self.cancel = threading.Event()\n"
    "        self.pending = []\n"
    "\n"
    "    def drain(self):\n"
    "        while not self.cancel.is_set():\n"
    "            if not self.pending:\n"
    "                return\n"
)


def test_rpl021_cross_function_case_needs_the_entry_context():
    # drain holds no latch of its own; only the worker entry context
    # (body calls it under self._latch) makes the cancel poll a risk.
    assert analyze_source(RPL021_CALLEE_ONLY, SCOPES["RPL021"]) == []
    full = run_fixture("RPL021", "bad")
    assert any(f.symbol == "Sweeper.drain" for f in full)


# -- RPL022: durable-surface writes ------------------------------------------


def test_durable_findings_name_surface_and_api():
    findings = run_fixture("RPL022", "bad")
    by_symbol = {f.symbol: f for f in findings}
    assert "raw append" in by_symbol["BlockLogWriter.flush_header"].message
    assert "raw seek" in by_symbol["BlockLogWriter.rewind"].message
    assert "BlockLogWriter._file" \
        in by_symbol["BlockLogWriter.flush_header"].message
    assert all("seal_block" in f.hint for f in findings)


RPL022_CALLER_ONLY = (
    "def write_trailer(writer):\n"
    "    blob = b\"end-of-log\"\n"
    "    writer.flush(blob)\n"
)


def test_rpl022_cross_function_case_needs_the_sink_summary():
    # The caller alone pushes bytes into an unknown flush(); only the
    # durable-sink-parameter summary of BlockLogWriter.flush makes the
    # unsealed local a finding — and it lands in the caller.
    assert analyze_source(RPL022_CALLER_ONLY, SCOPES["RPL022"]) == []
    full = run_fixture("RPL022", "bad")
    assert any(f.symbol == "write_trailer" for f in full)


# -- RPL023: merge purity -----------------------------------------------------


def test_merge_purity_covers_inputs_and_side_effects():
    findings = run_fixture("RPL023", "bad")
    by_symbol = {f.symbol: f.message for f in findings}
    assert "mutates its input 'other'" \
        in by_symbol["CrossSnapshotAggregate.merge"]
    assert "side effect" in by_symbol["CountingAggregate.merge"]
    assert "Session" in by_symbol["CountingAggregate.merge"]


RPL023_CALLER_ONLY = (
    "class CrossSnapshotAggregate:\n"
    "    def __init__(self):\n"
    "        self.total = 0\n"
    "\n"
    "\n"
    "class CountingAggregate(CrossSnapshotAggregate):\n"
    "    def merge(self, other):\n"
    "        bump(self.session)\n"
    "        self.total += other.total\n"
    "        return self\n"
)


def test_rpl023_cross_function_case_needs_the_callee():
    # merge itself only folds into self; the session mutation is only
    # visible through bump's translated mutates-params summary.
    assert analyze_source(RPL023_CALLER_ONLY, SCOPES["RPL023"]) == []
    full = run_fixture("RPL023", "bad")
    assert any(f.symbol == "CountingAggregate.merge" for f in full)
