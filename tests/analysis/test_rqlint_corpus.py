"""Golden verdict corpus: every entry's certified merge class and rule
set must match what is recorded — the acceptance bar for 'zero false
mergeable verdicts'."""

import pytest

from repro.analysis.query import SERIAL_ONLY
from repro.workloads.corpus import CORPUS, certify_entry, corpus_schema


@pytest.fixture(scope="module")
def schema():
    return corpus_schema()


def by_name(name):
    matches = [e for e in CORPUS if e.name == name]
    assert len(matches) == 1
    return matches[0]


class TestGoldenVerdicts:
    @pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
    def test_class_matches(self, entry, schema):
        certificate = certify_entry(entry, schema=schema)
        assert certificate.merge_class == entry.expected_class

    @pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
    def test_rules_match(self, entry, schema):
        certificate = certify_entry(entry, schema=schema)
        fired = sorted({f.rule for f in certificate.findings})
        assert fired == sorted(entry.expected_rules)

    @pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
    def test_findings_anchor_to_entry(self, entry, schema):
        for finding in certify_entry(entry, schema=schema).findings:
            assert finding.file == f"<corpus:{entry.name}>"
            assert finding.symbol == entry.name


class TestSeverityDiscipline:
    """serial-only must come with an error explaining the refusal;
    mergeable entries carry warnings at most (one recorded hygiene
    exception)."""

    @pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
    def test_serial_only_iff_errors_or_hygiene(self, entry, schema):
        certificate = certify_entry(entry, schema=schema)
        errors = [f for f in certificate.findings
                  if f.severity == "error"]
        if certificate.merge_class == SERIAL_ONLY:
            assert errors, entry.name
            assert not certificate.mergeable
        elif errors:
            # RQL100 is hygiene, not a refusal: the one corpus entry
            # exercising it stays in its mechanism's class.
            assert {f.rule for f in errors} == {"RQL100"}
            assert entry.name == "loggedin-asof-qq"

    def test_corpus_covers_every_rule(self):
        covered = set()
        for entry in CORPUS:
            covered.update(entry.expected_rules)
        assert covered == {f"RQL10{i}" for i in range(7)}

    def test_corpus_covers_every_merge_class(self):
        classes = {e.expected_class for e in CORPUS}
        assert classes == {"concat", "monoid", "stored-row",
                           "interval-stitch", "serial-only"}

    def test_runnable_flags(self):
        # Only the AS OF entry is unexecutable (parse-level rejection).
        assert [e.name for e in CORPUS if not e.runnable] \
            == ["loggedin-asof-qq"]

    def test_names_are_unique(self):
        names = [e.name for e in CORPUS]
        assert len(names) == len(set(names))
