"""planlint: per-rule plan certification units, the golden-plan corpus
gate, doctored-plan certification, and the CLI/SARIF surface."""

import io
import json

import pytest

from repro.analysis import main as lint_main
from repro.analysis.findings import ERROR, WARNING
from repro.analysis.query import QUERY_REGISTRY, certify_plan
from repro.analysis.query.driver import run_query_lint
from repro.analysis.query.planlint import (
    SCALE_THRESHOLD,
    plan_corpus_findings,
)
from repro.sql.planner import plan_select_static
from repro.sql.parser import parse_sql
from repro.sql.semantic import StaticSchema
from repro.sql.stats import ColumnStats, DeclaredStats, TableStats
from repro.workloads.plans import (
    PLAN_CORPUS,
    PlanEntry,
    certify_plan_entry,
    plan_schema,
)

DDL = """
CREATE TABLE t (k INTEGER PRIMARY KEY, grp TEXT, n INTEGER);
CREATE TABLE u (k INTEGER, label TEXT);
CREATE INDEX t_grp ON t (grp);
"""


@pytest.fixture
def schema():
    return StaticSchema.from_ddl(DDL)


def table_stats(name="t", snapshot=1, rows=2000, pages=40, **columns):
    built = {
        column: ColumnStats(column=column, distinct=distinct,
                            min_value=lo, max_value=hi)
        for column, (distinct, lo, hi) in columns.items()
    }
    return TableStats(table=name, snapshot_id=snapshot, row_count=rows,
                      page_count=pages, columns=built)


def t_stats(rows=2000, pages=40, snapshot=1):
    return table_stats(
        "t", snapshot=snapshot, rows=rows, pages=pages,
        k=(rows, 1, rows), grp=(5, None, None), n=(100, 0, 100),
    )


def rules_of(certificate):
    return sorted({f.rule for f in certificate.findings})


class TestCertifyPlanSurface:
    def test_clean_certificate(self, schema):
        cert = certify_plan("SELECT n FROM t WHERE k = 7", schema,
                            DeclaredStats([t_stats()]))
        assert cert.plan is not None
        assert cert.rendering[0] == "SEARCH t USING INDEX __pk_t (=)"
        assert cert.findings == []
        assert cert.rules == ()

    def test_parse_error_is_hygiene(self, schema):
        cert = certify_plan("SELEC oops", schema)
        assert rules_of(cert) == ["RQL100"]
        assert cert.plan is None

    def test_non_select_is_hygiene(self, schema):
        cert = certify_plan("DELETE FROM t", schema)
        assert rules_of(cert) == ["RQL100"]

    def test_unknown_table_is_hygiene(self, schema):
        cert = certify_plan("SELECT * FROM nope", schema)
        assert rules_of(cert) == ["RQL100"]

    def test_findings_anchor(self, schema):
        cert = certify_plan("SELECT * FROM t", schema,
                            file="<plans:x>", line=3, symbol="x")
        assert all(f.file == "<plans:x>" and f.line == 3
                   and f.symbol == "x" for f in cert.findings)


class TestGoldenDrift:
    GOLDEN = (
        "SEARCH t USING INDEX __pk_t (=)",
        "COST: t est. rows 1 est. pages 1 cost 2.01 "
        "via index __pk_t (=)",
    )

    def test_matching_golden_is_clean(self, schema):
        cert = certify_plan("SELECT n FROM t WHERE k = 7", schema,
                            DeclaredStats([t_stats()]),
                            golden=self.GOLDEN)
        assert "RQL110" not in rules_of(cert)

    def test_line_drift(self, schema):
        doctored = (self.GOLDEN[0].replace("SEARCH", "SCAN"),
                    self.GOLDEN[1])
        cert = certify_plan("SELECT n FROM t WHERE k = 7", schema,
                            DeclaredStats([t_stats()]),
                            golden=doctored)
        drift = [f for f in cert.findings if f.rule == "RQL110"]
        assert len(drift) == 1
        assert drift[0].severity == ERROR
        assert "drift at line 1" in drift[0].message

    def test_length_drift(self, schema):
        cert = certify_plan("SELECT n FROM t WHERE k = 7", schema,
                            DeclaredStats([t_stats()]),
                            golden=self.GOLDEN + ("extra",))
        drift = [f for f in cert.findings if f.rule == "RQL110"]
        assert len(drift) == 1
        assert "3 lines" in drift[0].message or "lines" in drift[0].message


class TestUnindexedAtScale:
    def test_fires_at_scale(self, schema):
        cert = certify_plan("SELECT k FROM t WHERE n > 5", schema,
                            DeclaredStats([t_stats(rows=SCALE_THRESHOLD)]))
        hits = [f for f in cert.findings if f.rule == "RQL111"]
        assert len(hits) == 1
        assert hits[0].severity == WARNING
        assert "n > 5" in hits[0].message
        assert "CREATE INDEX" in hits[0].hint

    def test_quiet_below_threshold(self, schema):
        cert = certify_plan(
            "SELECT k FROM t WHERE n > 5", schema,
            DeclaredStats([t_stats(rows=SCALE_THRESHOLD - 1, pages=2)]))
        assert "RQL111" not in rules_of(cert)

    def test_quiet_without_stats(self, schema):
        cert = certify_plan("SELECT k FROM t WHERE n > 5", schema)
        assert "RQL111" not in rules_of(cert)

    def test_quiet_when_indexed(self, schema):
        cert = certify_plan("SELECT k FROM t WHERE grp = 'a'", schema,
                            DeclaredStats([t_stats()]))
        assert "RQL111" not in rules_of(cert)

    def test_one_finding_per_candidate(self, schema):
        cert = certify_plan(
            "SELECT k FROM t WHERE n > 5 AND n < 90", schema,
            DeclaredStats([t_stats()]))
        assert len([f for f in cert.findings
                    if f.rule == "RQL111"]) == 1


class TestStatistics:
    def test_missing_stats(self, schema):
        cert = certify_plan("SELECT * FROM t", schema)
        hits = [f for f in cert.findings if f.rule == "RQL112"]
        assert len(hits) == 1
        assert hits[0].severity == WARNING
        assert "no statistics" in hits[0].message
        assert "ANALYZE t" in hits[0].hint

    def test_missing_stats_once_per_table(self, schema):
        cert = certify_plan("SELECT * FROM t a, t b", schema)
        assert len([f for f in cert.findings
                    if f.rule == "RQL112"]) == 1

    def test_stale_stats(self, schema):
        cert = certify_plan("SELECT * FROM t", schema,
                            DeclaredStats([t_stats(snapshot=2)]),
                            latest_snapshot=5)
        hits = [f for f in cert.findings if f.rule == "RQL112"]
        assert len(hits) == 1
        assert "stale" in hits[0].message
        assert "snapshot 2" in hits[0].message

    def test_fresh_stats_are_quiet(self, schema):
        cert = certify_plan("SELECT * FROM t", schema,
                            DeclaredStats([t_stats(snapshot=5)]),
                            latest_snapshot=5)
        assert "RQL112" not in rules_of(cert)


def static_plan(sql, schema, stats=None):
    statements = parse_sql(sql)
    return plan_select_static(
        statements[0], schema,
        stats if stats is not None else DeclaredStats())


class TestPushdownMissed:
    def test_honest_plan_is_quiet(self, schema):
        cert = certify_plan("SELECT k FROM t WHERE n > 5", schema)
        assert "RQL113" not in rules_of(cert)

    def test_doctored_residual_fires(self, schema):
        sql = "SELECT k FROM t WHERE n > 5"
        plan = static_plan(sql, schema)
        assert plan.steps[0].pushed, "planner should push n > 5"
        plan.residual.append(plan.steps[0].pushed.pop())
        cert = certify_plan(sql, schema, plan=plan)
        hits = [f for f in cert.findings if f.rule == "RQL113"]
        assert len(hits) == 1
        assert hits[0].severity == ERROR
        assert "n > 5" in hits[0].message

    def test_multi_table_residual_is_legitimate(self, schema):
        # A conjunct spanning both tables can only run once both rows
        # are assembled; finding it in the residual is not a missed
        # pushdown.
        sql = "SELECT t.k FROM t, u WHERE t.n < u.k"
        plan = static_plan(sql, schema)
        pushed = plan.steps[-1].pushed
        assert pushed, "cross-table conjunct lands on the join prefix"
        plan.residual.append(pushed.pop())
        cert = certify_plan(sql, schema, plan=plan)
        assert "RQL113" not in rules_of(cert)


class TestCostModelSanity:
    def test_honest_stats_are_quiet(self, schema):
        cert = certify_plan("SELECT k FROM t WHERE n > 5", schema,
                            DeclaredStats([t_stats()]))
        assert "RQL114" not in rules_of(cert)

    def test_zero_selectivity_index_path(self, schema):
        # 10 rows cannot fill 10000 pages: the seq scan costs out
        # absurdly high, so the planner honestly picks an index probe
        # for a filter-nothing range.
        corrupt = table_stats("t", rows=10, pages=10000, k=(10, 0, 10))
        cert = certify_plan(
            "SELECT n FROM t WHERE k BETWEEN 0 AND 10", schema,
            DeclaredStats([corrupt]))
        hits = [f for f in cert.findings if f.rule == "RQL114"]
        assert len(hits) == 1
        assert hits[0].severity == ERROR
        assert "filters" in hits[0].message

    def test_negative_estimate_from_reversed_domain(self, schema):
        # A reversed min/max domain makes the interpolated selectivity
        # negative; the raw (unclamped) estimate surfaces it.
        corrupt = table_stats("t", rows=10, pages=10000, k=(10, 10, 0))
        cert = certify_plan(
            "SELECT n FROM t WHERE k BETWEEN 2 AND 8", schema,
            DeclaredStats([corrupt]))
        assert "RQL114" in rules_of(cert)

    def test_doctored_overestimate_fires(self, schema):
        sql = "SELECT k FROM t WHERE n > 5"
        stats = DeclaredStats([t_stats()])
        plan = static_plan(sql, schema, stats)
        plan.steps[0].est_rows = t_stats().row_count * 2.0
        cert = certify_plan(sql, schema, stats, plan=plan)
        hits = [f for f in cert.findings if f.rule == "RQL114"]
        assert len(hits) == 1
        assert "cardinality" in hits[0].message \
            or "holds" in hits[0].message


class TestPlanCorpus:
    @pytest.fixture(scope="class")
    def corpus_schema(self):
        return plan_schema()

    @pytest.mark.parametrize("entry", PLAN_CORPUS, ids=lambda e: e.name)
    def test_rendering_matches_golden(self, entry, corpus_schema):
        cert = certify_plan_entry(entry, schema=corpus_schema)
        assert tuple(cert.rendering) == entry.golden

    @pytest.mark.parametrize("entry", PLAN_CORPUS, ids=lambda e: e.name)
    def test_rules_match(self, entry, corpus_schema):
        cert = certify_plan_entry(entry, schema=corpus_schema)
        got = tuple(sorted({f.rule for f in cert.findings
                            if f.rule != "RQL110"}))
        assert got == tuple(sorted(entry.expected_rules))
        assert "RQL110" not in {f.rule for f in cert.findings}

    def test_names_are_unique(self):
        names = [e.name for e in PLAN_CORPUS]
        assert len(names) == len(set(names))

    def test_corpus_covers_statistics_rules(self):
        covered = {rule for e in PLAN_CORPUS for rule in e.expected_rules}
        assert {"RQL111", "RQL112", "RQL114"} <= covered

    def test_every_entry_pins_a_golden(self):
        assert all(e.golden for e in PLAN_CORPUS)

    def test_gate_is_clean(self):
        findings, entries = plan_corpus_findings()
        assert entries == len(PLAN_CORPUS)
        assert findings == []

    def test_gate_reports_drift(self, monkeypatch):
        import repro.workloads.plans as plans

        doctored = list(PLAN_CORPUS)
        doctored[0] = PlanEntry(
            name=doctored[0].name, sql=doctored[0].sql,
            stats=doctored[0].stats,
            latest_snapshot=doctored[0].latest_snapshot,
            golden=("SCAN nothing-like-this",),
            expected_rules=doctored[0].expected_rules,
        )
        monkeypatch.setattr(plans, "PLAN_CORPUS", tuple(doctored))
        findings, _ = plan_corpus_findings()
        assert any(f.rule == "RQL110" for f in findings)
        assert all(f.severity == ERROR for f in findings
                   if f.rule == "RQL110")

    def test_gate_reports_rule_set_drift(self, monkeypatch):
        import repro.workloads.plans as plans

        entry = PLAN_CORPUS[0]
        doctored = (PlanEntry(
            name=entry.name, sql=entry.sql, stats=entry.stats,
            latest_snapshot=entry.latest_snapshot, golden=entry.golden,
            expected_rules=("RQL114",),
        ),)
        monkeypatch.setattr(plans, "PLAN_CORPUS", doctored)
        findings, entries = plan_corpus_findings()
        assert entries == 1
        assert any("rule-set drift" in f.message for f in findings)


class TestDriverSurface:
    def test_registry_has_plan_rules(self):
        for rule_id in ("RQL110", "RQL111", "RQL112", "RQL113",
                        "RQL114"):
            cls = QUERY_REGISTRY[rule_id]
            assert cls.description and cls.example and cls.fix

    @pytest.mark.parametrize("rule_id", ["RQL110", "RQL111", "RQL112",
                                         "RQL113", "RQL114"])
    def test_explain(self, rule_id):
        out = io.StringIO()
        assert lint_main(["--explain", rule_id], out=out) == 0
        assert rule_id in out.getvalue()

    def test_list_rules(self):
        out = io.StringIO()
        assert lint_main(["--list-rules"], out=out) == 0
        for rule_id in ("RQL110", "RQL113", "RQL114"):
            assert rule_id in out.getvalue()

    def test_lint_queries_includes_plan_corpus(self, tmp_path):
        out = io.StringIO()
        status = run_query_lint([str(tmp_path)], out=out)
        assert status == 0
        text = out.getvalue()
        from repro.workloads.corpus import CORPUS

        expected = len(CORPUS) + len(PLAN_CORPUS)
        assert f"{expected} files/cases" in text

    def test_sarif_lists_plan_rules(self, tmp_path):
        out = io.StringIO()
        status = run_query_lint([str(tmp_path), "--format", "sarif"],
                                out=out)
        assert status == 0
        payload = json.loads(out.getvalue())
        rules = {r["id"]
                 for r in payload["runs"][0]["tool"]["driver"]["rules"]}
        assert {"RQL110", "RQL111", "RQL112", "RQL113",
                "RQL114"} <= rules
