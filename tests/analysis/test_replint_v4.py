"""replint v4 gates: the protocol typestate layer (RPL030–033).

Five contracts beyond the fixture corpus:

* the typestate engine is *interprocedural* — a ``commit`` buried in a
  helper still transitions the caller's transaction — and *path-aware*
  on exception edges — a happy-path-only ``deregister_reader`` is
  flagged while the ``try/finally`` twin stays clean;
* seeded mutants over the real tree (reverting the ``begin_read``
  registration guard, reading through the Retro manager before
  ``recover``, double-arming the chaos sweep) are each caught by the
  matching rule;
* the summary disk cache invalidates on payloads missing the v4
  protocol fields, not only on digest/version changes;
* ``lint --changed`` widens a protocol-spec edit to every module
  implementing a protocol class, so spec changes re-lint their
  implementing surfaces;
* multi-root runs keep colliding relpaths apart (``__init__.py`` under
  two roots must not evict one module from the program).
"""

import io
import pathlib
import textwrap

import pytest

from repro.analysis.context import ModuleContext
from repro.analysis.dataflow.program import Program
from repro.analysis.driver import (
    _collect_contexts,
    _rule_descriptions,
    analyze_source,
    main,
    package_root,
)
from repro.analysis.protocols import SPECS, implementing_modules

SRC = package_root()
FIXTURES = pathlib.Path(__file__).parent / "fixtures"

FIXTURE_SCOPES = {
    "rpl030": ("core/txn_fixture.py", "RPL030", 2),
    "rpl031": ("core/counter_fixture.py", "RPL031", 1),
    "rpl032": ("retro/reread_fixture.py", "RPL032", 1),
    "rpl033": ("core/fanout_fixture.py", "RPL033", 1),
}


def _fixture(name: str):
    return (FIXTURES / name).read_text(encoding="utf-8")


# -- fixture corpus -----------------------------------------------------------


@pytest.mark.parametrize("stem", sorted(FIXTURE_SCOPES))
def test_bad_fixture_fires_exactly_its_rule(stem):
    scope, rule, count = FIXTURE_SCOPES[stem]
    findings = analyze_source(_fixture(f"{stem}_bad.py"), scope)
    assert findings, f"{stem}_bad.py produced no findings"
    assert {f.rule for f in findings} == {rule}
    assert len(findings) == count
    assert all(f.hint for f in findings)


@pytest.mark.parametrize("stem", sorted(FIXTURE_SCOPES))
def test_good_fixture_is_clean(stem):
    scope, _rule, _count = FIXTURE_SCOPES[stem]
    assert analyze_source(_fixture(f"{stem}_good.py"), scope) == []


# -- interprocedural + path-aware core ---------------------------------------


def test_typestate_crosses_call_boundaries():
    # The commit lives in a helper: the caller's transaction must still
    # read as definitely-committed at the late rollback.
    source = textwrap.dedent(
        """
        def finish(engine, txn):
            engine.commit(txn)

        def run(engine):
            txn = engine.begin()
            finish(engine, txn)
            engine.rollback(txn)
        """
    )
    findings = analyze_source(source, "core/split_fixture.py")
    assert [f.rule for f in findings] == ["RPL030"]
    assert "rollback" in findings[0].message
    assert "'committed'" in findings[0].message


def test_branchy_terminal_states_stay_silent():
    # One terminal state per path: the may-join keeps both alive, and
    # the definite-violation bar keeps the rule quiet.
    source = textwrap.dedent(
        """
        def settle(engine, ok):
            txn = engine.begin()
            if ok:
                engine.commit(txn)
            else:
                engine.rollback(txn)
        """
    )
    assert analyze_source(source, "core/branchy_fixture.py") == []


def test_reader_leak_is_exception_path_aware():
    # Identical code modulo try/finally: only the happy-path-only
    # deregister leaves the exceptional exit registered.
    leaky = textwrap.dedent(
        """
        def scan(versions, ts, pages):
            reader = versions.register_reader(ts)
            total = sum(pages)
            versions.deregister_reader(reader)
            return total
        """
    )
    findings = analyze_source(leaky, "core/reader_fixture.py")
    assert [f.rule for f in findings] == ["RPL030"]
    assert "exception unwind" in findings[0].message

    safe = leaky.replace(
        "    total = sum(pages)\n"
        "    versions.deregister_reader(reader)\n"
        "    return total\n",
        "    try:\n"
        "        return sum(pages)\n"
        "    finally:\n"
        "        versions.deregister_reader(reader)\n",
    )
    assert safe != leaky
    assert analyze_source(safe, "core/reader_fixture.py") == []


def test_guarded_late_cleanup_stays_silent():
    # ``is_active`` is a declared guard: the false branch excludes
    # ``active``, the true branch proves it — so guarded cleanup after
    # a conditional commit is not a definite violation.
    source = textwrap.dedent(
        """
        def settle(engine, ok):
            txn = engine.begin()
            if ok:
                engine.commit(txn)
            if txn.is_active():
                engine.rollback(txn)
        """
    )
    findings = analyze_source(source, "core/guarded_fixture.py")
    # RPL010 may still weigh in on the unwind path; the typestate rule
    # itself must accept the guarded double-cleanup.
    assert [f for f in findings if f.rule == "RPL030"] == []


# -- seeded mutants over the real tree ---------------------------------------


def _real_source(relpath: str) -> str:
    return (SRC / relpath).read_text(encoding="utf-8")


def test_engine_module_is_clean_solo():
    assert analyze_source(_real_source("storage/engine.py"),
                          "storage/engine.py") == []


def test_unguarded_reader_registration_is_caught():
    source = _real_source("storage/engine.py")
    mutated = source.replace(
        "            try:\n"
        "                context = ReadContext(self, begin_ts, reader_id,\n"
        "                                      owner=owner)\n"
        "                self._contexts[reader_id] = context\n"
        "                return context\n"
        "            except BaseException:\n"
        "                # A registered reader pins version chains against\n"
        "                # pruning; never leave it behind if the handle "
        "can't\n"
        "                # reach the caller.\n"
        "                self._versions.deregister_reader(reader_id)\n"
        "                raise\n",
        "            context = ReadContext(self, begin_ts, reader_id,\n"
        "                                  owner=owner)\n"
        "            self._contexts[reader_id] = context\n"
        "            return context\n",
    )
    assert mutated != source, "mutation target moved; update the test"
    findings = analyze_source(mutated, "storage/engine.py")
    assert findings, "the unguarded reader registration went unnoticed"
    assert {f.rule for f in findings} == {"RPL030"}
    assert all("register_reader" in f.message for f in findings)


def test_retro_read_before_recover_is_caught():
    source = _real_source("storage/engine.py")
    mutated = source.replace(
        "        self.retro.recover(\n",
        "        warm = self.retro.diff_size(0, 0)\n"
        "        self.retro.recover(\n",
    )
    assert mutated != source, "mutation target moved; update the test"
    findings = analyze_source(mutated, "storage/engine.py")
    assert findings, "reading through retro before recover went unnoticed"
    assert {f.rule for f in findings} == {"RPL032"}
    assert all("recover" in f.message for f in findings)


def test_chaos_module_is_clean_solo():
    assert analyze_source(_real_source("chaos.py"), "chaos.py") == []


def test_double_armed_crash_schedule_is_caught():
    source = _real_source("chaos.py")
    mutated = source.replace(
        "        disk.schedule_crash(at_write=k, tear=tear)\n",
        "        disk.schedule_crash(at_write=k, tear=tear)\n"
        "        disk.schedule_crash(at_write=k, tear=tear)\n",
    )
    assert mutated != source, "mutation target moved; update the test"
    findings = analyze_source(mutated, "chaos.py")
    assert findings, "double-arming the chaos schedule went unnoticed"
    assert {f.rule for f in findings} == {"RPL030"}
    assert all("schedule_crash" in f.message for f in findings)


# -- summary-cache invalidation on the v4 fields ------------------------------

CACHE_MODULE = textwrap.dedent(
    """
    def finish(engine, txn):
        engine.commit(txn)

    def begin(engine):
        txn = engine.begin()
        return txn
    """
)


def _program(cache_dir):
    ctx = ModuleContext.from_source(CACHE_MODULE, "core/cachemod.py")
    return Program({"core/cachemod.py": ctx}, cache_dir=cache_dir)


@pytest.mark.parametrize("dropped", ["protocol_ops", "protocol_returns"])
def test_cache_rejects_payload_missing_v4_fields(tmp_path, dropped):
    import json

    first = _program(tmp_path)
    assert not first.cache_hit
    summary = first.summaries["core/cachemod.py::finish"]
    assert summary.protocol_ops == frozenset({(1, "txn", "commit")})
    begun = first.summaries["core/cachemod.py::begin"]
    assert begun.protocol_returns == ("txn", "active")

    path = first._cache_path(tmp_path)
    payload = json.loads(path.read_text())
    for entry in payload["summaries"]:
        entry.pop(dropped, None)
    path.write_text(json.dumps(payload))
    again = _program(tmp_path)
    assert not again.cache_hit
    assert again.summaries["core/cachemod.py::finish"].protocol_ops \
        == summary.protocol_ops


# -- protocol-spec edits widen --changed --------------------------------------


def test_focus_on_protocol_specs_widens_to_implementing_classes():
    modules = {
        "analysis/protocols.py": "SPECS = ()\n",
        "storage/engine.py": textwrap.dedent(
            """
            class StorageEngine:
                def begin(self):
                    return object()
            """
        ),
        "core/unrelated.py": "def helper(x):\n    return x\n",
    }
    contexts = {
        relpath: ModuleContext.from_source(source, relpath)
        for relpath, source in modules.items()
    }
    program = Program(contexts, focus={"analysis/protocols.py"})
    scope = program.focus_scope()
    assert "storage/engine.py" in scope
    assert "core/unrelated.py" not in scope


def test_implementing_modules_cover_every_spec_class_in_the_tree():
    contexts, findings, _ = _collect_contexts([SRC])
    assert findings == []
    modules = implementing_modules(
        {ctx.relpath: ctx for ctx in contexts})
    # Every protocol class/origin shipped in the tree is accounted for.
    assert {"storage/engine.py", "storage/mvcc.py", "retro/manager.py",
            "storage/chaosdisk.py"} <= modules


# -- multi-root relpath collisions -------------------------------------------


def test_multi_root_collection_keeps_colliding_relpaths_apart(tmp_path):
    for root in ("alpha", "beta"):
        directory = tmp_path / root
        directory.mkdir()
        (directory / "__init__.py").write_text(
            f"NAME = {root!r}\n", encoding="utf-8")
    contexts, findings, scanned = _collect_contexts(
        [tmp_path / "alpha", tmp_path / "beta"])
    assert findings == []
    assert scanned == 2
    relpaths = {ctx.relpath for ctx in contexts}
    assert len(relpaths) == 2, "a colliding relpath evicted a module"
    assert "__init__.py" in relpaths
    assert "beta/__init__.py" in relpaths


# -- --explain ----------------------------------------------------------------


def test_every_rule_has_an_explain_entry():
    from repro.analysis.rules import _PROGRAM_REGISTRY, _REGISTRY

    for rule_id in _rule_descriptions():
        out = io.StringIO()
        assert main(["--explain", rule_id], out=out) == 0
        text = out.getvalue()
        assert text.startswith(f"{rule_id} —")
        assert "example:" in text
        assert "fix:" in text
    for cls in list(_REGISTRY.values()) + list(_PROGRAM_REGISTRY.values()):
        assert cls.example.strip(), f"{cls.rule_id} has no example"
        assert cls.fix.strip(), f"{cls.rule_id} has no fix pattern"


def test_explain_rejects_unknown_rules():
    out = io.StringIO()
    assert main(["--explain", "RPL999"], out=out) == 2
    assert "unknown rule" in out.getvalue()
