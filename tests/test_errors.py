"""Exception-hierarchy contract tests.

Library users catch ``ReproError`` subclasses by layer; these tests pin
the hierarchy so refactors cannot silently break error handling.
"""

import inspect

import pytest

from repro import errors


LAYERS = {
    errors.StorageError: [
        errors.PageError, errors.BufferPoolError, errors.TransactionError,
        errors.RecoveryError, errors.RecordCodecError, errors.BTreeError,
        errors.CorruptPageError, errors.SimulatedCrash,
    ],
    errors.SnapshotError: [
        errors.UnknownSnapshotError, errors.SnapshotUnavailableError,
    ],
    errors.SqlError: [
        errors.LexerError, errors.ParseError, errors.PlanError,
        errors.ExecutionError, errors.CatalogError, errors.UdfError,
    ],
    errors.RqlError: [
        errors.AggregateError, errors.MechanismError, errors.ViewError,
    ],
    errors.ServerError: [
        errors.SessionStateError, errors.QueryCancelled,
    ],
}

#: every public error class, including the ones outside LAYERS
ALL_ERRORS = [
    cls for _, cls in sorted(vars(errors).items())
    if inspect.isclass(cls) and issubclass(cls, errors.ReproError)
]


def test_every_layer_is_a_repro_error():
    for base, children in LAYERS.items():
        assert issubclass(base, errors.ReproError)
        for child in children:
            assert issubclass(child, base), child


def test_type_mismatch_is_an_execution_error():
    assert issubclass(errors.TypeMismatchError, errors.ExecutionError)


def test_workload_error():
    assert issubclass(errors.WorkloadError, errors.ReproError)


def test_analysis_error():
    assert issubclass(errors.AnalysisError, errors.ReproError)


def test_corruption_errors_nest():
    # TornWriteError is a refinement of CorruptPageError: handlers that
    # treat any failed-checksum page uniformly catch both.
    assert issubclass(errors.TornWriteError, errors.CorruptPageError)
    assert issubclass(errors.CorruptPageError, errors.StorageError)
    assert issubclass(errors.SnapshotUnavailableError, errors.SnapshotError)
    assert issubclass(errors.SimulatedCrash, errors.StorageError)


def test_positional_errors_carry_positions():
    assert errors.LexerError("x", 5).position == 5
    assert errors.ParseError("x", 7).position == 7
    assert errors.ParseError("x").position == -1


def test_all_errors_enumerates_the_whole_module():
    # Guard against a new class slipping in without hierarchy coverage:
    # everything public in repro.errors must be a ReproError subclass.
    public = [
        cls for name, cls in vars(errors).items()
        if inspect.isclass(cls) and not name.startswith("_")
    ]
    assert public and all(issubclass(c, errors.ReproError) for c in public)
    assert len(ALL_ERRORS) >= 23  # the seed hierarchy plus AnalysisError


@pytest.mark.parametrize("cls", ALL_ERRORS, ids=lambda c: c.__name__)
def test_every_error_is_constructible_and_documented(cls):
    exc = cls("boom")
    assert str(exc) == "boom"
    assert isinstance(exc, errors.ReproError)
    assert isinstance(exc, Exception)
    assert cls.__doc__, f"{cls.__name__} has no docstring"


@pytest.mark.parametrize("cls", ALL_ERRORS, ids=lambda c: c.__name__)
def test_every_error_is_raisable_and_layer_catchable(cls):
    # Raising and catching through each base in the MRO must work: this
    # is the layered-handler contract the RPL002 lint rule enforces.
    bases = [b for b in cls.__mro__ if issubclass(b, errors.ReproError)]
    for base in bases:
        with pytest.raises(base):
            raise cls("boom")


def test_hierarchy_is_exhaustive():
    # Every concrete class reaches ReproError through a documented layer
    # (or is itself a direct child, like WorkloadError/AnalysisError).
    layer_children = {c for kids in LAYERS.values() for c in kids}
    direct = {
        errors.ReproError, errors.StorageError, errors.SnapshotError,
        errors.SqlError, errors.RqlError, errors.WorkloadError,
        errors.AnalysisError, errors.ServerError,
    }
    extra = {errors.TypeMismatchError, errors.TornWriteError}
    unaccounted = set(ALL_ERRORS) - layer_children - direct - extra
    assert not unaccounted, unaccounted


@pytest.mark.parametrize("operation,expected", [
    (lambda db: db.execute("SELECT * FROM nope"), errors.PlanError),
    (lambda db: db.execute("SELEC 1"), errors.ParseError),
    (lambda db: db.execute("SELECT @"), errors.LexerError),
    (lambda db: db.execute("COMMIT"), errors.TransactionError),
])
def test_user_facing_errors_are_catchable_as_sql_or_repro(db, operation,
                                                          expected):
    with pytest.raises(expected):
        operation(db)
    # And always catchable at the root.
    with pytest.raises(errors.ReproError):
        operation(db)
