"""Exception-hierarchy contract tests.

Library users catch ``ReproError`` subclasses by layer; these tests pin
the hierarchy so refactors cannot silently break error handling.
"""

import pytest

from repro import errors


LAYERS = {
    errors.StorageError: [
        errors.PageError, errors.BufferPoolError, errors.TransactionError,
        errors.RecoveryError, errors.RecordCodecError, errors.BTreeError,
    ],
    errors.SnapshotError: [errors.UnknownSnapshotError],
    errors.SqlError: [
        errors.LexerError, errors.ParseError, errors.PlanError,
        errors.ExecutionError, errors.CatalogError, errors.UdfError,
    ],
    errors.RqlError: [errors.AggregateError, errors.MechanismError],
}


def test_every_layer_is_a_repro_error():
    for base, children in LAYERS.items():
        assert issubclass(base, errors.ReproError)
        for child in children:
            assert issubclass(child, base), child


def test_type_mismatch_is_an_execution_error():
    assert issubclass(errors.TypeMismatchError, errors.ExecutionError)


def test_workload_error():
    assert issubclass(errors.WorkloadError, errors.ReproError)


def test_positional_errors_carry_positions():
    assert errors.LexerError("x", 5).position == 5
    assert errors.ParseError("x", 7).position == 7
    assert errors.ParseError("x").position == -1


@pytest.mark.parametrize("operation,expected", [
    (lambda db: db.execute("SELECT * FROM nope"), errors.PlanError),
    (lambda db: db.execute("SELEC 1"), errors.ParseError),
    (lambda db: db.execute("SELECT @"), errors.LexerError),
    (lambda db: db.execute("COMMIT"), errors.TransactionError),
])
def test_user_facing_errors_are_catchable_as_sql_or_repro(db, operation,
                                                          expected):
    with pytest.raises(expected):
        operation(db)
    # And always catchable at the root.
    with pytest.raises(errors.ReproError):
        operation(db)
