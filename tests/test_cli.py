"""CLI shell tests (driven through in-memory streams)."""

import io

from repro.cli import Shell, format_table, main
from repro.sql.executor import ResultSet


def run_shell(script: str) -> str:
    out = io.StringIO()
    shell = Shell(out=out)
    shell.run(io.StringIO(script))
    return out.getvalue()


class TestFormatTable:
    def test_alignment_and_count(self):
        result = ResultSet(["a", "long_column"], [(1, "x"), (22, None)])
        text = format_table(result)
        assert "a   long_column" in text
        assert "22  NULL" in text
        assert "(2 rows)" in text

    def test_single_row(self):
        text = format_table(ResultSet(["n"], [(5,)]))
        assert "(1 row)" in text

    def test_status_result(self):
        result = ResultSet([], [])
        result.rowcount = 3
        assert "3 rows affected" in format_table(result)

    def test_clipping(self):
        result = ResultSet(["t"], [("x" * 100,)])
        text = format_table(result, max_width=10)
        assert "…" in text


class TestShell:
    def test_sql_round_trip(self):
        output = run_shell(
            "CREATE TABLE t (a INTEGER);\n"
            "INSERT INTO t VALUES (1), (2);\n"
            "SELECT SUM(a) AS total FROM t;\n"
        )
        assert "total" in output
        assert "3" in output

    def test_multiline_statement(self):
        output = run_shell(
            "CREATE TABLE t (a INTEGER);\n"
            "SELECT a\n"
            "FROM t;\n"
        )
        assert "(0 rows)" in output

    def test_error_reported_not_fatal(self):
        output = run_shell(
            "SELECT * FROM missing;\n"
            "SELECT 1 AS ok;\n"
        )
        assert "error:" in output
        assert "ok" in output

    def test_dot_snapshot_and_snapshots(self):
        output = run_shell(
            "CREATE TABLE t (a INTEGER);\n"
            ".snapshot tagged\n"
            ".snapshots\n"
        )
        assert "declared snapshot 1 (tagged)" in output
        assert "tagged" in output

    def test_dot_tables_and_schema(self):
        output = run_shell(
            "CREATE TABLE people (name TEXT, age INTEGER PRIMARY KEY);\n"
            ".tables\n"
            ".schema people\n"
        )
        assert "people  [main]" in output
        assert "PRIMARY KEY (age)" in output

    def test_dot_indexes(self):
        output = run_shell(
            "CREATE TABLE t (a INTEGER);\n"
            "CREATE INDEX t_a ON t (a);\n"
            ".indexes t\n"
        )
        assert "INDEX t_a ON t (a)" in output

    def test_dot_stats_and_checkpoint(self):
        output = run_shell(
            "CREATE TABLE t (a INTEGER);\n"
            ".checkpoint\n"
            ".stats\n"
        )
        assert "checkpointed" in output
        assert "database pages:" in output

    def test_dot_views_lists_and_explains(self):
        output = run_shell(
            "CREATE TABLE t (a INTEGER);\n"
            "INSERT INTO t VALUES (1);\n"
            ".snapshot\n"
            ".views\n"
            "CREATE MATERIALIZED VIEW v AS "
            "CollateData('SELECT a FROM t');\n"
            ".views\n"
            ".views v\n"
            "REFRESH MATERIALIZED VIEW v;\n"
            "DROP MATERIALIZED VIEW v;\n"
        )
        assert "(no materialized views)" in output
        assert "concat" in output
        assert "decision:" in output
        assert "noop" in output

    def test_unknown_dot_command(self):
        output = run_shell(".nope\n")
        assert "unknown command" in output

    def test_quit_stops(self):
        output = run_shell(".quit\nSELECT 1;\n")
        assert "(1 row)" not in output

    def test_as_of_through_shell(self):
        output = run_shell(
            "CREATE TABLE t (a INTEGER);\n"
            "INSERT INTO t VALUES (1);\n"
            ".snapshot\n"
            "DELETE FROM t;\n"
            "SELECT AS OF 1 COUNT(*) AS was FROM t;\n"
            "SELECT COUNT(*) AS now FROM t;\n"
        )
        assert "was" in output and "now" in output

    def test_dot_workers_shows_and_sets(self):
        output = run_shell(
            ".workers\n"
            ".workers 4\n"
            ".workers zero\n"
        )
        assert "workers: 1" in output
        assert "workers: 4" in output
        assert "error: not a worker count: 'zero'" in output

    def test_parallel_mechanism_through_shell(self):
        output = run_shell(
            "CREATE TABLE t (a INTEGER);\n"
            "INSERT INTO t VALUES (1);\n"
            ".snapshot\n"
            "INSERT INTO t VALUES (2);\n"
            ".snapshot\n"
            ".workers 2\n"
            "SELECT rql_workers() AS w;\n"
        )
        assert "workers: 2" in output
        # the SQL knob reads back the shell-set default
        assert "w" in output and "(1 row)" in output

    def test_rql_udf_through_shell(self):
        output = run_shell(
            "CREATE TABLE t (a INTEGER);\n"
            "INSERT INTO t VALUES (7);\n"
            ".snapshot\n"
            "SELECT AggregateDataInVariable(snap_id, "
            "'SELECT COUNT(*) FROM t', 'R', 'sum') FROM SnapIds;\n"
            'SELECT * FROM "R";\n'
        )
        assert "(1 row)" in output


class TestRqlintCommand:
    def test_mergeable_verdict(self):
        output = run_shell(
            "CREATE TABLE t (a INTEGER);\n"
            ".rqlint AggregateDataInVariable sum "
            "SELECT COUNT(*) AS n FROM t;\n"
        )
        assert "merge class monoid" in output
        assert "Qs range" in output

    def test_serial_only_verdict_with_rule(self):
        output = run_shell(
            "CREATE TABLE t (a INTEGER);\n"
            ".rqlint CollateData SELECT a, rql_workers() FROM t;\n"
        )
        assert "merge class serial-only" in output
        assert "RQL106" in output

    def test_pushdown_hint(self):
        output = run_shell(
            "CREATE TABLE t (a INTEGER, b INTEGER);\n"
            ".rqlint CollateData SELECT a FROM t WHERE b = 5;\n"
        )
        assert "RQL104" in output

    def test_pair_arg_parses(self):
        output = run_shell(
            "CREATE TABLE t (g TEXT, v INTEGER);\n"
            ".rqlint AggregateDataInTable n:sum "
            "SELECT g, COUNT(*) AS n FROM t GROUP BY g;\n"
        )
        assert "merge class stored-row" in output

    def test_unknown_mechanism_is_an_error(self):
        output = run_shell(".rqlint Bogus SELECT 1;\n")
        assert "error:" in output

    def test_usage_message(self):
        output = run_shell(".rqlint\n")
        assert "usage: .rqlint" in output

    def test_help_mentions_rqlint(self):
        assert ".rqlint" in run_shell(".help\n")

    def test_explain_shows_semantic_summary(self):
        output = run_shell(
            "CREATE TABLE t (a INTEGER);\n"
            "EXPLAIN SELECT COUNT(*) AS n FROM t WHERE a > 1;\n",
        )
        assert "SCAN t" in output
        assert "SEMANTIC: reads t(a)" in output
        assert "SEMANTIC: merge class monoid" in output


class TestMainScriptMode:
    def test_script_file(self, tmp_path):
        script = tmp_path / "run.sql"
        script.write_text(
            "CREATE TABLE t (a INTEGER);\n"
            "INSERT INTO t VALUES (42);\n"
            "SELECT a FROM t;\n"
        )
        import contextlib
        import io as _io

        buffer = _io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main([str(script)])
        assert code == 0
        assert "42" in buffer.getvalue()

    def test_workers_flag(self, tmp_path):
        script = tmp_path / "run.sql"
        script.write_text("SELECT rql_workers() AS w;\n")
        import contextlib
        import io as _io

        buffer = _io.StringIO()
        with contextlib.redirect_stdout(buffer):
            assert main(["--workers", "4", str(script)]) == 0
        assert "4" in buffer.getvalue()
        buffer = _io.StringIO()
        with contextlib.redirect_stdout(buffer):
            assert main(["--workers=3", str(script)]) == 0
        assert "3" in buffer.getvalue()

    def test_workers_flag_rejects_bad_counts(self, capsys):
        assert main(["--workers", "0"]) == 2
        assert main(["--workers", "many"]) == 2
        assert main(["--workers"]) == 2
        err = capsys.readouterr().err
        assert "must be >= 1" in err
        assert "not a number" in err
        assert "needs a value" in err

    def test_chaos_seed_flag_enables_injection(self, tmp_path):
        script = tmp_path / "run.sql"
        script.write_text(
            "CREATE TABLE t (a INTEGER);\n"
            ".chaos\n"
            ".chaos scrub\n"
        )
        import contextlib
        import io as _io

        buffer = _io.StringIO()
        with contextlib.redirect_stdout(buffer):
            assert main(["--chaos-seed", "7", str(script)]) == 0
        out = buffer.getvalue()
        assert "seed 7" in out
        assert "scrub: all archived pre-states verify" in out
        # Without the flag, injection is reported off.
        buffer = _io.StringIO()
        script.write_text(".chaos\n")
        with contextlib.redirect_stdout(buffer):
            assert main([str(script)]) == 0
        assert "off (run with --chaos-seed)" in buffer.getvalue()

    def test_dot_chaos_crash_then_recovery_report(self):
        from repro.core import RQLSession
        from repro.sql.database import Database
        from repro.storage.chaosdisk import ChaosDisk

        disk = ChaosDisk(4096, seed=3)
        aux = ChaosDisk(4096, controller=disk.chaos)
        out = io.StringIO()
        shell = Shell(session=RQLSession(
            db=Database(disk=disk, aux_disk=aux)), out=out)
        shell.run(io.StringIO(
            "CREATE TABLE t (a INTEGER);\n"
            ".chaos crash 2 tear\n"
            ".chaos\n"
            "INSERT INTO t VALUES (1);\n"
            "INSERT INTO t VALUES (2);\n"
        ))
        crashed = out.getvalue()
        assert "crash scheduled at write" in crashed
        assert "torn" in crashed
        assert "simulated power loss" in crashed  # surfaced as an error

        disk.power_on()
        out = io.StringIO()
        shell = Shell(session=RQLSession(
            db=Database(disk=disk, aux_disk=aux)), out=out)
        shell.run(io.StringIO(
            ".chaos\n"
            "SELECT COUNT(*) AS n FROM t;\n"
        ))
        recovered = out.getvalue()
        assert "injection:" in recovered
        assert "recovery:" in recovered
        assert "n" in recovered  # the store is queryable after recovery

    def test_dot_chaos_crash_requires_injection(self):
        output = run_shell(".chaos crash 5\n")
        assert "needs --chaos-seed" in output
        output = run_shell(".chaos bogus\n")
        assert "unknown subcommand" in output
