"""Static semantic analysis: positions, resolution, types, pushability,
Qs bounds (the front half of rqlint)."""

import pytest

from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_sql
from repro.sql.semantic import (
    QsRange,
    StaticSchema,
    analyze_qs,
    render_expr,
    resolve_select,
)

DDL = """
CREATE TABLE t (k INTEGER PRIMARY KEY, grp TEXT, n INTEGER);
CREATE TABLE u (k INTEGER, label TEXT);
CREATE INDEX t_grp ON t (grp);
"""


@pytest.fixture
def schema():
    return StaticSchema.from_ddl(DDL)


def select(sql):
    statements = parse_sql(sql)
    assert len(statements) == 1 and isinstance(statements[0], ast.Select)
    return statements[0]


class TestPositions:
    def test_tokens_carry_line_and_col(self):
        tokens = tokenize("SELECT a\n  FROM t")
        assert (tokens[0].line, tokens[0].col) == (1, 1)   # SELECT
        assert (tokens[1].line, tokens[1].col) == (1, 8)   # a
        assert (tokens[2].line, tokens[2].col) == (2, 3)   # FROM
        assert (tokens[3].line, tokens[3].col) == (2, 8)   # t

    def test_string_token_position_is_its_start(self):
        tokens = tokenize("SELECT 'abcdef'")
        assert (tokens[1].line, tokens[1].col) == (1, 8)

    def test_ast_nodes_are_stamped(self):
        node = select("SELECT a, b\nFROM t\nWHERE a = 1 AND b > 2")
        assert (node.line, node.col) == (1, 1)
        assert node.items[0].line == 1
        # The AND combinator sits on line 3; its operands too.
        assert node.where.line == 3
        assert node.where.left.line == 3

    def test_multiline_function_call(self):
        node = select("SELECT\n  SUM(n)\nFROM t")
        assert node.items[0].expr.line == 2

    def test_positions_do_not_affect_equality(self):
        """AST equality is load-bearing (planner substitution, agg
        dedup): stamped positions must stay out of __eq__."""
        a = select("SELECT a FROM t WHERE a = 1")
        b = select("\n\n  SELECT a FROM t WHERE a = 1")
        assert a.line != b.line
        assert a == b
        assert a.where == b.where

    def test_default_positions_are_zero(self):
        assert ast.Literal(1).line == 0
        assert ast.Literal(1).col == 0


class TestResolution:
    def test_read_set(self, schema):
        summary = resolve_select(
            select("SELECT grp FROM t WHERE n > 5"), schema)
        assert summary.tables == ["t"]
        assert sorted(summary.read_columns["t"]) == ["grp", "n"]
        assert summary.resolved

    def test_star_expansion(self, schema):
        summary = resolve_select(select("SELECT * FROM t"), schema)
        assert [o.name for o in summary.outputs] == ["k", "grp", "n"]
        assert summary.read_columns["t"] == ["k", "grp", "n"]

    def test_unknown_table(self, schema):
        summary = resolve_select(select("SELECT x FROM nope"), schema)
        assert any("no such table: nope" in i.message
                   for i in summary.issues)

    def test_unknown_column(self, schema):
        summary = resolve_select(select("SELECT missing FROM t"), schema)
        assert any("no such column: missing" in i.message
                   for i in summary.issues)

    def test_ambiguous_column(self, schema):
        summary = resolve_select(
            select("SELECT k FROM t, u"), schema)
        assert any("ambiguous column name: k" in i.message
                   for i in summary.issues)

    def test_qualified_refs_disambiguate(self, schema):
        summary = resolve_select(
            select("SELECT t.k, u.k FROM t, u"), schema)
        assert summary.resolved
        assert summary.read_columns == {"t": ["k"], "u": ["k"]}

    def test_alias_in_order_by_is_not_a_read(self, schema):
        summary = resolve_select(
            select("SELECT n + 1 AS bumped FROM t ORDER BY bumped"),
            schema)
        assert summary.resolved
        assert summary.read_columns["t"] == ["n"]

    def test_duplicate_binding(self, schema):
        summary = resolve_select(select("SELECT 1 FROM t, t"), schema)
        assert any("duplicate table binding" in i.message
                   for i in summary.issues)

    def test_unknown_table_mutes_column_checks(self, schema):
        """Can't decide a column against an unknown table: one issue,
        not a cascade."""
        summary = resolve_select(
            select("SELECT mystery FROM nope"), schema)
        assert len(summary.issues) == 1

    def test_qualified_star_expands_one_binding(self, schema):
        summary = resolve_select(
            select("SELECT t.* FROM t, u"), schema)
        assert [o.name for o in summary.outputs] == ["k", "grp", "n"]
        assert summary.read_columns["t"] == ["k", "grp", "n"]
        assert summary.read_columns.get("u", []) == []

    def test_qualified_star_unknown_binding(self, schema):
        summary = resolve_select(select("SELECT z.* FROM t"), schema)
        assert any("no such table: z" in i.message
                   for i in summary.issues)


class TestTypesAndOutputs:
    def test_output_kinds(self, schema):
        summary = resolve_select(
            select("SELECT grp, COUNT(*) AS c, 7 AS seven, n + 1 AS b "
                   "FROM t GROUP BY grp"), schema)
        kinds = {o.name: o.kind for o in summary.outputs}
        assert kinds == {"grp": "column", "c": "aggregate",
                         "seven": "constant", "b": "scalar"}

    def test_declared_and_inferred_types(self, schema):
        summary = resolve_select(
            select("SELECT grp, n, COUNT(*) AS c, SUM(n) AS s, "
                   "n + k AS add FROM t"), schema)
        types = {o.name: o.type_name for o in summary.outputs}
        assert types["grp"] == "TEXT"
        assert types["n"] == "INTEGER"
        assert types["c"] == "INTEGER"
        assert types["s"] == "REAL"
        assert types["add"] == "INTEGER"

    def test_aggregate_calls_collected(self, schema):
        summary = resolve_select(
            select("SELECT MIN(n), MAX(n) FROM t"), schema)
        assert sorted(c.name.lower() for c in summary.aggregate_calls) \
            == ["max", "min"]

    def test_stateful_and_unknown_functions(self, schema):
        summary = resolve_select(
            select("SELECT rql_workers(), mystery_fn(n) FROM t"), schema)
        assert summary.stateful_functions == {"rql_workers"}
        assert summary.unknown_functions == {"mystery_fn"}

    def test_registered_function_is_known(self, schema):
        schema.add_function("mystery_fn")
        summary = resolve_select(
            select("SELECT mystery_fn(n) FROM t"), schema)
        assert summary.unknown_functions == set()


class TestPushability:
    def test_single_table_conjunct_is_pushable(self, schema):
        summary = resolve_select(
            select("SELECT * FROM t WHERE grp = 'a' AND n > 5"), schema)
        assert [p.pushable for p in summary.predicates] == [True, True]

    def test_indexed_and_candidate(self, schema):
        summary = resolve_select(
            select("SELECT * FROM t WHERE grp = 'a' AND n > 5"), schema)
        by_text = {p.text: p for p in summary.predicates}
        assert by_text["grp = 'a'"].indexed_by == "t_grp"
        assert by_text["n > 5"].index_candidate == ("t", "n")

    def test_pk_counts_as_index(self, schema):
        summary = resolve_select(
            select("SELECT * FROM t WHERE k = 3"), schema)
        assert summary.predicates[0].indexed_by == "__pk_t"

    def test_join_conjunct_not_pushable(self, schema):
        summary = resolve_select(
            select("SELECT * FROM t, u WHERE t.k = u.k"), schema)
        assert summary.predicates[0].pushable is False
        assert summary.predicates[0].tables == ("t", "u")

    def test_non_sargable_shape_has_no_candidate(self, schema):
        summary = resolve_select(
            select("SELECT * FROM t WHERE n + 1 = 5"), schema)
        predicate = summary.predicates[0]
        assert predicate.pushable
        assert predicate.indexed_by is None
        assert predicate.index_candidate is None

    def test_between_and_in_are_sargable(self, schema):
        summary = resolve_select(
            select("SELECT * FROM t WHERE n BETWEEN 1 AND 9 "
                   "AND grp IN ('a', 'b')"), schema)
        by_text = {p.text: p for p in summary.predicates}
        assert by_text["n BETWEEN 1 AND 9"].index_candidate == ("t", "n")
        assert by_text["grp IN ('a', 'b')"].indexed_by == "t_grp"

    def test_join_on_condition_classified(self, schema):
        summary = resolve_select(
            select("SELECT * FROM t JOIN u ON t.k = u.k"), schema)
        assert summary.predicates[0].pushable is False

    def test_not_between_pushable_but_not_sargable(self, schema):
        # The complement of a contiguous range is two ranges — still a
        # single-table filter, but no single index range serves it.
        summary = resolve_select(
            select("SELECT * FROM t WHERE n NOT BETWEEN 2 AND 5"),
            schema)
        predicate = summary.predicates[0]
        assert predicate.pushable
        assert predicate.indexed_by is None
        assert predicate.index_candidate is None

    def test_negated_between_via_not_also_not_sargable(self, schema):
        summary = resolve_select(
            select("SELECT * FROM t WHERE NOT (n BETWEEN 2 AND 5)"),
            schema)
        predicate = summary.predicates[0]
        assert predicate.pushable
        assert predicate.index_candidate is None


class TestRenderExpr:
    @pytest.mark.parametrize("sql", [
        "a = 1",
        "a BETWEEN 1 AND 2",
        "a IN (1, 2)",
        "a IS NOT NULL",
        "a NOT LIKE 'x%'",
        "-a * (b + 2)",
        "CASE WHEN a = 1 THEN 'one' ELSE 'other' END",
    ])
    def test_round_trips_through_parser(self, sql):
        first = select(f"SELECT 1 FROM t WHERE {sql}").where
        text = render_expr(first)
        again = select(f"SELECT 1 FROM t WHERE {text}").where
        assert render_expr(again) == text


class TestQsAnalysis:
    def qs(self, where=""):
        return select(f"SELECT snap_id FROM SnapIds {where}")

    def test_unbounded(self):
        issues, bounds = analyze_qs(self.qs())
        assert issues == []
        assert bounds == QsRange(None, None)
        assert not bounds.bounded

    def test_between(self):
        _, bounds = analyze_qs(self.qs("WHERE snap_id BETWEEN 2 AND 9"))
        assert (bounds.lower, bounds.upper) == (2, 9)
        assert bounds.describe() == "[2, 9]"

    def test_comparison_both_orders(self):
        _, bounds = analyze_qs(
            self.qs("WHERE snap_id >= 3 AND 7 >= snap_id"))
        assert (bounds.lower, bounds.upper) == (3, 7)

    def test_equality_pins_both(self):
        _, bounds = analyze_qs(self.qs("WHERE snap_id = 5"))
        assert (bounds.lower, bounds.upper) == (5, 5)

    def test_strict_bounds_are_tightened(self):
        _, bounds = analyze_qs(
            self.qs("WHERE snap_id > 2 AND snap_id < 9"))
        assert (bounds.lower, bounds.upper) == (3, 8)

    def test_in_list(self):
        _, bounds = analyze_qs(self.qs("WHERE snap_id IN (4, 2, 8)"))
        assert (bounds.lower, bounds.upper) == (2, 8)

    def test_inverted_is_statically_empty(self):
        _, bounds = analyze_qs(
            self.qs("WHERE snap_id > 5 AND snap_id < 3"))
        assert bounds.statically_empty
        assert bounds.describe() == "empty"

    def test_reversed_between_is_statically_empty(self):
        _, bounds = analyze_qs(
            self.qs("WHERE snap_id BETWEEN 9 AND 2"))
        assert bounds.statically_empty

    def test_contradictory_equalities_are_statically_empty(self):
        # Each equality pins both ends; the intersection inverts.
        _, bounds = analyze_qs(
            self.qs("WHERE snap_id = 3 AND snap_id = 7"))
        assert bounds.statically_empty

    def test_in_list_duplicates_collapse(self):
        _, bounds = analyze_qs(self.qs("WHERE snap_id IN (4, 4, 2)"))
        assert (bounds.lower, bounds.upper) == (2, 4)
        assert not bounds.statically_empty

    def test_as_of_rejected(self):
        issues, _ = analyze_qs(
            select("SELECT AS OF 3 snap_id FROM SnapIds"))
        assert any("AS OF" in i.message for i in issues)

    def test_multi_column_rejected(self):
        issues, _ = analyze_qs(
            select("SELECT snap_id, snap_ts FROM SnapIds"))
        assert any("single snapshot-id column" in i.message
                   for i in issues)


class TestStaticSchema:
    def test_from_ddl(self, schema):
        assert schema.table_columns("T") == [
            ("k", "INTEGER"), ("grp", "TEXT"), ("n", "INTEGER")]
        assert schema.table_columns("ghost") is None
        names = [name for name, _cols in schema.table_indexes("t")]
        assert set(names) == {"__pk_t", "t_grp"}
