"""Differential gate: stats-driven plans vs heuristic plans.

ANALYZE may flip access paths (seq scan <-> index probe) and reorder
joins, but it must never change *what* a query returns.  Two harnesses
enforce that:

* every runnable entry of the PR 7 verdict corpus runs before and
  after ANALYZE on the same session and must produce the same result
  set;
* a Hypothesis harness generates 100+ random workloads (rows +
  predicates over indexed and unindexed columns) and compares an
  ANALYZEd database against an un-ANALYZEd twin.

Comparisons are order-canonical (columns + sorted rows): an index
range scan legitimately yields rows in key order where a heuristic
seq scan yields insertion order — the relational result is the same.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RQLSession
from repro.errors import ReproError
from repro.sql.database import Database
from repro.workloads import SnapshotHistoryBuilder, UW30, setup_paper_example
from repro.analysis.query.mergeclass import SERIAL_ONLY
from repro.workloads.corpus import CORPUS, run_entry

RUNNABLE = [e for e in CORPUS
            if e.runnable and e.expected_class != SERIAL_ONLY]


def canonical(columns, rows):
    return tuple(columns), sorted((tuple(r) for r in rows), key=repr)


def result_table(session, table):
    try:
        result = session.execute(f'SELECT * FROM "{table}"')
    except ReproError:
        return None
    return canonical(result.columns, result.rows)


@pytest.fixture(scope="module")
def gate_sessions():
    """Fresh (not shared) workload sessions this module may ANALYZE."""
    tpch = RQLSession()
    builder = SnapshotHistoryBuilder(tpch, scale_factor=0.001, seed=7)
    builder.load_initial()
    builder.build_history(UW30, 8)
    paper = RQLSession()
    setup_paper_example(paper)
    return {"tpch": tpch, "loggedin": paper}


class TestCorpusDifferential:
    @pytest.mark.parametrize("entry", RUNNABLE, ids=lambda e: e.name)
    def test_analyze_does_not_change_results(self, entry, gate_sessions):
        session = gate_sessions[entry.workload]
        table = "PlanGate_" + entry.name.replace("-", "_")
        try:
            heuristic = run_entry(session, entry, table, workers=1)
            heuristic_rows = result_table(session, table)
            session.execute(f'DROP TABLE IF EXISTS "{table}"')

            session.execute("ANALYZE")
            costed = run_entry(session, entry, table, workers=1)
            assert result_table(session, table) == heuristic_rows, \
                f"{entry.name}: result set changed after ANALYZE"
            assert costed.snapshots == heuristic.snapshots
        finally:
            session.execute(f'DROP TABLE IF EXISTS "{table}"')


# ---------------------------------------------------------------------------
# Hypothesis harness: random workloads, analyzed vs heuristic twin
# ---------------------------------------------------------------------------

values_a = st.one_of(st.none(), st.integers(min_value=-20, max_value=20))
values_b = st.integers(min_value=0, max_value=5)
values_s = st.one_of(st.none(), st.sampled_from(["x", "y", "zz", ""]))

rows_strategy = st.lists(
    st.tuples(values_a, values_b, values_s), min_size=0, max_size=25,
)

comparison = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


@st.composite
def predicates(draw):
    """Random WHERE text over k (PK index), a (secondary), b (none)."""
    kind = draw(st.sampled_from(
        ["cmp_k", "cmp_a", "cmp_b", "between_k", "in_a", "and", "or"]))
    if kind == "cmp_k":
        op = draw(comparison)
        return f"k {op} {draw(st.integers(0, 25))}"
    if kind == "cmp_a":
        op = draw(comparison)
        return f"a {op} {draw(st.integers(-20, 20))}"
    if kind == "cmp_b":
        op = draw(comparison)
        return f"b {op} {draw(st.integers(0, 5))}"
    if kind == "between_k":
        lo = draw(st.integers(0, 25))
        return f"k BETWEEN {lo} AND {lo + draw(st.integers(0, 10))}"
    if kind == "in_a":
        members = draw(st.lists(st.integers(-20, 20), min_size=1,
                                max_size=4))
        return f"a IN ({', '.join(map(str, members))})"
    left = draw(predicates())
    right = draw(predicates())
    joiner = "AND" if kind == "and" else "OR"
    return f"({left}) {joiner} ({right})"


QUERIES = (
    "SELECT k, a, b, s FROM t WHERE {pred}",
    "SELECT COUNT(*), SUM(b) FROM t WHERE {pred}",
    "SELECT b, COUNT(*) FROM t WHERE {pred} GROUP BY b",
    "SELECT s, u.v FROM t, u WHERE t.b = u.k AND ({pred})",
)


def _lit(value):
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return f"'{value}'"
    return str(value)


def outcome(db, sql):
    """Canonical result, or the error — twins must agree on both.

    An unqualified `k` is ambiguous in the join template (t.k vs u.k);
    the planner must reject it identically whichever join order wins.
    """
    try:
        result = db.execute(sql)
    except ReproError as exc:
        return ("error", str(exc))
    return canonical(result.columns, result.rows)


def build_twins(rows):
    """An un-ANALYZEd database and its ANALYZEd twin, same content."""
    twins = []
    for _ in range(2):
        db = Database()
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, a INTEGER, "
                   "b INTEGER, s TEXT)")
        db.execute("CREATE INDEX t_a ON t (a)")
        db.execute("CREATE TABLE u (k INTEGER PRIMARY KEY, v TEXT)")
        for key in range(6):
            db.execute(f"INSERT INTO u VALUES ({key}, 'v{key}')")
        for key, (a, b, s) in enumerate(rows):
            db.execute(f"INSERT INTO t VALUES ({key}, {_lit(a)}, "
                       f"{_lit(b)}, {_lit(s)})")
        twins.append(db)
    twins[1].execute("ANALYZE")
    return twins


@given(rows=rows_strategy, predicate=predicates(),
       query=st.sampled_from(QUERIES))
@settings(max_examples=120, deadline=None)
def test_random_workloads_plan_equivalently(rows, predicate, query):
    heuristic, analyzed = build_twins(rows)
    sql = query.format(pred=predicate)
    assert outcome(analyzed, sql) == outcome(heuristic, sql)


@given(rows=rows_strategy, predicate=predicates())
@settings(max_examples=30, deadline=None)
def test_random_workloads_agree_as_of(rows, predicate):
    # Statistics gathered after the pin must not perturb AS OF reads.
    heuristic, analyzed = build_twins(rows)
    for db in (heuristic, analyzed):
        db.executescript("BEGIN; COMMIT WITH SNAPSHOT;")
        db.execute("DELETE FROM t WHERE b >= 3")
    analyzed.execute("ANALYZE")
    sql = f"SELECT AS OF 1 k, a, b, s FROM t WHERE {predicate}"
    assert outcome(analyzed, sql) == outcome(heuristic, sql)
