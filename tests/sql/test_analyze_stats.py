"""ANALYZE: statistics gathering, __rql_stats persistence, and the
AS OF consistency rule for the statistics catalog."""

import pytest

from repro.errors import SqlError
from repro.sql.stats import (
    ColumnStats,
    TableStats,
    compute_table_stats,
    stats_from_rows,
    stats_to_rows,
)


@pytest.fixture
def analyzed(db):
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, grp TEXT, "
               "n INTEGER)")
    db.execute("CREATE TABLE u (k INTEGER, label TEXT)")
    db.execute("INSERT INTO t VALUES (1,'a',10), (2,'b',20), (3,'a',30)")
    db.execute("INSERT INTO u VALUES (1,'one')")
    return db


def explain(db, sql):
    return [row[0] for row in db.execute("EXPLAIN " + sql).rows]


def cost_lines(db, sql):
    return [n for n in explain(db, sql) if n.startswith("COST:")]


def snapshot(db):
    db.executescript("BEGIN; COMMIT WITH SNAPSHOT;")
    return db.latest_snapshot_id


class TestAnalyzeStatement:
    def test_analyze_all_tables(self, analyzed):
        result = analyzed.execute("ANALYZE")
        assert result.columns == ["table", "row_count", "page_count"]
        assert sorted(result.rows) == [("t", 3, 1), ("u", 1, 1)]

    def test_analyze_one_table(self, analyzed):
        result = analyzed.execute("ANALYZE t")
        assert result.rows == [("t", 3, 1)]

    def test_analyze_unknown_table(self, analyzed):
        with pytest.raises(SqlError):
            analyzed.execute("ANALYZE nope")

    def test_stats_persist_in_aux_table(self, analyzed):
        analyzed.execute("ANALYZE t")
        rows = analyzed.execute(
            "SELECT tbl, snap, col, row_count, n_distinct "
            "FROM __rql_stats").rows
        assert ("t", 0, "", 3, 0) in rows          # table-level row
        assert ("t", 0, "grp", 3, 2) in rows       # 2 distinct groups
        assert ("t", 0, "k", 3, 3) in rows

    def test_reanalyze_replaces_same_snapshot(self, analyzed):
        analyzed.execute("ANALYZE t")
        analyzed.execute("INSERT INTO t VALUES (4,'c',40)")
        analyzed.execute("ANALYZE t")
        rows = analyzed.execute(
            "SELECT row_count FROM __rql_stats "
            "WHERE tbl = 't' AND col = ''").rows
        assert rows == [(4,)]                      # replaced, not stacked

    def test_snapshots_stack_histories(self, analyzed):
        analyzed.execute("ANALYZE t")
        snapshot(analyzed)
        analyzed.execute("INSERT INTO t VALUES (4,'c',40)")
        analyzed.execute("ANALYZE t")
        rows = analyzed.execute(
            "SELECT snap, row_count FROM __rql_stats "
            "WHERE tbl = 't' AND col = ''").rows
        assert sorted(rows) == [(0, 3), (1, 4)]

    def test_stats_table_is_not_analyzed(self, analyzed):
        analyzed.execute("ANALYZE")
        result = analyzed.execute("ANALYZE")
        assert all(name != "__rql_stats" for name, _r, _p in result.rows)


class TestPlannerUsesStats:
    def test_tiny_table_prefers_seq_scan(self, analyzed):
        # Heuristics always take the eq index; the cost model knows a
        # one-page table is cheaper to scan (SQLite behaves the same).
        before = explain(analyzed, "SELECT * FROM t WHERE k = 2")
        assert any("USING INDEX __pk_t (=)" in n for n in before)
        analyzed.execute("ANALYZE t")
        after = explain(analyzed, "SELECT * FROM t WHERE k = 2")
        assert "SCAN t" in after
        assert any("via seq scan" in n for n in after)

    def test_large_table_switches_to_index(self, db):
        db.execute("CREATE TABLE big (k INTEGER PRIMARY KEY, v TEXT)")
        db.executescript("BEGIN;" + "".join(
            f"INSERT INTO big VALUES ({i}, 'payload-{i:04d}');"
            for i in range(500)) + "COMMIT;")
        db.execute("ANALYZE big")
        notes = explain(db, "SELECT v FROM big WHERE k = 250")
        assert any("USING INDEX __pk_big (=)" in n for n in notes)
        assert any("via index __pk_big (=)" in n for n in notes)

    def test_cost_line_reports_estimates(self, analyzed):
        analyzed.execute("ANALYZE t")
        (line,) = cost_lines(analyzed, "SELECT * FROM t WHERE grp = 'a'")
        assert "est. rows" in line and "est. pages" in line
        assert "cost" in line

    def test_unanalyzed_table_reports_heuristic(self, analyzed):
        (line,) = cost_lines(analyzed, "SELECT * FROM u")
        assert line == "COST: u no statistics (heuristic access path)"


class TestAsOfConsistency:
    def test_stats_after_pin_are_invisible(self, analyzed):
        snapshot(analyzed)                         # snapshot 1
        analyzed.execute("INSERT INTO t VALUES (4,'c',40)")
        snapshot(analyzed)                         # snapshot 2
        analyzed.execute("ANALYZE t")              # stamped snap 2
        pinned = cost_lines(analyzed, "SELECT AS OF 1 * FROM t")
        assert pinned == ["COST: t no statistics "
                          "(heuristic access path)"]
        current = cost_lines(analyzed, "SELECT * FROM t")
        assert "est. rows 4" in current[0]

    def test_pinned_query_plans_with_pinned_stats(self, analyzed):
        analyzed.execute("ANALYZE t")              # snap 0: 3 rows
        snapshot(analyzed)                         # snapshot 1
        analyzed.execute("INSERT INTO t VALUES (4,'c',40), (5,'d',50)")
        snapshot(analyzed)                         # snapshot 2
        analyzed.execute("ANALYZE t")              # snap 2: 5 rows
        old = cost_lines(analyzed, "SELECT AS OF 1 * FROM t")
        new = cost_lines(analyzed, "SELECT * FROM t")
        assert "est. rows 3" in old[0]
        assert "est. rows 5" in new[0]


class TestStatsUnits:
    def test_eq_selectivity(self):
        stats = TableStats(
            table="t", snapshot_id=1, row_count=100, page_count=4,
            columns={"g": ColumnStats(column="g", distinct=4)})
        assert stats.eq_selectivity("g") == 0.25
        assert stats.eq_selectivity("missing") == 0.1   # default

    def test_range_selectivity_interpolates(self):
        stats = TableStats(
            table="t", snapshot_id=1, row_count=100, page_count=4,
            columns={"k": ColumnStats(column="k", distinct=100,
                                      min_value=0, max_value=100)})
        assert stats.range_selectivity("k", lo=0, hi=25) == 0.25

    def test_range_selectivity_is_unclamped(self):
        # Reversed domain -> negative selectivity; RQL114 needs the raw
        # value, so the model must not clamp here.
        stats = TableStats(
            table="t", snapshot_id=1, row_count=100, page_count=4,
            columns={"k": ColumnStats(column="k", distinct=100,
                                      min_value=100, max_value=0)})
        assert stats.range_selectivity("k", lo=10, hi=90) < 0

    def test_rows_round_trip(self):
        stats = TableStats(
            table="t", snapshot_id=3, row_count=7, page_count=2,
            columns={"k": ColumnStats(column="k", distinct=7,
                                      min_value=1, max_value=7)})
        rebuilt = stats_from_rows("t", stats_to_rows(stats))
        assert rebuilt == stats

    def test_as_of_picks_newest_at_or_before(self):
        history = []
        for snap, rows in ((1, 10), (3, 30), (5, 50)):
            history.extend(stats_to_rows(TableStats(
                table="t", snapshot_id=snap, row_count=rows,
                page_count=1)))
        assert stats_from_rows("t", history, as_of=4).row_count == 30
        assert stats_from_rows("t", history, as_of=1).row_count == 10
        assert stats_from_rows("t", history).row_count == 50
        assert stats_from_rows("t", history, as_of=0) is None

    def test_compute_stats_via_scan(self, analyzed):
        from repro.sql.catalog import Catalog
        from repro.sql.executor import TableAccess

        engine = analyzed.engine
        ctx = engine.begin_read()
        try:
            source = engine.read_source(ctx)
            catalog = Catalog(source, engine.pager.get_root("catalog"))
            info = catalog.get_table("t")
            stats = compute_table_stats(
                TableAccess(info, source), snapshot_id=9)
        finally:
            ctx.close()
        assert stats.row_count == 3
        assert stats.snapshot_id == 9
        assert stats.column("k").min_value == 1
        assert stats.column("k").max_value == 3
        assert stats.column("grp").distinct == 2
