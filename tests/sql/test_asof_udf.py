"""AS OF queries, schema time-travel, UDFs, and the cursor/streaming API."""

import pytest

from repro.errors import PlanError, UnknownSnapshotError
from repro.sql.database import Database


@pytest.fixture
def versioned(db):
    """Three snapshots over a small table."""
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
    db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
    db.executescript("BEGIN; COMMIT WITH SNAPSHOT;")  # S1
    db.execute("BEGIN")
    db.execute("DELETE FROM t WHERE k = 2")
    db.execute("COMMIT WITH SNAPSHOT")  # S2
    db.execute("BEGIN")
    db.execute("UPDATE t SET v = 'A' WHERE k = 1")
    db.execute("INSERT INTO t VALUES (4, 'd')")
    db.execute("COMMIT WITH SNAPSHOT")  # S3
    return db


class TestAsOf:
    def test_each_snapshot_consistent(self, versioned):
        db = versioned
        assert sorted(db.execute("SELECT AS OF 1 k FROM t").column("k")) \
            == [1, 2, 3]
        assert sorted(db.execute("SELECT AS OF 2 k FROM t").column("k")) \
            == [1, 3]
        assert sorted(db.execute("SELECT AS OF 3 k FROM t").column("k")) \
            == [1, 3, 4]

    def test_as_of_sees_old_values(self, versioned):
        db = versioned
        assert db.execute(
            "SELECT AS OF 2 v FROM t WHERE k = 1").scalar() == "a"
        assert db.execute(
            "SELECT AS OF 3 v FROM t WHERE k = 1").scalar() == "A"
        assert db.execute("SELECT v FROM t WHERE k = 1").scalar() == "A"

    def test_as_of_uses_index_in_snapshot(self, versioned):
        # PK index lookups run inside the snapshot.
        assert versioned.execute(
            "SELECT AS OF 1 v FROM t WHERE k = 2").scalar() == "b"
        assert versioned.execute(
            "SELECT COUNT(*) FROM t WHERE k = 2").scalar() == 0

    def test_unknown_snapshot(self, versioned):
        with pytest.raises(UnknownSnapshotError):
            versioned.execute("SELECT AS OF 99 * FROM t")

    def test_as_of_aggregates_and_joins(self, versioned):
        db = versioned
        db.execute("CREATE TABLE names (k INTEGER, label TEXT)")
        db.execute("INSERT INTO names VALUES (1, 'one'), (2, 'two')")
        # The join runs entirely as of S1 (names existed? it did not!).
        # names was created after S3... so AS OF 1 must NOT see it.
        with pytest.raises(PlanError):
            db.execute("SELECT AS OF 1 * FROM names")

    def test_schema_time_travel_for_tables(self, versioned):
        """A table dropped later is still queryable AS OF an older
        snapshot (the catalog lives in snapshotted pages)."""
        db = versioned
        db.execute("CREATE TABLE doomed (x INTEGER)")
        db.execute("INSERT INTO doomed VALUES (42)")
        db.execute("BEGIN")
        sid = int(db.execute("COMMIT WITH SNAPSHOT").scalar())
        db.execute("DROP TABLE doomed")
        with pytest.raises(PlanError):
            db.execute("SELECT * FROM doomed")
        assert db.execute(
            f"SELECT AS OF {sid} x FROM doomed").scalar() == 42

    def test_index_time_travel(self, versioned):
        """An index created after a snapshot is invisible AS OF it —
        the ad-hoc vs native index distinction of Figure 9."""
        from repro.sql.catalog import Catalog

        db = versioned
        db.execute("CREATE INDEX t_v ON t (v)")
        db.execute("BEGIN")
        sid_with = int(db.execute("COMMIT WITH SNAPSHOT").scalar())
        engine = db.engine
        ctx = engine.begin_read()
        old_catalog = Catalog(engine.snapshot_source(1, ctx),
                              engine.pager.get_root("catalog"))
        new_catalog = Catalog(engine.snapshot_source(sid_with, ctx),
                              engine.pager.get_root("catalog"))
        assert old_catalog.get_index("t_v") is None
        assert new_catalog.get_index("t_v") is not None
        ctx.close()

    def test_insert_select_as_of(self, versioned):
        db = versioned
        db.execute("CREATE TEMP TABLE result (k INTEGER, v TEXT)")
        db.execute("INSERT INTO result SELECT AS OF 1 k, v FROM t")
        assert db.execute("SELECT COUNT(*) FROM result").scalar() == 3

    def test_create_table_as_select_as_of(self, versioned):
        db = versioned
        db.execute("CREATE TEMP TABLE old_t AS SELECT AS OF 2 * FROM t")
        assert db.execute("SELECT COUNT(*) FROM old_t").scalar() == 2


class TestUdf:
    def test_scalar_udf(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        db.register_function("double", lambda v: v * 2)
        result = db.execute("SELECT double(a) FROM t ORDER BY 1")
        assert [r[0] for r in result.rows] == [2, 4, 6]

    def test_udf_invoked_per_row(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        calls = []
        db.register_function("probe", lambda v: calls.append(v) or v)
        db.execute("SELECT probe(a) FROM t")
        assert sorted(calls) == [1, 2, 3]

    def test_udf_in_where(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2), (3), (4)")
        db.register_function("is_even", lambda v: 1 if v % 2 == 0 else 0)
        assert db.execute(
            "SELECT COUNT(*) FROM t WHERE is_even(a)").scalar() == 2

    def test_unknown_function(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(PlanError):
            db.execute("SELECT nosuch(a) FROM t")

    def test_udf_reentrancy(self, db):
        """A UDF may issue statements against the same database — the
        shape RQL's loop body depends on."""
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("CREATE TEMP TABLE log (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2)")

        def record(v):
            db.execute(f"INSERT INTO log VALUES ({v})")
            return v

        db.register_function("record", record)
        db.execute("SELECT record(a) FROM t")
        assert db.execute("SELECT COUNT(*) FROM log").scalar() == 2

    def test_builtin_scalars(self, db):
        assert db.execute("SELECT abs(-4)").scalar() == 4
        assert db.execute("SELECT length('abc')").scalar() == 3
        assert db.execute("SELECT upper('ab') || lower('CD')").scalar() \
            == "ABcd"
        assert db.execute("SELECT coalesce(NULL, NULL, 7)").scalar() == 7
        assert db.execute("SELECT ifnull(NULL, 3)").scalar() == 3
        assert db.execute("SELECT nullif(2, 2)").scalar() is None
        assert db.execute("SELECT round(2.567, 1)").scalar() == 2.6
        assert db.execute("SELECT substr('hello', 2, 3)").scalar() == "ell"


class TestCursorStreaming:
    def test_execute_cursor_columns_before_rows(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        columns, rows = db.execute_cursor("SELECT a, b AS bee FROM t")
        assert columns == ["a", "bee"]
        assert list(rows) == [(1, "x")]

    def test_execute_streaming_callback(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        seen = []
        columns = db.execute_streaming(
            "SELECT a FROM t ORDER BY a", seen.append,
        )
        assert columns == ["a"]
        assert seen == [(1,), (2,), (3,)]

    def test_streaming_rejects_non_select(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(Exception):
            db.execute_streaming("DELETE FROM t", lambda row: None)
