"""Transaction context managers: Database.transaction() and
RQLSession.transaction() must commit on success, roll back on error, and
surface snapshot ids through the handle."""

import pytest

from repro.core import RQLSession
from repro.errors import ReproError, SqlError


def _count(db, table="t"):
    return db.execute(f"SELECT COUNT(*) FROM {table}").scalar()


def test_database_transaction_commits(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    with db.transaction():
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("INSERT INTO t VALUES (2)")
    assert _count(db) == 2


def test_database_transaction_rolls_back_and_reraises(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    with pytest.raises(SqlError):
        with db.transaction():
            db.execute("INSERT INTO t VALUES (1)")
            db.execute("INSERT INTO nope VALUES (1)")
    assert _count(db) == 0
    # The failed scope left no transaction open.
    db.execute("INSERT INTO t VALUES (3)")
    assert _count(db) == 1


def test_session_transaction_plain_commit():
    session = RQLSession()
    session.execute("CREATE TABLE t (a INTEGER)")
    with session.transaction() as txn:
        session.execute("INSERT INTO t VALUES (1)")
    assert txn.snapshot_id is None
    assert _count(session.db) == 1


def test_session_transaction_with_snapshot():
    session = RQLSession()
    session.execute("CREATE TABLE t (a INTEGER)")
    with session.transaction(with_snapshot=True, name="first") as txn:
        session.execute("INSERT INTO t VALUES (1)")
    assert txn.snapshot_id == 1
    assert session.latest_snapshot_id == 1
    assert session.snapids.id_for_name("first") == txn.snapshot_id
    # The snapshot really reflects the scope's writes.
    rows = session.execute(
        f"SELECT AS OF {txn.snapshot_id} COUNT(*) FROM t"
    ).scalar()
    assert rows == 1


def test_session_transaction_rollback_declares_nothing():
    session = RQLSession()
    session.execute("CREATE TABLE t (a INTEGER)")
    with pytest.raises(ReproError):
        with session.transaction(with_snapshot=True) as txn:
            session.execute("INSERT INTO t VALUES (1)")
            raise ReproError("abort the scope")
    assert txn.snapshot_id is None
    assert session.latest_snapshot_id == 0
    assert _count(session.db) == 0
