"""Planner behaviour: pushdown, join ordering, auto-index correctness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LexerError, ParseError, SqlError
from repro.sql.database import Database
from repro.sql.parser import parse_sql


@pytest.fixture
def joined(db):
    db.execute("CREATE TABLE big (k INTEGER PRIMARY KEY, fk INTEGER, "
               "payload TEXT)")
    db.execute("CREATE TABLE small (id INTEGER, tag TEXT)")
    db.execute("INSERT INTO big VALUES " + ", ".join(
        f"({i}, {i % 10}, 'p{i}')" for i in range(200)
    ))
    db.execute("INSERT INTO small VALUES " + ", ".join(
        f"({i}, 't{i}')" for i in range(10)
    ))
    return db


class TestJoinCorrectness:
    def test_join_result_invariant_to_table_order(self, joined):
        left = joined.execute(
            "SELECT COUNT(*) FROM big b, small s WHERE b.fk = s.id"
        ).scalar()
        right = joined.execute(
            "SELECT COUNT(*) FROM small s, big b WHERE s.id = b.fk"
        ).scalar()
        assert left == right == 200

    def test_pushdown_filters_before_join(self, joined):
        result = joined.execute(
            "SELECT COUNT(*) FROM big b, small s "
            "WHERE b.fk = s.id AND s.tag = 't3'"
        )
        assert result.scalar() == 20

    def test_filter_on_both_sides(self, joined):
        result = joined.execute(
            "SELECT COUNT(*) FROM big b, small s "
            "WHERE b.fk = s.id AND s.tag = 't3' AND b.k < 100"
        )
        assert result.scalar() == 10

    def test_join_condition_in_on_vs_where(self, joined):
        on_form = joined.execute(
            "SELECT COUNT(*) FROM big JOIN small ON big.fk = small.id"
        ).scalar()
        where_form = joined.execute(
            "SELECT COUNT(*) FROM big, small WHERE big.fk = small.id"
        ).scalar()
        assert on_form == where_form

    def test_non_equi_join_falls_back_to_filter(self, joined):
        result = joined.execute(
            "SELECT COUNT(*) FROM small a, small b WHERE a.id < b.id"
        )
        assert result.scalar() == 45

    def test_join_with_expression_key(self, joined):
        result = joined.execute(
            "SELECT COUNT(*) FROM big b, small s WHERE b.fk + 0 = s.id"
        )
        assert result.scalar() == 200

    def test_self_join_with_aliases(self, joined):
        result = joined.execute(
            "SELECT COUNT(*) FROM small a, small b WHERE a.id = b.id"
        )
        assert result.scalar() == 10


class TestIndexVsScanEquivalence:
    """Every predicate must return identical rows with and without an
    index — the index path is an optimization, never a semantic change."""

    @pytest.mark.parametrize("predicate", [
        "k = 42", "k < 10", "k >= 190", "k BETWEEN 50 AND 60",
        "k = -1", "k > 1000",
    ])
    def test_pk_paths(self, joined, predicate):
        with_index = joined.execute(
            f"SELECT k FROM big WHERE {predicate} ORDER BY k").rows
        # Same predicate forced through a scan by wrapping the column.
        forced_scan = joined.execute(
            f"SELECT k FROM big WHERE (k + 0) "
            f"{predicate[1:] if predicate.startswith('k') else predicate}"
            " ORDER BY k"
        ).rows
        assert with_index == forced_scan


class TestParserRobustness:
    printable = st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=60,
    )

    @settings(max_examples=200, deadline=None)
    @given(printable)
    def test_parser_never_crashes(self, text):
        """Arbitrary input either parses or raises a SQL error — never
        an unexpected exception type."""
        try:
            parse_sql(text)
        except (ParseError, LexerError):
            pass

    @settings(max_examples=100, deadline=None)
    @given(printable)
    def test_execute_never_corrupts(self, text):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        try:
            db.execute(text)
        except SqlError:
            pass
        except Exception as exc:  # engine errors are fine; crashes not
            from repro.errors import ReproError

            assert isinstance(exc, ReproError), type(exc)
        # The database stays usable regardless.
        assert db.execute("SELECT COUNT(*) FROM t").scalar() >= 0
