"""Model-based property test: random single-table queries vs a Python
reference implementation.

Generates random rows plus random WHERE predicates / aggregations and
checks the SQL engine against a straightforward in-memory evaluation.
This exercises the full stack (parser → planner → B+tree scans →
expression evaluation) under randomized inputs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql.database import Database

COLUMNS = ("a", "b", "s")

values_a = st.one_of(st.none(), st.integers(min_value=-20, max_value=20))
values_b = st.one_of(st.none(), st.integers(min_value=0, max_value=5))
values_s = st.one_of(st.none(), st.sampled_from(["x", "y", "zz", ""]))

rows_strategy = st.lists(
    st.tuples(values_a, values_b, values_s), min_size=0, max_size=25,
)

comparison = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


@st.composite
def predicates(draw):
    """A random predicate as (sql_text, python_eval)."""
    kind = draw(st.sampled_from(
        ["cmp_a", "cmp_b", "s_eq", "a_null", "between", "in_b", "and",
         "or"]
    ))
    if kind == "cmp_a":
        op = draw(comparison)
        value = draw(st.integers(min_value=-20, max_value=20))
        py = _cmp("a", op, value)
        return f"a {op} {value}", py
    if kind == "cmp_b":
        op = draw(comparison)
        value = draw(st.integers(min_value=0, max_value=5))
        py = _cmp("b", op, value)
        return f"b {op} {value}", py
    if kind == "s_eq":
        target = draw(st.sampled_from(["x", "y", "zz"]))
        return (f"s = '{target}'",
                lambda r: r["s"] is not None and r["s"] == target)
    if kind == "a_null":
        negated = draw(st.booleans())
        sql = "a IS NOT NULL" if negated else "a IS NULL"
        return sql, (lambda r: r["a"] is not None) if negated \
            else (lambda r: r["a"] is None)
    if kind == "between":
        lo = draw(st.integers(min_value=-20, max_value=20))
        hi = lo + draw(st.integers(min_value=0, max_value=10))
        return (f"a BETWEEN {lo} AND {hi}",
                lambda r: r["a"] is not None and lo <= r["a"] <= hi)
    if kind == "in_b":
        members = sorted(draw(st.sets(
            st.integers(min_value=0, max_value=5), min_size=1,
            max_size=3)))
        sql = f"b IN ({', '.join(map(str, members))})"
        return sql, lambda r: r["b"] is not None and r["b"] in members
    left_sql, left_py = draw(predicates())
    right_sql, right_py = draw(predicates())
    if kind == "and":
        return (f"({left_sql}) AND ({right_sql})",
                lambda r: left_py(r) and right_py(r))
    return (f"({left_sql}) OR ({right_sql})",
            lambda r: left_py(r) or right_py(r))


def _cmp(column, op, value):
    import operator

    fn = {"=": operator.eq, "!=": operator.ne, "<": operator.lt,
          "<=": operator.le, ">": operator.gt, ">=": operator.ge}[op]
    return lambda r: r[column] is not None and fn(r[column], value)


def load(rows):
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER, s TEXT)")
    if rows:
        literals = ", ".join(
            "(" + ", ".join(_lit(v) for v in row) + ")" for row in rows
        )
        db.execute(f"INSERT INTO t VALUES {literals}")
    return db


def _lit(value):
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


@settings(max_examples=60, deadline=None)
@given(rows_strategy, predicates())
def test_filtered_count_matches_model(rows, predicate):
    sql_pred, py_pred = predicate
    db = load(rows)
    got = db.execute(f"SELECT COUNT(*) FROM t WHERE {sql_pred}").scalar()
    model = [dict(zip(COLUMNS, row)) for row in rows]
    expected = sum(1 for r in model if py_pred(r))
    assert got == expected, sql_pred


@settings(max_examples=40, deadline=None)
@given(rows_strategy, predicates())
def test_filtered_rows_match_model(rows, predicate):
    sql_pred, py_pred = predicate
    db = load(rows)
    got = sorted(db.execute(
        f"SELECT a, b, s FROM t WHERE {sql_pred}").rows,
        key=repr)
    model = [dict(zip(COLUMNS, row)) for row in rows]
    expected = sorted(
        (tuple(r[c] for c in COLUMNS) for r in model if py_pred(r)),
        key=repr,
    )
    assert got == expected, sql_pred


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_aggregates_match_model(rows):
    db = load(rows)
    a_values = [row[0] for row in rows if row[0] is not None]
    assert db.execute("SELECT COUNT(a) FROM t").scalar() == len(a_values)
    got_sum = db.execute("SELECT SUM(a) FROM t").scalar()
    assert got_sum == (sum(a_values) if a_values else None)
    got_min = db.execute("SELECT MIN(a) FROM t").scalar()
    assert got_min == (min(a_values) if a_values else None)
    got_max = db.execute("SELECT MAX(a) FROM t").scalar()
    assert got_max == (max(a_values) if a_values else None)
    got_avg = db.execute("SELECT AVG(a) FROM t").scalar()
    if a_values:
        assert abs(got_avg - sum(a_values) / len(a_values)) < 1e-9
    else:
        assert got_avg is None


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_group_by_matches_model(rows):
    db = load(rows)
    got = dict(db.execute(
        "SELECT b, COUNT(*) FROM t GROUP BY b").rows)
    expected = {}
    for row in rows:
        expected[row[1]] = expected.get(row[1], 0) + 1
    assert got == expected


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_order_by_matches_model(rows):
    db = load(rows)
    got = [row[0] for row in db.execute(
        "SELECT a FROM t ORDER BY a").rows]
    nulls = [None] * sum(1 for row in rows if row[0] is None)
    rest = sorted(row[0] for row in rows if row[0] is not None)
    assert got == nulls + rest
