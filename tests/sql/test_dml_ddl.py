"""INSERT / UPDATE / DELETE / DDL / transaction statement tests."""

import pytest

from repro.errors import (
    CatalogError,
    ExecutionError,
    TransactionError,
)
from repro.sql.database import Database


class TestInsert:
    def test_insert_values_and_count(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        result = db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert result.rowcount == 2
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_insert_column_subset_fills_null(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b TEXT, c REAL)")
        db.execute("INSERT INTO t (b) VALUES ('only-b')")
        assert db.execute("SELECT a, b, c FROM t").rows == [
            (None, "only-b", None),
        ]

    def test_insert_reordered_columns(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        db.execute("INSERT INTO t (b, a) VALUES ('x', 7)")
        assert db.execute("SELECT a, b FROM t").rows == [(7, "x")]

    def test_insert_select(self, db):
        db.execute("CREATE TABLE src (a INTEGER)")
        db.execute("CREATE TABLE dst (a INTEGER)")
        db.execute("INSERT INTO src VALUES (1), (2), (3)")
        result = db.execute("INSERT INTO dst SELECT a * 10 FROM src")
        assert result.rowcount == 3
        assert db.execute("SELECT SUM(a) FROM dst").scalar() == 60

    def test_type_coercion(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b REAL, c TEXT)")
        db.execute("INSERT INTO t VALUES ('5', 2, 3)")
        assert db.execute("SELECT a, b, c FROM t").rows == [(5, 2.0, "3")]

    def test_arity_mismatch(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO t VALUES (1)")

    def test_pk_uniqueness(self, db):
        db.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO t VALUES (1, 'y')")
        # Failed statement must not leave partial state.
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_composite_pk(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a, b))")
        db.execute("INSERT INTO t VALUES (1, 1), (1, 2)")
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO t VALUES (1, 2)")


class TestDeleteUpdate:
    @pytest.fixture
    def filled(self, db):
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, grp TEXT, n INTEGER)")
        db.execute(
            "INSERT INTO t VALUES " + ", ".join(
                f"({i}, 'g{i % 3}', {i * 10})" for i in range(30)
            )
        )
        return db

    def test_delete_by_pk(self, filled):
        result = filled.execute("DELETE FROM t WHERE k = 5")
        assert result.rowcount == 1
        assert filled.execute("SELECT COUNT(*) FROM t").scalar() == 29

    def test_delete_with_predicate(self, filled):
        result = filled.execute("DELETE FROM t WHERE grp = 'g1'")
        assert result.rowcount == 10
        assert filled.execute(
            "SELECT COUNT(*) FROM t WHERE grp = 'g1'").scalar() == 0

    def test_delete_all(self, filled):
        assert filled.execute("DELETE FROM t").rowcount == 30
        assert filled.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_update_expression(self, filled):
        filled.execute("UPDATE t SET n = n + 1 WHERE k < 3")
        assert filled.execute(
            "SELECT n FROM t WHERE k = 0").scalar() == 1
        assert filled.execute(
            "SELECT n FROM t WHERE k = 2").scalar() == 21
        assert filled.execute(
            "SELECT n FROM t WHERE k = 3").scalar() == 30

    def test_update_pk_column_maintains_index(self, filled):
        filled.execute("UPDATE t SET k = 1000 WHERE k = 7")
        assert filled.execute(
            "SELECT COUNT(*) FROM t WHERE k = 7").scalar() == 0
        assert filled.execute(
            "SELECT n FROM t WHERE k = 1000").scalar() == 70

    def test_update_pk_conflict(self, filled):
        with pytest.raises(ExecutionError):
            filled.execute("UPDATE t SET k = 1 WHERE k = 2")

    def test_delete_uses_index_after_secondary_created(self, filled):
        filled.execute("CREATE INDEX t_grp ON t (grp)")
        result = filled.execute("DELETE FROM t WHERE grp = 'g0'")
        assert result.rowcount == 10
        # Index stays consistent after deletions through it.
        assert filled.execute(
            "SELECT COUNT(*) FROM t WHERE grp = 'g2'").scalar() == 10


class TestDdl:
    def test_create_drop_table(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("DROP TABLE t")
        with pytest.raises(Exception):
            db.execute("SELECT * FROM t")

    def test_create_existing_fails(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("CREATE TABLE IF NOT EXISTS t (a INTEGER)")

    def test_drop_missing(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE missing")
        db.execute("DROP TABLE IF EXISTS missing")

    def test_create_table_as_select(self, db):
        db.execute("CREATE TABLE src (a INTEGER, b TEXT)")
        db.execute("INSERT INTO src VALUES (1, 'x'), (2, 'y')")
        result = db.execute(
            "CREATE TABLE dst AS SELECT a, b FROM src WHERE a = 2"
        )
        assert result.rowcount == 1
        assert db.execute("SELECT * FROM dst").rows == [(2, "y")]

    def test_temp_table_shadows_main(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("CREATE TEMP TABLE t2 (a INTEGER)")
        db.execute("INSERT INTO t2 VALUES (99)")
        assert db.execute("SELECT a FROM t2").scalar() == 99
        db.execute("DROP TABLE t2")

    def test_create_index_backfills(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (1, 'z')")
        db.execute("CREATE INDEX ix ON t (a)")
        assert db.execute("SELECT COUNT(*) FROM t WHERE a = 1").scalar() == 2

    def test_unique_index_rejects_duplicates(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (1)")
        with pytest.raises(ExecutionError):
            db.execute("CREATE UNIQUE INDEX ix ON t (a)")

    def test_drop_index(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("CREATE INDEX ix ON t (a)")
        db.execute("DROP INDEX ix")
        with pytest.raises(CatalogError):
            db.execute("DROP INDEX ix")
        db.execute("DROP INDEX IF EXISTS ix")

    def test_index_on_missing_column(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(Exception):
            db.execute("CREATE INDEX ix ON t (nope)")


class TestTransactions:
    def test_explicit_commit(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("INSERT INTO t VALUES (2)")
        db.execute("COMMIT")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_rollback_discards(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (2)")
        db.execute("ROLLBACK")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_rollback_ddl(self, db):
        db.execute("BEGIN")
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("ROLLBACK")
        with pytest.raises(Exception):
            db.execute("SELECT * FROM t")

    def test_nested_begin_rejected(self, db):
        db.execute("BEGIN")
        with pytest.raises(TransactionError):
            db.execute("BEGIN")
        db.execute("ROLLBACK")

    def test_commit_without_begin(self, db):
        with pytest.raises(TransactionError):
            db.execute("COMMIT")

    def test_commit_with_snapshot_returns_id(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (1)")
        result = db.execute("COMMIT WITH SNAPSHOT")
        assert result.columns == ["snapshot_id"]
        assert result.scalar() == 1

    def test_read_your_writes_in_txn(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (5)")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1
        db.execute("ROLLBACK")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_failed_statement_autorollback(self, db):
        db.execute("CREATE TABLE t (a INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        with pytest.raises(ExecutionError):
            db.execute("UPDATE t SET a = 99")  # both rows -> conflict
        assert sorted(r[0] for r in db.execute("SELECT a FROM t").rows) \
            == [1, 2]
