"""Unit tests for built-in scalar/aggregate functions and the registry."""

import pytest

from repro.errors import UdfError
from repro.sql.functions import (
    AvgAggregate,
    CountAggregate,
    DistinctAggregate,
    FunctionRegistry,
    GroupConcatAggregate,
    MaxAggregate,
    MinAggregate,
    SumAggregate,
    is_aggregate,
    make_aggregate,
)


def feed(agg, values):
    for value in values:
        agg.step(value)
    return agg.result()


class TestAggregateAccumulators:
    def test_count_skips_nulls(self):
        assert feed(CountAggregate(), [1, None, "x", None]) == 2

    def test_sum_and_empty(self):
        assert feed(SumAggregate(), [1, 2.5, None]) == 3.5
        assert SumAggregate().result() is None

    def test_avg(self):
        assert feed(AvgAggregate(), [2, 4, None]) == 3.0
        assert AvgAggregate().result() is None

    def test_min_max_mixed(self):
        assert feed(MinAggregate(), [3, 1, 2]) == 1
        assert feed(MaxAggregate(), ["a", "c", "b"]) == "c"
        assert feed(MinAggregate(), [None, None]) is None

    def test_group_concat(self):
        assert feed(GroupConcatAggregate(), ["a", None, "b"]) == "a,b"
        assert GroupConcatAggregate().result() is None

    def test_distinct_wrapper(self):
        # Exact repeats collapse; values of different storage classes
        # (int 2 vs float 2.0) are kept distinct; NULLs are skipped.
        agg = DistinctAggregate(CountAggregate())
        assert feed(agg, [1, 1, 2, 2.0, None, "x"]) == 4

    def test_distinct_sum(self):
        agg = DistinctAggregate(SumAggregate())
        assert feed(agg, [5, 5, 5, 3]) == 8

    def test_make_aggregate(self):
        assert feed(make_aggregate("SUM", False), [1, 2]) == 3
        assert feed(make_aggregate("count", True), [7, 7]) == 1
        with pytest.raises(UdfError):
            make_aggregate("median", False)

    def test_is_aggregate(self):
        assert is_aggregate("AVG")
        assert not is_aggregate("abs")


class TestRegistry:
    def test_builtins_present(self):
        registry = FunctionRegistry()
        for name in ("abs", "length", "coalesce", "round", "substr"):
            assert registry.get(name) is not None

    def test_register_and_case_insensitive(self):
        registry = FunctionRegistry()
        registry.register("MyFunc", lambda v: v + 1)
        assert registry.get("myfunc")(1) == 2
        assert registry.get("MYFUNC")(1) == 2

    def test_override_builtin(self):
        registry = FunctionRegistry()
        registry.register("abs", lambda v: "overridden")
        assert registry.get("abs")(1) == "overridden"

    def test_unregister(self):
        registry = FunctionRegistry()
        registry.register("f", lambda: 1)
        registry.unregister("F")
        assert registry.get("f") is None
        registry.unregister("f")  # idempotent

    def test_non_callable_rejected(self):
        registry = FunctionRegistry()
        with pytest.raises(UdfError):
            registry.register("bad", 42)

    def test_snapshot_is_a_copy(self):
        registry = FunctionRegistry()
        snapshot = registry.snapshot()
        registry.register("late", lambda: 1)
        assert "late" not in snapshot


class TestNamedSnapshotFunction:
    def test_as_of_by_name(self, session):
        session.execute("CREATE TABLE t (a INTEGER)")
        session.execute("INSERT INTO t VALUES (1)")
        session.declare_snapshot(name="before-delete")
        session.execute("DELETE FROM t")
        count = session.execute(
            "SELECT AS OF snapshot_id('before-delete') COUNT(*) FROM t"
        ).scalar()
        assert count == 1
        assert session.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_unknown_name_raises(self, session):
        session.execute("CREATE TABLE t (a INTEGER)")
        session.declare_snapshot()
        with pytest.raises(Exception):
            session.execute(
                "SELECT AS OF snapshot_id('nope') COUNT(*) FROM t"
            )
