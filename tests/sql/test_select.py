"""End-to-end SELECT execution tests."""

import pytest

from repro.errors import PlanError
from repro.sql.database import Database


@pytest.fixture
def loaded(db):
    db.execute("CREATE TABLE t (a INTEGER, b TEXT, c REAL)")
    db.execute(
        "INSERT INTO t VALUES (1, 'one', 1.5), (2, 'two', 2.5), "
        "(3, 'three', NULL), (NULL, 'null-a', 4.0), (2, 'two-again', 0.5)"
    )
    return db


class TestProjection:
    def test_star(self, loaded):
        result = loaded.execute("SELECT * FROM t")
        assert result.columns == ["a", "b", "c"]
        assert len(result.rows) == 5

    def test_expressions(self, loaded):
        result = loaded.execute("SELECT a * 10 + 1 FROM t WHERE a = 1")
        assert result.scalar() == 11

    def test_aliases_in_result(self, loaded):
        result = loaded.execute("SELECT a AS alpha FROM t WHERE a = 3")
        assert result.columns == ["alpha"]

    def test_constant_select_without_from(self, loaded):
        assert loaded.execute("SELECT 40 + 2").scalar() == 42

    def test_null_propagation(self, loaded):
        result = loaded.execute("SELECT a + c FROM t WHERE b = 'three'")
        assert result.scalar() is None


class TestWhere:
    def test_comparisons(self, loaded):
        assert len(loaded.execute(
            "SELECT * FROM t WHERE a >= 2").rows) == 3
        assert len(loaded.execute(
            "SELECT * FROM t WHERE b != 'two'").rows) == 4

    def test_null_never_matches(self, loaded):
        assert len(loaded.execute(
            "SELECT * FROM t WHERE a = NULL").rows) == 0
        assert len(loaded.execute(
            "SELECT * FROM t WHERE a IS NULL").rows) == 1

    def test_and_or(self, loaded):
        result = loaded.execute(
            "SELECT b FROM t WHERE a = 2 AND c > 1 OR b = 'one'"
        )
        assert sorted(r[0] for r in result.rows) == ["one", "two"]

    def test_in_between_like(self, loaded):
        assert len(loaded.execute(
            "SELECT * FROM t WHERE a IN (1, 3)").rows) == 2
        assert len(loaded.execute(
            "SELECT * FROM t WHERE a BETWEEN 2 AND 3").rows) == 3
        assert len(loaded.execute(
            "SELECT * FROM t WHERE b LIKE 'two%'").rows) == 2


class TestDistinctOrderLimit:
    def test_distinct(self, loaded):
        result = loaded.execute("SELECT DISTINCT a FROM t")
        assert sorted(r[0] for r in result.rows
                      if r[0] is not None) == [1, 2, 3]
        assert len(result.rows) == 4  # includes the NULL

    def test_order_by_asc_desc(self, loaded):
        result = loaded.execute("SELECT a FROM t ORDER BY a")
        assert [r[0] for r in result.rows] == [None, 1, 2, 2, 3]
        result = loaded.execute("SELECT a FROM t ORDER BY a DESC")
        assert [r[0] for r in result.rows] == [3, 2, 2, 1, None]

    def test_order_by_alias_and_position(self, loaded):
        by_alias = loaded.execute(
            "SELECT a AS x FROM t WHERE a IS NOT NULL ORDER BY x DESC"
        )
        by_position = loaded.execute(
            "SELECT a FROM t WHERE a IS NOT NULL ORDER BY 1 DESC"
        )
        assert [r[0] for r in by_alias.rows] == \
            [r[0] for r in by_position.rows] == [3, 2, 2, 1]

    def test_limit_offset(self, loaded):
        result = loaded.execute("SELECT a FROM t ORDER BY a LIMIT 2 OFFSET 1")
        assert [r[0] for r in result.rows] == [1, 2]

    def test_order_by_multiple_keys(self, loaded):
        result = loaded.execute(
            "SELECT a, b FROM t WHERE a = 2 ORDER BY a, b DESC"
        )
        assert [r[1] for r in result.rows] == ["two-again", "two"]


class TestAggregates:
    def test_count_star_vs_column(self, loaded):
        assert loaded.execute("SELECT COUNT(*) FROM t").scalar() == 5
        assert loaded.execute("SELECT COUNT(a) FROM t").scalar() == 4
        assert loaded.execute("SELECT COUNT(DISTINCT a) FROM t").scalar() == 3

    def test_sum_avg_min_max(self, loaded):
        assert loaded.execute("SELECT SUM(a) FROM t").scalar() == 8
        assert loaded.execute("SELECT MIN(c) FROM t").scalar() == 0.5
        assert loaded.execute("SELECT MAX(b) FROM t").scalar() == "two-again"
        assert loaded.execute("SELECT AVG(a) FROM t").scalar() == 2.0

    def test_empty_aggregate(self, loaded):
        assert loaded.execute(
            "SELECT COUNT(*) FROM t WHERE a = 99").scalar() == 0
        assert loaded.execute(
            "SELECT SUM(a) FROM t WHERE a = 99").scalar() is None

    def test_group_by(self, loaded):
        result = loaded.execute(
            "SELECT a, COUNT(*) AS c FROM t GROUP BY a ORDER BY a"
        )
        assert result.rows == [(None, 1), (1, 1), (2, 2), (3, 1)]

    def test_group_by_having(self, loaded):
        result = loaded.execute(
            "SELECT a, COUNT(*) AS c FROM t GROUP BY a HAVING c > 1"
        )
        assert result.rows == [(2, 2)]

    def test_group_by_expression_output(self, loaded):
        result = loaded.execute(
            "SELECT a, SUM(c) * 2 FROM t WHERE a = 2 GROUP BY a"
        )
        assert result.rows == [(2, 6.0)]

    def test_ungrouped_column_rejected(self, loaded):
        with pytest.raises(PlanError):
            loaded.execute("SELECT a, b, COUNT(*) FROM t GROUP BY a")

    def test_order_by_aggregate(self, loaded):
        result = loaded.execute(
            "SELECT a, COUNT(*) FROM t WHERE a IS NOT NULL "
            "GROUP BY a ORDER BY COUNT(*) DESC, a"
        )
        assert [r[0] for r in result.rows] == [2, 1, 3]


class TestJoins:
    @pytest.fixture
    def join_db(self, db):
        db.execute("CREATE TABLE dept (id INTEGER PRIMARY KEY, name TEXT)")
        db.execute("CREATE TABLE emp (eid INTEGER, did INTEGER, pay REAL)")
        db.execute("INSERT INTO dept VALUES (1, 'eng'), (2, 'ops'), (3, 'hr')")
        db.execute(
            "INSERT INTO emp VALUES (1, 1, 10.0), (2, 1, 20.0), "
            "(3, 2, 30.0), (4, NULL, 40.0)"
        )
        return db

    def test_comma_join_with_where(self, join_db):
        result = join_db.execute(
            "SELECT e.eid, d.name FROM emp e, dept d "
            "WHERE e.did = d.id ORDER BY e.eid"
        )
        assert result.rows == [(1, "eng"), (2, "eng"), (3, "ops")]

    def test_join_on(self, join_db):
        result = join_db.execute(
            "SELECT COUNT(*) FROM emp JOIN dept ON emp.did = dept.id"
        )
        assert result.scalar() == 3

    def test_null_join_keys_dropped(self, join_db):
        result = join_db.execute(
            "SELECT COUNT(*) FROM emp e, dept d WHERE e.did = d.id"
        )
        assert result.scalar() == 3

    def test_cross_join(self, join_db):
        result = join_db.execute("SELECT COUNT(*) FROM emp, dept")
        assert result.scalar() == 12

    def test_join_uses_pk_index(self, join_db):
        # dept.id has a PK index -> no auto-index should be built.
        from repro.retro.metrics import MetricsSink

        sink = MetricsSink()
        join_db.attach_metrics(sink)
        join_db.execute(
            "SELECT COUNT(*) FROM emp e, dept d WHERE e.did = d.id"
        )
        join_db.attach_metrics(None)
        assert sink.current.index_creation_seconds == 0.0

    def test_join_without_index_builds_auto_index(self, join_db):
        from repro.retro.metrics import MetricsSink

        sink = MetricsSink()
        join_db.attach_metrics(sink)
        join_db.execute(
            "SELECT COUNT(*) FROM dept d, emp e WHERE d.id = e.did "
            "AND d.name = 'eng'"
        )
        join_db.attach_metrics(None)
        assert sink.current.index_creation_seconds > 0.0

    def test_three_way_join(self, join_db):
        join_db.execute("CREATE TABLE loc (did INTEGER, city TEXT)")
        join_db.execute(
            "INSERT INTO loc VALUES (1, 'NYC'), (2, 'SF')"
        )
        result = join_db.execute(
            "SELECT e.eid, d.name, l.city FROM emp e, dept d, loc l "
            "WHERE e.did = d.id AND d.id = l.did ORDER BY e.eid"
        )
        assert result.rows == [
            (1, "eng", "NYC"), (2, "eng", "NYC"), (3, "ops", "SF"),
        ]

    def test_ambiguous_column(self, join_db):
        join_db.execute("CREATE TABLE emp2 (eid INTEGER)")
        with pytest.raises(PlanError):
            join_db.execute("SELECT eid FROM emp, emp2")

    def test_unknown_table(self, join_db):
        with pytest.raises(PlanError):
            join_db.execute("SELECT * FROM nonexistent")


class TestIndexSelection:
    def test_equality_uses_index(self, db):
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for i in range(0, 500, 50):
            db.execute(
                "INSERT INTO t VALUES " + ", ".join(
                    f"({j}, 'v{j}')" for j in range(i, i + 50)
                )
            )
        # Correctness of equality + range through the PK index.
        assert db.execute("SELECT v FROM t WHERE k = 250").scalar() == "v250"
        assert db.execute(
            "SELECT COUNT(*) FROM t WHERE k < 100").scalar() == 100
        assert db.execute(
            "SELECT COUNT(*) FROM t WHERE k >= 450").scalar() == 50
        assert db.execute(
            "SELECT COUNT(*) FROM t WHERE k BETWEEN 10 AND 19").scalar() == 10

    def test_secondary_index(self, db):
        db.execute("CREATE TABLE t (k INTEGER, grp TEXT)")
        db.execute(
            "INSERT INTO t VALUES " + ", ".join(
                f"({i}, 'g{i % 5}')" for i in range(100)
            )
        )
        db.execute("CREATE INDEX t_grp ON t (grp)")
        result = db.execute("SELECT COUNT(*) FROM t WHERE grp = 'g3'")
        assert result.scalar() == 20
