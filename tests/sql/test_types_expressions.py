"""SQL value semantics: three-valued logic, coercion, mixed-type order."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TypeMismatchError
from repro.sql.database import Database
from repro.sql.expressions import like_to_regex
from repro.sql.types import (
    coerce_for_column,
    compare,
    is_true,
    row_sort_key,
    sort_key,
    to_number,
    value_repr,
)


class TestCompare:
    def test_null_comparisons_are_null(self):
        assert compare(None, 1) is None
        assert compare("x", None) is None
        assert compare(None, None) is None

    def test_numeric_cross_type(self):
        assert compare(1, 1.0) == 0
        assert compare(1, 1.5) == -1
        assert compare(2.5, 2) == 1

    def test_cross_class(self):
        assert compare(10**9, "a") == -1   # numeric < text
        assert compare("zzz", b"") == -1   # text < blob

    def test_text(self):
        assert compare("abc", "abd") == -1
        assert compare("b", "ab") == 1


class TestTruthiness:
    @pytest.mark.parametrize("value,expected", [
        (None, False), (0, False), (1, True), (-1, True),
        (0.0, False), (0.1, True), ("0", False), ("1", True),
        ("abc", False), (b"x", True),
    ])
    def test_is_true(self, value, expected):
        assert is_true(value) == expected


class TestCoercion:
    def test_to_number(self):
        assert to_number("12") == 12
        assert to_number("1.5") == 1.5
        assert to_number(None) is None
        with pytest.raises(TypeMismatchError):
            to_number("abc")

    def test_column_affinity(self):
        assert coerce_for_column("5", "INTEGER") == 5
        assert coerce_for_column(5.0, "INTEGER") == 5
        assert coerce_for_column(5, "REAL") == 5.0
        assert coerce_for_column(5, "TEXT") == "5"
        assert coerce_for_column("keep", "INTEGER") == "keep"
        assert coerce_for_column(None, "INTEGER") is None
        assert coerce_for_column(b"raw", "") == b"raw"


class TestSorting:
    def test_mixed_type_sort(self):
        values = ["b", None, 2, b"z", 1.5, "a", None]
        ordered = sorted(values, key=sort_key)
        assert ordered == [None, None, 1.5, 2, "a", "b", b"z"]

    def test_row_sort_key(self):
        rows = [(1, "b"), (None, "a"), (1, "a")]
        ordered = sorted(rows, key=row_sort_key)
        assert ordered == [(None, "a"), (1, "a"), (1, "b")]

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.one_of(st.none(), st.integers(), st.text(max_size=5)),
                    max_size=10))
    def test_sort_total_order(self, values):
        ordered = sorted(values, key=sort_key)
        for left, right in zip(ordered, ordered[1:]):
            if left is None:
                continue
            assert right is not None
            assert compare(left, right) in (-1, 0)


class TestLike:
    @pytest.mark.parametrize("pattern,text,matches", [
        ("abc", "abc", True),
        ("abc", "ABC", True),  # SQLite LIKE is case-insensitive
        ("a%", "abcdef", True),
        ("%c", "abc", True),
        ("a_c", "abc", True),
        ("a_c", "abxc", False),
        ("%", "", True),
        ("a.c", "abc", False),  # regex metachars are literal
        ("50%", "50% off", True),  # % is the wildcard, not a literal
    ])
    def test_patterns(self, pattern, text, matches):
        assert bool(like_to_regex(pattern).match(text)) == matches


class TestValueRepr:
    def test_reprs(self):
        assert value_repr(None) == "NULL"
        assert value_repr(1) == "1"
        assert value_repr(1.25) == "1.25"
        assert value_repr(b"\xff") == "x'ff'"
        assert value_repr("x") == "x"


class TestThreeValuedLogicInSql:
    """Kleene logic through the full engine."""

    @pytest.fixture
    def tvl(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (NULL), (0), (1)")
        return db

    def test_and_or_with_null(self, tvl):
        # NULL AND 0 = 0 (false short-circuits), so NOT(...) is true.
        assert tvl.execute(
            "SELECT COUNT(*) FROM t WHERE NOT (a AND 0)").scalar() == 3
        # NULL OR 1 = 1.
        assert tvl.execute(
            "SELECT COUNT(*) FROM t WHERE a OR 1").scalar() == 3
        # NULL AND 1 = NULL -> filtered out.
        assert tvl.execute(
            "SELECT COUNT(*) FROM t WHERE a AND 1").scalar() == 1

    def test_not_null_is_null(self, tvl):
        assert tvl.execute(
            "SELECT COUNT(*) FROM t WHERE NOT a").scalar() == 1

    def test_in_with_null_member(self, tvl):
        # 0 IN (1, NULL) is NULL -> excluded; 1 IN (1, NULL) is true.
        assert tvl.execute(
            "SELECT COUNT(*) FROM t WHERE a IN (1, NULL)").scalar() == 1

    def test_arithmetic_null(self, tvl):
        rows = tvl.execute("SELECT a + 1 FROM t ORDER BY a").rows
        assert rows == [(None,), (1,), (2,)]

    def test_division(self, db):
        assert db.execute("SELECT 7 / 2").scalar() == 3
        assert db.execute("SELECT -7 / 2").scalar() == -3  # trunc to zero
        assert db.execute("SELECT 7.0 / 2").scalar() == 3.5
        assert db.execute("SELECT 1 / 0").scalar() is None
        assert db.execute("SELECT 5 % 3").scalar() == 2
