"""Lexer and parser tests."""

import pytest

from repro.errors import LexerError, ParseError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_expression, parse_one, parse_sql


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select Select SELECT")
        assert [t.value for t in tokens[:3]] == ["SELECT"] * 3

    def test_string_escaping(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3 1.5e-2 .5")
        assert [t.value for t in tokens[:5]] == [1, 2.5, 1000.0, 0.015, 0.5]

    def test_blob_literal(self):
        tokens = tokenize("x'00ff'")
        assert tokens[0].value == b"\x00\xff"

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- line comment\n 1 /* block */ + 2")
        values = [t.value for t in tokens if t.value is not None]
        assert values == ["SELECT", 1, "+", 2]

    def test_quoted_identifier(self):
        tokens = tokenize('"weird name"')
        assert tokens[0].value == "weird name"

    def test_operators(self):
        tokens = tokenize("<> <= >= != || = < >")
        assert [t.value for t in tokens[:8]] == [
            "<>", "<=", ">=", "!=", "||", "=", "<", ">",
        ]

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("SELECT @")


class TestSelectParsing:
    def test_simple(self):
        stmt = parse_one("SELECT a, b FROM t")
        assert isinstance(stmt, ast.Select)
        assert len(stmt.items) == 2
        assert stmt.source.name == "t"

    def test_star_and_table_star(self):
        stmt = parse_one("SELECT *, t.* FROM t")
        assert stmt.items[0].is_star
        assert stmt.items[1].star_table == "t"

    def test_aliases(self):
        stmt = parse_one("SELECT a AS x, b y FROM t u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.source.alias == "u"

    def test_as_of(self):
        stmt = parse_one("SELECT AS OF 3 * FROM t")
        assert isinstance(stmt.as_of, ast.Literal)
        assert stmt.as_of.value == 3

    def test_as_of_with_distinct(self):
        stmt = parse_one("SELECT AS OF 5 DISTINCT a FROM t")
        assert stmt.as_of.value == 5
        assert stmt.distinct

    def test_group_by_having_order_limit(self):
        stmt = parse_one(
            "SELECT a, COUNT(*) AS c FROM t WHERE a > 0 GROUP BY a "
            "HAVING c > 1 ORDER BY c DESC, a LIMIT 10 OFFSET 5"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending
        assert stmt.limit.value == 10
        assert stmt.offset.value == 5

    def test_joins(self):
        stmt = parse_one(
            "SELECT * FROM a, b JOIN c ON a.x = c.y"
        )
        join = stmt.source
        assert isinstance(join, ast.Join)
        assert join.right.name == "c"
        assert join.condition is not None

    def test_count_distinct(self):
        stmt = parse_one("SELECT COUNT(DISTINCT a) FROM t")
        call = stmt.items[0].expr
        assert call.distinct

    def test_no_from(self):
        stmt = parse_one("SELECT 1 + 2")
        assert stmt.source is None

    def test_trailing_semicolon(self):
        assert isinstance(parse_one("SELECT 1;"), ast.Select)

    def test_multiple_statements(self):
        stmts = parse_sql("SELECT 1; SELECT 2;")
        assert len(stmts) == 2

    def test_left_join_unsupported(self):
        with pytest.raises(ParseError):
            parse_one("SELECT * FROM a LEFT JOIN b ON a.x = b.x")


class TestOtherStatements:
    def test_insert_values(self):
        stmt = parse_one(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"
        )
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_one("INSERT INTO t SELECT * FROM u")
        assert stmt.select is not None

    def test_delete(self):
        stmt = parse_one("DELETE FROM t WHERE a = 1")
        assert stmt.table == "t"
        assert stmt.where is not None

    def test_update(self):
        stmt = parse_one("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert len(stmt.assignments) == 2

    def test_create_table(self):
        stmt = parse_one(
            "CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT NOT NULL, "
            "c REAL DEFAULT 0)"
        )
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null
        assert stmt.columns[2].default.value == 0

    def test_create_table_composite_pk(self):
        stmt = parse_one(
            "CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a, b))"
        )
        assert stmt.primary_key == ["a", "b"]

    def test_create_temp_table_as_select(self):
        stmt = parse_one("CREATE TEMP TABLE t AS SELECT a FROM u")
        assert stmt.temporary
        assert stmt.as_select is not None

    def test_create_index(self):
        stmt = parse_one("CREATE UNIQUE INDEX ix ON t (a, b)")
        assert stmt.unique
        assert stmt.columns == ["a", "b"]

    def test_drop_if_exists(self):
        assert parse_one("DROP TABLE IF EXISTS t").if_exists
        assert parse_one("DROP INDEX IF EXISTS i").if_exists

    def test_transaction_statements(self):
        assert isinstance(parse_one("BEGIN"), ast.Begin)
        assert isinstance(parse_one("BEGIN TRANSACTION"), ast.Begin)
        commit = parse_one("COMMIT WITH SNAPSHOT")
        assert commit.with_snapshot
        assert not parse_one("COMMIT").with_snapshot
        assert isinstance(parse_one("ROLLBACK"), ast.Rollback)

    def test_parse_errors(self):
        for bad in ("SELECT", "SELECT FROM t", "INSERT t", "FOO BAR",
                    "CREATE VIEW v", "SELECT * FROM"):
            with pytest.raises(ParseError):
                parse_one(bad)


class TestExpressionParsing:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_comparison_chain(self):
        expr = parse_expression("a = 1 AND b > 2 OR NOT c")
        assert expr.op == "OR"
        assert expr.left.op == "AND"

    def test_between_not_in_like(self):
        assert isinstance(parse_expression("a BETWEEN 1 AND 2"), ast.Between)
        expr = parse_expression("a NOT IN (1, 2)")
        assert isinstance(expr, ast.InList) and expr.negated
        expr = parse_expression("a NOT LIKE 'x%'")
        assert isinstance(expr, ast.Like) and expr.negated

    def test_is_null(self):
        assert isinstance(parse_expression("a IS NULL"), ast.IsNull)
        expr = parse_expression("a IS NOT NULL")
        assert expr.negated

    def test_case(self):
        expr = parse_expression(
            "CASE WHEN a = 1 THEN 'one' ELSE 'other' END"
        )
        assert isinstance(expr, ast.CaseExpr)
        assert expr.operand is None
        expr = parse_expression("CASE a WHEN 1 THEN 'x' END")
        assert expr.operand is not None

    def test_function_call(self):
        expr = parse_expression("coalesce(a, b, 0)")
        assert len(expr.args) == 3

    def test_qualified_column(self):
        expr = parse_expression("t.a")
        assert expr.table == "t" and expr.name == "a"

    def test_unary_minus(self):
        expr = parse_expression("-a * 2")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_concat(self):
        expr = parse_expression("a || b")
        assert expr.op == "||"
