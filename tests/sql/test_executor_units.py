"""Executor-layer unit tests: ResultSet, EphemeralIndex, IndexAccess."""

import pytest

from repro.errors import ExecutionError
from repro.sql.catalog import Column, IndexInfo, TableInfo
from repro.sql.executor import (
    EphemeralIndex,
    IndexAccess,
    ResultSet,
    TableAccess,
    TableWriter,
)
from repro.storage.btree import BTree
from repro.storage.disk import SimulatedDisk
from repro.storage.engine import StorageEngine


class TestResultSet:
    def test_scalar(self):
        assert ResultSet(["n"], [(5,)]).scalar() == 5

    def test_scalar_rejects_shapes(self):
        with pytest.raises(ExecutionError):
            ResultSet(["n"], []).scalar()
        with pytest.raises(ExecutionError):
            ResultSet(["a", "b"], [(1, 2)]).scalar()
        with pytest.raises(ExecutionError):
            ResultSet(["n"], [(1,), (2,)]).scalar()

    def test_first_and_len(self):
        result = ResultSet(["a"], [(1,), (2,)])
        assert result.first() == (1,)
        assert len(result) == 2
        assert ResultSet(["a"], []).first() is None

    def test_column_access(self):
        result = ResultSet(["a", "B"], [(1, "x"), (2, "y")])
        assert result.column("b") == ["x", "y"]
        with pytest.raises(ExecutionError):
            result.column("nope")

    def test_to_dicts(self):
        result = ResultSet(["a", "b"], [(1, "x")])
        assert result.to_dicts() == [{"a": 1, "b": "x"}]

    def test_iteration(self):
        assert list(ResultSet(["a"], [(1,), (2,)])) == [(1,), (2,)]


class TestEphemeralIndex:
    def test_add_lookup(self):
        index = EphemeralIndex()
        index.add(5, (5, "a"))
        index.add(5, (5, "b"))
        index.add(7, (7, "c"))
        assert sorted(index.lookup(5)) == [(5, "a"), (5, "b")]
        assert list(index.lookup(7)) == [(7, "c")]
        assert list(index.lookup(99)) == []

    def test_null_keys_skipped(self):
        index = EphemeralIndex()
        index.add(None, (None, "x"))
        assert list(index.lookup(None)) == []

    def test_mixed_value_types(self):
        index = EphemeralIndex()
        index.add("key", ("key", 1))
        index.add(2.5, (2.5, 2))
        assert list(index.lookup("key")) == [("key", 1)]
        assert list(index.lookup(2.5)) == [(2.5, 2)]

    def test_many_entries(self):
        index = EphemeralIndex()
        for i in range(2000):
            index.add(i % 50, (i,))
        assert len(list(index.lookup(7))) == 40


@pytest.fixture
def bound_table():
    engine = StorageEngine(SimulatedDisk(4096))
    txn = engine.begin()
    source = engine.page_source(txn)
    table_tree = BTree.create(source)
    index_tree = BTree.create(source)
    info = TableInfo(
        name="t", root_id=table_tree.root_id,
        columns=[Column("a", "INTEGER"), Column("b", "TEXT")],
    )
    index_info = IndexInfo(
        name="t_a", table="t", root_id=index_tree.root_id, columns=["a"],
    )
    table = TableAccess(info, source)
    index = IndexAccess(index_info, source)
    return table, index, TableWriter(table, [index])


class TestTableWriterUnits:
    def test_rowids_monotonic(self, bound_table):
        table, _, writer = bound_table
        first = writer.insert((1, "x"))
        second = writer.insert((2, "y"))
        assert second == first + 1
        assert table.get(first) == (1, "x")

    def test_delete_maintains_index(self, bound_table):
        table, index, writer = bound_table
        rowid = writer.insert((5, "z"))
        writer.insert((5, "other"))
        assert len(list(index.lookup_equal([5]))) == 2
        writer.delete(rowid)
        remaining = list(index.lookup_equal([5]))
        assert len(remaining) == 1
        assert table.get(remaining[0]) == (5, "other")

    def test_delete_missing_returns_false(self, bound_table):
        _, _, writer = bound_table
        assert writer.delete(999) is False

    def test_update_moves_index_entry(self, bound_table):
        table, index, writer = bound_table
        rowid = writer.insert((1, "x"))
        writer.update(rowid, (2, "x"))
        assert list(index.lookup_equal([1])) == []
        assert list(index.lookup_equal([2])) == [rowid]

    def test_index_range_lookup(self, bound_table):
        _, index, writer = bound_table
        for i in range(10):
            writer.insert((i, "v"))
        between = list(index.lookup_range([3], [6]))
        assert len(between) == 4  # 3, 4, 5, 6 inclusive
        below = list(index.lookup_range(None, [2]))
        assert len(below) == 3

    def test_arity_check(self, bound_table):
        _, _, writer = bound_table
        with pytest.raises(ExecutionError):
            writer.insert((1,))
