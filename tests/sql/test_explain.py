"""EXPLAIN: access-path plan reporting."""

import pytest

from repro.errors import SqlError


@pytest.fixture
def planned(db):
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, grp TEXT, n INTEGER)")
    db.execute("CREATE TABLE u (k INTEGER, label TEXT)")
    db.execute("INSERT INTO t VALUES (1, 'a', 10), (2, 'b', 20)")
    db.execute("INSERT INTO u VALUES (1, 'one'), (2, 'two')")
    return db


def plan(db, sql):
    return [row[0] for row in db.execute("EXPLAIN " + sql).rows]


def access_plan(notes):
    """The access-path lines, without the COST and SEMANTIC summaries."""
    return [n for n in notes
            if not n.startswith(("SEMANTIC:", "COST:"))]


class TestExplain:
    def test_seq_scan(self, planned):
        notes = plan(planned, "SELECT * FROM t")
        assert access_plan(notes) == ["SCAN t"]

    def test_pk_equality_search(self, planned):
        notes = plan(planned, "SELECT * FROM t WHERE k = 1")
        assert any("USING INDEX __pk_t (=)" in n for n in notes)

    def test_pk_range_search(self, planned):
        notes = plan(planned, "SELECT * FROM t WHERE k > 1")
        assert any("(range)" in n for n in notes)

    def test_secondary_index_preferred(self, planned):
        planned.execute("CREATE INDEX t_grp ON t (grp)")
        notes = plan(planned, "SELECT * FROM t WHERE grp = 'a'")
        assert any("t_grp" in n for n in notes)

    def test_join_with_native_index(self, planned):
        notes = plan(planned,
                     "SELECT * FROM u, t WHERE u.k = t.k")
        joined = " | ".join(notes)
        assert "SCAN u" in joined
        assert "USING INDEX __pk_t" in joined

    def test_join_without_index_uses_auto_index(self, planned):
        notes = plan(planned,
                     "SELECT * FROM t, u WHERE t.grp = 'a' "
                     "AND t.n = u.k")
        joined = " | ".join(notes)
        assert "AUTOMATIC COVERING INDEX" in joined

    def test_pipeline_stages(self, planned):
        notes = plan(planned,
                     "SELECT DISTINCT grp, COUNT(*) FROM t GROUP BY grp "
                     "ORDER BY grp LIMIT 1")
        joined = " | ".join(notes)
        assert "AGGREGATE" in joined
        assert "DISTINCT" in joined
        assert "ORDER BY" in joined
        assert "LIMIT" in joined

    def test_as_of_noted(self, planned):
        planned.executescript("BEGIN; COMMIT WITH SNAPSHOT;")
        notes = plan(planned, "SELECT AS OF 1 * FROM t")
        assert notes[0].startswith("AS OF snapshot")

    def test_explain_does_not_execute(self, planned):
        calls = []
        planned.register_function("probe", lambda v: calls.append(v) or v)
        planned.execute("EXPLAIN SELECT probe(k) FROM t")
        assert calls == []

    def test_explain_non_select_rejected(self, planned):
        with pytest.raises(SqlError):
            planned.execute("EXPLAIN DELETE FROM t")


class TestExplainSemantics:
    """The rqlint summary appended to every EXPLAIN."""

    def test_read_set_and_merge_class(self, planned):
        notes = plan(planned, "SELECT grp FROM t WHERE n > 5")
        joined = " | ".join(notes)
        assert "SEMANTIC: reads t(" in joined
        assert "grp" in joined and "n" in joined
        assert any(n.startswith("SEMANTIC: merge class concat")
                   for n in notes)

    def test_pushdown_reports_index_and_candidate(self, planned):
        planned.execute("CREATE INDEX t_grp ON t (grp)")
        notes = plan(planned,
                     "SELECT * FROM t WHERE grp = 'a' AND n > 5")
        joined = " | ".join(notes)
        assert "SEMANTIC: pushdown grp = 'a' [index t_grp]" in joined
        assert "SEMANTIC: pushdown n > 5 [full scan; " \
               "index candidate t(n)]" in joined

    def test_join_predicate_not_pushable(self, planned):
        notes = plan(planned, "SELECT * FROM t, u WHERE t.k = u.k")
        assert any(n.startswith("SEMANTIC: join predicate t.k = u.k")
                   for n in notes)

    def test_monoid_classification(self, planned):
        notes = plan(planned, "SELECT COUNT(*) FROM t")
        assert any(n.startswith("SEMANTIC: merge class monoid")
                   for n in notes)

    def test_stored_row_classification(self, planned):
        notes = plan(planned,
                     "SELECT grp, SUM(n) FROM t GROUP BY grp")
        assert any(n.startswith("SEMANTIC: merge class stored-row")
                   for n in notes)

    def test_serial_only_classification(self, planned):
        notes = plan(planned, "SELECT GROUP_CONCAT(grp) FROM t")
        assert any(n.startswith("SEMANTIC: merge class serial-only")
                   for n in notes)

    def test_semantic_lines_follow_access_plan(self, planned):
        notes = plan(planned, "SELECT * FROM t WHERE k = 1")
        first_semantic = next(
            i for i, n in enumerate(notes) if n.startswith("SEMANTIC:"))
        assert all(n.startswith("SEMANTIC:")
                   for n in notes[first_semantic:])

    def test_semantics_do_not_execute(self, planned):
        calls = []
        planned.register_function("probe", lambda v: calls.append(v) or v)
        notes = plan(planned, "SELECT probe(k) FROM t WHERE n > 1")
        assert calls == []
        assert any(n.startswith("SEMANTIC:") for n in notes)


class TestExplainCost:
    """The PLAN/COST section appended to every EXPLAIN."""

    def test_unified_section_order(self, planned):
        # access plan, then pipeline stages, then COST, then SEMANTIC —
        # one unified report per query.
        planned.execute("ANALYZE")
        notes = plan(planned,
                     "SELECT grp, COUNT(*) FROM t WHERE k > 0 "
                     "GROUP BY grp")
        kinds = []
        for note in notes:
            if note.startswith("COST:"):
                kinds.append("cost")
            elif note.startswith("SEMANTIC:"):
                kinds.append("semantic")
            else:
                kinds.append("access")
        assert kinds == sorted(
            kinds, key=["access", "cost", "semantic"].index)
        assert kinds.count("cost") == 1

    def test_cost_line_per_from_table(self, planned):
        planned.execute("ANALYZE")
        notes = plan(planned, "SELECT * FROM u, t WHERE u.k = t.k")
        costed = [n for n in notes if n.startswith("COST:")]
        assert len(costed) == 2
        assert costed[0].startswith("COST: u ")
        assert costed[1].startswith("COST: t ")

    def test_heuristic_cost_line_without_stats(self, planned):
        notes = plan(planned, "SELECT * FROM t")
        assert "COST: t no statistics (heuristic access path)" in notes

    def test_explain_does_not_mutate_statistics(self, planned):
        planned.execute("ANALYZE")
        before = planned.execute(
            "SELECT * FROM __rql_stats ORDER BY tbl, col").rows
        planned.execute("EXPLAIN SELECT * FROM t WHERE k = 1")
        planned.execute("EXPLAIN SELECT COUNT(*) FROM u")
        after = planned.execute(
            "SELECT * FROM __rql_stats ORDER BY tbl, col").rows
        assert after == before

    def test_explain_estimates_go_stale_not_refreshed(self, planned):
        # EXPLAIN reads the catalog, never re-gathers: after the table
        # doubles, estimates still reflect the last ANALYZE.
        planned.execute("ANALYZE")
        planned.execute("INSERT INTO t VALUES (3, 'c', 30), (4, 'd', 40)")
        (line,) = [n for n in plan(planned, "SELECT * FROM t")
                   if n.startswith("COST:")]
        assert "est. rows 2" in line

    def test_explain_costing_does_not_execute(self, planned):
        planned.execute("ANALYZE")
        calls = []
        planned.register_function("probe", lambda v: calls.append(v) or v)
        notes = plan(planned, "SELECT probe(k) FROM t WHERE k > 0")
        assert calls == []
        assert any(n.startswith("COST:") for n in notes)
