"""Catalog unit tests: schema persistence inside pages."""

import pytest

from repro.errors import CatalogError
from repro.sql.catalog import Catalog, Column, IndexInfo, TableInfo
from repro.storage.btree import BTree
from repro.storage.disk import SimulatedDisk
from repro.storage.engine import StorageEngine


@pytest.fixture
def catalog_env():
    engine = StorageEngine(SimulatedDisk(4096))
    txn = engine.begin()
    source = engine.page_source(txn)
    tree = BTree.create(source)
    return engine, txn, Catalog(source, tree.root_id), tree.root_id


def table_info(name="t", root=5):
    return TableInfo(
        name=name, root_id=root,
        columns=[Column("a", "INTEGER"), Column("b", "")],
        primary_key=["a"],
    )


class TestTables:
    def test_create_get_round_trip(self, catalog_env):
        _, _, catalog, _ = catalog_env
        catalog.create_table(table_info())
        info = catalog.get_table("t")
        assert info is not None
        assert info.name == "t"
        assert info.root_id == 5
        assert info.column_names() == ["a", "b"]
        assert info.columns[0].type_name == "INTEGER"
        assert info.columns[1].type_name == ""
        assert info.primary_key == ["a"]

    def test_case_insensitive_lookup(self, catalog_env):
        _, _, catalog, _ = catalog_env
        catalog.create_table(table_info("MixedCase"))
        assert catalog.get_table("mixedcase") is not None
        assert catalog.get_table("MIXEDCASE").name == "MixedCase"

    def test_duplicate_rejected(self, catalog_env):
        _, _, catalog, _ = catalog_env
        catalog.create_table(table_info())
        with pytest.raises(CatalogError):
            catalog.create_table(table_info())

    def test_drop(self, catalog_env):
        _, _, catalog, _ = catalog_env
        catalog.create_table(table_info())
        dropped = catalog.drop_table("T")
        assert dropped.name == "t"
        assert catalog.get_table("t") is None
        with pytest.raises(CatalogError):
            catalog.drop_table("t")

    def test_list_tables(self, catalog_env):
        _, _, catalog, _ = catalog_env
        for name in ("zeta", "alpha", "mid"):
            catalog.create_table(table_info(name))
        assert sorted(t.name for t in catalog.list_tables()) == \
            ["alpha", "mid", "zeta"]

    def test_column_index(self, catalog_env):
        _, _, catalog, _ = catalog_env
        catalog.create_table(table_info())
        info = catalog.get_table("t")
        assert info.column_index("B") == 1
        assert info.has_column("a")
        assert not info.has_column("zz")
        with pytest.raises(CatalogError):
            info.column_index("zz")

    def test_zero_column_table(self, catalog_env):
        _, _, catalog, _ = catalog_env
        catalog.create_table(TableInfo(name="empty", root_id=9, columns=[]))
        info = catalog.get_table("empty")
        assert info.columns == []


class TestIndexes:
    def test_create_get_drop(self, catalog_env):
        _, _, catalog, _ = catalog_env
        catalog.create_index(IndexInfo(
            name="ix", table="t", root_id=7, columns=["a", "b"],
            unique=True,
        ))
        info = catalog.get_index("IX")
        assert info.columns == ["a", "b"]
        assert info.unique
        catalog.drop_index("ix")
        assert catalog.get_index("ix") is None
        with pytest.raises(CatalogError):
            catalog.drop_index("ix")

    def test_indexes_for_table(self, catalog_env):
        _, _, catalog, _ = catalog_env
        catalog.create_index(IndexInfo("i1", "t", 7, ["a"]))
        catalog.create_index(IndexInfo("i2", "T", 8, ["b"]))
        catalog.create_index(IndexInfo("other", "u", 9, ["x"]))
        found = catalog.indexes_for("t")
        assert sorted(i.name for i in found) == ["i1", "i2"]

    def test_duplicate_index_rejected(self, catalog_env):
        _, _, catalog, _ = catalog_env
        catalog.create_index(IndexInfo("ix", "t", 7, ["a"]))
        with pytest.raises(CatalogError):
            catalog.create_index(IndexInfo("ix", "u", 8, ["b"]))


class TestPersistence:
    def test_catalog_survives_commit_and_reread(self, catalog_env):
        engine, txn, catalog, root = catalog_env
        catalog.create_table(table_info())
        catalog.create_index(IndexInfo("ix", "t", 7, ["a"]))
        engine.commit(txn)
        ctx = engine.begin_read()
        reread = Catalog(engine.read_source(ctx), root)
        assert reread.get_table("t") is not None
        assert reread.get_index("ix") is not None
        ctx.close()
