"""Cost-based planning: index-vs-scan crossover, join order from
estimated cardinalities, and heuristic equivalence without statistics."""

import pytest


def explain(db, sql):
    return [row[0] for row in db.execute("EXPLAIN " + sql).rows]


def access(db, sql):
    return [n for n in explain(db, sql)
            if not n.startswith(("SEMANTIC:", "COST:"))]


@pytest.fixture
def scaled(db):
    db.execute("CREATE TABLE big (k INTEGER PRIMARY KEY, grp TEXT, "
               "pad TEXT)")
    db.execute("CREATE TABLE small (k INTEGER PRIMARY KEY, label TEXT)")
    db.executescript("BEGIN;" + "".join(
        f"INSERT INTO big VALUES ({i}, 'g{i % 10}', "
        f"'padding-padding-{i:05d}');"
        for i in range(500)) + "COMMIT;")
    db.executescript("BEGIN;" + "".join(
        f"INSERT INTO small VALUES ({i}, 'label-{i}');"
        for i in range(5)) + "COMMIT;")
    db.execute("ANALYZE")
    return db


class TestCrossover:
    """Figure-9 style: the access path flips as selectivity tightens."""

    def test_point_lookup_uses_index(self, scaled):
        notes = explain(scaled, "SELECT pad FROM big WHERE k = 250")
        assert "SEARCH big USING INDEX __pk_big (=)" in notes

    def test_narrow_range_uses_index(self, scaled):
        notes = explain(
            scaled, "SELECT pad FROM big WHERE k BETWEEN 10 AND 12")
        assert "SEARCH big USING INDEX __pk_big (range)" in notes

    def test_wide_range_uses_seq_scan(self, scaled):
        notes = explain(
            scaled, "SELECT pad FROM big WHERE k BETWEEN 10 AND 400")
        assert "SCAN big" in notes
        assert any("via seq scan" in n for n in notes)

    def test_unfiltered_scan_estimates_full_table(self, scaled):
        (line,) = [n for n in explain(scaled, "SELECT k FROM big")
                   if n.startswith("COST:")]
        assert "est. rows 500" in line

    def test_index_cost_below_scan_cost_when_chosen(self, scaled):
        notes = explain(scaled, "SELECT pad FROM big WHERE k = 250")
        (line,) = [n for n in notes if n.startswith("COST:")]
        # probe (1) + one fetched row (1.01): far under ~13 pages.
        assert "cost 2.01" in line

    def test_results_identical_across_crossover(self, scaled):
        # The flip is a physical choice only: same rows either way.
        narrow = scaled.execute(
            "SELECT k, pad FROM big WHERE k BETWEEN 10 AND 12").rows
        assert narrow == [(i, f"padding-padding-{i:05d}")
                          for i in (10, 11, 12)]
        wide = scaled.execute(
            "SELECT COUNT(*) FROM big WHERE k BETWEEN 10 AND 400").rows
        assert wide == [(391,)]


class TestJoinOrdering:
    def test_smaller_table_becomes_outer(self, scaled):
        # Heuristics keep FROM order (big first); estimated
        # cardinalities put small (5 rows) on the outside.
        notes = access(
            scaled, "SELECT label FROM big, small WHERE big.k = small.k")
        assert notes[0] == "SCAN small"
        assert "USING INDEX __pk_big" in notes[1]

    def test_filtered_cardinality_drives_outer_choice(self, scaled):
        # An equality filter on big (1/500) makes it smaller than
        # small's 5 rows, overriding raw table sizes.
        notes = access(
            scaled,
            "SELECT label FROM small, big "
            "WHERE big.k = small.k AND big.k = 3")
        assert notes[0].startswith("SEARCH big")

    def test_join_cost_lines_cover_every_step(self, scaled):
        notes = explain(
            scaled, "SELECT label FROM big, small WHERE big.k = small.k")
        costed = [n for n in notes if n.startswith("COST:")]
        assert len(costed) == 2
        assert any("join" in n for n in costed)


class TestHeuristicEquivalence:
    """Without statistics the reworked planner must reproduce the
    original fixed heuristics line for line."""

    CASES = (
        "SELECT * FROM t",
        "SELECT * FROM t WHERE k = 1",
        "SELECT * FROM t WHERE k > 1",
        "SELECT * FROM t WHERE grp = 'a' AND n > 5",
        "SELECT * FROM u, t WHERE u.k = t.k",
        "SELECT * FROM t, u WHERE t.grp = 'a' AND t.n = u.k",
        "SELECT * FROM t, u",
    )

    @pytest.fixture
    def unanalyzed(self, db):
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, grp TEXT, "
                   "n INTEGER)")
        db.execute("CREATE TABLE u (k INTEGER, label TEXT)")
        db.execute("INSERT INTO t VALUES (1,'a',10), (2,'b',20)")
        db.execute("INSERT INTO u VALUES (1,'one'), (2,'two')")
        return db

    @pytest.mark.parametrize("sql", CASES)
    def test_heuristic_notes(self, unanalyzed, sql):
        expected = {
            "SELECT * FROM t": ["SCAN t"],
            "SELECT * FROM t WHERE k = 1":
                ["SEARCH t USING INDEX __pk_t (=)"],
            "SELECT * FROM t WHERE k > 1":
                ["SEARCH t USING INDEX __pk_t (range)"],
            "SELECT * FROM t WHERE grp = 'a' AND n > 5": ["SCAN t"],
            "SELECT * FROM u, t WHERE u.k = t.k":
                ["SCAN u", "SEARCH t USING INDEX __pk_t (k=?)"],
            "SELECT * FROM t, u WHERE t.grp = 'a' AND t.n = u.k":
                ["SCAN t",
                 "SEARCH u USING AUTOMATIC COVERING INDEX (k=?)"],
            "SELECT * FROM t, u": ["SCAN t", "CROSS JOIN u"],
        }
        assert access(unanalyzed, sql) == expected[sql]

    def test_every_step_reports_heuristic_cost(self, unanalyzed):
        notes = explain(unanalyzed,
                        "SELECT * FROM u, t WHERE u.k = t.k")
        costed = [n for n in notes if n.startswith("COST:")]
        assert costed == [
            "COST: u no statistics (heuristic access path)",
            "COST: t no statistics (heuristic access path)",
        ]


class TestStaticPlanningPurity:
    def test_static_plan_is_deterministic(self):
        from repro.sql.parser import parse_sql
        from repro.sql.planner import render_plan
        from repro.sql.semantic import StaticSchema
        from repro.sql.stats import ColumnStats, DeclaredStats, TableStats

        schema = StaticSchema.from_ddl(
            "CREATE TABLE t (k INTEGER PRIMARY KEY, n INTEGER)")
        stats = DeclaredStats([TableStats(
            table="t", snapshot_id=1, row_count=400, page_count=20,
            columns={"k": ColumnStats(column="k", distinct=400,
                                      min_value=1, max_value=400)})])
        select = parse_sql("SELECT n FROM t WHERE k = 7")[0]
        first = render_plan(select, schema, stats)
        assert first == render_plan(select, schema, stats)
        assert first[0] == "SEARCH t USING INDEX __pk_t (=)"

    def test_static_matches_live_explain(self, db):
        # The same pure planner serves EXPLAIN and the static path.
        from repro.sql.parser import parse_sql
        from repro.sql.planner import render_plan
        from repro.sql.semantic import CatalogSchema
        from repro.sql.stats import DeclaredStats

        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, n INTEGER)")
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        live = [n for n in explain(db, "SELECT n FROM t WHERE k = 1")
                if not n.startswith("SEMANTIC:")]
        select = parse_sql("SELECT n FROM t WHERE k = 1")[0]
        static = render_plan(select, CatalogSchema(db), DeclaredStats())
        assert static == live
