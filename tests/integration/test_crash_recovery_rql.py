"""Crash-recovery at the RQL level: histories survive power loss.

The storage tests cover WAL/Maplog replay mechanics; these tests verify
the property a user cares about — after a crash at an arbitrary point
in a snapshot history, every declared snapshot still answers AS OF
queries and RQL mechanisms exactly as before.
"""

import pytest

from repro.core import RQLSession
from repro.sql.database import Database
from repro.storage.disk import SimulatedDisk


def build_history(db, snapshots, checkpoint_every=None):
    """A tiny account-balance history; returns expected sums by sid."""
    db.execute("CREATE TABLE accounts (id INTEGER PRIMARY KEY, "
               "balance INTEGER)")
    db.execute("INSERT INTO accounts VALUES " + ", ".join(
        f"({i}, {i * 100})" for i in range(1, 21)
    ))
    expected = {}
    for round_no in range(1, snapshots + 1):
        db.execute("BEGIN")
        db.execute(f"UPDATE accounts SET balance = balance + 1 "
                   f"WHERE id <= {round_no}")
        sid = int(db.execute("COMMIT WITH SNAPSHOT").scalar())
        expected[sid] = db.execute(
            "SELECT SUM(balance) FROM accounts").scalar()
        if checkpoint_every and round_no % checkpoint_every == 0:
            db.checkpoint()
    return expected


@pytest.mark.parametrize("checkpoint_every", [None, 2])
def test_snapshots_survive_crash(checkpoint_every):
    disk = SimulatedDisk(4096)
    db = Database(disk=disk, auto_checkpoint_on_snapshot=False)
    expected = build_history(db, 6, checkpoint_every=checkpoint_every)
    current = db.execute("SELECT SUM(balance) FROM accounts").scalar()
    db.engine.crash()
    db.aux_engine.crash()

    recovered = Database(disk=disk)
    assert recovered.execute(
        "SELECT SUM(balance) FROM accounts").scalar() == current
    for sid, total in expected.items():
        assert recovered.execute(
            f"SELECT AS OF {sid} SUM(balance) FROM accounts"
        ).scalar() == total, f"snapshot {sid}"


def test_rql_mechanisms_after_recovery():
    disk = SimulatedDisk(4096)
    aux_disk = SimulatedDisk(4096)
    db = Database(disk=disk, aux_disk=aux_disk)
    session = RQLSession(db=db)
    session.execute("CREATE TABLE LoggedIn (l_userid TEXT, l_country TEXT)")
    session.execute("INSERT INTO LoggedIn VALUES ('A', 'US'), ('B', 'UK')")
    session.declare_snapshot()
    session.execute("BEGIN")
    session.execute("DELETE FROM LoggedIn WHERE l_userid = 'A'")
    session.commit_with_snapshot()

    db.engine.crash()
    db.aux_engine.crash()

    recovered = RQLSession(db=Database(disk=disk, aux_disk=aux_disk))
    # SnapIds (aux engine) survived; mechanisms run over the history.
    assert recovered.snapids.all_ids() == [1, 2]
    recovered.collate_data(
        "SELECT snap_id FROM SnapIds",
        "SELECT l_userid, current_snapshot() FROM LoggedIn",
        "R",
    )
    rows = sorted(recovered.execute('SELECT * FROM "R"').rows)
    assert rows == [("A", 1), ("B", 1), ("B", 2)]


def test_history_extends_after_recovery():
    disk = SimulatedDisk(4096)
    db = Database(disk=disk)
    build_history(db, 3)
    db.engine.crash()
    db.aux_engine.crash()

    recovered = Database(disk=disk)
    recovered.execute("BEGIN")
    recovered.execute("UPDATE accounts SET balance = 0 WHERE id = 1")
    new_sid = int(recovered.execute("COMMIT WITH SNAPSHOT").scalar())
    assert new_sid == 4
    # Old snapshots unaffected; new snapshot reflects the update.
    assert recovered.execute(
        "SELECT AS OF 3 balance FROM accounts WHERE id = 1"
    ).scalar() > 0
    assert recovered.execute(
        f"SELECT AS OF {new_sid} balance FROM accounts WHERE id = 1"
    ).scalar() == 0


def test_double_crash_between_snapshots():
    disk = SimulatedDisk(4096)
    db = Database(disk=disk)
    build_history(db, 2)
    for _ in range(2):
        db.engine.crash()
        db.aux_engine.crash()
        db = Database(disk=disk)
        db.execute("BEGIN")
        db.execute("UPDATE accounts SET balance = balance + 7 "
                   "WHERE id = 5")
        db.execute("COMMIT WITH SNAPSHOT")
    assert db.latest_snapshot_id == 4
    balances = [
        db.execute(
            f"SELECT AS OF {sid} balance FROM accounts WHERE id = 5"
        ).scalar()
        for sid in (2, 3, 4)
    ]
    assert balances[1] == balances[0] + 7
    assert balances[2] == balances[1] + 7
