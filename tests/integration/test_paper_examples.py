"""End-to-end replays of the paper's figures and examples.

Figure 1: LoggedIn table contents in snapshots 1-3.
Figure 2: the SnapIds table.
Figure 3: the Retro SQL command sequence.
Section 2: every worked RQL example.
Section 3: the UDF rewrite example.
"""

from repro.core import RQLSession
from repro.core.rewrite import rewrite_qq
from repro.workloads.loggedin import PAPER_SNAPSHOTS, setup_paper_example


class TestFigure1:
    def test_snapshot_contents(self, paper_session):
        s = paper_session
        for sid, (_, expected_users) in enumerate(PAPER_SNAPSHOTS, start=1):
            rows = s.execute(
                f"SELECT AS OF {sid} l_userid FROM LoggedIn"
            ).rows
            assert sorted(r[0] for r in rows) == sorted(expected_users)

    def test_snapshot2_excludes_usera(self, paper_session):
        """The snapshot reflects the declaring transaction's DELETE."""
        rows = paper_session.execute(
            "SELECT AS OF 2 * FROM LoggedIn WHERE l_userid = 'UserA'"
        ).rows
        assert rows == []

    def test_full_rows_snapshot1(self, paper_session):
        rows = sorted(paper_session.execute(
            "SELECT AS OF 1 * FROM LoggedIn").rows)
        assert rows == [
            ("UserA", "2008-11-09 13:23:44", "USA"),
            ("UserB", "2008-11-09 15:45:21", "UK"),
            ("UserC", "2008-11-09 15:45:21", "USA"),
        ]


class TestFigure2:
    def test_snapids_table(self, paper_session):
        rows = paper_session.execute(
            "SELECT snap_id, snap_ts FROM SnapIds ORDER BY snap_id"
        ).rows
        assert rows == [
            (1, "2008-11-09 23:59:59"),
            (2, "2008-11-10 23:59:59"),
            (3, "2008-11-11 23:59:59"),
        ]


class TestFigure3:
    def test_line9_retrospective_vs_line10_current(self, paper_session):
        s = paper_session
        retro = sorted(s.execute("SELECT AS OF 1 * FROM LoggedIn").rows)
        current = sorted(s.execute("SELECT * FROM LoggedIn").rows)
        assert [r[0] for r in retro] == ["UserA", "UserB", "UserC"]
        assert [r[0] for r in current] == ["UserB", "UserC", "UserD"]


class TestSection3Rewrite:
    def test_example_rewrite(self):
        qq = ("SELECT DISTINCT current_snapshot() FROM LoggedIn\n"
              "WHERE l_userid = 'UserB';")
        assert rewrite_qq(qq, 42) == (
            "SELECT AS OF 42 DISTINCT 42 FROM LoggedIn\n"
            "WHERE l_userid = 'UserB'"
        )


class TestFreshSetup:
    def test_setup_is_reproducible(self):
        a, b = RQLSession(), RQLSession()
        setup_paper_example(a)
        setup_paper_example(b)
        for sid in (1, 2, 3):
            assert sorted(a.execute(
                f"SELECT AS OF {sid} * FROM LoggedIn").rows) == \
                sorted(b.execute(
                    f"SELECT AS OF {sid} * FROM LoggedIn").rows)
