"""Mechanism-equivalence properties (DESIGN.md §5).

These are the semantic pillars of RQL:

* AggregateDataInTable(Qs, Qq, (c, f)) == running plain SQL
  ``SELECT groupcols, f(c) FROM <CollateData result> GROUP BY groupcols``
  — the paper's own Figure 11 setup;
* CollateDataIntoIntervals expanded back over [start, end] ==
  the CollateData multiset;
* AggregateDataInVariable == folding the per-snapshot scalars collected
  by CollateData.

They run on randomized LoggedIn histories, so they exercise arbitrary
insert/delete interleavings.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RQLSession
from repro.workloads import LoggedInSimulator


def churned_session(seed, snapshots, logins=12, logouts=8):
    session = RQLSession()
    sim = LoggedInSimulator(session, users=40, seed=seed)
    for _ in range(snapshots):
        sim.churn_and_snapshot(logins, logouts)
    return session


@pytest.fixture(scope="module")
def churned():
    return churned_session(seed=5, snapshots=8)


QS = "SELECT snap_id FROM SnapIds"


class TestAggTableEqualsSqlOverCollate:
    @pytest.mark.parametrize("func,sql_func", [
        ("max", "MAX"), ("min", "MIN"), ("sum", "SUM"), ("avg", "AVG"),
    ])
    def test_count_per_country(self, churned, func, sql_func):
        s = churned
        qq = ("SELECT l_country, COUNT(*) AS c FROM LoggedIn "
              "GROUP BY l_country")
        s.aggregate_data_in_table(QS, qq, "AggT", [("c", func)])
        s.collate_data(QS, qq, "Coll")
        expected = dict(s.execute(
            f'SELECT l_country, {sql_func}(c) FROM "Coll" '
            f"GROUP BY l_country"
        ).rows)
        got = dict(s.execute('SELECT l_country, c FROM "AggT"').rows)
        assert set(got) == set(expected)
        for country in expected:
            assert got[country] == pytest.approx(expected[country])

    def test_count_aggregation_counts_snapshots(self, churned):
        s = churned
        qq = ("SELECT l_country, COUNT(*) AS c FROM LoggedIn "
              "GROUP BY l_country")
        s.aggregate_data_in_table(QS, qq, "AggC", [("c", "count")])
        s.collate_data(QS, qq, "CollC")
        expected = dict(s.execute(
            'SELECT l_country, COUNT(c) FROM "CollC" GROUP BY l_country'
        ).rows)
        got = dict(s.execute('SELECT l_country, c FROM "AggC"').rows)
        assert got == expected


class TestIntervalsExpandToCollate:
    def test_expansion_equals_multiset(self, churned):
        s = churned
        qq = "SELECT l_userid, l_country FROM LoggedIn"
        s.collate_data(
            QS,
            "SELECT l_userid, l_country, current_snapshot() FROM LoggedIn",
            "CollFull",
        )
        s.collate_data_into_intervals(QS, qq, "Ivl")
        collated = Counter(s.execute('SELECT * FROM "CollFull"').rows)
        expanded = Counter()
        for user, country, start, end in \
                s.execute('SELECT * FROM "Ivl"').rows:
            for sid in range(start, end + 1):
                expanded[(user, country, sid)] += 1
        assert expanded == collated

    def test_intervals_are_disjoint_per_record(self, churned):
        s = churned
        s.collate_data_into_intervals(
            QS, "SELECT l_userid FROM LoggedIn", "Ivl2",
        )
        by_user = {}
        for user, start, end in s.execute('SELECT * FROM "Ivl2"').rows:
            assert start <= end
            by_user.setdefault(user, []).append((start, end))
        for user, intervals in by_user.items():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                # Non-overlapping AND non-adjacent (adjacent would have
                # been merged into one interval).
                assert e1 + 1 < s2, f"{user}: {intervals}"


class TestAggVariableEqualsFoldOverCollate:
    @pytest.mark.parametrize("func", ["min", "max", "sum", "count", "avg"])
    def test_scalar_fold(self, churned, func):
        s = churned
        qq = "SELECT COUNT(*) FROM LoggedIn"
        s.aggregate_data_in_variable(QS, qq, "V", func)
        got = s.execute('SELECT * FROM "V"').scalar()
        s.collate_data(
            QS, "SELECT COUNT(*) AS n FROM LoggedIn", "CollV",
        )
        sql_func = {"min": "MIN", "max": "MAX", "sum": "SUM",
                    "count": "COUNT", "avg": "AVG"}[func]
        expected = s.execute(
            f'SELECT {sql_func}(n) FROM "CollV"'
        ).scalar()
        assert got == pytest.approx(expected)


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10**6),
       st.integers(min_value=2, max_value=6))
def test_equivalences_hold_on_random_histories(seed, snapshots):
    """Property form over random churn histories."""
    s = churned_session(seed=seed, snapshots=snapshots,
                        logins=6, logouts=4)
    qq = ("SELECT l_country, COUNT(*) AS c FROM LoggedIn "
          "GROUP BY l_country")
    s.aggregate_data_in_table(QS, qq, "A", [("c", "max")])
    s.collate_data(QS, qq, "C")
    expected = dict(s.execute(
        'SELECT l_country, MAX(c) FROM "C" GROUP BY l_country'
    ).rows)
    got = dict(s.execute('SELECT l_country, c FROM "A"').rows)
    assert got == expected

    s.collate_data_into_intervals(QS, "SELECT l_userid FROM LoggedIn", "I")
    s.collate_data(
        QS, "SELECT l_userid, current_snapshot() FROM LoggedIn", "CF",
    )
    collated = Counter(s.execute('SELECT * FROM "CF"').rows)
    expanded = Counter()
    for user, start, end in s.execute('SELECT * FROM "I"').rows:
        for sid in range(start, end + 1):
            expanded[(user, sid)] += 1
    assert expanded == collated
