"""Unit tests for the fault-injection mechanics and checksummed logs.

The crash sweep (test_crash_sweep.py) and corruption properties
(test_corruption_props.py) exercise end-to-end recovery; these tests pin
the injection primitives themselves — crash scheduling, torn-write
determinism, power-off semantics — and the truncate-don't-guess rules of
the block-log reader and Maplog tail repair.
"""

import pytest

from repro.errors import (
    CorruptPageError,
    SimulatedCrash,
    StorageError,
    TornWriteError,
)
from repro.retro.maplog import Maplog, MapEntry
from repro.storage.chaosdisk import (
    ChaosController,
    ChaosDisk,
    corrupt_slot,
    flip_bit,
    tear_slot,
    truncate_file,
)
from repro.storage.logfile import (
    BlockLogReader,
    BlockLogWriter,
    LogScanStatus,
    payload_capacity,
)

PAGE = 64


def _page(fill):
    return bytes([fill & 0xFF]) * PAGE


# -- crash scheduling -----------------------------------------------------

def test_clean_crash_persists_nothing_at_the_boundary():
    disk = ChaosDisk(PAGE)
    f = disk.open_file("f")
    disk.schedule_crash(at_write=3)
    f.write(0, _page(1))
    f.write(1, _page(2))
    with pytest.raises(SimulatedCrash):
        f.write(2, _page(3))
    assert len(f) == 2  # the crashing write left no trace
    assert disk.chaos.powered_off
    assert "clean crash" in disk.chaos.last_event


def test_torn_crash_persists_a_strict_prefix():
    disk = ChaosDisk(PAGE, seed=7)
    f = disk.open_file("f")
    disk.schedule_crash(at_write=1, tear=True)
    image = _page(0xAB)
    with pytest.raises(SimulatedCrash):
        f.write(0, image)
    torn = f.read(0)
    assert len(torn) == PAGE
    assert torn != image
    # Some non-empty prefix of the real bytes survived.
    keep = 0
    while keep < PAGE and torn[keep] == 0xAB:
        keep += 1
    assert 1 <= keep < PAGE
    assert "torn crash" in disk.chaos.last_event


def test_torn_bytes_are_deterministic_in_seed():
    def run(seed):
        disk = ChaosDisk(PAGE, seed=seed)
        f = disk.open_file("f")
        disk.schedule_crash(at_write=2, tear=True)
        f.append(_page(1))
        with pytest.raises(SimulatedCrash):
            f.append(_page(2))
        return f.read(1)

    assert run(42) == run(42)


def test_powered_off_device_drops_writes_silently():
    disk = ChaosDisk(PAGE)
    f = disk.open_file("f")
    disk.schedule_crash(at_write=1)
    with pytest.raises(SimulatedCrash):
        f.append(_page(1))
    # After the crash, writes vanish without error (in-memory state is
    # about to be discarded; a dead device persists nothing).
    f.append(_page(2))
    f.write(0, _page(3))
    assert len(f) == 0
    assert disk.chaos.dropped_writes == 2
    disk.power_on()
    f.append(_page(4))
    assert len(f) == 1 and f.read(0) == _page(4)


def test_shared_controller_counts_across_disks():
    main = ChaosDisk(PAGE, seed=0)
    aux = ChaosDisk(PAGE, controller=main.chaos)
    mf = main.open_file("m")
    af = aux.open_file("a")
    main.schedule_crash(at_write=3)
    mf.append(_page(1))
    af.append(_page(2))
    with pytest.raises(SimulatedCrash):
        mf.append(_page(3))
    # Both disks observe the same power state.
    af.append(_page(4))
    assert len(af) == 1
    # The crashing write is counted; the dropped one after is not.
    assert main.write_count == 3
    assert main.chaos.dropped_writes == 1


def test_crash_ordinal_is_relative_and_validated():
    ctrl = ChaosController()
    with pytest.raises(StorageError):
        ctrl.schedule_crash(at_write=0)
    disk = ChaosDisk(PAGE, controller=ctrl)
    f = disk.open_file("f")
    f.append(_page(1))
    disk.schedule_crash(at_write=2)  # 2nd write FROM NOW = global #3
    f.append(_page(2))
    with pytest.raises(SimulatedCrash):
        f.append(_page(3))
    assert ctrl.write_count == 3
    disk.power_on()
    assert not ctrl.armed


# -- corruption helpers ---------------------------------------------------

def test_flip_bit_is_an_involution():
    disk = ChaosDisk(PAGE)
    f = disk.open_file("f")
    f.append(_page(0))
    flip_bit(f, 0, 13)
    assert f.read(0) != _page(0)
    flip_bit(f, 0, 13)
    assert f.read(0) == _page(0)


def test_helpers_validate_their_targets():
    disk = ChaosDisk(PAGE)
    f = disk.open_file("f")
    f.append(_page(0))
    with pytest.raises(StorageError):
        flip_bit(f, 5, 0)  # slot out of range
    with pytest.raises(StorageError):
        corrupt_slot(f, 0, b"short")  # not page-sized
    corrupt_slot(f, 0, _page(9))
    assert f.read(0) == _page(9)
    tear_slot(f, 0, keep=10, filler=0xEE)
    assert f.read(0) == _page(9)[:10] + b"\xee" * (PAGE - 10)
    truncate_file(f, 0)
    assert len(f) == 0


# -- checksummed block logs ----------------------------------------------

def _fresh_log(disk, name="log"):
    return disk.open_file(name, append_only=True)


def test_block_log_round_trip_with_spanning_records():
    disk = ChaosDisk(PAGE)
    log = _fresh_log(disk)
    writer = BlockLogWriter(log)
    payloads = [bytes([i]) * (7 + 23 * i) for i in range(8)]  # spans blocks
    for p in payloads:
        writer.append(p)
    writer.flush()
    records, status = BlockLogReader(log).scan(0)
    assert records == payloads
    assert not status.torn
    status.raise_if_torn("log")  # no-op when clean


def test_torn_tail_is_truncated_and_reported():
    disk = ChaosDisk(PAGE)
    log = _fresh_log(disk)
    writer = BlockLogWriter(log)
    small = b"A" * 8                      # fits the first block
    big = b"B" * (payload_capacity(PAGE) * 2)  # spans into later blocks
    writer.append(small)
    writer.append(big)
    writer.flush()
    tear_slot(log, len(log) - 1, keep=PAGE // 2)
    records, status = BlockLogReader(log).scan(0)
    assert records == [small]  # the spanning record was dropped whole
    assert status.torn
    assert status.truncated_blocks == 1
    assert status.dropped_partial_record
    with pytest.raises(TornWriteError):
        status.raise_if_torn("log")


def test_mid_log_corruption_is_not_a_torn_tail():
    disk = ChaosDisk(PAGE)
    log = _fresh_log(disk)
    writer = BlockLogWriter(log)
    for i in range(6):
        writer.append(bytes([i]) * payload_capacity(PAGE))  # 1 block each
    writer.flush()
    flip_bit(log, 1, 300)  # damage an interior block
    with pytest.raises(CorruptPageError):
        BlockLogReader(log).scan(0)


def test_scan_status_default_is_clean():
    status = LogScanStatus()
    assert not status.torn
    status.raise_if_torn("anything")


# -- Maplog tail repair ---------------------------------------------------

def _populated_maplog(disk):
    log = disk.open_file("maplog", append_only=True)
    maplog = Maplog(log)
    for epoch in range(1, 4):
        maplog.declare_snapshot()
        for page in range(3):
            maplog.record(MapEntry(page_id=page, from_snap=1,
                                   to_snap=epoch, slot=epoch * 10 + page,
                                   crc=7))
    maplog.flush()
    return log, maplog


def test_maplog_recovers_cleanly_when_undamaged():
    disk = ChaosDisk(PAGE)
    log, original = _populated_maplog(disk)
    recovered, cap = Maplog.recover(log)
    assert recovered.current_epoch == 3
    assert recovered.entries_recorded == original.entries_recorded
    assert cap == {0: 3, 1: 3, 2: 3}
    assert not recovered.recovery_status.torn


def test_maplog_repairs_a_torn_tail():
    disk = ChaosDisk(PAGE)
    log, original = _populated_maplog(disk)
    total = original.records_written
    tear_slot(log, len(log) - 1, keep=PAGE // 4)
    recovered, _ = Maplog.recover(log)
    status = recovered.recovery_status
    assert status.torn
    assert recovered.records_written < total  # the loss is observable
    assert recovered.current_epoch >= 1
    # The repair rewrote a clean log: recovering again finds no tear and
    # the same surviving records.
    again, _ = Maplog.recover(log)
    assert not again.recovery_status.torn
    assert again.records_written == recovered.records_written
    assert again.current_epoch == recovered.current_epoch


def test_maplog_force_epoch_emits_synthetic_declares():
    disk = ChaosDisk(PAGE)
    log = disk.open_file("maplog", append_only=True)
    maplog = Maplog(log)
    maplog.force_epoch(4)
    assert maplog.current_epoch == 4
    maplog.flush()
    recovered, _ = Maplog.recover(log)
    assert recovered.current_epoch == 4  # declares are durable, ordered
