"""B+tree tests: structure, ordering, splits, deletes, iteration, and a
model-based property test against a Python dict."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BTreeError
from repro.storage.btree import BTree
from repro.storage.disk import SimulatedDisk
from repro.storage.engine import StorageEngine


def fresh_tree():
    engine = StorageEngine(SimulatedDisk(4096))
    txn = engine.begin()
    source = engine.page_source(txn)
    tree = BTree.create(source)
    return engine, txn, tree


def key(i):
    return f"{i:012d}".encode()


class TestBasicOperations:
    def test_empty_tree(self):
        _, _, tree = fresh_tree()
        assert tree.get(b"x") is None
        assert list(tree.scan_all()) == []
        assert tree.count() == 0
        assert tree.height() == 1
        assert tree.last_key() is None

    def test_insert_get(self):
        _, _, tree = fresh_tree()
        assert tree.insert(b"a", b"1") is True
        assert tree.insert(b"b", b"2") is True
        assert tree.get(b"a") == b"1"
        assert tree.get(b"b") == b"2"
        assert tree.get(b"c") is None

    def test_insert_replace(self):
        _, _, tree = fresh_tree()
        assert tree.insert(b"a", b"1") is True
        assert tree.insert(b"a", b"2") is False
        assert tree.get(b"a") == b"2"
        assert tree.count() == 1

    def test_delete(self):
        _, _, tree = fresh_tree()
        tree.insert(b"a", b"1")
        assert tree.delete(b"a") is True
        assert tree.delete(b"a") is False
        assert tree.get(b"a") is None

    def test_last_key(self):
        _, _, tree = fresh_tree()
        for i in (5, 1, 9, 3):
            tree.insert(key(i), b"v")
        assert tree.last_key() == key(9)

    def test_oversized_cell_rejected(self):
        _, _, tree = fresh_tree()
        with pytest.raises(BTreeError):
            tree.insert(b"k", b"x" * 4096)


class TestSplitsAndStructure:
    def test_many_inserts_sorted_iteration(self):
        _, _, tree = fresh_tree()
        rng = random.Random(42)
        items = {}
        for i in rng.sample(range(10000), 3000):
            items[key(i)] = str(i).encode()
            tree.insert(key(i), str(i).encode())
        assert tree.height() > 1
        got = list(tree.scan_all())
        assert got == sorted(items.items())
        tree.check_invariants()

    def test_root_id_stable_across_splits(self):
        _, _, tree = fresh_tree()
        root = tree.root_id
        for i in range(2000):
            tree.insert(key(i), b"payload" * 10)
        assert tree.root_id == root
        assert tree.get(key(1999)) == b"payload" * 10

    def test_large_values_split_by_bytes(self):
        _, _, tree = fresh_tree()
        for i in range(100):
            tree.insert(key(i), bytes(1500))
        tree.check_invariants()
        assert tree.count() == 100

    def test_sequential_and_reverse_inserts(self):
        for order in (range(1000), reversed(range(1000))):
            _, _, tree = fresh_tree()
            for i in order:
                tree.insert(key(i), b"v")
            assert [k for k, _ in tree.scan_all()] == [
                key(i) for i in range(1000)
            ]
            tree.check_invariants()


class TestDeletes:
    def test_delete_all_collapses(self):
        _, _, tree = fresh_tree()
        for i in range(1500):
            tree.insert(key(i), b"v" * 20)
        assert tree.height() > 1
        for i in range(1500):
            assert tree.delete(key(i))
        assert tree.count() == 0
        assert tree.height() == 1
        tree.check_invariants()

    def test_delete_front_pages_freed(self):
        engine, txn, tree = fresh_tree()
        for i in range(2000):
            tree.insert(key(i), b"v" * 30)
        pages_before = len(tree.page_ids())
        for i in range(1000):
            tree.delete(key(i))
        pages_after = len(tree.page_ids())
        assert pages_after < pages_before
        tree.check_invariants()
        assert tree.count() == 1000

    def test_interleaved_insert_delete(self):
        _, _, tree = fresh_tree()
        rng = random.Random(7)
        model = {}
        for step in range(5000):
            i = rng.randrange(800)
            if rng.random() < 0.5:
                model[key(i)] = str(step).encode()
                tree.insert(key(i), str(step).encode())
            else:
                expected = key(i) in model
                model.pop(key(i), None)
                assert tree.delete(key(i)) == expected
        assert dict(tree.scan_all()) == model
        tree.check_invariants()


class TestScans:
    def test_scan_from(self):
        _, _, tree = fresh_tree()
        for i in range(0, 100, 2):
            tree.insert(key(i), b"v")
        got = [k for k, _ in tree.scan_from(key(31))]
        assert got == [key(i) for i in range(32, 100, 2)]

    def test_scan_prefix(self):
        _, _, tree = fresh_tree()
        for prefix in (b"aa", b"ab", b"b"):
            for i in range(10):
                tree.insert(prefix + str(i).encode(), b"v")
        got = [k for k, _ in tree.scan_prefix(b"ab")]
        assert got == [b"ab" + str(i).encode() for i in range(10)]

    def test_scan_range_exclusive_inclusive(self):
        _, _, tree = fresh_tree()
        for i in range(20):
            tree.insert(key(i), b"v")
        exclusive = [k for k, _ in tree.scan_range(key(5), key(10))]
        assert exclusive == [key(i) for i in range(5, 10)]
        inclusive = [k for k, _ in tree.scan_range(key(5), key(10),
                                                   hi_inclusive=True)]
        assert inclusive == [key(i) for i in range(5, 11)]

    def test_scan_during_split_boundaries(self):
        _, _, tree = fresh_tree()
        for i in range(3000):
            tree.insert(key(i), b"w" * 50)
        assert sum(1 for _ in tree.scan_from(key(1500))) == 1500


class TestClearDrop:
    def test_clear(self):
        _, _, tree = fresh_tree()
        for i in range(500):
            tree.insert(key(i), b"v" * 40)
        tree.clear()
        assert tree.count() == 0
        tree.insert(b"x", b"y")
        assert tree.get(b"x") == b"y"

    def test_drop_frees_pages(self):
        engine, txn, tree = fresh_tree()
        for i in range(500):
            tree.insert(key(i), b"v" * 40)
        n_pages = len(tree.page_ids())
        assert n_pages > 1
        freed_before = len(txn.freed)
        tree.drop()
        assert len(txn.freed) == freed_before + n_pages


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["insert", "delete"]),
              st.integers(min_value=0, max_value=200),
              st.binary(min_size=0, max_size=40)),
    max_size=300,
))
def test_btree_matches_dict_model(operations):
    """Model-based: any op sequence leaves the tree equal to a dict."""
    _, _, tree = fresh_tree()
    model = {}
    for op, i, value in operations:
        k = key(i)
        if op == "insert":
            assert tree.insert(k, value) == (k not in model)
            model[k] = value
        else:
            assert tree.delete(k) == (k in model)
            model.pop(k, None)
    assert dict(tree.scan_all()) == model
    tree.check_invariants()
