"""Concurrency stress for the latched BufferPool.

N threads hammer one small pool with mixed fetch/unpin/put_raw traffic
under constant capacity pressure (evictions on nearly every admit).
Invariants checked after the storm:

* pin counts balance — no page is left pinned, and no unpin ever
  underflows;
* no lost write-backs — each thread owns a disjoint page range, and
  after a final flush the disk holds the owner's last write for every
  page it touched;
* the pool never exceeds capacity and stays internally consistent.

The latch order is the leaf-level ``BufferPool._latch`` only (RPL011
verifies the global ``Pager._latch -> BufferPool._latch`` order stays
acyclic).
"""

from __future__ import annotations

import threading

from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk

PAGE_SIZE = 4096
THREADS = 6
PAGES_PER_THREAD = 4
ROUNDS = 150
CAPACITY = 8  # << total pages: evictions on nearly every admit


def _payload(thread: int, round_: int) -> bytes:
    body = f"t{thread}-r{round_}".encode()
    return body + b"\x00" * (PAGE_SIZE - len(body))


def test_mixed_fetch_unpin_evict_storm_keeps_invariants():
    disk = SimulatedDisk(PAGE_SIZE)
    db_file = disk.open_file("db")
    total_pages = THREADS * PAGES_PER_THREAD
    for page_id in range(total_pages):
        db_file.write(page_id, _payload(99, 0))
    pool = BufferPool(db_file, capacity=CAPACITY)

    last_write = [dict() for _ in range(THREADS)]
    errors = []
    start = threading.Barrier(THREADS)

    def body(thread: int) -> None:
        own = range(thread * PAGES_PER_THREAD,
                    (thread + 1) * PAGES_PER_THREAD)
        try:
            start.wait()
            for round_ in range(ROUNDS):
                # Read someone else's page (pin while in use, unpin).
                victim = ((thread + 1) * PAGES_PER_THREAD
                          + round_) % total_pages
                page = pool.fetch(victim)
                try:
                    assert page.page_id == victim
                    assert page.pin_count >= 1
                finally:
                    pool.unpin(page)
                # Overwrite one of our own pages (dirties it; eviction
                # pressure forces write-backs of other threads' pages).
                mine = own[round_ % PAGES_PER_THREAD]
                payload = _payload(thread, round_)
                pool.put_raw(mine, payload)
                last_write[thread][mine] = payload
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=body, args=(t,))
               for t in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    with pool._latch:
        assert len(pool._pages) <= CAPACITY
        assert all(p.pin_count == 0 for p in pool._pages.values()), \
            "storm left pages pinned"
    assert pool.stats.evictions > 0, "no capacity pressure exercised"

    # No lost write-backs: flush, then every owned page must hold its
    # owner's final payload.
    pool.flush_all()
    for thread in range(THREADS):
        for page_id, payload in last_write[thread].items():
            assert bytes(db_file.read(page_id)) == payload, \
                f"lost write-back on page {page_id}"


def test_concurrent_pinning_of_one_page_balances():
    disk = SimulatedDisk(PAGE_SIZE)
    db_file = disk.open_file("db")
    db_file.write(0, b"\x00" * PAGE_SIZE)
    pool = BufferPool(db_file, capacity=2)
    start = threading.Barrier(THREADS)
    errors = []

    def body() -> None:
        try:
            start.wait()
            for _ in range(500):
                page = pool.fetch(0)
                pool.unpin(page)
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=body) for _ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    page = pool.fetch(0, pin=False)
    assert page.pin_count == 0, "pin-count race lost increments"
