"""VersionStore unit tests (page-level MVCC retention)."""

import pytest

from repro.errors import TransactionError
from repro.storage.mvcc import VersionStore


class TestReaderRegistration:
    def test_register_deregister(self):
        store = VersionStore()
        handle = store.register_reader(5)
        assert store.active_reader_count == 1
        assert store.oldest_active_ts() == 5
        store.deregister_reader(handle)
        assert store.active_reader_count == 0
        assert store.oldest_active_ts() is None

    def test_double_deregister_raises(self):
        store = VersionStore()
        handle = store.register_reader(1)
        store.deregister_reader(handle)
        with pytest.raises(TransactionError):
            store.deregister_reader(handle)

    def test_oldest_of_many(self):
        store = VersionStore()
        store.register_reader(10)
        store.register_reader(3)
        store.register_reader(7)
        assert store.oldest_active_ts() == 3


class TestRetention:
    def test_no_readers_no_retention(self):
        store = VersionStore()
        store.retain(1, b"old", replaced_at=5)
        assert store.retained_versions == 0

    def test_retained_for_older_reader(self):
        store = VersionStore()
        store.register_reader(4)
        store.retain(1, b"v4", replaced_at=5)
        assert store.read(1, 4) == b"v4"
        assert store.read(1, 5) is None  # reader at 5 sees the live page

    def test_reader_at_or_after_replacement_not_retained(self):
        store = VersionStore()
        store.register_reader(5)
        store.retain(1, b"old", replaced_at=5)
        assert store.retained_versions == 0

    def test_version_chain_resolution(self):
        store = VersionStore()
        store.register_reader(0)
        store.retain(1, b"v0", replaced_at=1)  # content before ts 1
        store.retain(1, b"v1", replaced_at=2)  # content before ts 2
        store.retain(1, b"v2", replaced_at=3)
        assert store.read(1, 0) == b"v0"
        assert store.read(1, 1) == b"v1"
        assert store.read(1, 2) == b"v2"
        assert store.read(1, 3) is None

    def test_unknown_page_reads_none(self):
        store = VersionStore()
        store.register_reader(0)
        assert store.read(99, 0) is None


class TestPruning:
    def test_prune_on_deregister(self):
        store = VersionStore()
        old = store.register_reader(0)
        store.retain(1, b"v0", replaced_at=1)
        store.retain(2, b"w0", replaced_at=1)
        assert store.retained_versions == 2
        store.deregister_reader(old)
        assert store.retained_versions == 0

    def test_prune_keeps_needed_versions(self):
        store = VersionStore()
        old = store.register_reader(0)
        newer = store.register_reader(2)
        store.retain(1, b"v0", replaced_at=1)
        store.retain(1, b"v1", replaced_at=3)
        store.deregister_reader(old)
        # Reader at 2 still needs v1 (replaced at 3 > 2).
        assert store.read(1, 2) == b"v1"
        assert store.retained_versions == 1
        store.deregister_reader(newer)
        assert store.retained_versions == 0
