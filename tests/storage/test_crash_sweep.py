"""Exhaustive crash-point sweep: crash at every write boundary, recover.

Headline durability test.  The canonical workload in :mod:`repro.chaos`
crosses >50 durable-write boundaries across the WAL, Pagelog, Maplog,
database and meta files of both engines; the sweep crashes at each one
(clean power loss and torn-sector variants), reopens the store, and
checks the strict recovery oracle: every acknowledged commit present
exactly, the in-flight operation atomic, every declared snapshot
answering ``AS OF`` queries with its golden rows.

The mutation-style regression at the bottom proves the sweep is not
vacuously green: with checksum verification disabled via the
``checksums.set_verification`` test hook, injected torn writes must make
the sweep fail.
"""

import pytest

from repro import chaos
from repro.storage import checksums


def test_workload_covers_enough_boundaries():
    states, total_writes = chaos.golden_states(seed=0)
    # ISSUE acceptance floor: the sweep must cover more than 50 points.
    assert total_writes > 50
    # One golden state per acknowledged op, plus the post-construction one.
    assert len(states) == len(chaos.workload_ops()) + 1
    final = states[-1]
    assert final.rows, "workload must leave non-trivial current state"
    assert final.snapshot_count >= 6, "workload must declare many snapshots"
    # Snapshots must actually differ (history worth recovering).
    assert len({s for s in final.snapshots.values()}) > 1


def test_clean_crash_sweep_every_write_boundary():
    result = chaos.run_crash_sweep(seed=0, tear=False)
    assert result.crash_points > 50
    assert result.verified == result.crash_points
    assert all("clean crash" in event for event in result.events)


def test_torn_crash_sweep_every_write_boundary():
    result = chaos.run_crash_sweep(seed=0, tear=True)
    assert result.crash_points > 50
    assert result.verified == result.crash_points
    assert all("torn crash" in event for event in result.events)


def test_sweep_under_a_different_seed():
    # Different seed -> different torn-prefix lengths and garbage bytes.
    result = chaos.run_crash_sweep(seed=1337, tear=True,
                                   crash_points=range(10, 60, 7))
    assert result.verified == result.crash_points


def test_sweep_is_deterministic_in_seed():
    points = [15, 33, 47]
    first = chaos.run_crash_sweep(seed=3, tear=True, crash_points=points)
    second = chaos.run_crash_sweep(seed=3, tear=True, crash_points=points)
    assert first.events == second.events


def test_sweep_accounts_recovery_cost():
    result = chaos.run_crash_sweep(seed=0, crash_points=[20, 45])
    assert result.recovery_wall_seconds > 0.0
    assert result.recovery_sim_seconds > 0.0
    assert result.mean_recovery_wall_seconds == pytest.approx(
        result.recovery_wall_seconds / 2)


def _build_store_with_rotated_prestates():
    """Run the workload, then rotate every referenced Pagelog pre-state.

    Each archived image referenced by a Maplog mapping is replaced with
    the image of the *next* referenced slot — valid-looking page bytes
    that are simply the wrong page, the nastiest corruption shape
    (structure-only validation cannot catch it; only the per-slot CRC
    recorded in the mapping can).  Returns (disks, golden states).
    """
    from repro.retro.manager import PAGELOG_FILE
    from repro.storage.chaosdisk import corrupt_slot
    from repro.storage.disk import SimulatedDisk

    states, _ = chaos.golden_states(seed=0)
    disk = SimulatedDisk(chaos.PAGE_SIZE)
    aux = SimulatedDisk(chaos.PAGE_SIZE)
    db = chaos.open_database(disk, aux)
    chaos.apply_ops(db)
    db.checkpoint()
    slots = sorted({
        e.slot for e in db.engine.retro.maplog.iter_entries()
    })
    assert len(slots) >= 2, "workload must archive several pre-states"
    pagelog = db.engine.disk.open_file(PAGELOG_FILE, append_only=True)
    images = [pagelog.read(s) for s in slots]
    assert len(set(images)) >= 2, "rotation must actually change bytes"
    for i, slot in enumerate(slots):
        corrupt_slot(pagelog, slot, images[(i + 1) % len(slots)])
    return disk, aux, states


def test_rotated_prestates_are_detected_not_served():
    """With verification on, wrong archive bytes become typed refusals."""
    disk, aux, states = _build_store_with_rotated_prestates()
    reopened = chaos.open_database(disk, aux)
    # Never a silently wrong answer: every snapshot is golden (still
    # cached/shared pages) or refuses with a typed error.
    chaos.verify_consistent_prefix(reopened, states, "rotated pre-states")
    # And the damage is really there: a scrub must find bad entries.
    bad = reopened.engine.retro.scrub()
    assert bad, "scrub found no corrupt entries in a corrupted archive"


def test_oracle_fails_when_checksum_verification_is_disabled():
    """Mutation-style regression guarding against a vacuous oracle.

    Disabling checksum verification via the test hook makes the rotated
    pre-states get *served*: snapshot queries return another page's
    bytes.  The corruption oracle must then fail (silently-wrong rows
    trip the assertion, or the B-tree layer chokes on the wrong page).
    If this ever passes, the CRCs are not load-bearing and the sweep
    proves nothing.
    """
    disk, aux, states = _build_store_with_rotated_prestates()
    checksums.set_verification(False)
    try:
        with pytest.raises(Exception):
            reopened = chaos.open_database(disk, aux)
            chaos.verify_consistent_prefix(reopened, states, "no-verify")
    finally:
        checksums.set_verification(True)
