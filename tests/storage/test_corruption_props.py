"""Hypothesis corruption properties: damaged stores never lie.

Each example takes a cleanly checkpointed golden store, applies a random
batch of media-level corruptions (bit flips, torn sectors, truncation)
to ONE durable file, reopens, and checks the corruption oracle
(:func:`repro.chaos.verify_consistent_prefix`): the store either refuses
to open with a typed :class:`~repro.errors.ReproError`, or opens with
some committed prefix as its current state and answers every snapshot
query with golden rows or a typed refusal — never a silently wrong
answer.

Scope: the corruption targets are the checksummed recovery surfaces
(WAL, Maplog, Pagelog, dual-slot meta).  Current-state B-tree pages
carry no per-page CRC (the crash sweep covers them via torn writes), and
*combined* damage to the meta and WAL of the same engine can force
replay from a stale checkpoint over a shortened log, which idempotent
replay would need page LSNs to survive — both are documented
non-goals (DESIGN.md §5c).
"""

import copy

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import chaos
from repro.errors import ReproError
from repro.storage.chaosdisk import flip_bit, tear_slot, truncate_file
from repro.storage.disk import SimulatedDisk

#: (file name, append_only flag) of every checksummed durable structure.
TARGETS = [
    ("wal", True),
    ("maplog", True),
    ("pagelog", True),
    ("meta", False),
]

_golden_cache = None


def _golden_store():
    """Build (once) a cleanly checkpointed store + its golden states."""
    global _golden_cache
    if _golden_cache is None:
        states, _ = chaos.golden_states(seed=0)
        disk = SimulatedDisk(chaos.PAGE_SIZE)
        aux = SimulatedDisk(chaos.PAGE_SIZE)
        db = chaos.open_database(disk, aux)
        chaos.apply_ops(db)
        db.checkpoint()
        _golden_cache = (disk, aux, states)
    return _golden_cache


def _corrupt(file, op, slot_sel, arg):
    """Apply one corruption primitive, selectors reduced mod file size."""
    if len(file) == 0:
        return False
    slot = slot_sel % len(file)
    if op == "flip":
        flip_bit(file, slot, arg)
    elif op == "tear":
        tear_slot(file, slot, keep=arg % file.page_size)
    else:
        truncate_file(file, arg % len(file))  # always drops >= 1 slot
    return True


def _check_never_lies(disk, aux, states, context):
    try:
        db = chaos.open_database(disk, aux)
    except ReproError:
        return  # typed refusal to open: allowed, never wrong
    chaos.verify_consistent_prefix(db, states, context)


@settings(max_examples=60, deadline=None, print_blob=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    which_disk=st.integers(0, 1),
    target=st.sampled_from(TARGETS),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["flip", "tear", "truncate"]),
            st.integers(0, 2**32 - 1),  # slot selector
            st.integers(0, 2**32 - 1),  # bit index / keep / new length
        ),
        min_size=1, max_size=4,
    ),
)
def test_random_corruption_never_yields_wrong_answers(which_disk, target,
                                                      ops):
    disk0, aux0, states = _golden_store()
    disk, aux = copy.deepcopy(disk0), copy.deepcopy(aux0)
    name, append_only = target
    victim = (disk, aux)[which_disk].open_file(name,
                                               append_only=append_only)
    applied = sum(_corrupt(victim, op, s, a) for op, s, a in ops)
    if not applied:
        return
    _check_never_lies(disk, aux, states,
                      f"disk{which_disk} {name} ops={ops}")


# -- deterministic regressions (one per recovery surface) -----------------

def _fresh_copy():
    disk0, aux0, states = _golden_store()
    return copy.deepcopy(disk0), copy.deepcopy(aux0), states


@pytest.mark.parametrize("name,append_only", TARGETS)
def test_tail_tear_on_each_surface(name, append_only):
    disk, aux, states = _fresh_copy()
    victim = disk.open_file(name, append_only=append_only)
    assert len(victim) > 0
    tear_slot(victim, len(victim) - 1, keep=victim.page_size // 3)
    _check_never_lies(disk, aux, states, f"tail tear on {name}")


@pytest.mark.parametrize("name,append_only", TARGETS)
def test_halving_truncation_on_each_surface(name, append_only):
    disk, aux, states = _fresh_copy()
    victim = disk.open_file(name, append_only=append_only)
    truncate_file(victim, len(victim) // 2)
    _check_never_lies(disk, aux, states, f"truncate {name}")


@pytest.mark.parametrize("name,append_only", TARGETS)
def test_single_bit_flips_on_each_surface(name, append_only):
    # One flip per slot: every block of the surface damaged at once.
    disk, aux, states = _fresh_copy()
    victim = disk.open_file(name, append_only=append_only)
    for slot in range(len(victim)):
        flip_bit(victim, slot, slot * 131 + 17)
    _check_never_lies(disk, aux, states, f"bit flips on {name}")


def test_dual_slot_meta_survives_newest_copy_loss():
    """Killing one meta copy falls back to the other checkpoint's meta."""
    disk, aux, states = _fresh_copy()
    meta = disk.open_file("meta")
    assert len(meta) == 2, "checkpointed store must have both meta slots"
    flip_bit(meta, 0, 999)
    db = chaos.open_database(disk, aux)  # must open: one copy survives
    chaos.verify_consistent_prefix(db, states, "one meta copy flipped")


def test_losing_both_meta_copies_is_a_typed_refusal():
    disk, aux, states = _fresh_copy()
    meta = disk.open_file("meta")
    flip_bit(meta, 0, 7)
    flip_bit(meta, 1, 7)
    with pytest.raises(ReproError):
        chaos.open_database(disk, aux)


def test_empty_meta_with_nonempty_wal_is_a_typed_refusal():
    # Media truncation of the whole meta file must not silently
    # reinitialize a store that has acknowledged commits.
    disk, aux, _ = _fresh_copy()
    truncate_file(disk.open_file("meta"), 0)
    with pytest.raises(ReproError):
        chaos.open_database(disk, aux)
