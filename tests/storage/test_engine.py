"""Storage engine tests: transactions, MVCC, snapshots, recovery."""

import pytest

from repro.errors import TransactionError
from repro.storage.btree import BTree
from repro.storage.disk import SimulatedDisk
from repro.storage.engine import StorageEngine
from repro.storage.record import encode_key, encode_record


def put(tree, i, payload="v"):
    tree.insert(encode_key((i,)), encode_record((i, payload)))


def make_table(engine, n=100):
    txn = engine.begin()
    source = engine.page_source(txn)
    tree = BTree.create(source)
    for i in range(n):
        put(tree, i)
    engine.pager.set_root("t", tree.root_id)
    engine.commit(txn)
    return tree.root_id


class TestTransactions:
    def test_commit_visible(self, engine):
        root = make_table(engine, 10)
        ctx = engine.begin_read()
        tree = BTree(engine.read_source(ctx), root)
        assert tree.count() == 10
        ctx.close()

    def test_rollback_invisible(self, engine):
        root = make_table(engine, 10)
        txn = engine.begin()
        tree = BTree(engine.page_source(txn), root)
        put(tree, 99)
        engine.rollback(txn)
        ctx = engine.begin_read()
        assert BTree(engine.read_source(ctx), root).count() == 10
        ctx.close()

    def test_single_writer(self, engine):
        engine.begin()
        with pytest.raises(TransactionError):
            engine.begin()

    def test_read_your_writes(self, engine):
        root = make_table(engine, 5)
        txn = engine.begin()
        source = engine.page_source(txn)
        tree = BTree(source, root)
        put(tree, 50)
        assert tree.get(encode_key((50,))) is not None
        engine.commit(txn)

    def test_writes_invisible_until_commit(self, engine):
        root = make_table(engine, 5)
        txn = engine.begin()
        tree = BTree(engine.page_source(txn), root)
        put(tree, 50)
        ctx = engine.begin_read()
        reader = BTree(engine.read_source(ctx), root)
        assert reader.get(encode_key((50,))) is None
        ctx.close()
        engine.commit(txn)


class TestMvcc:
    def test_reader_sees_stable_state(self, engine):
        root = make_table(engine, 20)
        ctx = engine.begin_read()
        # Concurrent writer deletes half.
        txn = engine.begin()
        tree = BTree(engine.page_source(txn), root)
        for i in range(10):
            tree.delete(encode_key((i,)))
        engine.commit(txn)
        # The registered reader still sees the old state.
        old = BTree(engine.read_source(ctx), root)
        assert old.count() == 20
        ctx.close()
        # A fresh reader sees the new state.
        ctx2 = engine.begin_read()
        assert BTree(engine.read_source(ctx2), root).count() == 10
        ctx2.close()

    def test_two_readers_different_epochs(self, engine):
        root = make_table(engine, 10)
        ctx_old = engine.begin_read()
        txn = engine.begin()
        put(BTree(engine.page_source(txn), root), 100)
        engine.commit(txn)
        ctx_new = engine.begin_read()
        txn = engine.begin()
        put(BTree(engine.page_source(txn), root), 101)
        engine.commit(txn)
        assert BTree(engine.read_source(ctx_old), root).count() == 10
        assert BTree(engine.read_source(ctx_new), root).count() == 11
        ctx_old.close()
        ctx_new.close()

    def test_version_pruning(self, engine):
        root = make_table(engine, 10)
        ctx = engine.begin_read()
        for round_no in range(3):
            txn = engine.begin()
            put(BTree(engine.page_source(txn), root), 200 + round_no)
            engine.commit(txn)
        assert engine._versions.retained_versions > 0
        ctx.close()
        assert engine._versions.retained_versions == 0


class TestSnapshots:
    def test_declaration_reflects_declaring_txn(self, engine):
        root = make_table(engine, 10)
        txn = engine.begin()
        put(BTree(engine.page_source(txn), root), 42)
        sid = engine.commit(txn, declare_snapshot=True)
        ctx = engine.begin_read()
        snap = BTree(engine.snapshot_source(sid, ctx), root)
        assert snap.get(encode_key((42,))) is not None
        ctx.close()

    def test_snapshot_immune_to_later_updates(self, engine):
        root = make_table(engine, 10)
        txn = engine.begin()
        sid = engine.commit(txn, declare_snapshot=True)
        txn = engine.begin()
        tree = BTree(engine.page_source(txn), root)
        for i in range(10):
            tree.delete(encode_key((i,)))
        engine.commit(txn)
        ctx = engine.begin_read()
        assert BTree(engine.snapshot_source(sid, ctx), root).count() == 10
        assert BTree(engine.read_source(ctx), root).count() == 0
        ctx.close()

    def test_many_snapshots_each_consistent(self, engine):
        root = make_table(engine, 0)
        sids = []
        for i in range(12):
            txn = engine.begin()
            put(BTree(engine.page_source(txn), root), i)
            sids.append(engine.commit(txn, declare_snapshot=True))
        ctx = engine.begin_read()
        for count, sid in enumerate(sids, start=1):
            tree = BTree(engine.snapshot_source(sid, ctx), root)
            assert tree.count() == count
        ctx.close()

    def test_snapshot_query_concurrent_with_update(self, engine):
        """Paper Section 4: snapshot queries run as read-only MVCC txns."""
        root = make_table(engine, 30)
        txn = engine.begin()
        sid = engine.commit(txn, declare_snapshot=True)
        ctx = engine.begin_read()
        snap_source = engine.snapshot_source(sid, ctx)
        # A concurrent update commits while the snapshot query is open.
        txn = engine.begin()
        tree = BTree(engine.page_source(txn), root)
        for i in range(30):
            tree.delete(encode_key((i,)))
        engine.commit(txn)
        # The snapshot query still sees every page as of declaration.
        assert BTree(snap_source, root).count() == 30
        ctx.close()


class TestRecovery:
    def test_committed_survive_crash(self, disk):
        engine = StorageEngine(disk)
        root = make_table(engine, 50)
        engine.crash()
        engine2 = StorageEngine(disk)
        ctx = engine2.begin_read()
        assert BTree(engine2.read_source(ctx), root).count() == 50
        ctx.close()

    def test_uncommitted_lost_after_crash(self, disk):
        engine = StorageEngine(disk)
        root = make_table(engine, 10)
        txn = engine.begin()
        put(BTree(engine.page_source(txn), root), 999)
        # No commit: crash.
        engine.crash()
        engine2 = StorageEngine(disk)
        ctx = engine2.begin_read()
        assert BTree(engine2.read_source(ctx), root).count() == 10
        ctx.close()

    def test_snapshots_survive_crash_without_checkpoint(self, disk):
        engine = StorageEngine(disk)
        root = make_table(engine, 20)
        txn = engine.begin()
        sid = engine.commit(txn, declare_snapshot=True)
        txn = engine.begin()
        tree = BTree(engine.page_source(txn), root)
        for i in range(20):
            tree.delete(encode_key((i,)))
        engine.commit(txn)
        # Crash with pre-states still pending in memory.
        engine.crash()
        engine2 = StorageEngine(disk)
        ctx = engine2.begin_read()
        assert BTree(engine2.snapshot_source(sid, ctx), root).count() == 20
        assert BTree(engine2.read_source(ctx), root).count() == 0
        ctx.close()

    def test_crash_after_checkpoint(self, disk):
        engine = StorageEngine(disk)
        root = make_table(engine, 20)
        txn = engine.begin()
        sid = engine.commit(txn, declare_snapshot=True)
        engine.checkpoint()
        txn = engine.begin()
        put(BTree(engine.page_source(txn), root), 777)
        engine.commit(txn)
        engine.crash()
        engine2 = StorageEngine(disk)
        ctx = engine2.begin_read()
        assert BTree(engine2.read_source(ctx), root).count() == 21
        assert BTree(engine2.snapshot_source(sid, ctx), root).count() == 20
        ctx.close()

    def test_repeated_crashes(self, disk):
        engine = StorageEngine(disk)
        root = make_table(engine, 5)
        for round_no in range(4):
            txn = engine.begin()
            put(BTree(engine.page_source(txn), root), 100 + round_no)
            engine.commit(txn, declare_snapshot=True)
            engine.crash()
            engine = StorageEngine(disk)
        ctx = engine.begin_read()
        assert BTree(engine.read_source(ctx), root).count() == 9
        for sid, expected in ((1, 6), (2, 7), (3, 8), (4, 9)):
            tree = BTree(engine.snapshot_source(sid, ctx), root)
            assert tree.count() == expected
        ctx.close()

    def test_timestamps_and_txn_ids_resume(self, disk):
        engine = StorageEngine(disk)
        make_table(engine, 5)
        ts = engine.last_commit_ts
        engine.crash()
        engine2 = StorageEngine(disk)
        assert engine2.last_commit_ts >= ts


class TestReaderRegistrationGuard:
    """Regression (replint RPL030): a reader registered by begin_read
    must never outlive a failed ReadContext construction — the stuck
    handle would pin version chains against pruning forever."""

    def test_begin_read_deregisters_on_context_failure(
            self, engine, monkeypatch):
        import repro.storage.engine as engine_module

        class Boom(RuntimeError):
            pass

        def exploding_context(*args, **kwargs):
            raise Boom("simulated construction failure")

        monkeypatch.setattr(engine_module, "ReadContext",
                            exploding_context)
        before = engine._versions.active_reader_count
        with pytest.raises(Boom):
            engine.begin_read()
        assert engine._versions.active_reader_count == before

    def test_begin_read_still_returns_a_usable_context(self, engine):
        root = make_table(engine, 3)
        ctx = engine.begin_read()
        try:
            assert BTree(engine.read_source(ctx), root).count() == 3
            assert engine._versions.active_reader_count == 1
        finally:
            ctx.close()
        assert engine._versions.active_reader_count == 0
