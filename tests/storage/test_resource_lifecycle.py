"""Regression tests for the interprocedural leaks RPL010 surfaced:
every B+tree operation must balance fetch/release even when a page
source call raises mid-operation, and the SQL layer must close read
contexts and roll back transactions on every error path.
"""

import pytest

from repro.errors import BTreeError, ReproError, SnapshotError
from repro.sql.database import Database
from repro.storage.btree import BTree
from repro.storage.disk import SimulatedDisk
from repro.storage.engine import StorageEngine


class CountingSource:
    """Delegating page source that balances fetches against releases
    and can be told to fail the Nth fetch or make_writable call."""

    def __init__(self, inner):
        self.inner = inner
        self.outstanding = 0
        self.fetches = 0
        self.fail_fetch_at = None
        self.fail_writable_at = None
        self._writables = 0

    def fetch(self, page_id):
        self.fetches += 1
        if self.fail_fetch_at is not None \
                and self.fetches >= self.fail_fetch_at:
            raise ReproError("injected fetch failure")
        page = self.inner.fetch(page_id)
        self.outstanding += 1
        return page

    def release(self, page):
        self.inner.release(page)
        self.outstanding -= 1

    def make_writable(self, page):
        self._writables += 1
        if self.fail_writable_at is not None \
                and self._writables >= self.fail_writable_at:
            raise ReproError("injected make_writable failure")
        return self.inner.make_writable(page)

    def allocate_page(self):
        return self.inner.allocate_page()

    def free_page(self, page_id):
        self.inner.free_page(page_id)

    def mark_dirty(self, page):
        self.inner.mark_dirty(page)


@pytest.fixture
def tracked_tree():
    engine = StorageEngine(SimulatedDisk(4096))
    txn = engine.begin()
    source = CountingSource(engine.page_source(txn))
    tree = BTree.create(source)
    return source, tree


def key(i):
    return f"{i:012d}".encode()


def test_every_operation_balances_pins(tracked_tree):
    source, tree = tracked_tree
    for i in range(300):
        tree.insert(key(i), f"v{i}".encode())
    assert tree.height() > 1  # splits happened: descents are real
    tree.get(key(7))
    tree.get(b"missing")
    list(tree.scan_all())
    list(tree.scan_range(key(10), key(50)))
    tree.last_key()
    tree.count()
    for i in range(0, 300, 3):
        tree.delete(key(i))
    tree.check_invariants()
    tree.clear()
    assert source.outstanding == 0
    assert source.fetches > 0


def test_oversized_insert_releases_the_root_pin(tracked_tree):
    source, tree = tracked_tree
    with pytest.raises(BTreeError):
        tree.insert(b"k", b"x" * 100_000)
    assert source.outstanding == 0


def test_failed_descent_fetch_releases_held_pins(tracked_tree):
    source, tree = tracked_tree
    for i in range(300):
        tree.insert(key(i), b"v")
    # Fail each descent at a different depth: whatever pins were taken
    # before the failure must be released on the unwind.
    depth = tree.height()
    assert depth >= 2
    for fail_at in range(1, depth + 1):
        source.fetches = 0
        source.fail_fetch_at = fail_at
        with pytest.raises(ReproError, match="injected"):
            tree.get(key(299))
        source.fail_fetch_at = None
        assert source.outstanding == 0, f"leak with fail_at={fail_at}"


def test_failed_write_path_releases_held_pins(tracked_tree):
    source, tree = tracked_tree
    for i in range(300):
        tree.insert(key(i), b"v")
    source.fail_writable_at = 1
    with pytest.raises(ReproError, match="injected"):
        tree.insert(key(1), b"changed")
    source.fail_writable_at = None
    assert source.outstanding == 0
    source._writables = 0
    source.fail_writable_at = 1
    with pytest.raises(ReproError, match="injected"):
        tree.delete(key(1))
    source.fail_writable_at = None
    assert source.outstanding == 0


def test_iteration_abandoned_midway_releases_pins(tracked_tree):
    source, tree = tracked_tree
    for i in range(300):
        tree.insert(key(i), b"v")
    for n, _ in enumerate(tree.scan_all()):
        if n == 5:
            break
    # Generator cleanup (GeneratorExit through the finally) must drop
    # the pin on the current leaf.
    assert source.outstanding == 0


# -- SQL layer ---------------------------------------------------------------


def _reader_count(db):
    return db.engine._versions.active_reader_count


def test_bad_as_of_closes_read_contexts():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("INSERT INTO t VALUES (1)")
    assert _reader_count(db) == 0
    with pytest.raises(SnapshotError):
        db.execute("SELECT AS OF 999 a FROM t")
    assert _reader_count(db) == 0
    # The database is still fully usable afterwards.
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1


def test_planner_error_closes_read_contexts():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER)")
    with pytest.raises(ReproError):
        db.execute("SELECT nope FROM t")
    assert _reader_count(db) == 0


def test_cursor_error_closes_read_contexts():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER)")
    with pytest.raises(ReproError):
        with db.execute_cursor("SELECT nope FROM t"):
            pass  # pragma: no cover - the error fires before entry
    assert _reader_count(db) == 0
