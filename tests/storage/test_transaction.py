"""Transaction / workspace unit tests (overlay isolation semantics)."""

import pytest

from repro.errors import TransactionError
from repro.storage.disk import SimulatedDisk
from repro.storage.engine import StorageEngine
from repro.storage.page import Page
from repro.storage.transaction import Transaction, TxnState


@pytest.fixture
def workspace():
    engine = StorageEngine(SimulatedDisk(512), page_size=512)
    txn = engine.begin()
    return engine, txn, engine.page_source(txn)


class TestWorkspace:
    def test_allocate_goes_to_overlay(self, workspace):
        engine, txn, source = workspace
        page = source.allocate_page()
        assert page.page_id in txn.overlay
        assert page.page_id in txn.dirty
        assert page.page_id in txn.allocated

    def test_fetch_prefers_overlay(self, workspace):
        engine, txn, source = workspace
        page = source.allocate_page()
        assert source.fetch(page.page_id) is page

    def test_make_writable_copies_shared_page(self, workspace):
        engine, txn, source = workspace
        shared = engine.pager.pool.fetch(0, pin=False)  # meta page
        private = source.make_writable(shared)
        assert private is not shared
        assert private.data == shared.data
        private.data[100] = 0xEE
        assert shared.data[100] != 0xEE

    def test_make_writable_idempotent(self, workspace):
        engine, txn, source = workspace
        shared = engine.pager.pool.fetch(0, pin=False)
        first = source.make_writable(shared)
        second = source.make_writable(shared)
        assert first is second

    def test_mark_dirty_requires_overlay(self, workspace):
        engine, txn, source = workspace
        shared = engine.pager.pool.fetch(0, pin=False)
        with pytest.raises(TransactionError):
            source.mark_dirty(shared)

    def test_free_page_undoes_allocation(self, workspace):
        engine, txn, source = workspace
        page = source.allocate_page()
        source.free_page(page.page_id)
        assert page.page_id not in txn.overlay
        assert page.page_id not in txn.allocated
        assert page.page_id in txn.freed

    def test_modified_pages_snapshot(self, workspace):
        engine, txn, source = workspace
        page = source.allocate_page()
        page.data[20] = 0x42
        images = txn.modified_pages()
        assert images[page.page_id][20] == 0x42
        page.data[20] = 0  # later mutation does not affect the snapshot
        assert images[page.page_id][20] == 0x42

    def test_operations_after_commit_rejected(self, workspace):
        engine, txn, source = workspace
        source.allocate_page()
        engine.commit(txn)
        with pytest.raises(TransactionError):
            source.allocate_page()
        with pytest.raises(TransactionError):
            source.make_writable(Page(1, page_size=512))


class TestTransactionLifecycle:
    def test_state_transitions(self):
        txn = Transaction(txn_id=1, begin_ts=0, first_new_page_id=5)
        assert txn.is_active()
        txn.ensure_active()
        txn.state = TxnState.COMMITTED
        assert not txn.is_active()
        with pytest.raises(TransactionError):
            txn.ensure_active()

    def test_first_new_page_id_partitions_prestates(self, workspace):
        """Pages at or above first_new_page_id never existed before the
        txn, so commit must not try to read their pre-state."""
        engine, txn, source = workspace
        boundary = txn.first_new_page_id
        fresh = source.allocate_page()
        assert fresh.page_id >= boundary
        engine.commit(txn, declare_snapshot=True)
        # Capture map stays empty for the fresh page (no pre-state).
        assert engine.retro.captured_epoch(fresh.page_id) == 0
