"""Record and key codec tests, including order-preservation properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RecordCodecError
from repro.sql.types import compare
from repro.storage.record import (
    decode_key,
    decode_record,
    encode_key,
    encode_record,
)

SIMPLE_ROWS = [
    (),
    (None,),
    (0,),
    (-1, 1, 2**40),
    (1.5, -2.25, 0.0),
    ("", "hello", "naïve ünïcode"),
    (b"", b"\x00\x01\xff"),
    (None, 1, 2.5, "x", b"y"),
]


@pytest.mark.parametrize("row", SIMPLE_ROWS)
def test_record_round_trip(row):
    assert decode_record(encode_record(row)) == row


def test_record_bool_normalizes_to_int():
    assert decode_record(encode_record((True, False))) == (1, 0)


def test_record_rejects_unsupported_type():
    with pytest.raises(RecordCodecError):
        encode_record(([1, 2],))


def test_record_rejects_out_of_range_int():
    with pytest.raises(RecordCodecError):
        encode_record((2**70,))


def test_record_corrupt_raises():
    raw = encode_record((1, "x"))
    with pytest.raises(RecordCodecError):
        decode_record(raw[:-2])


def test_key_round_trip_strings_with_nuls():
    values = ("a\x00b", "a\x00", "\x00", "")
    assert decode_key(encode_key(values)) == values


def test_key_round_trip_mixed():
    values = (None, 3, "abc", b"\x00\xff")
    decoded = decode_key(encode_key(values))
    assert decoded == values


def test_key_class_ordering():
    # NULL < numeric < text < blob
    assert encode_key((None,)) < encode_key((0,))
    assert encode_key((10**9,)) < encode_key(("",))
    assert encode_key(("zzz",)) < encode_key((b"",))


sql_scalars = st.one_of(
    st.none(),
    st.integers(min_value=-(2**52), max_value=2**52),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e15, max_value=1e15),
    st.text(max_size=30),
    st.binary(max_size=30),
)


@settings(max_examples=300, deadline=None)
@given(st.tuples(sql_scalars, sql_scalars), st.tuples(sql_scalars, sql_scalars))
def test_key_encoding_preserves_sql_order(left, right):
    """Bytewise key comparison must agree with SQL value ordering."""
    lk, rk = encode_key(left), encode_key(right)
    # Compare tuples element-wise with SQL semantics (None first).
    expected = 0
    for lv, rv in zip(left, right):
        c = _sql_total_compare(lv, rv)
        if c != 0:
            expected = c
            break
    if expected < 0:
        assert lk < rk
    elif expected > 0:
        assert lk > rk
    else:
        assert lk == rk


def _sql_total_compare(a, b):
    if a is None and b is None:
        return 0
    if a is None:
        return -1
    if b is None:
        return 1
    result = compare(a, b)
    assert result is not None
    return result


@settings(max_examples=200, deadline=None)
@given(st.lists(sql_scalars, max_size=5))
def test_record_round_trip_property(values):
    row = tuple(values)
    assert decode_record(encode_record(row)) == row


@settings(max_examples=200, deadline=None)
@given(st.lists(st.one_of(st.none(),
                          st.integers(min_value=-(2**31), max_value=2**31),
                          st.text(max_size=20),
                          st.binary(max_size=20)),
                max_size=4))
def test_key_round_trip_property(values):
    """Keys over ints/text/blobs/None decode exactly."""
    row = tuple(values)
    assert decode_key(encode_key(row)) == row
