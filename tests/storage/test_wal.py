"""WAL record framing and replay semantics."""

from repro.storage.disk import SimulatedDisk
from repro.storage.wal import WriteAheadLog

PAGE = 512


def fresh_wal():
    disk = SimulatedDisk(PAGE)
    return WriteAheadLog(disk.open_file("wal", append_only=True)), disk


def image(byte):
    return bytes([byte]) * PAGE


class TestReplay:
    def test_commit_group_round_trip(self):
        wal, _ = fresh_wal()
        wal.log_commit(
            txn_id=1, commit_ts=10, pages={3: image(3), 5: image(5)},
            freed=[7], declared_snapshot=True, snapshot_id=2,
            next_page_id=9,
        )
        (txn,) = wal.replay()
        assert txn.txn_id == 1
        assert txn.commit_ts == 10
        assert txn.pages == {3: image(3), 5: image(5)}
        assert txn.freed == [7]
        assert txn.declared_snapshot
        assert txn.snapshot_id == 2
        assert txn.next_page_id == 9

    def test_multiple_commits_in_order(self):
        wal, _ = fresh_wal()
        for i in range(1, 4):
            wal.log_commit(
                txn_id=i, commit_ts=i, pages={i: image(i)}, freed=[],
                declared_snapshot=False, snapshot_id=0, next_page_id=i + 1,
            )
        replayed = list(wal.replay())
        assert [t.txn_id for t in replayed] == [1, 2, 3]
        assert [t.commit_ts for t in replayed] == [1, 2, 3]

    def test_replay_from_boundary(self):
        wal, _ = fresh_wal()
        wal.log_commit(txn_id=1, commit_ts=1, pages={1: image(1)},
                       freed=[], declared_snapshot=False, snapshot_id=0,
                       next_page_id=2)
        boundary = wal.sync_boundary()
        wal.log_commit(txn_id=2, commit_ts=2, pages={2: image(2)},
                       freed=[], declared_snapshot=False, snapshot_id=0,
                       next_page_id=3)
        replayed = list(wal.replay(boundary))
        assert [t.txn_id for t in replayed] == [2]

    def test_torn_commit_group_dropped(self):
        """Page records without a commit seal (a crash mid-group) are
        discarded by replay — WAL atomicity."""
        from repro.storage.logfile import BlockLogWriter
        from repro.storage.record import encode_record

        disk = SimulatedDisk(PAGE)
        wal_file = disk.open_file("wal", append_only=True)
        wal = WriteAheadLog(wal_file)
        wal.log_commit(txn_id=1, commit_ts=1, pages={1: image(1)},
                       freed=[], declared_snapshot=False, snapshot_id=0,
                       next_page_id=2)
        # Simulate a crash after a page record but before the seal.
        writer = BlockLogWriter(wal_file)
        writer.append(encode_record(["P", 2, 9, image(9)]))
        writer.flush()
        replayed = list(WriteAheadLog(wal_file).replay())
        assert [t.txn_id for t in replayed] == [1]

    def test_empty_wal(self):
        wal, _ = fresh_wal()
        assert list(wal.replay()) == []

    def test_large_page_images_span_blocks(self):
        wal, _ = fresh_wal()
        big = {i: image(i) for i in range(10)}
        wal.log_commit(txn_id=1, commit_ts=1, pages=big, freed=[],
                       declared_snapshot=False, snapshot_id=0,
                       next_page_id=11)
        (txn,) = wal.replay()
        assert txn.pages == big
