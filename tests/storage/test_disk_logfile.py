"""Simulated disk, cost accounting, and block-log framing tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.disk import CostModel, DeviceStats, SimulatedDisk
from repro.storage.logfile import (
    BlockLogReader,
    BlockLogWriter,
    read_all_records,
)

PAGE = 512


class TestDiskFile:
    def test_append_and_read(self):
        disk = SimulatedDisk(PAGE)
        f = disk.open_file("log", append_only=True)
        slot = f.append(b"a" * PAGE)
        assert slot == 0
        assert f.read(0) == b"a" * PAGE
        assert disk.stats.log_writes == 1
        assert disk.stats.log_reads == 1

    def test_random_write_extends(self):
        disk = SimulatedDisk(PAGE)
        f = disk.open_file("db")
        f.write(5, b"x" * PAGE)
        assert len(f) == 6
        assert f.read(5) == b"x" * PAGE
        assert f.read(0) == bytes(PAGE)

    def test_append_only_rejects_random_write(self):
        disk = SimulatedDisk(PAGE)
        f = disk.open_file("log", append_only=True)
        with pytest.raises(StorageError):
            f.write(0, b"x" * PAGE)

    def test_wrong_size_rejected(self):
        disk = SimulatedDisk(PAGE)
        f = disk.open_file("db")
        with pytest.raises(StorageError):
            f.write(0, b"short")

    def test_out_of_range_read(self):
        disk = SimulatedDisk(PAGE)
        f = disk.open_file("db")
        with pytest.raises(StorageError):
            f.read(3)

    def test_reopen_same_file(self):
        disk = SimulatedDisk(PAGE)
        f1 = disk.open_file("db")
        f1.write(0, b"y" * PAGE)
        f2 = disk.open_file("db")
        assert f2 is f1

    def test_reopen_flag_mismatch(self):
        disk = SimulatedDisk(PAGE)
        disk.open_file("db")
        with pytest.raises(StorageError):
            disk.open_file("db", append_only=True)

    def test_scan_charges_reads(self):
        disk = SimulatedDisk(PAGE)
        f = disk.open_file("log", append_only=True)
        for i in range(4):
            f.append(bytes([i]) * PAGE)
        before = disk.stats.log_reads
        assert len(list(f.scan())) == 4
        assert disk.stats.log_reads == before + 4


class TestCostModel:
    def test_charge(self):
        stats = DeviceStats(random_reads=10, log_reads=5,
                            random_writes=2, log_writes=3)
        model = CostModel(db_read_seconds=1.0, log_read_seconds=10.0,
                          write_seconds=0.5)
        assert model.charge(stats) == 10 * 1.0 + 5 * 10.0 + 5 * 0.5

    def test_delta(self):
        stats = DeviceStats(random_reads=10)
        earlier = stats.snapshot()
        stats.random_reads += 7
        assert stats.delta(earlier).random_reads == 7


class TestBlockLog:
    def _roundtrip(self, payloads, flush_points=()):
        disk = SimulatedDisk(PAGE)
        f = disk.open_file("log", append_only=True)
        writer = BlockLogWriter(f)
        for i, payload in enumerate(payloads):
            writer.append(payload)
            if i in flush_points:
                writer.flush()
        writer.flush()
        assert read_all_records(f) == list(payloads)

    def test_small_records(self):
        self._roundtrip([b"a", b"bb", b"ccc"])

    def test_record_spanning_blocks(self):
        self._roundtrip([b"x" * (PAGE * 3 + 17), b"tail"])

    def test_flush_padding_mid_stream(self):
        self._roundtrip([b"a" * 100, b"b" * 100, b"c" * 100],
                        flush_points=(0, 1))

    def test_header_never_straddles(self):
        # Payload sized so the next header would start < 4 bytes from a
        # block boundary.
        first = b"z" * (PAGE - 4 - 2)
        self._roundtrip([first, b"second"])

    def test_start_block_boundary(self):
        disk = SimulatedDisk(PAGE)
        f = disk.open_file("log", append_only=True)
        writer = BlockLogWriter(f)
        writer.append(b"first")
        boundary = writer.sync_boundary()
        writer.append(b"second")
        writer.flush()
        reader = BlockLogReader(f)
        assert list(reader.records(boundary)) == [b"second"]

    def test_empty_record_rejected(self):
        disk = SimulatedDisk(PAGE)
        f = disk.open_file("log", append_only=True)
        with pytest.raises(StorageError):
            BlockLogWriter(f).append(b"")

    def test_empty_log(self):
        disk = SimulatedDisk(PAGE)
        f = disk.open_file("log", append_only=True)
        assert read_all_records(f) == []

    def test_requires_append_only(self):
        disk = SimulatedDisk(PAGE)
        f = disk.open_file("db")
        with pytest.raises(StorageError):
            BlockLogWriter(f)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=PAGE * 2), max_size=20),
           st.sets(st.integers(min_value=0, max_value=19)))
    def test_roundtrip_property(self, payloads, flush_points):
        self._roundtrip(payloads, flush_points)
