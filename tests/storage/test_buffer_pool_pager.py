"""Buffer pool, pager meta-page, and page-header unit tests."""

import pytest

from repro.errors import BufferPoolError, PageError, StorageError
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.page import (
    HEADER_SIZE,
    PAGE_TYPE_BTREE_LEAF,
    PAGE_TYPE_META,
    Page,
)
from repro.storage.pager import META_PAGE_ID, Pager

PAGE = 512


class TestPage:
    def test_header_round_trip(self):
        page = Page(3, page_size=PAGE)
        page.page_type = PAGE_TYPE_BTREE_LEAF
        page.lsn = 12345
        assert page.page_type == PAGE_TYPE_BTREE_LEAF
        assert page.lsn == 12345
        # Setting one header field preserves the other.
        page.lsn = 99
        assert page.page_type == PAGE_TYPE_BTREE_LEAF

    def test_bad_type_rejected(self):
        page = Page(0, page_size=PAGE)
        with pytest.raises(PageError):
            page.page_type = 200

    def test_negative_id_rejected(self):
        with pytest.raises(PageError):
            Page(-1, page_size=PAGE)

    def test_wrong_buffer_size(self):
        with pytest.raises(PageError):
            Page(0, bytearray(10), page_size=PAGE)

    def test_load_resets_decode_cache(self):
        page = Page(0, page_size=PAGE)
        page.decoded_node = object()
        page.load(bytes(PAGE))
        assert page.decoded_node is None

    def test_snapshot_bytes_is_copy(self):
        page = Page(0, page_size=PAGE)
        image = page.snapshot_bytes()
        page.data[100] = 7
        assert image[100] == 0


def make_pool(capacity=4):
    disk = SimulatedDisk(PAGE)
    db_file = disk.open_file("db")
    for i in range(10):
        db_file.write(i, bytes([i]) * PAGE)
    return BufferPool(db_file, capacity), db_file


class TestBufferPool:
    def test_hit_and_miss(self):
        pool, _ = make_pool()
        pool.fetch(1, pin=False)
        pool.fetch(1, pin=False)
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert pool.stats.hit_rate() == 0.5

    def test_lru_eviction_writes_back_dirty(self):
        pool, db_file = make_pool(capacity=2)
        page = pool.fetch(1, pin=False)
        page.data[HEADER_SIZE] = 0xAB
        page.dirty = True
        pool.fetch(2, pin=False)
        pool.fetch(3, pin=False)  # evicts page 1 (LRU)
        assert not pool.resident(1)
        assert db_file.read(1)[HEADER_SIZE] == 0xAB

    def test_pinned_pages_not_evicted(self):
        pool, _ = make_pool(capacity=2)
        pinned = pool.fetch(1)  # pinned
        pool.fetch(2, pin=False)
        pool.fetch(3, pin=False)
        assert pool.resident(1)
        pool.unpin(pinned)

    def test_all_pinned_raises(self):
        pool, _ = make_pool(capacity=2)
        pool.fetch(1)
        pool.fetch(2)
        with pytest.raises(BufferPoolError):
            pool.fetch(3)

    def test_unpin_unpinned_raises(self):
        pool, _ = make_pool()
        page = pool.fetch(1, pin=False)
        with pytest.raises(BufferPoolError):
            pool.unpin(page)

    def test_flush_hook_runs_before_writeback(self):
        order = []
        pool, db_file = make_pool()
        pool.set_flush_hook(lambda: order.append("hook"))
        page = pool.fetch(1, pin=False)
        page.dirty = True
        original_write = db_file.write

        def tracked_write(slot, raw):
            order.append("write")
            original_write(slot, raw)

        db_file.write = tracked_write
        pool.flush_all()
        assert order == ["hook", "write"]

    def test_put_raw_installs(self):
        pool, _ = make_pool()
        pool.put_raw(5, b"\x07" * PAGE)
        assert pool.fetch(5, pin=False).data[0] == 7

    def test_drop_all_discards_dirty(self):
        pool, db_file = make_pool()
        page = pool.fetch(1, pin=False)
        page.data[HEADER_SIZE] = 0xCD
        page.dirty = True
        pool.drop_all()
        assert db_file.read(1)[HEADER_SIZE] != 0xCD

    def test_capacity_validation(self):
        disk = SimulatedDisk(PAGE)
        with pytest.raises(BufferPoolError):
            BufferPool(disk.open_file("db"), capacity=0)


class TestPager:
    def test_fresh_database_has_meta(self):
        disk = SimulatedDisk(PAGE)
        pager = Pager(disk.open_file("db"))
        assert pager.next_page_id == 1
        meta = disk.open_file("db").read(META_PAGE_ID)
        assert Page(0, bytearray(meta), PAGE).page_type == PAGE_TYPE_META

    def test_allocate_free_reuse(self):
        disk = SimulatedDisk(PAGE)
        pager = Pager(disk.open_file("db"))
        first = pager.allocate()
        second = pager.allocate()
        assert (first, second) == (1, 2)
        pager.free(first)
        assert pager.allocate() == first

    def test_meta_page_cannot_be_freed(self):
        disk = SimulatedDisk(PAGE)
        pager = Pager(disk.open_file("db"))
        with pytest.raises(StorageError):
            pager.free(META_PAGE_ID)

    def test_roots_persist_across_reopen(self):
        disk = SimulatedDisk(PAGE)
        pager = Pager(disk.open_file("db"))
        pager.allocate()
        pager.set_root("catalog", 1)
        pager.set_root("other", 7)
        pager.write_meta()
        reopened = Pager(disk.open_file("db"))
        assert reopened.get_root("catalog") == 1
        assert reopened.get_root("other") == 7
        assert reopened.next_page_id == pager.next_page_id

    def test_root_deletion(self):
        disk = SimulatedDisk(PAGE)
        pager = Pager(disk.open_file("db"))
        pager.set_root("x", 3)
        pager.set_root("x", None)
        assert pager.get_root("x") is None

    def test_bad_magic_detected(self):
        disk = SimulatedDisk(PAGE)
        db_file = disk.open_file("db")
        db_file.write(0, b"\xff" * PAGE)
        with pytest.raises(StorageError):
            Pager(db_file)

    def test_allocation_state_round_trip(self):
        disk = SimulatedDisk(PAGE)
        pager = Pager(disk.open_file("db"))
        pager.allocate()
        pager.allocate()
        pager.free(1)
        state = pager.allocation_state()
        fresh = Pager(SimulatedDisk(PAGE).open_file("db"))
        fresh.restore_allocation_state(state)
        assert fresh.next_page_id == 3
        assert fresh.allocate() == 1  # from restored free list

    def test_page_count(self):
        disk = SimulatedDisk(PAGE)
        pager = Pager(disk.open_file("db"))
        pager.allocate()
        pager.allocate()
        pager.free(2)
        assert pager.page_count == 2  # meta + one live
