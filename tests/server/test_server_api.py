"""RQLServer surface: in-process API, the wire protocol, the serve CLI.

Covers the pieces the differential harness and fault tests don't:
certificate-gated scheduling verdicts, per-session one-query-at-a-time
dispatch, the shared write gate's reentrancy and timeout, the JSON
wire protocol (including error responses and abrupt peer death), and
``python -m repro.cli serve --selftest``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cli import main
from repro.errors import (
    MechanismError,
    ParseError,
    ServerError,
    SessionStateError,
)
from repro.server import RQLServer, WireClient, WireServer, WriteGate

QS = "SELECT snap_id FROM SnapIds ORDER BY snap_id"


@pytest.fixture
def server():
    srv = RQLServer(gate_timeout=30.0)
    yield srv
    srv.close()


def _populate(handle, snapshots: int = 3) -> None:
    handle.execute("CREATE TABLE events (grp, val)")
    for n in range(snapshots):
        handle.execute(f"INSERT INTO events VALUES ({n % 2}, {n})")
        handle.declare_snapshot()


# ---------------------------------------------------------------------------
# in-process API
# ---------------------------------------------------------------------------


def test_sessions_share_one_store(server):
    alice = server.connect("alice")
    bob = server.connect("bob")
    _populate(alice)
    # bob sees alice's table, snapshots, and SnapIds rows immediately.
    assert bob.execute("SELECT COUNT(*) FROM events").scalar() == 3
    assert bob.execute("SELECT COUNT(*) FROM SnapIds").scalar() == 3
    result = bob.collate_data(
        QS, "SELECT val, current_snapshot() FROM events", "R",
        workers=2)
    assert result.snapshots == [1, 2, 3]
    # ... and alice can read bob's result table (shared aux engine).
    assert alice.execute("SELECT COUNT(*) FROM R").scalar() == 6
    alice.close()
    bob.close()


def test_scheduler_runs_certified_queries_partitioned(server):
    client = server.connect("alice")
    _populate(client)
    ticket = client.collate_data(
        QS, "SELECT val, current_snapshot() FROM events", "R",
        workers=4, block=False)
    result = ticket.outcome()
    assert ticket.partitioned, "concat-certified query should partition"
    assert result.parallel is not None
    assert result.snapshots == [1, 2, 3]
    # workers=1 takes the serial loop even for a mergeable query.
    ticket = client.collate_data(
        QS, "SELECT val, current_snapshot() FROM events", "R2",
        workers=1, block=False)
    ticket.outcome()
    assert not ticket.partitioned
    client.close()


def test_scheduler_rejects_unknown_mechanism_and_bad_sql(server):
    client = server.connect("alice")
    _populate(client, snapshots=1)
    with pytest.raises(ServerError):
        server.scheduler.submit(client.session, "no_such_mechanism",
                                QS, "SELECT 1", "R")
    ticket = server.scheduler.submit(client.session, "collate_data",
                                     QS, "SELEC nonsense", "R")
    with pytest.raises((ParseError, MechanismError)):
        ticket.outcome()
    # A failed query retires its ticket; nothing stays active.
    assert server.scheduler.active_count() == 0
    client.close()


def test_one_query_at_a_time_per_session(server):
    """Same-session submissions serialize on the dispatch lock; cross-
    session ones overlap (proven by the disconnect tests' parked
    queries).  Here: two same-session tickets both complete and their
    results are intact."""
    client = server.connect("alice")
    _populate(client)
    first = client.collate_data(
        QS, "SELECT val, current_snapshot() FROM events", "A",
        workers=2, block=False)
    second = client.aggregate_data_in_variable(
        QS, "SELECT COUNT(*) FROM events", "B", "sum", workers=2,
        block=False)
    assert first.outcome().snapshots == [1, 2, 3]
    assert second.outcome().snapshots == [1, 2, 3]
    # COUNT(*) summed across the three snapshots: 1 + 2 + 3 rows.
    assert client.execute("SELECT * FROM B").scalar() == 6
    client.close()


def test_updates_block_on_the_gate_but_reads_do_not(server):
    writer = server.connect("writer")
    reader = server.connect("reader")
    _populate(writer)
    writer.execute("BEGIN")
    writer.execute("INSERT INTO events VALUES (7, 70)")
    # With the writer's transaction open (gate held), snapshot-pinned
    # reads proceed unharmed — and see only committed state.
    assert reader.execute("SELECT COUNT(*) FROM events").scalar() == 3
    assert reader.execute(
        "SELECT AS OF 2 COUNT(*) FROM events").scalar() == 2
    # A mechanism materializes its result table — a *write* — so its
    # ticket parks on the gate until the writer commits...
    ticket = reader.aggregate_data_in_variable(
        QS, "SELECT COUNT(*) FROM events", "Counts", "sum", workers=2,
        block=False)
    assert not ticket.wait(0.2), "query's result write jumped the gate"
    # ... as does any other writer.
    done = threading.Event()

    def contender():
        reader.execute("INSERT INTO events VALUES (8, 80)")
        done.set()

    thread = threading.Thread(target=contender)
    thread.start()
    assert not done.wait(0.2), "second writer slipped past the gate"
    writer.execute("COMMIT")
    assert done.wait(10.0)
    thread.join()
    assert ticket.outcome().snapshots == [1, 2, 3]
    assert writer.execute("SELECT COUNT(*) FROM events").scalar() == 5
    writer.close()
    reader.close()


def test_write_gate_is_owner_reentrant_with_timeout():
    gate = WriteGate(timeout=0.05)
    alice, bob = object(), object()
    gate.acquire(alice)
    gate.acquire(alice)  # reentrant for the same owner
    with pytest.raises(ServerError):
        gate.acquire(bob)  # a different owner times out
    gate.release(alice)
    assert gate.held  # still one hold deep
    with pytest.raises(SessionStateError):
        gate.release(bob)  # non-owner release is an error
    gate.release(alice)
    assert not gate.held
    gate.acquire(bob)  # now free for anyone
    assert gate.force_release(bob)
    assert not gate.force_release(bob)


def test_session_workers_validation_still_applies(server):
    client = server.connect("alice")
    _populate(client, snapshots=1)
    with pytest.raises(MechanismError):
        client.collate_data(QS, "SELECT val FROM events", "R", workers=0)
    client.close()


# ---------------------------------------------------------------------------
# the wire protocol
# ---------------------------------------------------------------------------


@pytest.fixture
def wire(server):
    front = WireServer(server).start()
    yield front
    front.close()


def test_wire_roundtrip(server, wire):
    host, port = wire.address
    with WireClient(host, port) as client:
        assert client.request({"op": "ping"})["ok"]
        assert client.execute("CREATE TABLE t (a INTEGER)")["ok"]
        assert client.execute("INSERT INTO t VALUES (41)")["ok"]
        reply = client.execute("SELECT a + 1 FROM t")
        assert reply["ok"] and reply["rows"] == [[42]]
        snap = client.request({"op": "snapshot", "name": "wired"})
        assert snap["ok"] and snap["snapshot_id"] == 1
        mech = client.request({
            "op": "mechanism", "mechanism": "aggregate_data_in_table",
            "qs": QS, "qq": "SELECT a, a FROM t", "table": "R",
            "arg": [["a", "count"]], "workers": 2,
        })
        assert mech["ok"] and mech["snapshots"] == [1]
    assert server.leak_report()["sessions"] == 0


def test_wire_errors_keep_the_connection_usable(server, wire):
    host, port = wire.address
    with WireClient(host, port) as client:
        bad = client.execute("SELEC nonsense")
        assert not bad["ok"] and bad["error"] == "ParseError"
        bad = client.request({"op": "mechanism",
                              "mechanism": "collate_data"})
        assert not bad["ok"] and bad["error"] == "BadRequest"
        bad = client.request({"op": "warp"})
        assert not bad["ok"] and bad["error"] == "BadRequest"
        # Still alive:
        assert client.request({"op": "ping"})["ok"]


def test_wire_abrupt_peer_death_reaps_the_session(server, wire):
    host, port = wire.address
    client = WireClient(host, port)
    assert client.request({"op": "ping"})["ok"]
    assert server.registry.count() == 1
    client.drop()  # vanish without a close op
    deadline = time.monotonic() + 10.0
    while server.registry.count() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert server.registry.count() == 0
    assert server.leak_report()["read_contexts"] == 0


# ---------------------------------------------------------------------------
# the serve CLI
# ---------------------------------------------------------------------------


def test_cli_serve_selftest(capsys):
    assert main(["serve", "--selftest", "--pool-workers", "2",
                 "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "rql server listening on 127.0.0.1:" in out
    assert "selftest ok: 1 row(s) over snapshots [1]" in out


def test_cli_serve_rejects_bad_flags():
    assert main(["serve", "--port", "not-a-port"]) == 2
    assert main(["serve", "--frobnicate"]) == 2
    assert main(["serve", "--port"]) == 2
