"""Differential harness: concurrent schedules == their serial replay.

Hypothesis generates N-client schedules — each client runs a sequence
of snapshot-declaring update transactions and retrospective mechanism
calls — and the harness runs every schedule twice:

* **concurrently**, through the multi-session server: one thread per
  client, all released on a barrier, updates serialized only by the
  shared write gate, queries admitted by the scheduler (partitioned
  through the worker pool when the merge certificate allows, the
  serial loop otherwise);
* **serially**, on a fresh embedded session: the recorded update
  transactions replayed one by one in commit (snapshot-id) order, then
  each query re-run with its Qs pinned to the snapshot prefix the
  concurrent run actually iterated.

Equality is asserted on the **byte-level full dump** of both engines —
every table's columns, rowids, physical row order and values, plus the
index inventory — and on the leak report: zero registered sessions,
zero open MVCC read contexts, an idle write gate, zero active queries
after teardown.

Why the replay is well-defined: snapshot ids are allocated under the
write gate, and each declaration's SnapIds row is inserted under the
same gate hold, so any reader sees a contiguous prefix ``1..k`` of the
declared snapshots; recording ``k`` per query pins its snapshot set
exactly.  Snapshot contents are immutable once declared, so a query's
result table is a pure function of (mechanism, Qq, prefix) — which is
precisely what the serial replay recomputes.

Client counts {2, 4, 8} x ``MAX_EXAMPLES`` examples ≥ 100 schedules
per full run, per the acceptance bar.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import RQLSession
from repro.server import RQLServer
from tests.conftest import full_database_dump

CLIENT_COUNTS = (2, 4, 8)
MAX_EXAMPLES = 35  # x3 client counts = 105 schedules per full run

#: fixed clock so SnapIds timestamps are identical across both runs
FIXED_CLOCK = lambda: "2026-01-01 00:00:00"  # noqa: E731

DIFFERENTIAL_SETTINGS = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large,
                           HealthCheck.filter_too_much],
)


# ---------------------------------------------------------------------------
# Schedule generation
# ---------------------------------------------------------------------------

_groups = st.integers(min_value=0, max_value=3)
_values = st.integers(min_value=-50, max_value=100)

_update_op = st.one_of(
    st.tuples(st.just("insert"), _groups, _values),
    st.tuples(st.just("update"), _groups,
              st.integers(min_value=1, max_value=9)),
    st.tuples(st.just("delete"), _groups),
)

#: one update action = one snapshot-declaring transaction
_txn_action = st.tuples(st.just("txn"),
                        st.lists(_update_op, min_size=1, max_size=3))

#: (mechanism, qq, arg) triples the scheduler can certify
_QUERY_SHAPES = (
    ("collate_data",
     "SELECT grp, val, current_snapshot() FROM events", None),
    ("aggregate_data_in_variable", "SELECT COUNT(*) FROM events", "sum"),
    ("aggregate_data_in_table", "SELECT grp, val FROM events",
     [("val", "sum")]),
    ("collate_data_into_intervals", "SELECT DISTINCT grp FROM events",
     None),
)

_query_action = st.tuples(
    st.just("query"),
    st.integers(min_value=0, max_value=len(_QUERY_SHAPES) - 1),
    st.sampled_from([1, 2, 4]),  # workers: 1 = serial loop in-scheduler
)

_client_schedule = st.lists(st.one_of(_txn_action, _query_action),
                            min_size=1, max_size=3)


def schedules_for(clients: int):
    return st.lists(_client_schedule, min_size=clients, max_size=clients)


def _op_sql(op) -> str:
    if op[0] == "insert":
        return f"INSERT INTO events VALUES ({op[1]}, {op[2]})"
    if op[0] == "update":
        return (f"UPDATE events SET val = val + {op[2]} "
                f"WHERE grp = {op[1]}")
    return f"DELETE FROM events WHERE grp = {op[1]}"


# ---------------------------------------------------------------------------
# Concurrent run
# ---------------------------------------------------------------------------


def run_concurrent(schedule, clients: int):
    """Drive the schedule through the server; returns what happened.

    The per-client records keep enough to replay: each update
    transaction with the snapshot id it committed as, each query with
    the snapshot prefix it actually iterated.
    """
    server = RQLServer(clock=FIXED_CLOCK, gate_timeout=60.0)
    txns = []       # (snapshot_id, ops)
    queries = []    # (table, mechanism, qq, arg, prefix_k)
    errors = []
    record_latch = threading.Lock()
    try:
        handles = [server.connect(f"client-{i}") for i in range(clients)]
        handles[0].execute("CREATE TABLE events (grp, val)")
        barrier = threading.Barrier(clients)

        def drive(i: int) -> None:
            handle = handles[i]
            barrier.wait()
            for n, action in enumerate(schedule[i]):
                if action[0] == "txn":
                    _, ops = action
                    with handle.transaction(with_snapshot=True) as txn:
                        for op in ops:
                            handle.execute(_op_sql(op))
                    with record_latch:
                        txns.append((txn.snapshot_id, ops))
                else:
                    _, shape, workers = action
                    mechanism, qq, arg = _QUERY_SHAPES[shape]
                    table = f"r_{i}_{n}"
                    result = handle._mechanism(
                        mechanism, "SELECT snap_id FROM SnapIds "
                        "ORDER BY snap_id", qq, table, arg, False,
                        workers, True)
                    with record_latch:
                        queries.append(
                            (table, mechanism, qq, arg,
                             max(result.snapshots, default=0)))

        threads = [
            threading.Thread(target=lambda i=i: _guard(drive, i, errors),
                             name=f"client-{i}")
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == [], errors
        for handle in handles:
            handle.close()
        dump = full_database_dump(server.store)
        leaks = server.leak_report()
    finally:
        server.close()
    return txns, queries, dump, leaks


def _guard(drive, i, errors):
    try:
        drive(i)
    except BaseException as exc:  # noqa: BLE001 - surfaced in the test
        errors.append((i, exc))


# ---------------------------------------------------------------------------
# Serial replay
# ---------------------------------------------------------------------------


def run_serial(txns, queries):
    """Replay on a fresh embedded session, in commit order."""
    session = RQLSession(clock=FIXED_CLOCK, workers=1)
    session.execute("CREATE TABLE events (grp, val)")
    for expected_id, ops in sorted(txns, key=lambda t: t[0]):
        with session.transaction(with_snapshot=True) as txn:
            for op in ops:
                session.execute(_op_sql(op))
        assert txn.snapshot_id == expected_id
    for table, mechanism, qq, arg, prefix_k in sorted(
            queries, key=lambda q: q[0]):
        qs = (f"SELECT snap_id FROM SnapIds WHERE snap_id <= {prefix_k} "
              f"ORDER BY snap_id")
        method = getattr(session, mechanism)
        if arg is None:
            method(qs, qq, table)
        else:
            method(qs, qq, table, arg)
    dump = full_database_dump(session.db)
    readers = (len(session.db.engine.open_read_contexts())
               + len(session.db.aux_engine.open_read_contexts()))
    session.close()
    return dump, readers


# ---------------------------------------------------------------------------
# The differential property
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("clients", CLIENT_COUNTS)
def test_concurrent_equals_serial_replay(clients):
    @DIFFERENTIAL_SETTINGS
    @given(schedule=schedules_for(clients))
    def check(schedule):
        txns, queries, concurrent_dump, leaks = run_concurrent(
            schedule, clients)
        assert leaks == {"sessions": 0, "read_contexts": 0,
                         "gate_held": False, "active_queries": 0}, leaks
        serial_dump, serial_readers = run_serial(txns, queries)
        assert serial_readers == 0
        assert concurrent_dump == serial_dump

    check()


def test_snapshot_ids_are_gap_free_under_contention():
    """All-writer schedule: K committed txns own ids 1..K, and the
    SnapIds rows are in id order (the gate-atomic declare+record)."""
    clients = 4
    schedule = [[("txn", [("insert", i, i * 10)])] * 3
                for i in range(clients)]
    txns, _queries, dump, leaks = run_concurrent(schedule, clients)
    ids = sorted(sid for sid, _ops in txns)
    assert ids == list(range(1, 3 * clients + 1))
    assert leaks["sessions"] == 0 and leaks["read_contexts"] == 0
    _columns, rows = dump[("aux", "SnapIds")]
    assert [row[0] for _rowid, row in rows] == ids


def test_queries_pin_contiguous_snapshot_prefixes():
    """Concurrent queries only ever see a prefix 1..k of the declared
    snapshots — the property the replay's pinned Qs relies on."""
    clients = 4
    schedule = [
        [("txn", [("insert", i, 1)]), ("query", 0, 2),
         ("txn", [("update", i, 2)])]
        for i in range(clients)
    ]
    txns, queries, _dump, _leaks = run_concurrent(schedule, clients)
    total = len(txns)
    for _table, _mechanism, _qq, _arg, prefix_k in queries:
        assert 0 <= prefix_k <= total
