"""SessionRegistry: open/close churn, idempotent close, crash reaping.

The registry's contract is *teardown always reaps*: whatever a session
was doing — including crashing mid-write on a ChaosDisk — closing it
leaves zero registered sessions, zero open MVCC read contexts, and an
idle write gate.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    QueryCancelled,
    ServerError,
    SessionStateError,
    SimulatedCrash,
    StorageError,
)
from repro.server import RQLServer, SessionRegistry, SharedStore
from repro.storage.chaosdisk import ChaosDisk


@pytest.fixture
def store():
    shared = SharedStore(gate_timeout=30.0)
    yield shared
    shared.close()


@pytest.fixture
def registry(store):
    return SessionRegistry(store)


# ---------------------------------------------------------------------------
# open / lookup / close basics
# ---------------------------------------------------------------------------


def test_open_close_roundtrip(registry):
    session = registry.open("alice")
    assert registry.get("alice") is session
    assert registry.names() == ["alice"]
    assert registry.close("alice") is True
    assert registry.count() == 0
    with pytest.raises(SessionStateError):
        registry.get("alice")


def test_auto_naming_and_duplicate_rejection(registry):
    first = registry.open()
    second = registry.open()
    assert first.name != second.name
    with pytest.raises(SessionStateError):
        registry.open(first.name)
    assert registry.shutdown() == 2
    with pytest.raises(SessionStateError):
        registry.open("late")


def test_close_is_idempotent_and_so_is_session_close(registry):
    session = registry.open("alice")
    session.execute("CREATE TABLE t (a INTEGER)")
    assert registry.close("alice") is True
    assert registry.close("alice") is False  # second close: no-op
    # Direct double-close of the session object is also a no-op — it
    # must not deregister an MVCC reader twice.
    session.close()
    session.close()
    assert session.closed
    assert registry.leak_report() == {
        "sessions": 0, "read_contexts": 0, "gate_held": False,
    }


def test_close_releases_abandoned_read_contexts(store, registry):
    """A crashed caller can abandon a read context (e.g. an unfinished
    streaming cursor); closing the session must deregister it."""
    session = registry.open("alice")
    session.execute("CREATE TABLE t (a INTEGER)")
    session.execute("INSERT INTO t VALUES (1)")
    # Simulate an abandoned cursor: open a context tagged with this
    # session's owner and never close it.
    context = store.engine.begin_read(owner=session.db._owner)
    assert not context.closed
    assert store.open_reader_count() == 1
    registry.close("alice")
    assert store.open_reader_count() == 0
    assert context.closed


def test_close_rolls_back_open_transaction_and_frees_gate(store, registry):
    alice = registry.open("alice")
    bob = registry.open("bob")
    alice.execute("CREATE TABLE t (a INTEGER)")
    alice.execute("BEGIN")
    alice.execute("INSERT INTO t VALUES (1)")
    assert store.gate.held
    registry.close("alice")
    assert not store.gate.held
    # The uncommitted insert is gone and bob can write immediately.
    assert bob.execute("SELECT COUNT(*) FROM t").scalar() == 0
    bob.execute("INSERT INTO t VALUES (2)")
    assert bob.execute("SELECT COUNT(*) FROM t").scalar() == 1
    registry.close("bob")


# ---------------------------------------------------------------------------
# churn across threads
# ---------------------------------------------------------------------------


def test_open_close_churn_across_threads(registry):
    """Heavy concurrent open/work/close cycles leak nothing."""
    threads, iterations = 8, 12
    errors = []
    opened = registry.open("seed")
    opened.execute("CREATE TABLE t (a INTEGER)")
    registry.close("seed")

    def churn(worker: int) -> None:
        try:
            for n in range(iterations):
                session = registry.open(f"w{worker}-{n}")
                session.execute(f"INSERT INTO t VALUES ({worker})")
                if n % 3 == 0:
                    session.declare_snapshot()
                session.execute("SELECT COUNT(*) FROM t")
                assert registry.close(session.name) is True
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append((worker, exc))

    workers = [threading.Thread(target=churn, args=(i,))
               for i in range(threads)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    assert errors == []
    assert registry.leak_report() == {
        "sessions": 0, "read_contexts": 0, "gate_held": False,
    }


# ---------------------------------------------------------------------------
# crash-mid-session reaping
# ---------------------------------------------------------------------------


def test_crash_mid_session_still_reaps():
    """A ChaosDisk crash mid-write surfaces to the client, but closing
    the session afterwards clears the registry and the reader table."""
    disk = ChaosDisk(4096, seed=11)
    aux = ChaosDisk(4096, controller=disk.chaos)
    store = SharedStore(disk=disk, aux_disk=aux, gate_timeout=30.0)
    registry = SessionRegistry(store)
    session = registry.open("doomed")
    survivor = registry.open("survivor")
    session.execute("CREATE TABLE t (a INTEGER)")
    session.execute("INSERT INTO t VALUES (1)")
    disk.schedule_crash(at_write=1)
    with pytest.raises(SimulatedCrash):
        for n in range(100):
            session.execute(f"INSERT INTO t VALUES ({n})")
            session.declare_snapshot()
    # Teardown after the crash: the registry row, the reader table and
    # the gate are all clear even though the disk is dead.
    try:
        registry.close("doomed")
    except StorageError:
        pass  # a crashed close may propagate, but must still reap
    registry.close("survivor")
    assert registry.leak_report() == {
        "sessions": 0, "read_contexts": 0, "gate_held": False,
    }
    store.close(checkpoint=False)


def test_server_close_is_idempotent_and_total():
    server = RQLServer()
    handle = server.connect("alice")
    handle.execute("CREATE TABLE t (a INTEGER)")
    server.close()
    server.close()
    assert server.closed
    with pytest.raises(SessionStateError):
        server.connect("late")
    with pytest.raises(ServerError):
        server.scheduler.submit(handle.session, "collate_data",
                                "SELECT snap_id FROM SnapIds",
                                "SELECT a FROM t", "r")
    assert isinstance(QueryCancelled("x"), ServerError)


# ---------------------------------------------------------------------------
# kill-mid-refresh: materialized-view refresh vs session teardown
# ---------------------------------------------------------------------------


def _view_fixture(registry, started, release, blocking):
    """A session with a 1-snapshot view whose Qq blocks on demand."""
    session = registry.open("alice")

    def gate(value):
        if blocking.is_set():
            started.set()
            release.wait(30)
        return value

    session.db.register_function("gate", gate)
    session.execute("CREATE TABLE events (val INTEGER)")
    session.execute("INSERT INTO events VALUES (10)")
    session.declare_snapshot()
    session.execute(
        "CREATE MATERIALIZED VIEW v AS "
        "CollateData('SELECT gate(val) FROM events')")
    for n in range(3):
        session.execute(f"INSERT INTO events VALUES ({n})")
        session.declare_snapshot()
    return session


def test_cancel_mid_refresh_keeps_committed_view(store, registry):
    """Cancelling an in-flight refresh never tears the view: metadata
    and table stay at the committed ``built_from``, teardown leaks
    nothing, and a later session can still refresh to the target."""
    from repro.server import QueryScheduler
    from repro.errors import QueryCancelled as Cancelled

    started = threading.Event()
    release = threading.Event()
    blocking = threading.Event()
    scheduler = QueryScheduler(store)
    session = _view_fixture(registry, started, release, blocking)
    before = session.execute("SELECT * FROM v").rows

    blocking.set()
    ticket = scheduler.submit_refresh(session, "v")
    assert started.wait(10), "refresh never reached the blocked Qq"
    cancelled = scheduler.cancel_session("alice", wait=False)
    assert cancelled == 1
    release.set()
    assert ticket.wait(10)
    with pytest.raises(Cancelled):
        ticket.outcome()

    # Fully old: the cancelled refresh committed nothing.
    blocking.clear()
    (meta,) = session.views.list_views()
    assert meta.built_from == 1
    assert session.execute("SELECT * FROM v").rows == before
    registry.close("alice")
    assert registry.leak_report() == {
        "sessions": 0, "read_contexts": 0, "gate_held": False,
    }
    # The committed base survives into the next session and is still
    # refreshable to the real target (functions register per session).
    bob = registry.open("bob")
    bob.db.register_function("gate", lambda value: value)
    report = bob.refresh_view("v")
    assert (report.built_from, report.target) == (1, 4)
    registry.close("bob")
    assert registry.leak_report() == {
        "sessions": 0, "read_contexts": 0, "gate_held": False,
    }


def test_session_close_aborts_in_flight_refresh(store, registry):
    """The view manager's close() hook aborts an in-flight refresh with
    QueryCancelled, so registry teardown reaps an all-zero report."""
    from repro.server import QueryScheduler
    from repro.errors import QueryCancelled as Cancelled

    started = threading.Event()
    release = threading.Event()
    blocking = threading.Event()
    scheduler = QueryScheduler(store)
    session = _view_fixture(registry, started, release, blocking)

    blocking.set()
    ticket = scheduler.submit_refresh(session, "v")
    assert started.wait(10), "refresh never reached the blocked Qq"
    # Teardown signal first (what RQLSession.close does), then let the
    # blocked evaluation run into the abort check.
    session.views.close()
    release.set()
    assert ticket.wait(10)
    assert isinstance(ticket.error, Cancelled)
    assert "session close" in str(ticket.error)

    registry.close("alice")
    assert registry.leak_report() == {
        "sessions": 0, "read_contexts": 0, "gate_held": False,
    }
