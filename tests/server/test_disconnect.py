"""Client-disconnect faults: cancel mid-query, leak nothing.

A killed client's in-flight query stops at the next snapshot boundary
through the cancel-event path (the same event the parallel executor's
partition workers poll), its half-built result table is dropped, its
session is reaped — and concurrently connected clients never notice.

The queries are made deterministically *interruptible* with a blocking
UDF in the Qq: the first iteration parks on an event, the test kills
the client while it is parked, then releases the event and asserts the
run died with :class:`QueryCancelled` before the next iteration.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import PlanError, QueryCancelled
from repro.server import RQLServer

QS = "SELECT snap_id FROM SnapIds ORDER BY snap_id"
SNAPSHOTS = 6


@pytest.fixture
def server():
    srv = RQLServer(gate_timeout=30.0)
    yield srv
    srv.close()


def _populate(handle, snapshots: int = SNAPSHOTS) -> None:
    handle.execute("CREATE TABLE events (grp, val)")
    for n in range(snapshots):
        handle.execute(f"INSERT INTO events VALUES ({n % 3}, {n})")
        handle.declare_snapshot()


class _Brake:
    """A UDF that parks the first query iteration until released."""

    def __init__(self) -> None:
        self.entered = threading.Event()
        self.release = threading.Event()

    def __call__(self, value):
        self.entered.set()
        self.release.wait(10.0)
        return value


def _kill_while_parked(handle, ticket, brake) -> None:
    """Kill the client while its query is parked in the brake UDF."""
    assert brake.entered.wait(10.0), "query never reached the brake"
    killer = threading.Thread(target=handle.kill)
    killer.start()
    # kill() cancels first, then waits for the ticket; release the
    # parked iteration only once cancellation is visible, so the loop
    # must observe it before the next snapshot.
    assert ticket.cancel.wait(10.0)
    brake.release.set()
    killer.join()
    assert ticket.done.is_set()


@pytest.mark.parametrize("workers", [1, 4],
                         ids=["serial-loop", "partitioned"])
def test_kill_mid_query_cancels_and_leaks_nothing(server, workers):
    victim = server.connect("victim")
    observer = server.connect("observer")
    _populate(victim)
    brake = _Brake()
    victim.session.db.register_function("braking", brake)
    ticket = victim.collate_data(
        QS, "SELECT braking(val), current_snapshot() FROM events",
        "Doomed", workers=workers, block=False)
    _kill_while_parked(victim, ticket, brake)
    assert isinstance(ticket.error, QueryCancelled)
    assert ticket.partitioned is (workers > 1)
    with pytest.raises(QueryCancelled):
        ticket.outcome()
    # The half-built result table was dropped: no debris visible to
    # anyone else (result tables live in the shared aux engine).
    with pytest.raises(PlanError):
        observer.execute("SELECT * FROM Doomed")
    # The victim is gone; the observer and the store are untouched.
    assert server.registry.names() == ["observer"]
    assert server.store.open_reader_count() == 0
    assert not server.store.gate.held
    observer.close()
    assert server.leak_report() == {
        "sessions": 0, "read_contexts": 0, "gate_held": False,
        "active_queries": 0,
    }


def test_other_sessions_unaffected_by_a_kill(server):
    victim = server.connect("victim")
    bystander = server.connect("bystander")
    _populate(victim)
    brake = _Brake()
    victim.session.db.register_function("braking", brake)
    ticket = victim.collate_data(
        QS, "SELECT braking(val), current_snapshot() FROM events",
        "Doomed", workers=2, block=False)
    assert brake.entered.wait(10.0)
    # While the victim's query is parked, the bystander both writes
    # (snapshot-pinned reads never block writers) and queries.
    bystander.execute("INSERT INTO events VALUES (9, 99)")
    sid = bystander.declare_snapshot("during-park")
    before = bystander.aggregate_data_in_variable(
        QS, "SELECT COUNT(*) FROM events", "CountsA", "sum", workers=2)
    _kill_while_parked(victim, ticket, brake)
    assert isinstance(ticket.error, QueryCancelled)
    # And again after the kill: identical machinery, one session fewer.
    after = bystander.aggregate_data_in_variable(
        QS, "SELECT COUNT(*) FROM events", "CountsB", "sum", workers=2)
    assert after.snapshots == before.snapshots == list(
        range(1, sid + 1))
    assert (bystander.execute("SELECT * FROM CountsA").rows
            == bystander.execute("SELECT * FROM CountsB").rows)
    bystander.close()
    assert server.leak_report()["read_contexts"] == 0


def test_graceful_close_waits_instead_of_cancelling(server):
    client = server.connect("patient")
    _populate(client, snapshots=3)
    brake = _Brake()
    client.session.db.register_function("braking", brake)
    ticket = client.collate_data(
        QS, "SELECT braking(val), current_snapshot() FROM events",
        "Kept", workers=1, block=False)
    assert brake.entered.wait(10.0)
    closer = threading.Thread(target=client.close)
    closer.start()
    brake.release.set()
    closer.join()
    # close() drained: the query ran to completion, no cancellation.
    assert ticket.error is None
    assert ticket.outcome().snapshots == [1, 2, 3]
    assert server.leak_report()["sessions"] == 0


def test_cancel_before_admission_is_immediate(server):
    client = server.connect("early")
    _populate(client, snapshots=2)
    ticket = client.collate_data(
        QS, "SELECT val, current_snapshot() FROM events", "Never",
        workers=2, block=False)
    # Cancelling a ticket directly (what kill() does under the hood)
    # is honoured even if it lands before the run starts iterating.
    ticket.cancel.set()
    ticket.done.wait(10.0)
    if ticket.error is not None:
        assert isinstance(ticket.error, QueryCancelled)
    client.close()
    assert server.leak_report() == {
        "sessions": 0, "read_contexts": 0, "gate_held": False,
        "active_queries": 0,
    }
