"""Maplog / Skippy tests: SPT correctness, skip-level equivalence."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SnapshotError, UnknownSnapshotError
from repro.retro.maplog import MapEntry, Maplog
from repro.storage.disk import SimulatedDisk


def fresh_maplog():
    disk = SimulatedDisk(512)
    return Maplog(disk.open_file("maplog", append_only=True)), disk


class TestBasics:
    def test_declare_increments_epoch(self):
        maplog, _ = fresh_maplog()
        assert maplog.declare_snapshot() == 1
        assert maplog.declare_snapshot() == 2
        assert maplog.current_epoch == 2

    def test_record_requires_declaration(self):
        maplog, _ = fresh_maplog()
        with pytest.raises(SnapshotError):
            maplog.record(MapEntry(1, 1, 0, 0))

    def test_record_epoch_mismatch(self):
        maplog, _ = fresh_maplog()
        maplog.declare_snapshot()
        with pytest.raises(SnapshotError):
            maplog.record(MapEntry(1, 1, 5, 0))

    def test_double_capture_same_epoch_rejected(self):
        maplog, _ = fresh_maplog()
        maplog.declare_snapshot()
        maplog.record(MapEntry(1, 1, 1, 0))
        with pytest.raises(SnapshotError):
            maplog.record(MapEntry(1, 1, 1, 1))

    def test_unknown_snapshot(self):
        maplog, _ = fresh_maplog()
        maplog.declare_snapshot()
        with pytest.raises(UnknownSnapshotError):
            maplog.build_spt(2)
        with pytest.raises(UnknownSnapshotError):
            maplog.build_spt(0)


class TestSptSemantics:
    def test_first_capture_serves_snapshot(self):
        maplog, _ = fresh_maplog()
        maplog.declare_snapshot()  # S1
        maplog.record(MapEntry(7, 1, 1, 100))
        result = maplog.build_spt(1)
        assert result.spt == {7: 100}

    def test_page_not_captured_is_shared_with_db(self):
        maplog, _ = fresh_maplog()
        maplog.declare_snapshot()
        maplog.record(MapEntry(7, 1, 1, 100))
        assert 8 not in maplog.build_spt(1).spt

    def test_capture_range_spans_multiple_snapshots(self):
        """A page unmodified over S1..S3 then modified once: the single
        pre-state serves all three snapshots (from_snap extends back)."""
        maplog, _ = fresh_maplog()
        for _ in range(3):
            maplog.declare_snapshot()
        maplog.record(MapEntry(9, 1, 3, 55))  # first mod after S3
        for sid in (1, 2, 3):
            assert maplog.build_spt(sid).spt == {9: 55}

    def test_later_capture_does_not_shadow_earlier(self):
        maplog, _ = fresh_maplog()
        maplog.declare_snapshot()  # S1
        maplog.record(MapEntry(9, 1, 1, 10))
        maplog.declare_snapshot()  # S2
        maplog.record(MapEntry(9, 2, 2, 20))
        assert maplog.build_spt(1).spt == {9: 10}
        assert maplog.build_spt(2).spt == {9: 20}

    def test_shared_slot_between_consecutive_snapshots(self):
        """Pages unmodified between S1 and S2 map to the SAME Pagelog
        slot in both SPTs — the sharing invariant behind the paper's
        cache behaviour."""
        maplog, _ = fresh_maplog()
        maplog.declare_snapshot()  # S1
        maplog.declare_snapshot()  # S2
        # First modification of page 5 after S2: serves S1 and S2.
        maplog.record(MapEntry(5, 1, 2, 77))
        assert maplog.build_spt(1).spt[5] == 77
        assert maplog.build_spt(2).spt[5] == 77

    def test_diff_size(self):
        maplog, _ = fresh_maplog()
        maplog.declare_snapshot()  # S1
        maplog.record(MapEntry(1, 1, 1, 0))
        maplog.record(MapEntry(2, 1, 1, 1))
        maplog.declare_snapshot()  # S2
        maplog.record(MapEntry(3, 2, 2, 2))
        maplog.declare_snapshot()  # S3
        assert maplog.diff_size(1, 2) == 2
        assert maplog.diff_size(2, 3) == 1
        assert maplog.diff_size(1, 3) == 3


def random_history(seed, epochs, pages, mods_per_epoch):
    """Simulate a COW capture stream; returns (maplog, model).

    model[sid][page] = slot expected in SPT(sid) (pages absent are
    shared with the current database).
    """
    rng = random.Random(seed)
    maplog, disk = fresh_maplog()
    cap = {}
    next_slot = 0
    expected = {}
    for epoch in range(1, epochs + 1):
        maplog.declare_snapshot()
        for page in rng.sample(range(pages), min(mods_per_epoch, pages)):
            last = cap.get(page, 0)
            if last >= epoch:
                continue
            entry = MapEntry(page, last + 1, epoch, next_slot)
            maplog.record(entry)
            cap[page] = epoch
            next_slot += 1
    # Build the reference model by linear reasoning.
    for sid in range(1, epochs + 1):
        expected[sid] = maplog.build_spt(sid, use_skippy=False).spt
    return maplog, expected


class TestSkippyEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_skippy_equals_linear(self, seed):
        maplog, expected = random_history(seed, epochs=23, pages=40,
                                          mods_per_epoch=9)
        for sid, model in expected.items():
            assert maplog.build_spt(sid, use_skippy=True).spt == model

    def test_skippy_scans_fewer_entries_for_old_snapshots(self):
        maplog, _ = random_history(99, epochs=64, pages=400,
                                   mods_per_epoch=120)
        skippy = maplog.build_spt(1, use_skippy=True)
        linear = maplog.build_spt(1, use_skippy=False)
        assert skippy.spt == linear.spt
        assert skippy.entries_scanned < linear.entries_scanned
        assert skippy.nodes_visited < linear.nodes_visited

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=17),
           st.integers(min_value=1, max_value=25))
    def test_skippy_equivalence_property(self, seed, epochs, pages):
        maplog, expected = random_history(seed, epochs=epochs, pages=pages,
                                          mods_per_epoch=max(1, pages // 3))
        for sid, model in expected.items():
            assert maplog.build_spt(sid, use_skippy=True).spt == model


class TestRecovery:
    def test_recover_rebuilds_state(self):
        disk = SimulatedDisk(512)
        maplog = Maplog(disk.open_file("maplog", append_only=True))
        maplog.declare_snapshot()
        maplog.record(MapEntry(3, 1, 1, 0))
        maplog.declare_snapshot()
        maplog.record(MapEntry(4, 1, 2, 1))
        maplog.flush()
        recovered, cap = Maplog.recover(
            disk.open_file("maplog", append_only=True)
        )
        assert recovered.current_epoch == 2
        assert cap == {3: 1, 4: 2}
        assert recovered.build_spt(1).spt == maplog.build_spt(1).spt
        assert recovered.build_spt(2).spt == maplog.build_spt(2).spt

    def test_recover_ignores_unflushed_tail(self):
        disk = SimulatedDisk(512)
        maplog = Maplog(disk.open_file("maplog", append_only=True))
        maplog.declare_snapshot()
        maplog.flush()
        maplog.declare_snapshot()  # never flushed
        recovered, _ = Maplog.recover(
            disk.open_file("maplog", append_only=True)
        )
        assert recovered.current_epoch == 1
