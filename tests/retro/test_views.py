"""Materialized-view unit tests: SQL surface, EXPLAIN, errors, refresh
decision ladder, dependency cascade, bare-Database refusal.

The heavy equivalence guarantees live in the differential suites
(``test_view_equivalence``, ``test_view_delta_props``,
``test_view_crash``); this file pins the API contract.
"""

from __future__ import annotations

import pytest

from repro.core import RQLSession
from repro.errors import ParseError, SqlError, ViewError
from repro.sql.database import Database

FIXED_CLOCK = lambda: "2026-01-01 00:00:00"  # noqa: E731


@pytest.fixture
def rql():
    session = RQLSession(clock=FIXED_CLOCK, workers=1)
    session.execute("CREATE TABLE events (grp INTEGER, val INTEGER)")
    yield session
    session.close()


def _snap(session, inserts):
    for grp, val in inserts:
        session.execute(f"INSERT INTO events VALUES ({grp}, {val})")
    return session.declare_snapshot()


# ---------------------------------------------------------------------------
# SQL surface
# ---------------------------------------------------------------------------


def test_create_refresh_drop_roundtrip(rql):
    _snap(rql, [(1, 10)])
    result = rql.execute(
        "CREATE MATERIALIZED VIEW v AS "
        "CollateData('SELECT grp, current_snapshot() FROM events')"
    )
    assert result.columns == ["view", "merge_class", "built_from"]
    assert result.rows == [("v", "concat", 1)]
    assert rql.execute("SELECT * FROM v").rows == [(1, 1)]

    _snap(rql, [(2, 20)])
    refreshed = rql.execute("REFRESH MATERIALIZED VIEW v")
    assert refreshed.columns[:2] == ["view", "mode"]
    (row,) = refreshed.rows
    assert row[0] == "v" and row[1] == "delta"
    assert rql.execute("SELECT * FROM v").rows == [
        (1, 1), (1, 2), (2, 2),
    ]

    rql.execute("DROP MATERIALIZED VIEW v")
    with pytest.raises(SqlError):
        rql.execute("SELECT * FROM v")
    # IF EXISTS after the drop is a no-op; a plain drop raises.
    rql.execute("DROP MATERIALIZED VIEW IF EXISTS v")
    with pytest.raises(ViewError):
        rql.execute("DROP MATERIALIZED VIEW v")


def test_create_if_not_exists_and_duplicate(rql):
    _snap(rql, [(1, 10)])
    rql.execute(
        "CREATE MATERIALIZED VIEW v AS "
        "CollateData('SELECT grp FROM events')"
    )
    with pytest.raises(ViewError):
        rql.execute(
            "CREATE MATERIALIZED VIEW v AS "
            "CollateData('SELECT val FROM events')"
        )
    rql.execute(
        "CREATE MATERIALIZED VIEW IF NOT EXISTS v AS "
        "CollateData('SELECT val FROM events')"
    )
    # The original definition survived.
    assert rql.views.list_views()[0].qq == "SELECT grp FROM events"


def test_parse_errors():
    with pytest.raises(ParseError):
        Database().execute("CREATE MATERIALIZED VIEW v AS SELECT 1")
    with pytest.raises(ParseError):
        Database().execute("CREATE MATERIALIZED TABLE t (a)")
    with pytest.raises(ParseError):
        Database().execute("REFRESH TABLE t")
    with pytest.raises(ParseError):
        Database().execute(
            "CREATE MATERIALIZED VIEW v AS CollateData(SELECT_1)")


def test_bare_database_refuses_view_statements():
    db = Database()
    with pytest.raises(SqlError, match="RQL session"):
        db.execute(
            "CREATE MATERIALIZED VIEW v AS CollateData('SELECT 1')")
    db.close()


def test_refresh_full_and_explain(rql):
    _snap(rql, [(1, 10)])
    rql.execute(
        "CREATE MATERIALIZED VIEW v AS "
        "CollateData('SELECT grp FROM events')"
    )
    _snap(rql, [(2, 20)])
    lines = rql.views.explain_refresh("v")
    text = "\n".join(lines)
    assert "built_from 1, target 2" in text
    assert "decision: delta" in text
    assert "merge class concat" in text
    # EXPLAIN through SQL returns the same plan lines.
    sql_lines = [r[0] for r in
                 rql.execute("EXPLAIN REFRESH MATERIALIZED VIEW v").rows]
    assert sql_lines[:4] == lines[:4]
    # FULL forces a rebuild even with a clean delta plan.
    report = rql.execute("REFRESH MATERIALIZED VIEW v FULL")
    (row,) = report.rows
    assert row[1] == "full"
    assert rql.views.last_reports["v"].reason == "explicit FULL refresh"


def test_view_errors(rql):
    _snap(rql, [(1, 10)])
    with pytest.raises(ViewError):  # unknown mechanism
        rql.create_materialized_view("v", "Nope", "SELECT grp FROM events")
    with pytest.raises(ViewError):  # missing aggregate argument
        rql.create_materialized_view(
            "v", "AggregateDataInVariable", "SELECT COUNT(*) FROM events")
    with pytest.raises(ViewError):  # argument where none belongs
        rql.create_materialized_view(
            "v", "CollateData", "SELECT grp FROM events", arg="sum")
    with pytest.raises(ViewError):  # name collides with a table
        rql.create_materialized_view(
            "events", "CollateData", "SELECT grp FROM events")
    with pytest.raises(ViewError):
        rql.refresh_view("missing")
    rql.execute("BEGIN")
    with pytest.raises(ViewError):  # no view DDL inside an open txn
        rql.execute(
            "CREATE MATERIALIZED VIEW v AS "
            "CollateData('SELECT grp FROM events')"
        )
    rql.execute("ROLLBACK")


def test_refresh_is_noop_at_latest_snapshot(rql):
    _snap(rql, [(1, 10)])
    rql.create_materialized_view(
        "v", "CollateData", "SELECT grp FROM events")
    report = rql.refresh_view("v")
    assert report.mode == "noop"
    assert report.evaluated_snapshots == 0
    assert report.pagelog_reads == 0


def test_unrelated_snapshots_take_the_delta_skip_path(rql):
    # The noise table must exist before built_from: creating it later
    # would touch the catalog, which is (soundly) part of every view's
    # affected-page check because DDL like DROP+recreate of a read
    # table need not touch the table's own pages.
    rql.execute("CREATE TABLE other (x INTEGER)")
    _snap(rql, [(1, 10)])
    rql.create_materialized_view(
        "v", "CollateData", "SELECT grp FROM events")
    rql.execute("INSERT INTO other VALUES (1)")
    rql.declare_snapshot()
    report = rql.refresh_view("v")
    assert report.mode == "delta-skip"
    assert report.evaluated_snapshots == 1  # one eval, replayed
    assert report.pagelog_reads == 0  # read entirely at the target
    assert rql.execute("SELECT * FROM v").rows == [(1,), (1,)]


def test_current_snapshot_qq_disables_delta_skip(rql):
    rql.execute("CREATE TABLE other (x INTEGER)")
    _snap(rql, [(1, 10)])
    rql.create_materialized_view(
        "v", "CollateData",
        "SELECT grp, current_snapshot() FROM events")
    rql.execute("INSERT INTO other VALUES (1)")
    rql.declare_snapshot()
    report = rql.refresh_view("v")
    assert report.mode == "delta"
    assert "current_snapshot" in report.reason
    assert rql.execute("SELECT * FROM v").rows == [(1, 1), (1, 2)]


def test_serial_only_certificate_falls_back_to_full(rql):
    # A stateful function in Qq makes the certificate serial-only; the
    # view still works, every refresh is a logged full recompute.
    _snap(rql, [(1, 10)])
    rql.create_materialized_view(
        "v", "CollateData", "SELECT grp, rql_workers() FROM events")
    meta = rql.views.list_views()[0]
    assert meta.merge_class == "serial-only"
    _snap(rql, [(2, 20)])
    report = rql.refresh_view("v")
    assert report.mode == "full"
    assert "serial-only" in report.reason
    assert report.evaluated_snapshots == 2
    assert rql.execute("SELECT grp FROM v").rows == [(1,), (1,), (2,)]


def test_dependent_views_cascade_to_one_target(rql):
    _snap(rql, [(1, 10), (2, 20)])
    rql.create_materialized_view(
        "base", "AggregateDataInTable", "SELECT grp, val FROM events",
        arg="(val, sum)")
    rql.create_materialized_view(
        "toplevel", "CollateData", "SELECT grp, val FROM base")
    _snap(rql, [(1, 5)])
    report = rql.refresh_view("toplevel")
    assert report.cascaded == ["base"]
    # Both views advanced to the same pinned target.
    by_name = {v.name: v for v in rql.views.list_views()}
    assert by_name["base"].built_from == 2
    assert by_name["toplevel"].built_from == 2
    # A view over another view reads a non-snapshotable source: full.
    assert report.mode == "full"
    assert "non-snapshotable" in report.reason
    # The dependency also blocks dropping the base first.
    with pytest.raises(ViewError):
        rql.drop_view("base")
    rql.drop_view("toplevel")
    rql.drop_view("base")


def test_self_reference_is_rejected(rql):
    _snap(rql, [(1, 10)])
    with pytest.raises(ViewError):
        rql.create_materialized_view(
            "v", "CollateData", "SELECT grp FROM v")


def test_monoid_state_round_trips_for_every_aggregate(rql):
    _snap(rql, [(1, 10)])
    for func in ("min", "max", "sum", "count", "avg"):
        rql.create_materialized_view(
            f"agg_{func}", "AggregateDataInVariable",
            "SELECT SUM(val) FROM events", arg=func)
    _snap(rql, [(2, 30)])
    for func in ("min", "max", "sum", "count", "avg"):
        report = rql.refresh_view(f"agg_{func}")
        assert report.mode == "delta", func
    assert rql.execute("SELECT * FROM agg_min").scalar() == 10
    assert rql.execute("SELECT * FROM agg_max").scalar() == 40
    assert rql.execute("SELECT * FROM agg_sum").scalar() == 50
    assert rql.execute("SELECT * FROM agg_count").scalar() == 2
    assert rql.execute("SELECT * FROM agg_avg").scalar() == 25


def test_views_survive_in_shared_store_sessions():
    from repro.server import SessionRegistry, SharedStore

    store = SharedStore(gate_timeout=30.0, clock=FIXED_CLOCK)
    registry = SessionRegistry(store)
    alice = registry.open("alice")
    alice.execute("CREATE TABLE t (a INTEGER)")
    alice.execute("INSERT INTO t VALUES (1)")
    alice.declare_snapshot()
    alice.execute(
        "CREATE MATERIALIZED VIEW v AS CollateData('SELECT a FROM t')")
    registry.close("alice")
    # A later session sees the same view metadata and can refresh it.
    bob = registry.open("bob")
    bob.execute("INSERT INTO t VALUES (2)")
    bob.declare_snapshot()
    report = bob.refresh_view("v")
    assert report.mode == "delta"
    assert bob.execute("SELECT * FROM v").rows == [(1,), (1,), (2,)]
    registry.close("bob")
    assert registry.leak_report() == {
        "sessions": 0, "read_contexts": 0, "gate_held": False,
    }
    store.close()
