"""IterationMetrics / MetricsSink / Timer unit tests."""

import time

from repro.retro.metrics import IoCharges, IterationMetrics, MetricsSink, Timer


class TestIterationMetrics:
    def test_io_and_total_seconds(self):
        charges = IoCharges(pagelog_read_seconds=1.0, db_read_seconds=0.1,
                            spt_entry_seconds=0.01, cache_hit_seconds=0.001)
        metrics = IterationMetrics(
            pagelog_reads=3, db_reads=10, cache_hits=100,
            spt_entries_scanned=50, query_eval_seconds=2.0,
            udf_seconds=1.0, index_creation_seconds=0.5,
            spt_build_seconds=0.25,
        )
        assert metrics.io_seconds(charges) == 3 * 1.0 + 10 * 0.1 + 100 * 0.001
        assert metrics.spt_seconds(charges) == 0.25 + 50 * 0.01
        expected_total = (metrics.io_seconds(charges)
                          + metrics.spt_seconds(charges) + 2.0 + 1.0 + 0.5)
        assert metrics.total_seconds(charges) == expected_total

    def test_breakdown_parts_sum_to_total(self):
        charges = IoCharges()
        metrics = IterationMetrics(pagelog_reads=7, query_eval_seconds=0.5,
                                   udf_seconds=0.25)
        breakdown = metrics.breakdown(charges)
        assert set(breakdown) == {
            "io", "spt_build", "index_creation", "query_eval", "rql_udf",
        }
        assert abs(sum(breakdown.values())
                   - metrics.total_seconds(charges)) < 1e-12


class TestMetricsSink:
    def test_iteration_lifecycle(self):
        sink = MetricsSink()
        first = sink.begin_iteration(1)
        first.pagelog_reads = 5
        sink.end_iteration()
        second = sink.begin_iteration(2)
        second.pagelog_reads = 1
        sink.end_iteration()
        assert sink.total_pagelog_reads() == 6
        assert sink.cold() is first
        assert sink.hot() == [second]
        assert [m.snapshot_id for m in sink] == [1, 2]

    def test_current_creates_stray_iteration(self):
        sink = MetricsSink()
        sink.current.db_reads += 1
        assert len(sink.iterations) == 1

    def test_mean_hot(self):
        charges = IoCharges(pagelog_read_seconds=1.0)
        sink = MetricsSink(charges)
        for reads in (10, 2, 4):
            metrics = sink.begin_iteration(0)
            metrics.pagelog_reads = reads
            sink.end_iteration()
        assert sink.mean_hot_seconds() == (2 + 4) / 2 * 1.0

    def test_empty_sink(self):
        sink = MetricsSink()
        assert sink.cold() is None
        assert sink.hot() == []
        assert sink.mean_hot_seconds() == 0.0
        assert sink.total_seconds() == 0.0

    def test_summary(self):
        sink = MetricsSink()
        metrics = sink.begin_iteration(3)
        metrics.pagelog_reads = 2
        metrics.cache_hits = 5
        metrics.db_reads = 1
        sink.end_iteration()
        summary = sink.summary()
        assert summary["iterations"] == 1.0
        assert summary["pagelog_reads"] == 2.0
        assert summary["cache_hits"] == 5.0
        assert summary["db_reads"] == 1.0


class TestTimer:
    def test_accumulates(self):
        metrics = IterationMetrics()
        with Timer(metrics, "query_eval_seconds"):
            time.sleep(0.01)
        first = metrics.query_eval_seconds
        assert first >= 0.009
        with Timer(metrics, "query_eval_seconds"):
            time.sleep(0.01)
        assert metrics.query_eval_seconds > first

    def test_records_on_exception(self):
        metrics = IterationMetrics()
        try:
            with Timer(metrics, "udf_seconds"):
                time.sleep(0.005)
                raise ValueError("boom")
        except ValueError:
            pass
        assert metrics.udf_seconds >= 0.004
