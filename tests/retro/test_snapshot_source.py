"""SnapshotPageSource behaviour details: fetch resolution order,
current-state fallback through MVCC, and cross-source consistency."""

import pytest

from repro.retro.metrics import MetricsSink
from repro.storage.btree import BTree
from repro.storage.disk import SimulatedDisk
from repro.storage.engine import StorageEngine
from repro.storage.record import decode_record, encode_key, encode_record


@pytest.fixture
def history():
    engine = StorageEngine(SimulatedDisk(4096))
    txn = engine.begin()
    tree = BTree.create(engine.page_source(txn))
    root = tree.root_id
    for i in range(200):
        tree.insert(encode_key((i,)), encode_record((i,)))
    engine.commit(txn)
    sid = None
    txn = engine.begin()
    sid = engine.commit(txn, declare_snapshot=True)
    return engine, root, sid


class TestFetchResolution:
    def test_shared_pages_come_from_current_db(self, history):
        engine, root, sid = history
        sink = MetricsSink()
        engine.retro.metrics = sink
        ctx = engine.begin_read()
        sink.begin_iteration(sid)
        source = engine.snapshot_source(sid, ctx)
        # Nothing modified since the declaration: the SPT is empty and
        # every fetch falls through to the database.
        assert source.spt == {}
        BTree(source, root).count()
        metrics = sink.iterations[0]
        assert metrics.pagelog_reads == 0
        assert metrics.db_reads > 0
        ctx.close()

    def test_mvcc_protects_concurrent_shared_reads(self, history):
        """A snapshot query's shared-page reads resolve through MVCC:
        an update committing mid-query must not leak into it."""
        engine, root, sid = history
        ctx = engine.begin_read()
        source = engine.snapshot_source(sid, ctx)
        # Concurrent transaction deletes rows AFTER the source exists.
        txn = engine.begin()
        tree = BTree(engine.page_source(txn), root)
        for i in range(100):
            tree.delete(encode_key((i,)))
        engine.commit(txn)
        # The in-flight snapshot query still sees all 200 rows.
        assert BTree(source, root).count() == 200
        ctx.close()
        # A fresh snapshot source after the commit ALSO sees 200 (the
        # pre-states were captured at the later commit).
        ctx2 = engine.begin_read()
        fresh = engine.snapshot_source(sid, ctx2)
        assert BTree(fresh, root).count() == 200
        ctx2.close()

    def test_values_identical_via_cache_and_pagelog(self, history):
        engine, root, sid = history
        # Overwrite everything so the snapshot is fully archived.
        txn = engine.begin()
        tree = BTree(engine.page_source(txn), root)
        for i in range(200):
            tree.insert(encode_key((i,)), encode_record((i + 1000,)))
        engine.commit(txn)
        engine.checkpoint()

        def read_all():
            ctx = engine.begin_read()
            try:
                source = engine.snapshot_source(sid, ctx)
                return [
                    decode_record(v)[0]
                    for _, v in BTree(source, root).scan_all()
                ]
            finally:
                ctx.close()

        engine.retro.cache.clear()
        cold = read_all()   # from the Pagelog
        warm = read_all()   # from the snapshot cache
        assert cold == warm == list(range(200))

    def test_release_is_noop(self, history):
        engine, root, sid = history
        ctx = engine.begin_read()
        source = engine.snapshot_source(sid, ctx)
        page = source.fetch(root)
        source.release(page)  # must not raise or unpin anything
        ctx.close()
