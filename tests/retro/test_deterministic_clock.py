"""Deterministic metrics via the injectable monotonic clock.

``MetricsSink(clock=...)`` threads a fake clock through every timed
path — ``_run_qq`` / ``_timed_udf`` in the mechanisms, SPT builds in
the RetroManager, planner query evaluation and auto-index builds, and
the parallel executor's merge phase.  Two identical runs under a
ticking fake clock must therefore produce *exactly* equal metrics, and
a constant clock must zero every ``*_seconds`` field (any non-zero
value would mean a code path still reads ``time.perf_counter``
directly, the flakiness this seam removes).
"""

from __future__ import annotations

import dataclasses

from repro.core import RQLSession
from repro.core.mechanisms import (
    AggregateDataInVariableRun,
    CollateDataRun,
)
from repro.core.parallel import ParallelExecutor
from repro.retro.metrics import MetricsSink

QS = "SELECT snap_id FROM SnapIds ORDER BY snap_id"
QQ = "SELECT grp, val FROM events"

TIMING_FIELDS = ("spt_build_seconds", "query_eval_seconds",
                 "index_creation_seconds", "udf_seconds")


class TickingClock:
    """Monotonic fake: advances a fixed step on every reading."""

    def __init__(self, step: float = 0.001) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def _session() -> RQLSession:
    session = RQLSession()
    session.execute("CREATE TABLE events (grp, val)")
    for i in range(6):
        session.execute(f"INSERT INTO events VALUES ({i % 2}, {i})")
        session.declare_snapshot()
        session.execute(f"UPDATE events SET val = val + 1 "
                        f"WHERE grp = {i % 2}")
    return session


def _iteration_dicts(sink: MetricsSink):
    return [dataclasses.asdict(it) for it in sink.iterations]


def test_serial_collate_metrics_identical_under_fake_clock():
    runs = []
    for _ in range(2):
        session = _session()
        sink = MetricsSink(clock=TickingClock())
        CollateDataRun(session.db, QQ, "R", sink=sink).run(QS)
        runs.append(_iteration_dicts(sink))
    assert runs[0] == runs[1]
    # The fake clock actually drove the timers: every iteration charged
    # a positive, step-quantized query-eval duration.
    for it in runs[0]:
        assert it["query_eval_seconds"] > 0.0
        assert round(it["query_eval_seconds"] * 1000, 6) == int(
            round(it["query_eval_seconds"] * 1000)
        )


def test_timed_udf_finalize_is_deterministic():
    runs = []
    for _ in range(2):
        session = _session()
        sink = MetricsSink(clock=TickingClock())
        AggregateDataInVariableRun(
            session.db, "SELECT SUM(val) AS s FROM events", "R", "sum",
            sink=sink,
        ).run(QS)
        runs.append(_iteration_dicts(sink))
    assert runs[0] == runs[1]
    assert any(it["udf_seconds"] > 0.0 for it in runs[0])


def test_constant_clock_zeroes_every_timing_field_in_parallel_run():
    session = _session()
    executor = ParallelExecutor(session.db, workers=3, clock=lambda: 0.0)
    result = executor.collate_data(QS, QQ, "R")

    info = result.parallel
    assert info is not None and info.merge_seconds == 0.0
    assert info.worker_eval_seconds  # captured, all simulated-I/O only
    sinks = list(info.worker_sinks) + [result.metrics]
    iterations = [it for sink in sinks for it in sink.iterations]
    assert iterations
    for it in iterations:
        for field in TIMING_FIELDS:
            assert getattr(it, field) == 0.0, (
                f"{field} leaked wall-clock time past the injected clock"
            )
    # Counter-based metrics are untouched by the clock seam.
    assert sum(it.qq_rows for it in result.metrics.iterations) > 0
