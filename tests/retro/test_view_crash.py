"""Crash atomicity for materialized-view refresh.

A refresh commits the new result rows, the index, and the
``__rql_views`` metadata row in one aux-engine transaction, so a
power-loss at ANY write during the refresh must leave the view either
fully old (metadata still at the previous ``built_from``, table
byte-identical to the pre-refresh build) or fully new — never torn.
The sweep below schedules a :class:`~repro.errors.SimulatedCrash` at
every write ordinal until the refresh survives, reopening the database
from the same disks each time and comparing against golden builds from
clean shadow sessions.

Degraded mode rides along: when the refresh needs snapshots that the
retro manager has marked unavailable, it must raise
:class:`~repro.errors.SnapshotUnavailableError` *before* touching the
write path, leaving metadata and table bit-for-bit unchanged.
"""

from __future__ import annotations

import pytest

from repro.core import RQLSession
from repro.errors import ReproError, SnapshotUnavailableError
from repro.sql.database import Database
from repro.storage.chaosdisk import ChaosDisk
from tests.conftest import full_database_dump

FIXED_CLOCK = lambda: "2026-01-01 00:00:00"  # noqa: E731

SNAPSHOTS = 5
CREATE_AT = 2  # the view is created (built) right after this snapshot

#: (id, mechanism, qq, arg) — a rewrite-on-refresh shape and an
#: index-carrying fold shape, so the sweep covers both write patterns
SHAPES = [
    ("concat", "CollateData", "SELECT grp, val FROM events", None),
    ("stored_row", "AggregateDataInTable",
     "SELECT grp, val FROM events", "(val, sum)"),
]


def _build_history(session, mechanism, qq, arg):
    session.execute("CREATE TABLE events (grp INTEGER, val INTEGER)")
    for sid in range(1, SNAPSHOTS + 1):
        session.execute(f"INSERT INTO events VALUES ({sid}, {sid * 10})")
        session.declare_snapshot()
        if sid == CREATE_AT:
            session.create_materialized_view("v", mechanism, qq, arg=arg)
    return session


def _view_state(session):
    (meta,) = session.views.list_views()
    rows = [tuple(r) for r in session.execute("SELECT * FROM v").rows]
    return meta.built_from, meta.merge_class, meta.state, rows


def _goldens(mechanism, qq, arg):
    """(state at built_from=CREATE_AT, state at built_from=SNAPSHOTS)
    from a clean, never-crashed session."""
    session = _build_history(RQLSession(clock=FIXED_CLOCK, workers=1),
                             mechanism, qq, arg)
    try:
        old = _view_state(session)
        session.refresh_view("v", full=True)
        new = _view_state(session)
    finally:
        session.close()
    return old, new


@pytest.mark.parametrize("mechanism,qq,arg",
                         [s[1:] for s in SHAPES],
                         ids=[s[0] for s in SHAPES])
def test_crash_mid_refresh_is_never_torn(mechanism, qq, arg):
    golden_old, golden_new = _goldens(mechanism, qq, arg)
    assert golden_old != golden_new  # the sweep must distinguish them

    crashed = survived = 0
    at_write = 1
    while True:
        disk = ChaosDisk(4096, seed=at_write)
        aux = ChaosDisk(4096, controller=disk.chaos)
        session = _build_history(
            RQLSession(db=Database(disk=disk, aux_disk=aux)),
            mechanism, qq, arg)
        # Tear the interrupted page image on every other ordinal so WAL
        # recovery has to discard a half-written frame too.
        disk.schedule_crash(at_write=at_write, tear=at_write % 2 == 0)
        try:
            session.refresh_view("v")
        except ReproError:
            pass
        if not disk.chaos.powered_off:
            # The refresh needed fewer writes than this ordinal: it
            # committed, the sweep has covered every boundary.  Disarm
            # the pending crash so close()'s checkpoint can run.
            disk.chaos.crash_at = None
            assert _view_state(session) == golden_new
            session.close()
            survived += 1
            break
        crashed += 1
        # The crashed session is abandoned un-closed, like a real power
        # loss (close() would need the dead disk for its checkpoint).
        disk.power_on()
        recovered = RQLSession(db=Database(disk=disk, aux_disk=aux))
        try:
            state = _view_state(recovered)
            assert state in (golden_old, golden_new), (
                f"torn view after crash at write {at_write}: {state}")
            # Metadata must still be refreshable after recovery.
            report = recovered.refresh_view("v")
            assert _view_state(recovered) == golden_new, report.mode
        finally:
            recovered.close()
        at_write += 1
        assert at_write < 200, "refresh never completed under the sweep"
    assert crashed > 0, "the sweep never crashed a refresh"
    assert survived == 1


def test_degraded_mode_refresh_leaves_view_untouched():
    session = _build_history(RQLSession(clock=FIXED_CLOCK, workers=1),
                             "CollateData", "SELECT grp, val FROM events",
                             None)
    try:
        before_state = _view_state(session)
        before_dump = full_database_dump(session.db)
        # Snapshots the delta needs are gone: the refresh must fail
        # cleanly before its write transaction ever begins.
        session.db.engine.retro.mark_unavailable(CREATE_AT + 1,
                                                 CREATE_AT + 1)
        with pytest.raises(SnapshotUnavailableError):
            session.refresh_view("v")
        assert _view_state(session) == before_state
        assert full_database_dump(session.db) == before_dump
        # A FULL refresh needs the older snapshots too — same guarantee.
        with pytest.raises(SnapshotUnavailableError):
            session.refresh_view("v", full=True)
        assert _view_state(session) == before_state
        assert full_database_dump(session.db) == before_dump
    finally:
        session.close()
