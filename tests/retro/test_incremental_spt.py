"""Incremental SPT derivation (the paper's future-work optimization)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SnapshotError
from repro.retro.maplog import Maplog
from repro.storage.btree import BTree
from repro.storage.disk import SimulatedDisk
from repro.storage.engine import StorageEngine
from repro.storage.record import encode_key, encode_record

from tests.retro.test_maplog import random_history


class TestAdvanceSpt:
    @pytest.mark.parametrize("seed", range(4))
    def test_advance_matches_full_build(self, seed):
        maplog, expected = random_history(seed, epochs=25, pages=60,
                                          mods_per_epoch=15)
        current = maplog.build_spt(1)
        for sid in range(2, 26):
            current = maplog.advance_spt(current, sid - 1, sid)
            assert current.spt == expected[sid], f"sid {sid}"

    def test_advance_with_gaps(self):
        maplog, expected = random_history(3, epochs=20, pages=40,
                                          mods_per_epoch=10)
        base = maplog.build_spt(2)
        jumped = maplog.advance_spt(base, 2, 9)
        assert jumped.spt == expected[9]

    def test_advance_validation(self):
        maplog, _ = random_history(1, epochs=5, pages=10, mods_per_epoch=3)
        base = maplog.build_spt(3)
        with pytest.raises(SnapshotError):
            maplog.advance_spt(base, 3, 3)
        with pytest.raises(Exception):
            maplog.advance_spt(base, 3, 99)

    def test_advance_touches_fewer_entries(self):
        maplog, _ = random_history(5, epochs=40, pages=300,
                                   mods_per_epoch=25)
        full = maplog.build_spt(11)
        base = maplog.build_spt(10)
        advanced = maplog.advance_spt(base, 10, 11)
        assert advanced.spt == full.spt
        # Advancing scans ~|SPT| stale-checks + a few lookups, vs the
        # full suffix scan.
        assert advanced.entries_scanned < full.entries_scanned

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=3, max_value=18))
    def test_advance_property(self, seed, epochs):
        maplog, expected = random_history(seed, epochs=epochs, pages=30,
                                          mods_per_epoch=8)
        current = maplog.build_spt(1)
        for sid in range(2, epochs + 1):
            current = maplog.advance_spt(current, sid - 1, sid)
            assert current.spt == expected[sid]


class TestEngineIntegration:
    def _history_engine(self):
        engine = StorageEngine(SimulatedDisk(4096))
        txn = engine.begin()
        tree = BTree.create(engine.page_source(txn))
        root = tree.root_id
        for i in range(400):
            tree.insert(encode_key((i,)), encode_record((i, "p" * 40)))
        engine.commit(txn)
        counts = {}
        for round_no in range(10):
            txn = engine.begin()
            t = BTree(engine.page_source(txn), root)
            for i in range(round_no * 25, round_no * 25 + 25):
                t.delete(encode_key((i,)))
            sid = engine.commit(txn, declare_snapshot=True)
            counts[sid] = 400 - (round_no + 1) * 25
        return engine, root, counts

    def test_incremental_reads_identical(self):
        engine, root, counts = self._history_engine()
        engine.retro.incremental_spt = True
        ctx = engine.begin_read()
        for sid, expected in counts.items():
            tree = BTree(engine.snapshot_source(sid, ctx), root)
            assert tree.count() == expected
        ctx.close()

    def test_cache_invalidated_by_new_captures(self):
        engine, root, counts = self._history_engine()
        engine.retro.incremental_spt = True
        ctx = engine.begin_read()
        BTree(engine.snapshot_source(1, ctx), root).count()
        ctx.close()
        # New commit captures pages; the cached SPT must not be reused
        # for a stale view.
        txn = engine.begin()
        tree = BTree(engine.page_source(txn), root)
        tree.insert(encode_key((999,)), encode_record((999, "new")))
        engine.commit(txn, declare_snapshot=True)
        ctx = engine.begin_read()
        latest = engine.retro.latest_snapshot_id
        assert BTree(engine.snapshot_source(latest, ctx),
                     root).count() == counts[latest - 1] + 1
        # And the old snapshot still reads correctly.
        assert BTree(engine.snapshot_source(1, ctx), root).count() \
            == counts[1]
        ctx.close()

    def test_rql_level_equivalence(self):
        """An RQL-style iteration gives identical results either way."""
        from repro.core import RQLSession

        results = {}
        for incremental in (False, True):
            session = RQLSession()
            session.execute("CREATE TABLE t (a INTEGER)")
            for i in range(6):
                session.execute("BEGIN")
                session.execute(f"INSERT INTO t VALUES ({i})")
                session.commit_with_snapshot()
            session.db.engine.retro.incremental_spt = incremental
            session.collate_data(
                "SELECT snap_id FROM SnapIds",
                "SELECT COUNT(*) AS n, current_snapshot() FROM t",
                "R",
            )
            results[incremental] = sorted(
                session.execute('SELECT * FROM "R"').rows)
        assert results[False] == results[True]
