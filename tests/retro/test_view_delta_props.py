"""Per-merge-class delta-fold properties.

For every merge class the incremental invariant is
``fold(base, delta) == rebuild``: a view built at snapshot K and
delta-refreshed to N must equal the *serial mechanism* run over
``1..N`` — across randomized histories whose Maplog diffs mix
view-relevant pages, unrelated-table pages and empty epochs.

Also pinned here:

* the AVG decomposition: the stored-row class folds AVG through hidden
  ``__avg_sum_i``/``__avg_cnt_i`` columns and the visible column always
  equals their quotient;
* the empty-diff no-op: refreshing a view already at the target touches
  nothing — zero Pagelog/cache/db page reads, zero evaluations, and a
  byte-identical database dump;
* the delta-skip path: snapshots that never touch the view's read
  tables are folded without a single Pagelog read.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import RQLSession
from tests.conftest import full_database_dump

FIXED_CLOCK = lambda: "2026-01-01 00:00:00"  # noqa: E731

PROP_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large,
                           HealthCheck.filter_too_much],
)

#: (id, mechanism, session method, qq, arg)
CLASSES = [
    ("concat", "CollateData", "collate_data",
     "SELECT grp, val, current_snapshot() FROM events", None),
    ("monoid", "AggregateDataInVariable", "aggregate_data_in_variable",
     "SELECT SUM(val) FROM events", "sum"),
    ("stored_row", "AggregateDataInTable", "aggregate_data_in_table",
     "SELECT grp, val FROM events", "(val, avg):(val, min):(val, count)"),
    ("interval_stitch", "CollateDataIntoIntervals",
     "collate_data_into_intervals",
     "SELECT DISTINCT grp FROM events", None),
]

_groups = st.integers(min_value=0, max_value=3)
_values = st.integers(min_value=-40, max_value=90)

#: one snapshot's worth of updates; empty = an events-untouched epoch
#: (the randomized Maplog diff mixes relevant, noise-only and empty
#: epochs)
_epoch = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), _groups, _values),
        st.tuples(st.just("update"), _groups,
                  st.integers(min_value=1, max_value=9)),
        st.tuples(st.just("delete"), _groups),
        st.tuples(st.just("noise"), _values),
    ),
    min_size=0, max_size=3,
)

#: (history epochs, where in the history the view is created)
_history = st.tuples(
    st.lists(_epoch, min_size=1, max_size=7),
    st.integers(min_value=0, max_value=7),
)


def _apply(session, op) -> None:
    if op[0] == "insert":
        session.execute(f"INSERT INTO events VALUES ({op[1]}, {op[2]})")
    elif op[0] == "update":
        session.execute(f"UPDATE events SET val = val + {op[2]} "
                        f"WHERE grp = {op[1]}")
    elif op[0] == "noise":
        session.execute(f"INSERT INTO noise VALUES ({op[1]})")
    else:
        session.execute(f"DELETE FROM events WHERE grp = {op[1]}")


def _fresh_session() -> RQLSession:
    session = RQLSession(clock=FIXED_CLOCK, workers=1)
    session.execute("CREATE TABLE events (grp INTEGER, val INTEGER)")
    session.execute("CREATE TABLE noise (x INTEGER)")
    session.execute("INSERT INTO events VALUES (0, 1)")
    session.declare_snapshot()
    return session


def _table_rows(session, table):
    result = session.execute(f'SELECT * FROM "{table}"')
    return list(result.columns), [tuple(r) for r in result.rows]


@pytest.mark.parametrize(
    "mechanism,method,qq,arg",
    [c[1:] for c in CLASSES], ids=[c[0] for c in CLASSES])
@PROP_SETTINGS
@given(history=_history)
def test_fold_base_delta_equals_serial_rebuild(history, mechanism,
                                               method, qq, arg):
    epochs, create_at = history
    create_at = min(create_at, len(epochs))
    session = _fresh_session()
    try:
        for n, epoch in enumerate(epochs):
            if n == create_at:
                session.create_materialized_view("v", mechanism, qq,
                                                 arg=arg)
            for op in epoch:
                _apply(session, op)
            session.declare_snapshot()
        if create_at >= len(epochs):
            session.create_materialized_view("v", mechanism, qq, arg=arg)
        session.refresh_view("v")

        # Golden: the serial mechanism over the full snapshot set.
        qs = "SELECT snap_id FROM SnapIds ORDER BY snap_id"
        call = getattr(session, method)
        if arg is None:
            call(qs, qq, "golden", workers=1)
        else:
            call(qs, qq, "golden", arg, workers=1)
        view_columns, view_rows = _table_rows(session, "v")
        gold_columns, gold_rows = _table_rows(session, "golden")
        assert view_columns == gold_columns
        assert view_rows == gold_rows
    finally:
        session.close()


@PROP_SETTINGS
@given(history=_history)
def test_avg_decomposition_through_hidden_columns(history):
    """The visible AVG column always equals hidden sum / hidden count,
    and the fold reproduces the serial AVG exactly on integer data."""
    epochs, create_at = history
    create_at = min(create_at, len(epochs))
    session = _fresh_session()
    try:
        for n, epoch in enumerate(epochs):
            if n == create_at:
                session.create_materialized_view(
                    "v", "AggregateDataInTable",
                    "SELECT grp, val FROM events", arg="(val, avg)")
            for op in epoch:
                _apply(session, op)
            session.declare_snapshot()
        if create_at >= len(epochs):
            session.create_materialized_view(
                "v", "AggregateDataInTable",
                "SELECT grp, val FROM events", arg="(val, avg)")
        session.refresh_view("v")
        columns, rows = _table_rows(session, "v")
        assert columns == ["grp", "val", "__avg_sum_1", "__avg_cnt_1"]
        for grp, avg, total, count in rows:
            assert count >= 1
            assert avg == total / count
    finally:
        session.close()


@pytest.mark.parametrize(
    "mechanism,method,qq,arg",
    [c[1:] for c in CLASSES], ids=[c[0] for c in CLASSES])
def test_empty_diff_refresh_is_a_no_op(mechanism, method, qq, arg):
    session = _fresh_session()
    try:
        session.execute("INSERT INTO events VALUES (1, 10)")
        session.declare_snapshot()
        session.create_materialized_view("v", mechanism, qq, arg=arg)
        before = full_database_dump(session.db)
        report = session.refresh_view("v")
        assert report.mode == "noop"
        assert report.evaluated_snapshots == 0
        # Zero page traffic of any kind — the Pagelog read counters
        # prove the refresh never touched snapshot storage.
        assert report.pagelog_reads == 0
        assert report.cache_hits == 0
        assert report.db_reads == 0
        assert full_database_dump(session.db) == before
    finally:
        session.close()


@pytest.mark.parametrize(
    "mechanism,method,qq,arg",
    [c[1:] for c in CLASSES], ids=[c[0] for c in CLASSES])
def test_sparse_updates_fold_without_pagelog_reads(mechanism, method,
                                                   qq, arg):
    """Snapshots that never touch the read tables are folded via the
    delta-skip path: one evaluation at the target, zero Pagelog reads
    (nothing newer than the target is archived)."""
    if "current_snapshot" in qq:
        # current_snapshot() makes per-snapshot results differ even on
        # identical data, so the planner (correctly) refuses to skip.
        qq = "SELECT grp, val FROM events"
    session = _fresh_session()
    try:
        session.execute("INSERT INTO events VALUES (1, 10)")
        session.declare_snapshot()
        session.create_materialized_view("v", mechanism, qq, arg=arg)
        for n in range(4):
            session.execute(f"INSERT INTO noise VALUES ({n})")
            session.declare_snapshot()
        report = session.refresh_view("v")
        assert report.mode == "delta-skip"
        assert report.evaluated_snapshots == 1  # once, replayed x4
        assert report.pagelog_reads == 0
        # The fold still accounted all four snapshots: the golden serial
        # rebuild agrees.
        qs = "SELECT snap_id FROM SnapIds ORDER BY snap_id"
        call = getattr(session, method)
        if arg is None:
            call(qs, qq, "golden", workers=1)
        else:
            call(qs, qq, "golden", arg, workers=1)
        assert _table_rows(session, "v")[1] == \
            _table_rows(session, "golden")[1]
    finally:
        session.close()
