"""Differential harness: incremental view refresh == from-scratch rebuild.

Hypothesis generates snapshot/update/refresh schedules and every
schedule runs twice on two fresh embedded sessions:

* **incremental** — each REFRESH takes whatever path the planner picks
  (noop / delta / delta-skip / full fallback) against the Maplog diff;
* **rebuild** — the same schedule with every refresh forced to
  ``REFRESH ... FULL``, i.e. a from-scratch recompute over snapshots
  ``1..target``.

Equality is asserted on the **byte-level full dump** of both engines —
every table's columns, rowids, physical row order and values, plus the
index inventory (so the view's result table, its hidden AVG helper
columns, its index, and the ``__rql_views`` metadata including the
persisted monoid fold state must all coincide) — and on leak-freedom:
after close, zero open MVCC read contexts on either engine and no
transaction left open.

Both sessions run a fixed SnapIds clock and integer-only data so the
dumps are deterministic and exact.

4 mechanism shapes x ``MAX_EXAMPLES`` examples = ≥100 schedules per
full run, per the acceptance bar.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import RQLSession
from tests.conftest import full_database_dump

MAX_EXAMPLES = 26  # x4 view shapes = 104 schedules per full run

FIXED_CLOCK = lambda: "2026-01-01 00:00:00"  # noqa: E731

DIFFERENTIAL_SETTINGS = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large,
                           HealthCheck.filter_too_much],
)

#: (name, mechanism, qq, arg) — one per merge class
VIEW_SHAPES = [
    ("concat", "CollateData",
     "SELECT grp, val, current_snapshot() FROM events", None),
    ("monoid", "AggregateDataInVariable",
     "SELECT SUM(val) FROM events", "sum"),
    ("stored_row", "AggregateDataInTable",
     "SELECT grp, val FROM events",
     "(val, sum):(val, count):(val, avg):(val, max)"),
    ("intervals", "CollateDataIntoIntervals",
     "SELECT DISTINCT grp FROM events", None),
]

_groups = st.integers(min_value=0, max_value=3)
_values = st.integers(min_value=-50, max_value=100)

_update_op = st.one_of(
    st.tuples(st.just("insert"), _groups, _values),
    st.tuples(st.just("update"), _groups,
              st.integers(min_value=1, max_value=9)),
    st.tuples(st.just("delete"), _groups),
    # noise: mutates a table the view never reads (the delta-skip path)
    st.tuples(st.just("noise"), _values),
)

#: one schedule action: declare a snapshot after some updates, or
#: refresh the view now
_action = st.one_of(
    st.tuples(st.just("snap"), st.lists(_update_op, min_size=0,
                                        max_size=3)),
    st.just(("refresh",)),
)

#: (snapshots before CREATE, actions after CREATE)
_schedule = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.lists(_action, min_size=1, max_size=6),
)


def _op_sql(op) -> str:
    if op[0] == "insert":
        return f"INSERT INTO events VALUES ({op[1]}, {op[2]})"
    if op[0] == "update":
        return (f"UPDATE events SET val = val + {op[2]} "
                f"WHERE grp = {op[1]}")
    if op[0] == "noise":
        return f"INSERT INTO noise VALUES ({op[1]})"
    return f"DELETE FROM events WHERE grp = {op[1]}"


def run_schedule(schedule, shape, full: bool):
    """Run one schedule; returns (dump, refresh modes, view rows)."""
    name, mechanism, qq, arg = shape
    warmup, actions = schedule
    session = RQLSession(clock=FIXED_CLOCK, workers=1)
    modes = []
    try:
        session.execute("CREATE TABLE events (grp INTEGER, val INTEGER)")
        session.execute("CREATE TABLE noise (x INTEGER)")
        session.execute("INSERT INTO events VALUES (0, 1)")
        session.declare_snapshot()
        for n in range(warmup):
            session.execute(f"INSERT INTO events VALUES (1, {n})")
            session.declare_snapshot()
        session.create_materialized_view(name, mechanism, qq, arg=arg)
        for action in actions:
            if action[0] == "snap":
                for op in action[1]:
                    session.execute(_op_sql(op))
                session.declare_snapshot()
            else:
                report = session.refresh_view(name, full=full)
                modes.append(report.mode)
        # Always converge on the final snapshot before comparing.
        report = session.refresh_view(name, full=full)
        modes.append(report.mode)
        rows = session.execute(f'SELECT * FROM "{name}"').rows
        dump = full_database_dump(session.db)
    finally:
        session.close()
    # Leak-freedom: nothing outlives the session on either engine.
    assert session.db.engine.open_read_contexts() == []
    assert session.db.aux_engine.open_read_contexts() == []
    assert not session.db._in_explicit_txn
    return dump, modes, rows


@pytest.mark.parametrize("shape", VIEW_SHAPES, ids=lambda s: s[0])
@DIFFERENTIAL_SETTINGS
@given(schedule=_schedule)
def test_incremental_refresh_matches_full_rebuild(schedule, shape):
    incremental = run_schedule(schedule, shape, full=False)
    rebuild = run_schedule(schedule, shape, full=True)
    # The rebuild run is all full refreshes by construction.
    assert set(rebuild[1]) <= {"full", "noop"}
    # Byte-identical state: result table, hidden columns, index
    # inventory, SnapIds, view metadata (incl. persisted fold state).
    assert incremental[0] == rebuild[0]
    assert incremental[2] == rebuild[2]


@DIFFERENTIAL_SETTINGS
@given(schedule=_schedule)
def test_dependent_view_cascade_matches_rebuild(schedule):
    """A view over a view: the cascade refreshes the base first, both
    pinned to one target, and still matches the all-FULL rebuild."""

    def run(full: bool):
        session = RQLSession(clock=FIXED_CLOCK, workers=1)
        warmup, actions = schedule
        try:
            session.execute(
                "CREATE TABLE events (grp INTEGER, val INTEGER)")
            session.execute("CREATE TABLE noise (x INTEGER)")
            session.execute("INSERT INTO events VALUES (0, 1)")
            session.declare_snapshot()
            for n in range(warmup):
                session.execute(f"INSERT INTO events VALUES (1, {n})")
                session.declare_snapshot()
            session.create_materialized_view(
                "base", "AggregateDataInTable",
                "SELECT grp, val FROM events", arg="(val, sum)")
            session.create_materialized_view(
                "top", "CollateData", "SELECT grp, val FROM base")
            for action in actions:
                if action[0] == "snap":
                    for op in action[1]:
                        session.execute(_op_sql(op))
                    session.declare_snapshot()
                else:
                    session.refresh_view("top", full=full)
            session.refresh_view("top", full=full)
            dump = full_database_dump(session.db)
        finally:
            session.close()
        return dump

    assert run(False) == run(True)
