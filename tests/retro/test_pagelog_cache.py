"""Pagelog and snapshot-page-cache tests."""

import pytest

from repro.errors import SnapshotError
from repro.retro.pagelog import Pagelog
from repro.retro.snapshot_cache import SnapshotPageCache
from repro.storage.disk import SimulatedDisk

PAGE = 256


def fresh_pagelog():
    disk = SimulatedDisk(PAGE)
    return Pagelog(disk.open_file("pagelog", append_only=True)), disk


class TestPagelog:
    def test_slots_are_stable_across_flush(self):
        pagelog, _ = fresh_pagelog()
        a = pagelog.append(b"a" * PAGE)
        b = pagelog.append(b"b" * PAGE)
        assert (a, b) == (0, 1)
        pagelog.flush()
        c = pagelog.append(b"c" * PAGE)
        assert c == 2
        assert pagelog.read(0) == b"a" * PAGE
        assert pagelog.read(2) == b"c" * PAGE

    def test_pending_reads_cost_no_io(self):
        pagelog, disk = fresh_pagelog()
        pagelog.append(b"x" * PAGE)
        before = disk.stats.log_reads
        pagelog.read(0)
        assert disk.stats.log_reads == before  # served from memory

    def test_durable_reads_charge_io(self):
        pagelog, disk = fresh_pagelog()
        pagelog.append(b"x" * PAGE)
        pagelog.flush()
        before = disk.stats.log_reads
        pagelog.read(0)
        assert disk.stats.log_reads == before + 1

    def test_flush_ordering_counts(self):
        pagelog, _ = fresh_pagelog()
        for i in range(5):
            pagelog.append(bytes([i]) * PAGE)
        assert pagelog.pending_slots == 5
        assert pagelog.flush() == 5
        assert pagelog.pending_slots == 0
        assert pagelog.durable_slots == 5

    def test_missing_slot(self):
        pagelog, _ = fresh_pagelog()
        with pytest.raises(SnapshotError):
            pagelog.read(0)

    def test_requires_append_only(self):
        disk = SimulatedDisk(PAGE)
        with pytest.raises(SnapshotError):
            Pagelog(disk.open_file("db"))

    def test_size_accounting(self):
        pagelog, _ = fresh_pagelog()
        pagelog.append(b"x" * PAGE)
        pagelog.append(b"y" * PAGE)
        pagelog.flush()
        pagelog.append(b"z" * PAGE)
        assert pagelog.total_slots == 3
        assert pagelog.size_bytes == 3 * PAGE
        assert pagelog.prestates_archived == 3


class TestSnapshotPageCache:
    def test_hit_miss(self):
        cache = SnapshotPageCache(4)
        assert cache.get(1) is None
        cache.put(1, b"a")
        assert cache.get(1) == b"a"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = SnapshotPageCache(2)
        cache.put(1, b"a")
        cache.put(2, b"b")
        cache.get(1)  # refresh 1
        cache.put(3, b"c")  # evicts 2
        assert cache.get(2) is None
        assert cache.get(1) == b"a"
        assert cache.get(3) == b"c"
        assert cache.evictions == 1

    def test_zero_capacity_never_stores(self):
        cache = SnapshotPageCache(0)
        cache.put(1, b"a")
        assert cache.get(1) is None

    def test_clear(self):
        cache = SnapshotPageCache(4)
        cache.put(1, b"a")
        cache.clear()
        assert cache.get(1) is None
        assert len(cache) == 0

    def test_update_existing(self):
        cache = SnapshotPageCache(2)
        cache.put(1, b"a")
        cache.put(1, b"b")
        assert cache.get(1) == b"b"
        assert len(cache) == 1

    def test_hit_rate(self):
        cache = SnapshotPageCache(2)
        cache.put(1, b"a")
        cache.get(1)
        cache.get(2)
        assert cache.hit_rate() == 0.5
