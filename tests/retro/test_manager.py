"""RetroManager tests: COW capture semantics, sharing, metering, the
model-based reconstruction property, and the cache-keying ablation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SnapshotError, UnknownSnapshotError
from repro.retro.manager import RetroManager
from repro.retro.metrics import MetricsSink
from repro.storage.btree import BTree
from repro.storage.disk import SimulatedDisk
from repro.storage.engine import StorageEngine
from repro.storage.record import encode_key, encode_record


def fresh_manager():
    disk = SimulatedDisk(256)
    return RetroManager(disk), disk


class TestCowCapture:
    def test_no_capture_before_first_snapshot(self):
        manager, _ = fresh_manager()
        assert manager.capture_if_needed(1, lambda: b"x" * 256) is False
        assert manager.pagelog.total_slots == 0

    def test_first_modification_captures_once(self):
        manager, _ = fresh_manager()
        manager.declare_snapshot()
        assert manager.capture_if_needed(1, lambda: b"a" * 256) is True
        assert manager.capture_if_needed(1, lambda: b"b" * 256) is False
        assert manager.pagelog.total_slots == 1

    def test_capture_resumes_after_new_declaration(self):
        manager, _ = fresh_manager()
        manager.declare_snapshot()
        manager.capture_if_needed(1, lambda: b"a" * 256)
        manager.declare_snapshot()
        assert manager.capture_if_needed(1, lambda: b"b" * 256) is True
        assert manager.pagelog.total_slots == 2

    def test_pre_state_reader_called_lazily(self):
        manager, _ = fresh_manager()
        calls = []

        def reader():
            calls.append(1)
            return b"z" * 256

        manager.capture_if_needed(1, reader)  # epoch 0: no capture
        assert calls == []
        manager.declare_snapshot()
        manager.capture_if_needed(1, reader)
        assert calls == [1]

    def test_captured_epoch_tracking(self):
        manager, _ = fresh_manager()
        manager.declare_snapshot()
        assert manager.captured_epoch(1) == 0
        manager.capture_if_needed(1, lambda: b"a" * 256)
        assert manager.captured_epoch(1) == 1


class TestSnapshotReads:
    def _engine_with_history(self):
        disk = SimulatedDisk(4096)
        engine = StorageEngine(disk)
        txn = engine.begin()
        tree = BTree.create(engine.page_source(txn))
        root = tree.root_id
        for i in range(300):
            tree.insert(encode_key((i,)), encode_record((i, "x" * 50)))
        engine.commit(txn)
        sids = []
        for round_no in range(5):
            txn = engine.begin()
            t = BTree(engine.page_source(txn), root)
            for i in range(round_no * 30, round_no * 30 + 30):
                t.delete(encode_key((i,)))
            sids.append(engine.commit(txn, declare_snapshot=True))
        return engine, root, sids

    def test_metering_splits_sources(self):
        engine, root, sids = self._engine_with_history()
        engine.checkpoint()
        sink = MetricsSink()
        engine.retro.metrics = sink
        engine.retro.cache.clear()
        sink.begin_iteration(sids[0])
        ctx = engine.begin_read()
        BTree(engine.snapshot_source(sids[0], ctx), root).count()
        ctx.close()
        it = sink.iterations[0]
        assert it.pagelog_reads > 0
        assert it.db_reads > 0  # recent snapshot shares with current
        assert it.spt_entries_scanned > 0

    def test_second_pass_hits_cache(self):
        engine, root, sids = self._engine_with_history()
        engine.checkpoint()
        sink = MetricsSink()
        engine.retro.metrics = sink
        engine.retro.cache.clear()
        ctx = engine.begin_read()
        sink.begin_iteration(sids[0])
        BTree(engine.snapshot_source(sids[0], ctx), root).count()
        first = sink.iterations[0]
        sink.begin_iteration(sids[0])
        BTree(engine.snapshot_source(sids[0], ctx), root).count()
        second = sink.iterations[1]
        ctx.close()
        assert second.pagelog_reads == 0
        assert second.cache_hits >= first.pagelog_reads

    def test_consecutive_snapshots_share_cached_slots(self):
        """The paper's core effect: shared(S1, S2) pages hit the cache
        when iterating S1 then S2."""
        engine, root, sids = self._engine_with_history()
        engine.checkpoint()
        sink = MetricsSink()
        engine.retro.metrics = sink
        engine.retro.cache.clear()
        ctx = engine.begin_read()
        sink.begin_iteration(sids[0])
        BTree(engine.snapshot_source(sids[0], ctx), root).count()
        cold = sink.iterations[0]
        sink.begin_iteration(sids[1])
        BTree(engine.snapshot_source(sids[1], ctx), root).count()
        hot = sink.iterations[1]
        ctx.close()
        assert hot.pagelog_reads < cold.pagelog_reads
        assert hot.cache_hits > 0

    def test_ablation_per_snapshot_keying_kills_sharing(self):
        """Keying the cache by (snapshot, page) instead of Pagelog slot
        destroys cross-snapshot sharing (DESIGN.md ablation)."""
        engine, root, sids = self._engine_with_history()
        engine.checkpoint()
        engine.retro.share_cache_by_slot = False
        sink = MetricsSink()
        engine.retro.metrics = sink
        engine.retro.cache.clear()
        ctx = engine.begin_read()
        sink.begin_iteration(sids[0])
        BTree(engine.snapshot_source(sids[0], ctx), root).count()
        cold = sink.iterations[0]
        sink.begin_iteration(sids[1])
        BTree(engine.snapshot_source(sids[1], ctx), root).count()
        hot = sink.iterations[1]
        ctx.close()
        assert hot.cache_hits == 0
        assert hot.pagelog_reads >= cold.pagelog_reads - 5

    def test_unknown_snapshot_rejected(self):
        manager, _ = fresh_manager()
        with pytest.raises(UnknownSnapshotError):
            manager.snapshot_source(1, lambda pid: None, 256)

    def test_snapshot_source_is_immutable(self):
        engine, root, sids = self._engine_with_history()
        ctx = engine.begin_read()
        source = engine.snapshot_source(sids[0], ctx)
        with pytest.raises(SnapshotError):
            source.allocate_page()
        with pytest.raises(SnapshotError):
            source.free_page(1)
        ctx.close()


class TestReconstructionProperty:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_any_history_reconstructs_exactly(self, seed):
        """Model-based: after arbitrary update/declare interleavings,
        every snapshot reads back exactly the logical state at its
        declaration."""
        rng = random.Random(seed)
        engine = StorageEngine(SimulatedDisk(4096))
        txn = engine.begin()
        tree = BTree.create(engine.page_source(txn))
        root = tree.root_id
        engine.commit(txn)
        model = {}
        snapshots = {}
        for _ in range(rng.randint(1, 8)):
            txn = engine.begin()
            t = BTree(engine.page_source(txn), root)
            for _ in range(rng.randint(0, 40)):
                i = rng.randrange(120)
                if rng.random() < 0.6:
                    model[i] = rng.randrange(10**6)
                    t.insert(encode_key((i,)),
                             encode_record((model[i],)))
                else:
                    model.pop(i, None)
                    t.delete(encode_key((i,)))
            if rng.random() < 0.7:
                sid = engine.commit(txn, declare_snapshot=True)
                snapshots[sid] = dict(model)
            else:
                engine.commit(txn)
            if rng.random() < 0.3:
                engine.checkpoint()
        ctx = engine.begin_read()
        for sid, expected in snapshots.items():
            t = BTree(engine.snapshot_source(sid, ctx), root)
            got = {}
            for key, value in t.scan_all():
                from repro.storage.record import decode_key, decode_record

                got[int(decode_key(key)[0])] = decode_record(value)[0]
            assert got == expected, f"snapshot {sid} mismatch"
        ctx.close()
