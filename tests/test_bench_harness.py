"""Bench-harness unit tests (the machinery behind the figure benches).

Uses a deliberately tiny environment so these run inside the normal
test suite; the real figure runs live in benchmarks/.
"""

import pytest

from repro.bench.harness import (
    BENCH_CHARGES,
    PAPER_PARAMETERS,
    QQ_IO,
    CostSummary,
    all_cold_cost,
    clear_env_cache,
    current_state_query,
    get_env,
    qq_collate,
    qs_snapshot_ids,
    ratio_c,
    standalone_snapshot_query,
)
from repro.retro.metrics import MetricsSink
from repro.workloads import UW30


@pytest.fixture(scope="module")
def tiny_env():
    env = get_env(UW30, snapshots=8, scale_factor=0.0005, seed=21)
    yield env


class TestPaperParameters:
    def test_table1_queries_present(self):
        for key in ("Qq_io", "Qq_cpu", "Qq_collate", "Qq_agg", "Qq_int",
                    "UW15", "UW30", "Qs_N"):
            assert key in PAPER_PARAMETERS

    def test_qq_collate_binds_date(self):
        assert "'1995-01-01'" in qq_collate("1995-01-01")


class TestEnvironment:
    def test_history_built(self, tiny_env):
        assert tiny_env.snapshot_ids == list(range(1, 9))
        assert tiny_env.last_snapshot == 8
        assert tiny_env.workload is UW30

    def test_env_cached(self, tiny_env):
        again = get_env(UW30, snapshots=8, scale_factor=0.0005, seed=21)
        assert again is tiny_env

    def test_qs_interval(self, tiny_env):
        qs = tiny_env.qs_interval(2, 3)
        assert qs_snapshot_ids(tiny_env, qs) == [2, 3, 4]
        strided = tiny_env.qs_interval(1, 3, step=2)
        assert qs_snapshot_ids(tiny_env, strided) == [1, 3, 5]

    def test_clear_snapshot_cache(self, tiny_env):
        standalone_snapshot_query(tiny_env, QQ_IO, 1, clear_cache=False)
        tiny_env.clear_snapshot_cache()
        assert len(tiny_env.session.db.engine.retro.cache) == 0


class TestCostAccounting:
    def test_standalone_query_meters(self, tiny_env):
        metrics = standalone_snapshot_query(tiny_env, QQ_IO, 1)
        assert metrics.snapshot_id == 1
        assert metrics.pagelog_reads + metrics.db_reads > 0
        assert metrics.total_seconds(BENCH_CHARGES) > 0

    def test_cache_not_cleared_reuses(self, tiny_env):
        tiny_env.clear_snapshot_cache()
        first = standalone_snapshot_query(tiny_env, QQ_IO, 1,
                                          clear_cache=False)
        second = standalone_snapshot_query(tiny_env, QQ_IO, 1,
                                           clear_cache=False)
        assert second.pagelog_reads == 0
        assert second.cache_hits >= first.pagelog_reads

    def test_all_cold_scales_with_interval(self, tiny_env):
        short = all_cold_cost(tiny_env, QQ_IO, [1, 2])
        longer = all_cold_cost(tiny_env, QQ_IO, [1, 2, 3, 4])
        assert longer.pagelog_reads > short.pagelog_reads
        assert longer.iterations == 4

    def test_current_state_has_no_snapshot_io(self, tiny_env):
        metrics = current_state_query(tiny_env, QQ_IO)
        assert metrics.pagelog_reads == 0
        assert metrics.spt_entries_scanned == 0

    def test_cost_summary_from_sink(self):
        sink = MetricsSink(BENCH_CHARGES)
        m = sink.begin_iteration(1)
        m.pagelog_reads = 10
        m.query_eval_seconds = 0.5
        sink.end_iteration()
        summary = CostSummary.from_sink(sink)
        assert summary.pagelog_reads == 10
        assert summary.iterations == 1
        assert summary.breakdown["query_eval"] == 0.5
        assert summary.simulated_seconds == pytest.approx(
            0.5 + 10 * BENCH_CHARGES.pagelog_read_seconds, rel=1e-6,
        )


class TestRatioC:
    def test_single_snapshot_is_one(self, tiny_env):
        ratios = ratio_c(
            tiny_env, tiny_env.session.aggregate_data_in_variable,
            tiny_env.qs_interval(1, 1), QQ_IO, "harness_r", "avg",
        )
        assert ratios["c_pagelog"] == pytest.approx(1.0, abs=0.05)
        assert ratios["iterations"] == 1.0

    def test_sharing_lowers_ratio(self, tiny_env):
        ratios = ratio_c(
            tiny_env, tiny_env.session.aggregate_data_in_variable,
            tiny_env.qs_interval(1, 5), QQ_IO, "harness_r", "avg",
        )
        assert ratios["c_pagelog"] < 0.9
        assert ratios["rql_pagelog_reads"] < \
            ratios["all_cold_pagelog_reads"]


class TestRecoveryMetric:
    def test_recovery_time_summary_is_verified_and_positive(self):
        from repro.bench.harness import recovery_time_summary

        summary = recovery_time_summary(seed=0, crash_points=[12, 30])
        assert summary["crash_points"] == 2.0
        assert summary["verified"] == 2.0  # fast-because-wrong is ruled out
        assert summary["mean_recovery_wall_seconds"] > 0.0
        assert summary["total_recovery_wall_seconds"] == pytest.approx(
            2 * summary["mean_recovery_wall_seconds"])
        assert summary["total_recovery_sim_seconds"] >= 0.0

    def test_recovery_time_summary_torn(self):
        from repro.bench.harness import recovery_time_summary

        summary = recovery_time_summary(seed=5, tear=True,
                                        crash_points=[25])
        assert summary["verified"] == 1.0
