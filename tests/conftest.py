"""Shared fixtures.

The TPC-H fixtures are session-scoped and cached by configuration: the
histories are expensive to build, and every consumer treats them as
read-only (RQL queries never mutate application data; result tables are
dropped or uniquely named per test).
"""

from __future__ import annotations

import pytest

from repro.core import RQLSession
from repro.sql.database import Database
from repro.storage.disk import SimulatedDisk
from repro.storage.engine import StorageEngine
from repro.workloads import SnapshotHistoryBuilder, UW30, setup_paper_example

PAGE_SIZE = 4096


@pytest.fixture
def disk():
    return SimulatedDisk(PAGE_SIZE)


@pytest.fixture
def engine(disk):
    return StorageEngine(disk)


@pytest.fixture
def db():
    return Database()


@pytest.fixture
def session():
    return RQLSession()


@pytest.fixture
def paper_session():
    """A session with the paper's Figures 1-3 state (3 snapshots)."""
    rql = RQLSession()
    ids = setup_paper_example(rql)
    assert ids == [1, 2, 3]
    return rql


def full_database_dump(db):
    """Byte-level state of every table in both engines.

    Maps (engine, table) -> (columns, [(rowid, row), ...]) in physical
    scan order, plus an index inventory per engine — the equality the
    differential parallel-vs-serial harness asserts on.
    """
    from repro.sql.catalog import Catalog
    from repro.sql.executor import TableAccess

    dump = {}
    for engine, kind in ((db.engine, "main"), (db.aux_engine, "aux")):
        ctx = engine.begin_read()
        try:
            source = engine.read_source(ctx)
            catalog = Catalog(source, engine.pager.get_root("catalog"))
            for info in catalog.list_tables():
                rows = [
                    (rowid, tuple(row))
                    for rowid, row in TableAccess(info, source).scan()
                ]
                dump[(kind, info.name)] = (
                    tuple(info.column_names()), rows,
                )
            dump[(kind, "__indexes__")] = sorted(
                (ix.name, ix.table, tuple(ix.columns))
                for ix in catalog.list_indexes()
            )
        finally:
            ctx.close()
    return dump


_TPCH_CACHE = {}


@pytest.fixture(scope="session")
def tpch_small():
    """A small TPC-H session with a UW30 history of 15 snapshots."""
    key = ("tpch_small",)
    if key not in _TPCH_CACHE:
        rql = RQLSession()
        builder = SnapshotHistoryBuilder(rql, scale_factor=0.001, seed=7)
        builder.load_initial()
        ids = builder.build_history(UW30, 15)
        _TPCH_CACHE[key] = (rql, builder, ids)
    return _TPCH_CACHE[key]
