"""Differential/property harness: the parallel executor is equivalent
to the serial mechanisms.

Hypothesis generates snapshot histories (inserts, updates, deletes
across a handful of snapshots), runs each mechanism serially and then
through :class:`~repro.core.parallel.ParallelExecutor` at every worker
count in ``WORKER_COUNTS``, and asserts byte-level equality:

* the result table — columns, physical row order, rowids, and values,
  including the hidden ``__avg_sum_i`` / ``__avg_cnt_i`` helper columns;
* the full post-run database state (every table in both engines, plus
  the index inventory);
* the metrics invariant: the per-worker ``qq_rows`` totals sum to the
  serial count, and each iteration is stamped with the worker that ran
  its partition.

All generated values are integers: integer-valued float arithmetic is
exact below 2**53, so SUM/AVG equality is bit-for-bit rather than
approximate.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import RQLSession
from repro.core.parallel import ParallelExecutor, partition_snapshots
from tests.conftest import full_database_dump

WORKER_COUNTS = (1, 2, 4, 7)

QS = "SELECT snap_id FROM SnapIds ORDER BY snap_id"

DIFFERENTIAL_SETTINGS = settings(
    max_examples=50,
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large,
                           HealthCheck.filter_too_much],
)


# ---------------------------------------------------------------------------
# Workload generation
# ---------------------------------------------------------------------------

_groups = st.integers(min_value=0, max_value=3)
_values = st.one_of(st.none(), st.integers(min_value=-50, max_value=100))

_op = st.one_of(
    st.tuples(st.just("insert"), _groups,
              st.integers(min_value=0, max_value=100), _values),
    st.tuples(st.just("update"), _groups,
              st.integers(min_value=1, max_value=10)),
    st.tuples(st.just("delete"), _groups),
)

#: one inner list of ops per declared snapshot
snapshot_batches = st.lists(
    st.lists(_op, max_size=4), min_size=2, max_size=6,
)


def _lit(value):
    return "NULL" if value is None else str(value)


def build_session(batches) -> RQLSession:
    """A session whose history realizes one generated workload."""
    session = RQLSession()
    session.execute("CREATE TABLE events (grp, val, aux)")
    for batch in batches:
        for op in batch:
            if op[0] == "insert":
                _, grp, val, aux = op
                session.execute(
                    f"INSERT INTO events VALUES ({grp}, {val}, {_lit(aux)})"
                )
            elif op[0] == "update":
                _, grp, delta = op
                session.execute(
                    f"UPDATE events SET val = val + {delta} "
                    f"WHERE grp = {grp}"
                )
            else:
                session.execute(f"DELETE FROM events WHERE grp = {op[1]}")
        session.declare_snapshot()
    return session


def dump_result(session: RQLSession, table: str):
    result = session.execute(f'SELECT * FROM "{table}"')
    return tuple(result.columns), [tuple(r) for r in result.rows]


def _serial_then_parallel(session: RQLSession, run_serial, run_parallel,
                          table: str) -> None:
    """The differential core: serial once, then every worker count."""
    serial_result = run_serial()
    serial_dump = dump_result(session, table)
    serial_state = full_database_dump(session.db)
    serial_qq_rows = sum(i.qq_rows for i in serial_result.metrics.iterations)

    for workers in WORKER_COUNTS:
        session.execute(f'DROP TABLE IF EXISTS "{table}"')
        executor = ParallelExecutor(session.db, workers=workers)
        result = run_parallel(executor)

        assert dump_result(session, table) == serial_dump, \
            f"result table diverged at workers={workers}"
        assert full_database_dump(session.db) == serial_state, \
            f"database state diverged at workers={workers}"

        info = result.parallel
        assert info is not None and info.workers == workers
        per_worker = [
            sum(i.qq_rows for i in sink.iterations)
            for sink in info.worker_sinks
        ]
        assert sum(per_worker) == serial_qq_rows
        # Iterations are stamped with the partition that evaluated them.
        for n, partition in enumerate(info.partitions):
            sink = info.worker_sinks[n]
            assert [i.snapshot_id for i in sink.iterations] == partition
            assert all(i.worker == n + 1 for i in sink.iterations)
        assert [i.snapshot_id for i in result.metrics.iterations] == \
            [sid for partition in info.partitions for sid in partition]


# ---------------------------------------------------------------------------
# The four mechanisms
# ---------------------------------------------------------------------------

@DIFFERENTIAL_SETTINGS
@given(batches=snapshot_batches)
def test_collate_data_differential(batches):
    session = build_session(batches)
    qq = "SELECT grp, val FROM events"
    _serial_then_parallel(
        session,
        lambda: session.collate_data(QS, qq, "R", workers=1),
        lambda ex: ex.collate_data(QS, qq, "R"),
        "R",
    )


@DIFFERENTIAL_SETTINGS
@given(batches=snapshot_batches,
       func=st.sampled_from(["min", "max", "sum", "count", "avg"]))
def test_aggregate_in_variable_differential(batches, func):
    session = build_session(batches)
    qq = "SELECT COUNT(*) AS c FROM events WHERE grp < 2"
    _serial_then_parallel(
        session,
        lambda: session.aggregate_data_in_variable(
            QS, qq, "R", func, workers=1),
        lambda ex: ex.aggregate_data_in_variable(QS, qq, "R", func),
        "R",
    )


@DIFFERENTIAL_SETTINGS
@given(batches=snapshot_batches,
       funcs=st.lists(
           st.sampled_from(["min", "max", "sum", "count", "avg"]),
           min_size=1, max_size=2))
def test_aggregate_in_table_differential(batches, funcs):
    session = build_session(batches)
    columns = ["val", "aux"][:len(funcs)]
    pairs = list(zip(columns, funcs))
    qq = "SELECT grp, val, aux FROM events"
    _serial_then_parallel(
        session,
        lambda: session.aggregate_data_in_table(
            QS, qq, "R", pairs, workers=1),
        lambda ex: ex.aggregate_data_in_table(QS, qq, "R", pairs),
        "R",
    )


@DIFFERENTIAL_SETTINGS
@given(batches=snapshot_batches)
def test_collate_into_intervals_differential(batches):
    session = build_session(batches)
    qq = "SELECT grp, val FROM events"
    _serial_then_parallel(
        session,
        lambda: session.collate_data_into_intervals(
            QS, qq, "R", workers=1),
        lambda ex: ex.collate_data_into_intervals(QS, qq, "R"),
        "R",
    )


# ---------------------------------------------------------------------------
# Partitioning properties
# ---------------------------------------------------------------------------

@given(ids=st.lists(st.integers(min_value=1, max_value=10_000),
                    unique=True, max_size=64),
       workers=st.integers(min_value=1, max_value=16))
def test_partition_snapshots_properties(ids, workers):
    partitions = partition_snapshots(ids, workers)
    # Concatenation preserves iteration order exactly.
    assert [s for p in partitions for s in p] == list(ids)
    assert len(partitions) == min(workers, len(ids))
    assert all(partitions), "no empty partitions"
    # Balanced: sizes differ by at most one, larger ones first.
    sizes = [len(p) for p in partitions]
    assert max(sizes, default=0) - min(sizes, default=0) <= 1
    assert sizes == sorted(sizes, reverse=True)


def test_partition_snapshots_rejects_bad_worker_count():
    from repro.errors import MechanismError
    with pytest.raises(MechanismError):
        partition_snapshots([1, 2], 0)


# ---------------------------------------------------------------------------
# Session / SQL-surface wiring
# ---------------------------------------------------------------------------

def _tiny_session():
    session = RQLSession()
    session.execute("CREATE TABLE t (a, b)")
    for i in range(6):
        session.execute(f"INSERT INTO t VALUES ({i % 2}, {i})")
        session.declare_snapshot()
    return session


def test_session_workers_kwarg_routes_to_parallel_executor():
    session = _tiny_session()
    result = session.collate_data(QS, "SELECT a, b FROM t", "R", workers=3)
    assert result.parallel is not None
    assert result.parallel.workers == 3
    assert len(result.parallel.partitions) == 3
    serial = session.collate_data(QS, "SELECT a, b FROM t", "R", workers=1)
    assert serial.parallel is None


def test_session_default_workers_used_when_kwarg_omitted():
    session = _tiny_session()
    session.workers = 2
    result = session.aggregate_data_in_table(
        QS, "SELECT a, b FROM t", "R", [("b", "sum")],
    )
    assert result.parallel is not None and result.parallel.workers == 2


def test_rql_workers_sql_function_sets_and_reads_the_knob():
    session = _tiny_session()
    session.workers = 1  # pin: RQL_WORKERS may override the default
    assert session.execute("SELECT rql_workers()").scalar() == 1
    assert session.execute("SELECT rql_workers(4)").scalar() == 4
    assert session.workers == 4
    assert session.execute("SELECT rql_workers()").scalar() == 4


def test_rql_workers_env_var_sets_session_default(monkeypatch):
    monkeypatch.setenv("RQL_WORKERS", "3")
    assert RQLSession().workers == 3
    # An explicit constructor argument always wins over the environment.
    assert RQLSession(workers=1).workers == 1


def test_workers_must_be_positive():
    from repro.errors import MechanismError
    with pytest.raises(MechanismError):
        RQLSession(workers=0)
    session = _tiny_session()
    with pytest.raises(MechanismError):
        session.collate_data(QS, "SELECT a FROM t", "R", workers=-1)


def test_parallel_refuses_open_write_transaction():
    from repro.errors import MechanismError
    session = _tiny_session()
    session.execute("BEGIN")
    try:
        with pytest.raises(MechanismError, match="transaction"):
            session.collate_data(QS, "SELECT a FROM t", "R", workers=2)
    finally:
        session.execute("ROLLBACK")
    # Usable again once the transaction is gone.
    result = session.collate_data(QS, "SELECT a FROM t", "R", workers=2)
    assert result.parallel is not None


def test_more_workers_than_snapshots_degrades_gracefully():
    session = _tiny_session()
    result = session.collate_data(QS, "SELECT a, b FROM t", "R",
                                  workers=64)
    assert len(result.parallel.partitions) == 6  # one per snapshot
    serial = dump_result(session, "R")
    session.collate_data(QS, "SELECT a, b FROM t", "R", workers=1)
    assert dump_result(session, "R") == serial


def test_empty_snapshot_set_creates_no_result_table():
    session = RQLSession()
    session.execute("CREATE TABLE t (a)")
    qs = "SELECT snap_id FROM SnapIds WHERE snap_id < 0"
    result = session.collate_data(qs, "SELECT a FROM t", "R", workers=4)
    assert result.snapshots == []
    assert result.parallel.partitions == []
    from repro.errors import ReproError
    with pytest.raises(ReproError):
        session.execute('SELECT * FROM "R"')
