"""Sort-merge AggregateDataInTable: equivalence with the index-probe
implementation (the paper's adopted one)."""

import pytest

from repro.core.sortmerge import sort_merge_aggregate_data_in_table
from repro.workloads import LoggedInSimulator

QS = "SELECT snap_id FROM SnapIds"
QQ = "SELECT l_country, COUNT(*) AS c FROM LoggedIn GROUP BY l_country"


@pytest.fixture
def churned(session):
    sim = LoggedInSimulator(session, users=30, seed=17)
    for _ in range(6):
        sim.churn_and_snapshot(logins=8, logouts=5)
    return session


@pytest.mark.parametrize("func", ["max", "min", "sum", "count", "avg"])
def test_sort_merge_matches_probe_variant(churned, func):
    s = churned
    s.aggregate_data_in_table(QS, QQ, "Probe", [("c", func)])
    s.execute('DROP TABLE IF EXISTS "Merge"')
    sort_merge_aggregate_data_in_table(s.db, QS, QQ, "Merge", [("c", func)])
    probe = dict(s.execute('SELECT l_country, c FROM "Probe"').rows)
    merge = dict(s.execute('SELECT l_country, c FROM "Merge"').rows)
    assert set(probe) == set(merge)
    for key in probe:
        assert probe[key] == pytest.approx(merge[key]), (func, key)


def test_sort_merge_has_no_result_index(churned):
    s = churned
    s.execute('DROP TABLE IF EXISTS "M2"')
    result = sort_merge_aggregate_data_in_table(
        s.db, QS, QQ, "M2", [("c", "max")],
    )
    assert result.result_index_bytes == 0
    assert result.result_rows > 0


def test_sort_merge_counts_operations(churned):
    from repro.core.sortmerge import SortMergeAggregateDataInTableRun

    s = churned
    s.execute('DROP TABLE IF EXISTS "M3"')
    run = SortMergeAggregateDataInTableRun(s.db, QQ, "M3", [("c", "sum")])
    run.run(QS)
    assert run.probes > 0
    assert run.rows_inserted > 0
    assert run.updates_applied > 0


def test_paper_example_via_sort_merge(paper_session):
    s = paper_session
    sort_merge_aggregate_data_in_table(
        s.db, QS,
        "SELECT l_country, COUNT(*) AS c FROM LoggedIn "
        "GROUP BY l_country",
        "PaperMerge", "(c,max)",
    )
    assert sorted(s.execute(
        'SELECT l_country, c FROM "PaperMerge"').rows) == \
        [("UK", 2), ("USA", 2)]
