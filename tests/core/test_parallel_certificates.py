"""Certificate consumption by the parallel executor.

Two halves:

* the **differential gate** runs every runnable corpus entry serially
  and at ``workers=4``.  Mergeable verdicts must produce byte-identical
  result tables and database state; ``serial-only`` verdicts must be
  refused at ``workers=4``.  A false "mergeable" verdict fails here,
  not in review.
* **certificate plumbing**: the executor consumes the certificate (a
  stripped/forged one is refused with the rqlint diagnostics), and
  ``session.certify`` exposes the same verdict against the live
  catalog.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.query.mergeclass import SERIAL_ONLY
from repro.core import RQLSession
from repro.core.parallel import ParallelExecutor
from repro.errors import MechanismError, ReproError
from repro.workloads.corpus import CORPUS, run_entry
from repro.workloads.loggedin import setup_paper_example
from tests.conftest import full_database_dump

RUNNABLE = [e for e in CORPUS if e.runnable]
MERGEABLE = [e for e in RUNNABLE if e.expected_class != SERIAL_ONLY]
SERIAL = [e for e in RUNNABLE if e.expected_class == SERIAL_ONLY]

PAPER_QS = "SELECT snap_id FROM SnapIds ORDER BY snap_id"
PAPER_QQ = "SELECT l_userid FROM LoggedIn"


def result_table(session: RQLSession, table: str):
    """(columns, rows) of a result table, or None if it was never
    created (statically-empty Qs runs materialize nothing)."""
    try:
        result = session.execute(f'SELECT * FROM "{table}"')
    except ReproError:
        return None
    return tuple(result.columns), [tuple(row) for row in result.rows]


def gate_session(entry, tpch_small):
    if entry.workload == "tpch":
        return tpch_small[0]
    session = RQLSession()
    setup_paper_example(session)
    return session


@pytest.mark.parametrize("entry", MERGEABLE, ids=lambda e: e.name)
def test_mergeable_entries_are_byte_identical(entry, tpch_small):
    session = gate_session(entry, tpch_small)
    table = "CertGate_" + entry.name.replace("-", "_")
    try:
        serial = run_entry(session, entry, table, workers=1)
        assert serial.parallel is None
        serial_rows = result_table(session, table)
        serial_state = full_database_dump(session.db)

        parallel = run_entry(session, entry, table, workers=4)
        assert parallel.parallel is not None
        assert parallel.parallel.workers == 4
        assert parallel.snapshots == serial.snapshots
        assert result_table(session, table) == serial_rows, \
            f"{entry.name}: result table diverged at workers=4"
        assert full_database_dump(session.db) == serial_state, \
            f"{entry.name}: database state diverged at workers=4"
        if entry.name == "loggedin-empty-range":
            assert serial.snapshots == []
            assert serial_rows is None
    finally:
        session.execute(f'DROP TABLE IF EXISTS "{table}"')


@pytest.mark.parametrize("entry", SERIAL, ids=lambda e: e.name)
def test_serial_only_entries_are_refused_in_parallel(entry, tpch_small):
    session = gate_session(entry, tpch_small)
    with pytest.raises(ReproError):
        run_entry(session, entry, "CertRefused", workers=4)
    assert result_table(session, "CertRefused") is None


def test_workers_knob_runs_serially_but_not_in_parallel(tpch_small):
    """The RQL106 entry isolates certificate-driven refusal: the Qq is
    valid SQL the serial path executes, so only ``_admit`` can reject
    it."""
    entry = [e for e in SERIAL if e.name == "loggedin-workers-knob"][0]
    session = gate_session(entry, tpch_small)
    result = run_entry(session, entry, "KnobHistory", workers=1)
    assert result.snapshots == [1, 2, 3]
    with pytest.raises(MechanismError, match="rqlint refuses parallel"):
        run_entry(session, entry, "KnobHistory", workers=4)


def test_non_monoid_aggregates_rejected_at_any_worker_count(tpch_small):
    """MEDIAN / GROUP_CONCAT are not abelian monoids: the engine
    rejects them serially too (paper Section 2.3), which is exactly why
    their corpus verdict is serial-only."""
    for entry in SERIAL:
        if entry.name == "loggedin-workers-knob":
            continue
        session = gate_session(entry, tpch_small)
        with pytest.raises(ReproError):
            run_entry(session, entry, "CertRefused", workers=1)


class TestCertificatePlumbing:
    @pytest.fixture
    def session(self):
        rql = RQLSession()
        setup_paper_example(rql)
        return rql

    def test_session_certify_surface(self, session):
        certificate = session.certify("CollateData", PAPER_QS, PAPER_QQ)
        assert certificate.merge_class == "concat"
        assert certificate.mergeable
        assert certificate.read_tables == ("LoggedIn",)
        # rql_workers is a live UDF: the catalog schema knows it and the
        # stateful classification fires against the real registry.
        refused = session.certify(
            "CollateData", PAPER_QS,
            "SELECT l_userid, rql_workers() FROM LoggedIn")
        assert refused.merge_class == SERIAL_ONLY
        assert not refused.mergeable
        assert any(f.rule == "RQL106" for f in refused.findings)

    def test_forged_certificate_is_refused(self, session):
        executor = ParallelExecutor(session.db, workers=2)
        honest = executor.certify("CollateData", PAPER_QS, PAPER_QQ)
        forged = dataclasses.replace(honest, merge_class=SERIAL_ONLY)
        with pytest.raises(MechanismError,
                           match="rqlint refuses parallel"):
            executor.collate_data(PAPER_QS, PAPER_QQ, "Forged",
                                  certificate=forged)

    def test_mismatched_certificate_is_refused(self, session):
        """A certificate for a different mechanism has the wrong merge
        class; dispatch is keyed off the certificate, so it cannot
        reach concat."""
        executor = ParallelExecutor(session.db, workers=2)
        monoid = executor.certify(
            "AggregateDataInVariable", PAPER_QS,
            "SELECT COUNT(*) AS online FROM LoggedIn", "max")
        assert monoid.merge_class == "monoid"
        with pytest.raises(MechanismError,
                           match="rqlint refuses parallel"):
            executor.collate_data(PAPER_QS, PAPER_QQ, "Mismatched",
                                  certificate=monoid)

    def test_honest_certificate_is_accepted(self, session):
        executor = ParallelExecutor(session.db, workers=2)
        honest = executor.certify("CollateData", PAPER_QS, PAPER_QQ)
        result = executor.collate_data(PAPER_QS, PAPER_QQ, "Honest",
                                       certificate=honest)
        assert result.snapshots == [1, 2, 3]
