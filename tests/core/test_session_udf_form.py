"""RQLSession API, SnapIds management, and the Section 3 UDF call form."""

import pytest

from repro.core import RQLSession
from repro.errors import RqlError


class TestSnapIds:
    def test_declare_records_snapids(self, session):
        session.execute("CREATE TABLE t (a INTEGER)")
        sid = session.declare_snapshot(name="first",
                                       timestamp="2018-01-01 00:00:00")
        rows = session.execute(
            "SELECT snap_id, snap_ts, snap_name FROM SnapIds"
        ).rows
        assert rows == [(sid, "2018-01-01 00:00:00", "first")]

    def test_id_for_name(self, session):
        session.execute("CREATE TABLE t (a INTEGER)")
        sid = session.declare_snapshot(name="tagged")
        assert session.snapids.id_for_name("tagged") == sid
        with pytest.raises(RqlError):
            session.snapids.id_for_name("missing")

    def test_qs_builders(self, session):
        session.execute("CREATE TABLE t (a INTEGER)")
        for _ in range(10):
            session.declare_snapshot()
        snapids = session.snapids
        assert snapids.all_ids() == list(range(1, 11))
        last5 = session.execute(snapids.qs_last(5)).rows
        assert [r[0] for r in last5] == [6, 7, 8, 9, 10]
        stepped = session.execute(snapids.qs_last(3, step=2)).rows
        assert [r[0] for r in stepped] == [6, 8, 10]
        pinned = session.execute(snapids.qs_last(3, end=7)).rows
        assert [r[0] for r in pinned] == [5, 6, 7]
        ranged = session.execute(snapids.qs_range(2, 6, step=2)).rows
        assert [r[0] for r in ranged] == [2, 4, 6]

    def test_qs_time_range(self, session):
        session.execute("CREATE TABLE t (a INTEGER)")
        session.declare_snapshot(timestamp="2018-01-01 10:00:00")
        session.declare_snapshot(timestamp="2018-01-02 10:00:00")
        session.declare_snapshot(timestamp="2018-01-03 10:00:00")
        rows = session.execute(session.snapids.qs_time_range(
            "2018-01-01 00:00:00", "2018-01-02 23:59:59",
        )).rows
        assert [r[0] for r in rows] == [1, 2]

    def test_qs_last_without_snapshots(self, session):
        with pytest.raises(RqlError):
            session.snapids.qs_last(3)


class TestUdfForm:
    """The paper's Section 3 syntax: mechanisms invoked as UDFs over the
    SELECT on SnapIds."""

    def test_collate_data_udf(self, paper_session):
        s = paper_session
        s.execute(
            "SELECT CollateData(snap_id, "
            "'SELECT DISTINCT l_userid, current_snapshot() AS sid "
            "FROM LoggedIn', 'U1') FROM SnapIds"
        )
        assert len(s.execute('SELECT * FROM "U1"').rows) == 8

    def test_udf_respects_qs_where(self, paper_session):
        s = paper_session
        s.execute(
            "SELECT CollateData(snap_id, "
            "'SELECT l_userid FROM LoggedIn', 'U2') "
            "FROM SnapIds WHERE snap_id > 1"
        )
        assert len(s.execute('SELECT * FROM "U2"').rows) == 5

    def test_aggregate_in_variable_udf(self, paper_session):
        s = paper_session
        s.execute(
            "SELECT AggregateDataInVariable(snap_id, "
            "'SELECT DISTINCT current_snapshot() AS sid FROM LoggedIn "
            "WHERE l_userid = ''UserB'' ', 'U3', 'min') FROM SnapIds"
        )
        assert s.execute('SELECT * FROM "U3"').scalar() == 1

    def test_aggregate_in_table_udf(self, paper_session):
        s = paper_session
        s.execute(
            "SELECT AggregateDataInTable(snap_id, "
            "'SELECT l_country, COUNT(*) AS c FROM LoggedIn "
            "GROUP BY l_country', 'U4', '(c,max)') FROM SnapIds"
        )
        assert sorted(s.execute('SELECT l_country, c FROM "U4"').rows) \
            == [("UK", 2), ("USA", 2)]

    def test_intervals_udf(self, paper_session):
        s = paper_session
        s.execute(
            "SELECT CollateDataIntoIntervals(snap_id, "
            "'SELECT l_userid FROM LoggedIn', 'U5') FROM SnapIds"
        )
        rows = sorted(s.execute('SELECT * FROM "U5"').rows)
        assert rows[0] == ("UserA", 1, 1)
        assert ("UserB", 1, 3) in rows

    def test_udf_metrics_accessible(self, paper_session):
        s = paper_session
        qq = "SELECT l_userid FROM LoggedIn"
        s.execute(
            f"SELECT CollateData(snap_id, '{qq}', 'U6') FROM SnapIds"
        )
        sink = s.udf_metrics("CollateData", qq, "U6")
        assert sink is not None
        # The sink may collect trailing activity after the loop; the
        # first three iterations are the loop body invocations.
        assert [m.snapshot_id for m in sink.iterations[:3]] == [1, 2, 3]

    def test_reset_udf_state(self, paper_session):
        s = paper_session
        qq = "SELECT l_userid FROM LoggedIn"
        s.execute(f"SELECT CollateData(snap_id, '{qq}', 'U7') FROM SnapIds")
        s.reset_udf_state()
        assert s.udf_metrics("CollateData", qq, "U7") is None


class TestSessionLifecycle:
    def test_close_rolls_back_open_txn(self):
        s = RQLSession()
        s.execute("CREATE TABLE t (a INTEGER)")
        s.execute("BEGIN")
        s.execute("INSERT INTO t VALUES (1)")
        s.close()
        # A fresh facade over the same disks would not see the insert;
        # here we just check the session is reusable read-only.

    def test_latest_snapshot_id(self, session):
        session.execute("CREATE TABLE t (a INTEGER)")
        assert session.latest_snapshot_id == 0
        session.declare_snapshot()
        assert session.latest_snapshot_id == 1
