"""Fault injection for the parallel executor.

A worker raising mid-partition must abort the whole run: the first
error (in partition order) propagates, every read context is closed
(reader counts return to zero on both engines), no buffer-pool pin is
leaked, and the aux database holds no partial result table.
"""

from __future__ import annotations

import pytest

from repro.core import RQLSession
from repro.core.parallel import ParallelExecutor
from repro.errors import ReproError
from repro.retro.manager import RetroManager
from tests.conftest import full_database_dump
from tests.storage.test_resource_lifecycle import CountingSource

QS = "SELECT snap_id FROM SnapIds ORDER BY snap_id"


def _history_session(session: RQLSession = None) -> RQLSession:
    if session is None:
        session = RQLSession()
    session.execute("CREATE TABLE events (grp, val)")
    for i in range(8):
        session.execute(f"INSERT INTO events VALUES ({i % 3}, {i})")
        session.declare_snapshot()
        # Mutate after each snapshot so snapshots genuinely diverge from
        # the current state (pre-states land in the Pagelog).
        session.execute(f"UPDATE events SET val = val + 1 "
                        f"WHERE grp = {i % 3}")
    return session


def _reader_counts(session: RQLSession):
    return (session.db.engine._versions.active_reader_count,
            session.db.aux_engine._versions.active_reader_count)


def _pinned_pages(session: RQLSession):
    pinned = []
    for engine in (session.db.engine, session.db.aux_engine):
        pool = engine.pager.pool
        with pool._latch:
            pinned.extend(
                (engine, p.page_id)
                for p in pool._pages.values() if p.pin_count
            )
    return pinned


def _result_tables(session: RQLSession):
    return [key for key in full_database_dump(session.db)
            if key[1] == "R"]


#: (mechanism, extra args, faulting Qq, clean Qq) — the faulting Qq
#: calls boom() per scanned row; current_snapshot() is inlined to the
#: iteration's snapshot id by the rewriter.
FAULTING = "boom(val, current_snapshot()) >= -1000"
MECHANISM_CALLS = [
    ("collate_data", (),
     f"SELECT grp, val FROM events WHERE {FAULTING}",
     "SELECT grp, val FROM events"),
    ("aggregate_data_in_variable", ("sum",),
     f"SELECT COUNT(*) AS c FROM events WHERE {FAULTING}",
     "SELECT COUNT(*) AS c FROM events"),
    ("aggregate_data_in_table", ([("val", "sum")],),
     f"SELECT grp, val FROM events WHERE {FAULTING}",
     "SELECT grp, val FROM events"),
    ("collate_data_into_intervals", (),
     f"SELECT grp, val FROM events WHERE {FAULTING}",
     "SELECT grp, val FROM events"),
]


@pytest.mark.parametrize("mechanism,extra,qq,good_qq",
                         MECHANISM_CALLS,
                         ids=[m for m, _, _, _ in MECHANISM_CALLS])
def test_udf_fault_mid_partition_aborts_cleanly(mechanism, extra, qq,
                                                good_qq):
    session = _history_session()

    def boom(value, snapshot_id):
        if int(snapshot_id) == 6:  # mid second partition at workers=3
            raise ReproError("injected UDF failure")
        return value

    session.db.register_function("boom", boom)
    executor = ParallelExecutor(session.db, workers=3)
    with pytest.raises(ReproError, match="injected"):
        getattr(executor, mechanism)(QS, qq, "R", *extra)

    assert _reader_counts(session) == (0, 0)
    assert _pinned_pages(session) == []
    assert _result_tables(session) == [], \
        "aborted run left a partial result table"
    # The session is fully usable afterwards: the same computation
    # without the fault matches a serial run.
    getattr(session, mechanism)(QS, good_qq, "R", *extra, workers=3)
    parallel_rows = session.execute('SELECT * FROM "R"').rows
    getattr(session, mechanism)(QS, good_qq, "R", *extra, workers=1)
    assert session.execute('SELECT * FROM "R"').rows == parallel_rows


def test_page_source_fault_releases_every_snapshot_page(monkeypatch):
    session = _history_session()
    original = RetroManager.snapshot_source
    wrappers = []

    def patched(self, snapshot_id, read_current, page_size,
                use_skippy=True):
        source = original(self, snapshot_id, read_current, page_size,
                          use_skippy=use_skippy)
        wrapper = CountingSource(source)
        if snapshot_id == 5:
            wrapper.fail_fetch_at = 2  # mid-iteration, pins already held
        wrappers.append(wrapper)
        return wrapper

    monkeypatch.setattr(RetroManager, "snapshot_source", patched)
    executor = ParallelExecutor(session.db, workers=4)
    with pytest.raises(ReproError, match="injected"):
        executor.collate_data(QS, "SELECT grp, val FROM events", "R")

    assert wrappers, "fault never reached a snapshot source"
    assert all(w.outstanding == 0 for w in wrappers), \
        "aborted worker leaked snapshot page fetches"
    assert _reader_counts(session) == (0, 0)
    assert _result_tables(session) == []


def test_crash_during_parallel_run_recovers_and_matches_serial():
    """Power loss mid-parallel-run: recover, re-run serially, compare.

    The crash fires during the workers=4 merge writes.  The crashed
    session must not leak readers or pins; after recovery the store
    replays its history exactly and a serial re-run of the same
    mechanism produces a database dump identical to a never-crashed
    serial reference run.
    """
    from repro.sql.database import Database
    from repro.storage.chaosdisk import ChaosDisk

    reference = _history_session()
    reference.collate_data(QS, "SELECT grp, val FROM events", "R",
                           workers=1)
    golden = full_database_dump(reference.db)

    disk = ChaosDisk(4096, seed=11)
    aux = ChaosDisk(4096, controller=disk.chaos)
    session = _history_session(
        RQLSession(db=Database(disk=disk, aux_disk=aux)))
    disk.schedule_crash(at_write=3, tear=True)
    with pytest.raises(ReproError):
        session.collate_data(QS, "SELECT grp, val FROM events", "R",
                             workers=4)
    assert disk.chaos.powered_off, "crash never fired during the run"
    assert _reader_counts(session) == (0, 0)
    assert _pinned_pages(session) == []

    disk.power_on()
    recovered = RQLSession(db=Database(disk=disk, aux_disk=aux))
    recovered.collate_data(QS, "SELECT grp, val FROM events", "R",
                           workers=1)
    assert full_database_dump(recovered.db) == golden
    assert _reader_counts(recovered) == (0, 0)
    assert _pinned_pages(recovered) == []


def test_first_error_in_partition_order_wins():
    session = _history_session()
    failed = []

    def boom(value, snapshot_id):
        sid = int(snapshot_id)
        if sid in (2, 7):  # partition 0 and partition 2 at workers=3
            failed.append(sid)
            raise ReproError(f"injected at {sid}")
        return value

    session.db.register_function("boom", boom)
    qq = "SELECT grp, boom(val, current_snapshot()) AS val FROM events"
    executor = ParallelExecutor(session.db, workers=3)
    with pytest.raises(ReproError, match="injected at 2"):
        executor.collate_data(QS, qq, "R")
    assert 2 in failed
