"""Qq rewriting and monoid-aggregate tests (paper Sections 2.3 and 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import (
    binary_op,
    identity_element,
    make_cross_snapshot_aggregate,
    parse_col_func_pairs,
)
from repro.core.rewrite import rewrite_qq, validate_qs, wrap_qs
from repro.errors import AggregateError, MechanismError


class TestRewriteQq:
    def test_paper_example(self):
        """The exact rewrite shown in Section 3."""
        qq = ("SELECT DISTINCT current_snapshot() FROM LoggedIn\n"
              "WHERE l_userid = 'UserB';")
        out = rewrite_qq(qq, 17)
        assert out == ("SELECT AS OF 17 DISTINCT 17 FROM LoggedIn\n"
                       "WHERE l_userid = 'UserB'")

    def test_as_of_injection_only(self):
        assert rewrite_qq("SELECT * FROM t", 3) == "SELECT AS OF 3 * FROM t"

    def test_multiple_current_snapshot(self):
        out = rewrite_qq(
            "SELECT current_snapshot(), a, current_snapshot() FROM t", 9,
        )
        assert out == "SELECT AS OF 9 9, a, 9 FROM t"

    def test_string_literals_untouched(self):
        out = rewrite_qq(
            "SELECT a FROM t WHERE b = 'select current_snapshot()'", 5,
        )
        assert out == ("SELECT AS OF 5 a FROM t "
                       "WHERE b = 'select current_snapshot()'")

    def test_case_insensitive_function(self):
        out = rewrite_qq("SELECT Current_Snapshot() FROM t", 2)
        assert out == "SELECT AS OF 2 2 FROM t"

    def test_rejects_non_select(self):
        with pytest.raises(MechanismError):
            rewrite_qq("DELETE FROM t", 1)

    def test_rejects_existing_as_of(self):
        with pytest.raises(MechanismError):
            rewrite_qq("SELECT AS OF 3 * FROM t", 1)

    def test_rejects_current_snapshot_with_args(self):
        with pytest.raises(MechanismError):
            rewrite_qq("SELECT current_snapshot(1) FROM t", 1)

    def test_rewritten_sql_parses(self):
        from repro.sql.parser import parse_one

        out = rewrite_qq(
            "SELECT l_country, COUNT(*) AS c FROM LoggedIn "
            "GROUP BY l_country", 4,
        )
        stmt = parse_one(out)
        assert stmt.as_of.value == 4


class TestWrapQs:
    def test_basic(self):
        out = wrap_qs("SELECT snap_id FROM SnapIds", "rql(%s)")
        assert out == "SELECT rql(snap_id) FROM SnapIds"

    def test_where_preserved(self):
        out = wrap_qs(
            "SELECT snap_id FROM SnapIds WHERE snap_id > 5", "f(%s)",
        )
        assert out == "SELECT f(snap_id) FROM SnapIds WHERE snap_id > 5"

    def test_multi_column_rejected(self):
        with pytest.raises(MechanismError):
            wrap_qs("SELECT a, b FROM SnapIds", "f(%s)")

    def test_validate_qs(self):
        validate_qs("SELECT snap_id FROM SnapIds")
        with pytest.raises(MechanismError):
            validate_qs("DELETE FROM SnapIds")
        with pytest.raises(MechanismError):
            validate_qs("SELECT AS OF 2 snap_id FROM SnapIds")


class TestMonoidAggregates:
    def test_supported_and_rejected(self):
        for name in ("min", "MAX", "Sum", "count", "avg"):
            make_cross_snapshot_aggregate(name)
        with pytest.raises(AggregateError):
            make_cross_snapshot_aggregate("count distinct")
        with pytest.raises(AggregateError):
            make_cross_snapshot_aggregate("median")

    def test_fold_results(self):
        cases = [
            ("min", [3, 1, 2], 1),
            ("max", [3, 1, 2], 3),
            ("sum", [3, 1, 2], 6),
            ("count", [3, None, 2], 2),
            ("avg", [3, 1, 2], 2.0),
        ]
        for name, values, expected in cases:
            agg = make_cross_snapshot_aggregate(name)
            for value in values:
                agg.absorb(value)
            assert agg.result() == expected, name

    def test_empty_results(self):
        assert make_cross_snapshot_aggregate("min").result() is None
        assert make_cross_snapshot_aggregate("sum").result() is None
        assert make_cross_snapshot_aggregate("count").result() == 0
        assert make_cross_snapshot_aggregate("avg").result() is None

    def test_avg_has_no_plain_monoid(self):
        with pytest.raises(AggregateError):
            binary_op("avg")
        with pytest.raises(AggregateError):
            identity_element("avg")

    numbers = st.one_of(st.none(),
                        st.integers(min_value=-(10**6), max_value=10**6))

    @settings(max_examples=200, deadline=None)
    @given(st.sampled_from(["min", "max", "sum"]), numbers, numbers, numbers)
    def test_monoid_laws(self, name, a, b, c):
        """Associativity, commutativity, identity — the formal
        requirement of paper Section 2.3."""
        op = binary_op(name)
        identity = identity_element(name)
        assert op(op(a, b), c) == op(a, op(b, c))
        assert op(a, b) == op(b, a)
        assert op(a, identity) == (a if a is not None else identity)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=-(10**6), max_value=10**6),
                    min_size=1, max_size=30),
           st.integers(min_value=0, max_value=29))
    def test_merge_equals_sequential(self, values, split_at):
        """Folding a split stream in two parts then merging equals one
        sequential fold (the monoid property the mechanisms rely on)."""
        split_at = min(split_at, len(values))
        for name in ("min", "max", "sum", "count", "avg"):
            left = make_cross_snapshot_aggregate(name)
            right = make_cross_snapshot_aggregate(name)
            whole = make_cross_snapshot_aggregate(name)
            for value in values[:split_at]:
                left.absorb(value)
                whole.absorb(value)
            for value in values[split_at:]:
                right.absorb(value)
                whole.absorb(value)
            if name in ("count", "avg"):
                left.merge(right)
                merged = left.result()
            else:
                left.merge(right)
                merged = left.result()
            assert merged == pytest.approx(whole.result())


class TestColFuncPairs:
    def test_python_list_form(self):
        assert parse_col_func_pairs([("c", "max")]) == (("c", "max"),)

    def test_paper_string_form(self):
        assert parse_col_func_pairs("(l_time,min)") == (("l_time", "min"),)

    def test_paper_reversed_order(self):
        # The paper writes "(MAX,cn)" in Section 5.3.
        assert parse_col_func_pairs("(MAX,cn)") == (("cn", "max"),)

    def test_multiple_pairs(self):
        assert parse_col_func_pairs("(MAX,cn):(MAX,av)") == (
            ("cn", "max"), ("av", "max"),
        )

    def test_no_function_rejected(self):
        with pytest.raises(AggregateError):
            parse_col_func_pairs("(a,b)")

    def test_empty_rejected(self):
        with pytest.raises(AggregateError):
            parse_col_func_pairs([])

    def test_bad_string(self):
        with pytest.raises(AggregateError):
            parse_col_func_pairs("l_time,min")
