"""RQL mechanism tests against the paper's LoggedIn example and the
mechanism-equivalence properties from DESIGN.md."""

import pytest

from repro.core import RQLSession
from repro.errors import AggregateError, MechanismError
from repro.workloads import LoggedInSimulator


class TestCollateData:
    def test_paper_section_21_example(self, paper_session):
        s = paper_session
        s.collate_data(
            "SELECT snap_id FROM SnapIds",
            "SELECT DISTINCT l_userid, current_snapshot() FROM LoggedIn",
            "Result",
        )
        rows = sorted(s.execute('SELECT * FROM "Result"').rows)
        assert rows == sorted([
            ("UserA", 1), ("UserB", 1), ("UserC", 1),
            ("UserB", 2), ("UserC", 2),
            ("UserB", 3), ("UserC", 3), ("UserD", 3),
        ])

    def test_subset_qs(self, paper_session):
        s = paper_session
        s.collate_data(
            "SELECT snap_id FROM SnapIds WHERE snap_id >= 2",
            "SELECT l_userid FROM LoggedIn",
            "R2",
        )
        assert len(s.execute('SELECT * FROM "R2"').rows) == 5

    def test_qs_with_step(self, paper_session):
        s = paper_session
        s.collate_data(
            "SELECT snap_id FROM SnapIds WHERE snap_id % 2 = 1",
            "SELECT DISTINCT current_snapshot() FROM LoggedIn",
            "R3",
        )
        assert sorted(r[0] for r in s.execute('SELECT * FROM "R3"').rows) \
            == [1, 3]

    def test_result_metrics_per_iteration(self, paper_session):
        result = paper_session.collate_data(
            "SELECT snap_id FROM SnapIds",
            "SELECT l_userid FROM LoggedIn", "R4",
        )
        assert result.iterations == 3
        assert result.snapshots == [1, 2, 3]
        assert result.result_rows == 8
        assert [m.snapshot_id for m in result.metrics.iterations] == [1, 2, 3]

    def test_empty_snapshot_set(self, paper_session):
        result = paper_session.collate_data(
            "SELECT snap_id FROM SnapIds WHERE snap_id > 99",
            "SELECT l_userid FROM LoggedIn", "R5",
        )
        assert result.iterations == 0


class TestAggregateDataInVariable:
    def test_count_snapshots_with_user(self, paper_session):
        s = paper_session
        s.aggregate_data_in_variable(
            "SELECT snap_id FROM SnapIds",
            "SELECT DISTINCT 1 FROM LoggedIn WHERE l_userid = 'UserB'",
            "R", "sum",
        )
        assert s.execute('SELECT * FROM "R"').scalar() == 3

    def test_first_occurrence(self, paper_session):
        s = paper_session
        s.aggregate_data_in_variable(
            "SELECT snap_id FROM SnapIds",
            "SELECT DISTINCT current_snapshot() FROM LoggedIn "
            "WHERE l_userid = 'UserD'",
            "R", "min",
        )
        assert s.execute('SELECT * FROM "R"').scalar() == 3

    def test_avg_special_case(self, paper_session):
        s = paper_session
        s.aggregate_data_in_variable(
            "SELECT snap_id FROM SnapIds",
            "SELECT COUNT(*) FROM LoggedIn", "R", "avg",
        )
        assert s.execute('SELECT * FROM "R"').scalar() == \
            pytest.approx((3 + 2 + 3) / 3)

    def test_multi_row_qq_rejected(self, paper_session):
        with pytest.raises(MechanismError):
            paper_session.aggregate_data_in_variable(
                "SELECT snap_id FROM SnapIds",
                "SELECT l_userid FROM LoggedIn", "R", "min",
            )

    def test_multi_column_qq_rejected(self, paper_session):
        with pytest.raises(MechanismError):
            paper_session.aggregate_data_in_variable(
                "SELECT snap_id FROM SnapIds",
                "SELECT l_userid, l_time FROM LoggedIn "
                "WHERE l_userid = 'UserB'",
                "R", "min",
            )

    def test_non_monoid_rejected(self, paper_session):
        with pytest.raises(AggregateError):
            paper_session.aggregate_data_in_variable(
                "SELECT snap_id FROM SnapIds",
                "SELECT COUNT(*) FROM LoggedIn", "R", "count distinct",
            )


class TestAggregateDataInTable:
    def test_first_login_per_user(self, paper_session):
        s = paper_session
        s.aggregate_data_in_table(
            "SELECT snap_id FROM SnapIds",
            "SELECT DISTINCT l_userid, l_time FROM LoggedIn",
            "R", "(l_time,min)",
        )
        rows = dict(s.execute('SELECT l_userid, l_time FROM "R"').rows)
        assert rows["UserA"] == "2008-11-09 13:23:44"
        assert rows["UserD"] == "2008-11-11 10:08:04"
        assert len(rows) == 4

    def test_max_simultaneous_per_country(self, paper_session):
        s = paper_session
        s.aggregate_data_in_table(
            "SELECT snap_id FROM SnapIds",
            "SELECT l_country, COUNT(*) AS c FROM LoggedIn "
            "GROUP BY l_country",
            "R", "(c,max)",
        )
        assert sorted(s.execute('SELECT l_country, c FROM "R"').rows) == \
            [("UK", 2), ("USA", 2)]

    def test_multiple_aggregations(self, paper_session):
        s = paper_session
        s.aggregate_data_in_table(
            "SELECT snap_id FROM SnapIds",
            "SELECT l_country, COUNT(*) AS c FROM LoggedIn "
            "GROUP BY l_country",
            "R", "(c,max):(c2,sum)" if False else [("c", "max")],
        )
        assert len(s.execute('SELECT * FROM "R"').rows) == 2

    def test_avg_hidden_columns_excluded_from_visible(self, paper_session):
        s = paper_session
        result = s.aggregate_data_in_table(
            "SELECT snap_id FROM SnapIds",
            "SELECT l_country, COUNT(*) AS c FROM LoggedIn "
            "GROUP BY l_country",
            "R", [("c", "avg")],
        )
        assert result.columns == ["l_country", "c"]
        rows = dict(s.execute('SELECT l_country, c FROM "R"').rows)
        # USA: 2, 1, 1 logins -> avg 4/3. UK: 1, 1, 2 -> 4/3.
        assert rows["USA"] == pytest.approx(4 / 3)
        assert rows["UK"] == pytest.approx(4 / 3)

    def test_missing_aggregation_column(self, paper_session):
        with pytest.raises(MechanismError):
            paper_session.aggregate_data_in_table(
                "SELECT snap_id FROM SnapIds",
                "SELECT l_userid FROM LoggedIn", "R", [("nope", "max")],
            )

    def test_all_columns_aggregated_rejected(self, paper_session):
        with pytest.raises(MechanismError):
            paper_session.aggregate_data_in_table(
                "SELECT snap_id FROM SnapIds",
                "SELECT DISTINCT l_time FROM LoggedIn "
                "WHERE l_userid = 'UserB'",
                "R", [("l_time", "min")],
            )

    def test_result_index_created(self, paper_session):
        result = paper_session.aggregate_data_in_table(
            "SELECT snap_id FROM SnapIds",
            "SELECT DISTINCT l_userid, l_time FROM LoggedIn",
            "R", [("l_time", "min")],
        )
        assert result.result_index_bytes > 0


class TestCollateDataIntoIntervals:
    def test_paper_lifetimes(self, paper_session):
        s = paper_session
        s.collate_data_into_intervals(
            "SELECT snap_id FROM SnapIds",
            "SELECT l_userid FROM LoggedIn", "R",
        )
        rows = sorted(s.execute('SELECT * FROM "R"').rows)
        assert rows == [
            ("UserA", 1, 1), ("UserB", 1, 3),
            ("UserC", 1, 3), ("UserD", 3, 3),
        ]

    def test_gap_reopens_interval(self, session):
        sim = LoggedInSimulator(session, users=3, seed=3)
        # User0000 logs in, out, in again across snapshots.
        session.execute(
            "INSERT INTO LoggedIn VALUES ('U', '2008-01-01', 'US')"
        )
        session.declare_snapshot()  # S1: present
        session.execute("BEGIN")
        session.execute("DELETE FROM LoggedIn WHERE l_userid = 'U'")
        session.commit_with_snapshot()  # S2: absent
        session.execute("BEGIN")
        session.execute(
            "INSERT INTO LoggedIn VALUES ('U', '2008-01-03', 'US')"
        )
        session.commit_with_snapshot()  # S3: present again
        session.collate_data_into_intervals(
            "SELECT snap_id FROM SnapIds",
            "SELECT l_userid FROM LoggedIn WHERE l_userid = 'U'", "R",
        )
        rows = sorted(session.execute('SELECT * FROM "R"').rows)
        assert rows == [("U", 1, 1), ("U", 3, 3)]

    def test_interval_columns_present(self, paper_session):
        result = paper_session.collate_data_into_intervals(
            "SELECT snap_id FROM SnapIds",
            "SELECT l_userid, l_country FROM LoggedIn", "R",
        )
        assert result.columns == [
            "l_userid", "l_country", "start_snapshot", "end_snapshot",
        ]

    def test_compacter_than_collate(self, paper_session):
        s = paper_session
        collate = s.collate_data(
            "SELECT snap_id FROM SnapIds",
            "SELECT l_userid FROM LoggedIn", "RC",
        )
        intervals = s.collate_data_into_intervals(
            "SELECT snap_id FROM SnapIds",
            "SELECT l_userid FROM LoggedIn", "RI",
        )
        assert intervals.result_rows < collate.result_rows


class TestPersistentResults:
    def test_persistent_result_is_snapshotable(self, paper_session):
        s = paper_session
        s.collate_data(
            "SELECT snap_id FROM SnapIds",
            "SELECT l_userid FROM LoggedIn", "Persisted", persistent=True,
        )
        before = s.execute('SELECT COUNT(*) FROM "Persisted"').scalar()
        sid = s.declare_snapshot()
        s.execute('DELETE FROM "Persisted"')
        assert s.execute(
            f'SELECT AS OF {sid} COUNT(*) FROM "Persisted"'
        ).scalar() == before
