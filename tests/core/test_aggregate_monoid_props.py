"""Monoid / merge properties for every registered aggregate.

The parallel executor's correctness rests on ``merge(fold(A), fold(B))
== fold(A + B)`` for each aggregate (paper Section 2.3's abelian-monoid
requirement), plus the stored-row merge helpers mirroring exactly what
the serial probe pass (``TableAggregateSchema.apply``) would have
produced. Hypothesis drives every registered factory — including AVG's
hidden ``(__avg_sum, __avg_cnt)`` helper pair.

Generated numbers are dyadic rationals (ints and halves) well below
2^53 so float arithmetic is exact and equality can be checked
bit-for-bit, matching the differential harness's reasoning.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregates import (
    _FACTORIES,
    MONOID_AGGREGATES,
    binary_op,
    identity_element,
    make_cross_snapshot_aggregate,
    merge_avg_stored,
    merge_stored_value,
)
from repro.core.mechanisms import TableAggregateSchema

values = st.one_of(
    st.none(),
    st.integers(min_value=-100, max_value=100),
    st.integers(min_value=-200, max_value=200).map(lambda x: x / 2),
)
value_lists = st.lists(values, max_size=12)

SETTINGS = settings(max_examples=200, deadline=None)


def _eq(a, b):
    if a is None or b is None:
        return a is None and b is None
    return a == b and type(a) is type(b)


def _fold(name, items):
    state = make_cross_snapshot_aggregate(name)
    for item in items:
        state.absorb(item)
    return state


@pytest.mark.parametrize("name", sorted(_FACTORIES))
@SETTINGS
@given(left=value_lists, right=value_lists)
def test_merge_of_partial_folds_equals_single_fold(name, left, right):
    merged = _fold(name, left)
    merged.merge(_fold(name, right))
    whole = _fold(name, left + right)
    assert _eq(merged.result(), whole.result())


@pytest.mark.parametrize("name", MONOID_AGGREGATES)
@SETTINGS
@given(a=values, b=values, c=values)
def test_binary_op_is_associative(name, a, b, c):
    if name == "count":
        a, b, c = (x is not None and 1 or 0 for x in (a, b, c))
    op = binary_op(name)
    assert _eq(op(op(a, b), c), op(a, op(b, c)))


@pytest.mark.parametrize("name", MONOID_AGGREGATES)
@SETTINGS
@given(a=values)
def test_identity_element_is_neutral(name, a):
    if name == "count":
        a = 1 if a is not None else 0
    op = binary_op(name)
    e = identity_element(name)
    assert _eq(op(e, a), a)
    assert _eq(op(a, e), a)


def _schema(func):
    schema = TableAggregateSchema([("v", func)])
    schema.bind(["g", "v"])
    return schema


def _serial_stored(schema, items):
    """Stored group row after the serial first-insert + probe passes."""
    stored = schema.widen(("k", items[0]))
    for item in items[1:]:
        updated = schema.apply(stored, ("k", item))
        if updated is not None:
            stored = updated
    return stored


@pytest.mark.parametrize("func", MONOID_AGGREGATES)
@SETTINGS
@given(left=st.lists(values, min_size=1, max_size=10),
       right=st.lists(values, min_size=1, max_size=10))
def test_merge_stored_value_matches_serial_probe_fold(func, left, right):
    schema = _schema(func)
    position = schema.agg_specs[0][0]
    earlier = _serial_stored(schema, left)[position]
    later = _serial_stored(schema, right)[position]
    serial = _serial_stored(schema, left + right)[position]
    assert _eq(merge_stored_value(func, earlier, later), serial)


@SETTINGS
@given(left=st.lists(values, min_size=1, max_size=10),
       right=st.lists(values, min_size=1, max_size=10))
def test_merge_avg_stored_matches_serial_probe_fold(left, right):
    schema = _schema("avg")
    position, _, sum_pos, cnt_pos = schema.agg_specs[0]
    a = _serial_stored(schema, left)
    b = _serial_stored(schema, right)
    serial = _serial_stored(schema, left + right)
    merged = merge_avg_stored(a[position], a[sum_pos], a[cnt_pos],
                              b[position], b[sum_pos], b[cnt_pos])
    assert _eq(merged[0], serial[position])
    assert _eq(merged[1], serial[sum_pos])
    assert _eq(merged[2], serial[cnt_pos])


def test_merge_stored_value_rejects_avg():
    with pytest.raises(Exception, match="stored-value merge"):
        merge_stored_value("avg", 1, 2)
