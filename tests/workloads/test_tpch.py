"""TPC-H generator, refresh, and snapshot-history driver tests."""

import pytest

from repro.core import RQLSession
from repro.errors import WorkloadError
from repro.workloads import (
    SnapshotHistoryBuilder,
    UW15,
    UW30,
    UW60,
    UW7_5,
    WORKLOADS,
    UpdateWorkload,
)
from repro.workloads.tpch import GeneratorConfig, TpchGenerator


class TestGenerator:
    def test_determinism(self):
        g1 = TpchGenerator(GeneratorConfig(scale_factor=0.0005, seed=3))
        g2 = TpchGenerator(GeneratorConfig(scale_factor=0.0005, seed=3))
        assert list(g1.part_rows()) == list(g2.part_rows())
        o1, l1 = g1.order_with_lines(1)
        o2, l2 = g2.order_with_lines(1)
        assert o1 == o2 and l1 == l2

    def test_different_seeds_differ(self):
        g1 = TpchGenerator(GeneratorConfig(scale_factor=0.0005, seed=3))
        g2 = TpchGenerator(GeneratorConfig(scale_factor=0.0005, seed=4))
        assert list(g1.part_rows()) != list(g2.part_rows())

    def test_cardinalities_scale(self):
        g = TpchGenerator(GeneratorConfig(scale_factor=0.001))
        assert g.orders_count == 1500
        assert g.part_count == 200
        assert g.customer_count == 150

    def test_order_status_consistent_with_lines(self):
        g = TpchGenerator(GeneratorConfig(scale_factor=0.0005, seed=9))
        for orderkey in range(1, 40):
            order, lines = g.order_with_lines(orderkey)
            statuses = {line[9] for line in lines}
            if statuses == {"O"}:
                assert order[2] == "O"
            elif statuses == {"F"}:
                assert order[2] == "F"
            else:
                assert order[2] == "P"

    def test_p_type_domain(self):
        from repro.workloads.tpch.text import TYPE_S1, TYPE_S2, TYPE_S3

        g = TpchGenerator(GeneratorConfig(scale_factor=0.0005, seed=1))
        for row in g.part_rows():
            s1, s2, s3 = row[4].split(" ", 2)
            assert s1 in TYPE_S1 and s2 in TYPE_S2 and s3 in TYPE_S3


class TestLoadedDatabase:
    def test_loaded_counts(self, tpch_small):
        session, builder, _ = tpch_small
        gen = builder.generator
        assert session.execute(
            "SELECT COUNT(*) FROM orders").scalar() == gen.orders_count
        assert session.execute(
            "SELECT COUNT(*) FROM part").scalar() == gen.part_count
        lineitems = session.execute(
            "SELECT COUNT(*) FROM lineitem").scalar()
        assert gen.orders_count <= lineitems <= gen.orders_count * 7

    def test_referential_integrity(self, tpch_small):
        session, _, _ = tpch_small
        orphans = session.execute(
            "SELECT COUNT(*) FROM lineitem l, orders o "
            "WHERE l.l_orderkey = o.o_orderkey"
        ).scalar()
        total = session.execute("SELECT COUNT(*) FROM lineitem").scalar()
        assert orphans == total

    def test_dates_in_range(self, tpch_small):
        session, _, _ = tpch_small
        low = session.execute(
            "SELECT MIN(o_orderdate) FROM orders").scalar()
        high = session.execute(
            "SELECT MAX(o_orderdate) FROM orders").scalar()
        assert low >= "1992-01-01"
        assert high <= "1998-08-02"


class TestWorkloads:
    def test_paper_fractions(self):
        assert UW15.orders_per_snapshot(1_500_000) == 15_000
        assert UW30.orders_per_snapshot(1_500_000) == 30_000
        assert UW7_5.orders_per_snapshot(1_500_000) == 7_500
        assert UW60.orders_per_snapshot(1_500_000) == 60_000

    def test_overwrite_cycles(self):
        assert UW30.overwrite_cycle == 50
        assert UW15.overwrite_cycle == 100
        assert UW7_5.overwrite_cycle == 200
        assert UW60.overwrite_cycle == 25

    def test_registry(self):
        assert set(WORKLOADS) == {"UW7.5", "UW15", "UW30", "UW60"}


class TestHistoryBuilder:
    def test_history_constant_size(self, tpch_small):
        """Delete+insert keeps the orders cardinality constant — the
        paper's 'constant number of orders between declarations'."""
        session, builder, ids = tpch_small
        assert session.execute(
            "SELECT COUNT(*) FROM orders"
        ).scalar() == builder.generator.orders_count
        assert ids == list(range(1, 16))

    def test_snapids_match_retro(self, tpch_small):
        session, _, ids = tpch_small
        assert session.snapids.all_ids() == ids
        assert session.latest_snapshot_id == ids[-1]

    def test_snapshots_show_sliding_window(self, tpch_small):
        """Older snapshots contain older orderkeys (RF2 deletes oldest)."""
        session, _, ids = tpch_small
        first_min = session.execute(
            f"SELECT AS OF {ids[0]} MIN(o_orderkey) FROM orders"
        ).scalar()
        last_min = session.execute(
            f"SELECT AS OF {ids[-1]} MIN(o_orderkey) FROM orders"
        ).scalar()
        assert first_min < last_min

    def test_diff_scales_with_workload(self, tpch_small):
        """UW30's diff(S1,S2) should be roughly 2x UW15's (paper §4).

        Compared across two separately built histories at equal scale.
        """
        diffs = {}
        for workload in (UW15, UW30):
            rql = RQLSession()
            builder = SnapshotHistoryBuilder(rql, scale_factor=0.001,
                                             seed=11)
            builder.load_initial()
            builder.build_history(workload, 8)
            retro = rql.db.engine.retro
            diffs[workload.name] = sum(
                retro.diff_size(i, i + 1) for i in range(3, 7)
            ) / 4
        ratio = diffs["UW30"] / diffs["UW15"]
        assert 1.3 < ratio < 3.0, diffs

    def test_load_twice_rejected(self, tpch_small):
        _, builder, _ = tpch_small
        with pytest.raises(WorkloadError):
            builder.load_initial()

    def test_build_before_load_rejected(self, session):
        builder = SnapshotHistoryBuilder(session, scale_factor=0.001)
        with pytest.raises(WorkloadError):
            builder.build_history(UW30, 1)

    def test_custom_workload(self):
        custom = UpdateWorkload("UWx", 0.05)
        assert custom.overwrite_cycle == 20
        assert custom.orders_per_snapshot(1000) == 50
