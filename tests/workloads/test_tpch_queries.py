"""TPC-H queries Q1/Q3/Q6 over the simulated database, current and
retrospective."""

import pytest

from repro.workloads.tpch.queries import (
    Q1_PRICING_SUMMARY,
    q3,
    q6,
    retrospective,
)


class TestQ1:
    def test_runs_and_groups(self, tpch_small):
        session, _, _ = tpch_small
        result = session.execute(Q1_PRICING_SUMMARY)
        assert result.columns[:2] == ["l_returnflag", "l_linestatus"]
        flags = {(r[0], r[1]) for r in result.rows}
        assert 1 <= len(flags) <= 6
        # Aggregation sanity: counts sum to the filtered row count.
        total = session.execute(
            "SELECT COUNT(*) FROM lineitem "
            "WHERE l_shipdate <= '1998-09-02'"
        ).scalar()
        assert sum(r[-1] for r in result.rows) == total

    def test_disc_price_below_base_price(self, tpch_small):
        session, _, _ = tpch_small
        for row in session.execute(Q1_PRICING_SUMMARY).rows:
            assert row[4] <= row[3] + 1e-6  # sum_disc_price <= sum_base


class TestQ3:
    def test_runs_with_join(self, tpch_small):
        session, _, _ = tpch_small
        result = session.execute(q3(segment="BUILDING"))
        assert result.columns[0] == "o_orderkey"
        assert len(result.rows) <= 10
        revenues = [r[1] for r in result.rows]
        assert revenues == sorted(revenues, reverse=True)

    def test_segment_filters(self, tpch_small):
        session, _, _ = tpch_small
        building = session.execute(q3(segment="BUILDING")).rows
        machinery = session.execute(q3(segment="MACHINERY")).rows
        assert {r[0] for r in building}.isdisjoint(
            {r[0] for r in machinery}) or building != machinery


class TestQ6:
    def test_runs(self, tpch_small):
        session, _, _ = tpch_small
        revenue = session.execute(q6()).scalar()
        assert revenue is None or revenue >= 0

    def test_wider_filter_more_revenue(self, tpch_small):
        session, _, _ = tpch_small
        narrow = session.execute(q6(quantity=10)).scalar() or 0
        wide = session.execute(q6(quantity=50)).scalar() or 0
        assert wide >= narrow


class TestRetrospective:
    def test_q6_as_of_differs_from_current(self, tpch_small):
        session, _, ids = tpch_small
        old = session.execute(retrospective(q6(quantity=50),
                                            ids[0])).scalar() or 0
        now = session.execute(q6(quantity=50)).scalar() or 0
        # The refresh workload changed lineitem contents between the
        # first snapshot and now; revenues should not be identical.
        assert old != pytest.approx(now) or old == 0

    def test_q1_as_of_counts(self, tpch_small):
        session, _, ids = tpch_small
        result = session.execute(retrospective(Q1_PRICING_SUMMARY,
                                               ids[0]))
        total = sum(r[-1] for r in result.rows)
        expected = session.execute(
            f"SELECT AS OF {ids[0]} COUNT(*) FROM lineitem "
            "WHERE l_shipdate <= '1998-09-02'"
        ).scalar()
        assert total == expected

    def test_q1_as_rql_qq(self, tpch_small):
        """Q6 as an RQL Qq: revenue per snapshot via CollateData."""
        session, _, ids = tpch_small
        qq = ("SELECT current_snapshot() AS sid, "
              "SUM(l_extendedprice * l_discount) AS revenue "
              "FROM lineitem WHERE l_quantity < 50")
        session.collate_data(
            f"SELECT snap_id FROM SnapIds WHERE snap_id <= {ids[4]}",
            qq, "Q6History",
        )
        rows = session.execute(
            'SELECT * FROM "Q6History" ORDER BY sid').rows
        assert [r[0] for r in rows] == ids[:5]
        assert all(r[1] is None or r[1] > 0 for r in rows)
