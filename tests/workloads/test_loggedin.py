"""LoggedIn example + simulator tests."""

from repro.core import RQLSession
from repro.workloads import LoggedInSimulator, setup_paper_example
from repro.workloads.loggedin import PAPER_SNAPSHOTS


class TestPaperSetup:
    def test_snapshot_ids(self, session):
        assert setup_paper_example(session) == [1, 2, 3]

    def test_snapids_timestamps_match_figure2(self, paper_session):
        rows = paper_session.execute(
            "SELECT snap_ts FROM SnapIds ORDER BY snap_id").rows
        assert [r[0] for r in rows] == [ts for ts, _ in PAPER_SNAPSHOTS]

    def test_current_state_after_setup(self, paper_session):
        users = sorted(r[0] for r in paper_session.execute(
            "SELECT l_userid FROM LoggedIn").rows)
        assert users == ["UserB", "UserC", "UserD"]


class TestSimulator:
    def test_online_set_matches_table(self, session):
        sim = LoggedInSimulator(session, users=20, seed=9)
        for _ in range(5):
            sim.churn_and_snapshot(logins=6, logouts=3)
        table_users = sorted(r[0] for r in session.execute(
            "SELECT l_userid FROM LoggedIn").rows)
        assert table_users == sorted(sim.online_users)

    def test_snapshots_capture_progression(self, session):
        sim = LoggedInSimulator(session, users=20, seed=9)
        sizes = []
        for _ in range(4):
            sim.churn_and_snapshot(logins=5, logouts=2)
            sizes.append(len(sim.online_users))
        for sid, expected in enumerate(sizes, start=1):
            got = session.execute(
                f"SELECT AS OF {sid} COUNT(*) FROM LoggedIn").scalar()
            assert got == expected

    def test_determinism(self):
        snapshots_a = []
        snapshots_b = []
        for sink in (snapshots_a, snapshots_b):
            rql = RQLSession()
            sim = LoggedInSimulator(rql, users=15, seed=33)
            for _ in range(3):
                sim.churn_and_snapshot(logins=4, logouts=2)
            sink.append(sorted(rql.execute(
                "SELECT l_userid, l_time FROM LoggedIn").rows))
        assert snapshots_a == snapshots_b

    def test_named_snapshot(self, session):
        sim = LoggedInSimulator(session, users=10, seed=2)
        sid = sim.churn_and_snapshot(logins=3, logouts=0, name="tagged")
        assert session.snapids.id_for_name("tagged") == sid

    def test_logout_cap(self, session):
        """More logouts than online users never goes negative."""
        sim = LoggedInSimulator(session, users=5, seed=4)
        sim.churn_and_snapshot(logins=2, logouts=0)
        sim.churn_and_snapshot(logins=0, logouts=50)
        assert len(sim.online_users) == 0
        assert session.execute(
            "SELECT COUNT(*) FROM LoggedIn").scalar() == 0
