"""RQL: the paper's contribution — mechanisms, rewrite, SnapIds, session."""

from repro.core.aggregates import (
    CrossSnapshotAggregate,
    binary_op,
    identity_element,
    make_cross_snapshot_aggregate,
    merge_avg_stored,
    merge_stored_value,
    parse_col_func_pairs,
)
from repro.core.mechanisms import (
    RQLResult,
    aggregate_data_in_table,
    aggregate_data_in_variable,
    collate_data,
    collate_data_into_intervals,
)
from repro.core.parallel import (
    ParallelExecutor,
    ParallelRunInfo,
    partition_snapshots,
)
from repro.core.rewrite import rewrite_qq, validate_qs, wrap_qs
from repro.core.sortmerge import (
    SortMergeAggregateDataInTableRun,
    sort_merge_aggregate_data_in_table,
)
from repro.core.session import RQLSession
from repro.core.snapids import SNAPIDS_TABLE, SnapIds

__all__ = [
    "CrossSnapshotAggregate",
    "ParallelExecutor",
    "ParallelRunInfo",
    "RQLResult",
    "RQLSession",
    "SNAPIDS_TABLE",
    "SortMergeAggregateDataInTableRun",
    "sort_merge_aggregate_data_in_table",
    "SnapIds",
    "aggregate_data_in_table",
    "aggregate_data_in_variable",
    "binary_op",
    "collate_data",
    "collate_data_into_intervals",
    "identity_element",
    "make_cross_snapshot_aggregate",
    "merge_avg_stored",
    "merge_stored_value",
    "parse_col_func_pairs",
    "partition_snapshots",
    "rewrite_qq",
    "validate_qs",
    "wrap_qs",
]
