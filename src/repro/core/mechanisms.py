"""The four RQL mechanisms (paper Section 2), implemented as loop bodies
over the snapshot set (paper Section 3).

Every mechanism iterates the snapshot ids returned by Qs, and per
iteration:

1. rewrites Qq — ``AS OF sid`` injection + ``current_snapshot()``
   inlining (:mod:`repro.core.rewrite`);
2. runs the rewritten Qq through the engine's row-callback interface
   (the ``sqlite3_exec`` analogue), processing each returned record in a
   mechanism-specific way;
3. meters its costs into a :class:`~repro.retro.metrics.MetricsSink`,
   splitting *query evaluation* (Qq execution) from *RQL UDF* work
   (result-table inserts, index probes, aggregate updates) exactly as
   the paper's figures break them down.

Result tables default to the non-snapshotable aux database (the paper's
"temporary non-snapshotable table"); ``persistent=True`` places them in
the snapshotable main database instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import MechanismError, QueryCancelled
from repro.core.aggregates import (
    CrossSnapshotAggregate,
    make_cross_snapshot_aggregate,
    parse_col_func_pairs,
)
from repro.core.rewrite import rewrite_qq, validate_qs
from repro.retro.metrics import MetricsSink
from repro.sql.database import Database
from repro.sql.executor import TableAccess, TableWriter
from repro.sql.types import SqlValue, compare


@dataclass
class RQLResult:
    """Outcome of one RQL mechanism run."""

    table: str
    snapshots: List[int]
    metrics: MetricsSink
    result_rows: int = 0
    result_table_bytes: int = 0
    result_index_bytes: int = 0
    #: visible result columns (hidden AVG helper columns excluded)
    columns: List[str] = field(default_factory=list)
    #: :class:`repro.core.parallel.ParallelRunInfo` when the run used the
    #: parallel executor; None for serial runs
    parallel: Optional[object] = None

    @property
    def iterations(self) -> int:
        return len(self.snapshots)


def _quote(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


class _LoopBody:
    """Common driver: Qs evaluation, iteration metering, result stats."""

    #: set by subclasses that create an index on the result table
    index_name: Optional[str] = None

    def __init__(self, db: Database, qq: str, table: str,
                 persistent: bool = False,
                 sink: Optional[MetricsSink] = None) -> None:
        self.db = db
        self.qq = qq
        self.table = table
        self.persistent = persistent
        # An injected sink carries its own monotonic clock, making every
        # timing in this run deterministic under test.
        self.sink = sink if sink is not None else MetricsSink()
        self._first_done = False

    # -- public ------------------------------------------------------------

    def run(self, qs: str, cancel: Optional[object] = None) -> RQLResult:
        """Drive the loop body over Qs's snapshot ids.

        ``cancel`` (an object with ``is_set()``, e.g. threading.Event)
        is polled between iterations: the server's scheduler sets it
        when a client disconnects mid-query, and the run stops at the
        next snapshot boundary with :class:`QueryCancelled`.
        """
        validate_qs(qs)
        snapshot_ids = [int(row[0]) for row in self.db.execute(qs).rows]
        previous = self.db.metrics
        self.db.attach_metrics(self.sink)
        try:
            for snapshot_id in snapshot_ids:
                if cancel is not None and cancel.is_set():
                    raise QueryCancelled(
                        f"query over {self.table!r} cancelled before "
                        f"snapshot {snapshot_id}"
                    )
                self.iteration(snapshot_id)
            self.finalize()
        finally:
            self.db.attach_metrics(previous)
        return self._build_result(snapshot_ids)

    def iteration(self, snapshot_id: int) -> None:
        """One loop-body invocation (also the UDF entry point)."""
        self.sink.begin_iteration(snapshot_id)
        try:
            self._iteration(snapshot_id, first=not self._first_done)
            self._first_done = True
        finally:
            self.sink.end_iteration()

    def finalize(self) -> None:
        """Post-loop work (only AggregateDataInVariable needs any)."""

    # -- subclass protocol ------------------------------------------------------

    def _iteration(self, snapshot_id: int, first: bool) -> None:
        raise NotImplementedError

    def visible_columns(self, all_columns: List[str]) -> List[str]:
        return [c for c in all_columns if not c.startswith("__")]

    # -- helpers -----------------------------------------------------------------

    def _create_result_table(self, columns: Sequence[str]) -> None:
        temp = "" if self.persistent else "TEMP "
        cols = ", ".join(_quote(c) for c in columns)
        self.db.execute(
            f"CREATE {temp}TABLE {_quote(self.table)} ({cols})"
        )

    def _run_qq(self, snapshot_id: int, on_row,
                need_columns: bool = False) -> Optional[List[str]]:
        """Run rewritten Qq, timing Qq evaluation vs callback (UDF) work.

        Returns the Qq output column names when ``need_columns``.
        """
        rewritten = rewrite_qq(self.qq, snapshot_id)
        clock = self.sink.clock
        current = self.sink.current
        index_before = current.index_creation_seconds
        started = clock()
        udf_seconds = 0.0
        columns, rows = self.db.execute_cursor(rewritten)
        for row in rows:
            current.qq_rows += 1
            cb_start = clock()
            on_row(row)
            udf_seconds += clock() - cb_start
        total = clock() - started
        # Auto covering-index builds inside Qq are metered separately
        # (index_creation); keep them out of query evaluation.
        index_delta = current.index_creation_seconds - index_before
        current.udf_seconds += udf_seconds
        current.query_eval_seconds += max(
            total - udf_seconds - index_delta, 0.0,
        )
        return columns if need_columns else None

    def _timed_udf(self, seconds: float) -> None:
        self.sink.current.udf_seconds += seconds

    def _build_result(self, snapshot_ids: List[int]) -> RQLResult:
        result = RQLResult(
            table=self.table, snapshots=snapshot_ids, metrics=self.sink,
        )
        stats = _result_table_stats(self.db, self.table, self.index_name)
        if stats is not None:
            (result.result_rows, result.result_table_bytes,
             result.result_index_bytes, all_columns) = stats
            result.columns = self.visible_columns(all_columns)
        return result


def _result_table_stats(db: Database, table: str,
                        index_name: Optional[str]):
    """(rows, table_bytes, index_bytes, columns) for a result table."""
    from repro.sql.catalog import Catalog
    from repro.storage.btree import BTree

    for engine in (db.aux_engine, db.engine):
        read_ctx = engine.begin_read()
        try:
            source = engine.read_source(read_ctx)
            catalog = Catalog(source, engine.pager.get_root("catalog"))
            info = catalog.get_table(table)
            if info is None:
                continue
            tree = BTree(source, info.root_id)
            rows = tree.count()
            table_bytes = len(tree.page_ids()) * engine.page_size
            index_bytes = 0
            if index_name is not None:
                index_info = catalog.get_index(index_name)
                if index_info is not None:
                    index_tree = BTree(source, index_info.root_id)
                    index_bytes = (len(index_tree.page_ids())
                                   * engine.page_size)
            return rows, table_bytes, index_bytes, info.column_names()
        finally:
            read_ctx.close()
    return None


# ---------------------------------------------------------------------------
# Collate Data
# ---------------------------------------------------------------------------

class CollateDataRun(_LoopBody):
    """Collect Qq records from every snapshot into one table.

    First iteration: ``CREATE TABLE T AS Qq`` (within the snapshot);
    subsequent: ``INSERT INTO T Qq``.  The result table has no primary
    key and no index — Figure 12's cheap-insert explanation.
    """

    def _iteration(self, snapshot_id: int, first: bool) -> None:
        with self.db.transaction():
            rewritten = rewrite_qq(self.qq, snapshot_id)
            clock = self.sink.clock
            current = self.sink.current
            index_before = current.index_creation_seconds
            started = clock()
            columns, rows = self.db.execute_cursor(rewritten)
            if first:
                self._create_result_table(columns)
            _, writer = self.db.table_writer(self.table)
            udf_seconds = 0.0
            for row in rows:
                current.qq_rows += 1
                cb = clock()
                writer.insert(row)
                udf_seconds += clock() - cb
            total = clock() - started
            index_delta = current.index_creation_seconds - index_before
            current.udf_seconds += udf_seconds
            current.query_eval_seconds += max(
                total - udf_seconds - index_delta, 0.0,
            )


# ---------------------------------------------------------------------------
# Aggregate Data In Variable
# ---------------------------------------------------------------------------

class AggregateDataInVariableRun(_LoopBody):
    """Fold a single scalar across snapshots with a monoid aggregate.

    Qq must return a single column and at most one row per snapshot (a
    snapshot contributing no rows is skipped).  The folded value lands
    in table T at the end.
    """

    def __init__(self, db: Database, qq: str, table: str, agg_func: str,
                 persistent: bool = False,
                 sink: Optional[MetricsSink] = None) -> None:
        super().__init__(db, qq, table, persistent, sink=sink)
        self.state: CrossSnapshotAggregate = \
            make_cross_snapshot_aggregate(agg_func)
        self._column: Optional[str] = None

    def _iteration(self, snapshot_id: int, first: bool) -> None:
        collected: List[Sequence[SqlValue]] = []
        columns = self._run_qq(snapshot_id, collected.append,
                               need_columns=True)
        assert columns is not None
        if len(columns) != 1:
            raise MechanismError(
                "AggregateDataInVariable requires a single-column Qq"
            )
        if first:
            self._column = columns[0]
        if len(collected) > 1:
            raise MechanismError(
                "AggregateDataInVariable requires Qq to return a single "
                f"row; snapshot {snapshot_id} returned {len(collected)}"
            )
        started = self.sink.clock()
        if collected:
            self.state.absorb(collected[0][0])
        self._timed_udf(self.sink.clock() - started)

    def finalize(self) -> None:
        if self._column is None:
            return
        with self.db.transaction():
            self._create_result_table([self._column])
            _, writer = self.db.table_writer(self.table)
            writer.insert((self.state.result(),))


# ---------------------------------------------------------------------------
# Aggregate Data In Table
# ---------------------------------------------------------------------------

class TableAggregateSchema:
    """Schema binding + per-record fold logic for AggregateDataInTable.

    Shared by the serial index-probe run, the sort-merge ablation
    variant, and the parallel merge phase
    (:mod:`repro.core.parallel`), so all three agree byte-for-byte on
    widened rows and aggregate updates — including the hidden
    ``__avg_sum_i`` / ``__avg_cnt_i`` helper columns.
    """

    def __init__(self, pairs: List[Tuple[str, str]]) -> None:
        self.pairs = pairs
        self.group_positions: List[int] = []
        self.agg_specs: List[Tuple[int, str, Optional[int], Optional[int]]] = []
        self.columns: List[str] = []

    @property
    def bound(self) -> bool:
        return bool(self.columns)

    def bind(self, columns: List[str]) -> None:
        lowered = [c.lower() for c in columns]
        agg_columns = {}
        for column, func in self.pairs:
            if column.lower() not in lowered:
                raise MechanismError(
                    f"aggregation column {column!r} not in Qq output "
                    f"{columns}"
                )
            agg_columns[lowered.index(column.lower())] = func
        self.group_positions = [
            i for i in range(len(columns)) if i not in agg_columns
        ]
        if not self.group_positions:
            raise MechanismError(
                "AggregateDataInTable needs at least one grouping column; "
                "use AggregateDataInVariable for scalar aggregation"
            )
        stored = list(columns)
        self.agg_specs = []
        for position, func in sorted(agg_columns.items()):
            if func == "avg":
                sum_pos = len(stored)
                stored.append(f"__avg_sum_{position}")
                cnt_pos = len(stored)
                stored.append(f"__avg_cnt_{position}")
                self.agg_specs.append((position, func, sum_pos, cnt_pos))
            else:
                self.agg_specs.append((position, func, None, None))
        self.columns = stored

    def widen(self, row: Sequence[SqlValue]) -> Tuple[SqlValue, ...]:
        """Prepare a fresh group row: initialize aggregate columns and
        append hidden AVG helper values.

        COUNT starts at 1 per occurrence (the stored column counts the
        snapshots a group appears in, not the group's first Qq value);
        MIN/MAX/SUM start at the observed value; AVG starts at the value
        with (sum, count) helpers.
        """
        out = list(row)
        for position, func, sum_pos, cnt_pos in self.agg_specs:
            value = row[position]
            if func == "count":
                out[position] = 1 if value is not None else 0
            elif func == "avg":
                out.append(float(value) if value is not None else 0.0)
                out.append(1 if value is not None else 0)
        return tuple(out)

    def apply(self, existing: Sequence[SqlValue],
              row: Sequence[SqlValue]) -> Optional[Tuple[SqlValue, ...]]:
        """Merge one Qq record into the stored group row.

        Returns the new stored row, or None when nothing changed (MAX/
        MIN often don't — the paper's Figure 13 contrast with SUM).
        """
        out = list(existing)
        changed = False
        for position, func, sum_pos, cnt_pos in self.agg_specs:
            new_value = row[position]
            if func == "avg":
                if new_value is None:
                    continue
                out[sum_pos] = (out[sum_pos] or 0.0) + float(new_value)
                out[cnt_pos] = (out[cnt_pos] or 0) + 1
                out[position] = out[sum_pos] / out[cnt_pos]
                changed = True
                continue
            old_value = out[position]
            if new_value is None:
                continue
            if func == "sum":
                out[position] = (0 if old_value is None else old_value) \
                    + new_value
                changed = True
            elif func == "count":
                out[position] = (0 if old_value is None else old_value) + 1
                changed = True
            elif func == "min":
                if old_value is None or compare(new_value, old_value) == -1:
                    out[position] = new_value
                    changed = True
            elif func == "max":
                if old_value is None or compare(new_value, old_value) == 1:
                    out[position] = new_value
                    changed = True
        return tuple(out) if changed else None


class AggregateDataInTableRun(_LoopBody):
    """Across-time GROUP BY (paper Section 2.3).

    Grouping columns are the Qq output columns *not* listed in
    ListOfColFuncPairs.  The first iteration creates T, inserts the Qq
    output, and builds an index on the grouping columns; subsequent
    iterations probe the index per Qq record and update or insert.

    AVG columns keep hidden ``__avg_sum_i`` / ``__avg_cnt_i`` helper
    columns in T (the paper's "simple extension" for the non-monoid
    AVG); the visible column always holds the current average.
    """

    def __init__(self, db: Database, qq: str, table: str, col_func_pairs,
                 persistent: bool = False,
                 sink: Optional[MetricsSink] = None) -> None:
        super().__init__(db, qq, table, persistent, sink=sink)
        self.pairs = parse_col_func_pairs(col_func_pairs)
        self.index_name = f"__rqlidx_{table.lower()}"
        self.schema = TableAggregateSchema(self.pairs)
        self._table_access: Optional[TableAccess] = None
        #: operation counters (Figure 13 contrasts SUM's ~1M updates
        #: with MAX's ~22K)
        self.probes = 0
        self.updates_applied = 0
        self.rows_inserted = 0

    # -- schema binding (delegates kept for the sort-merge subclass) --------

    @property
    def _group_positions(self) -> List[int]:
        return self.schema.group_positions

    @property
    def _agg_specs(self):
        return self.schema.agg_specs

    @property
    def _columns(self) -> List[str]:
        return self.schema.columns

    def _bind_columns(self, columns: List[str]) -> None:
        self.schema.bind(columns)

    def _widen(self, row: Sequence[SqlValue]) -> Tuple[SqlValue, ...]:
        return self.schema.widen(row)

    def _apply_aggregates(self, existing, row):
        return self.schema.apply(existing, row)

    # -- iteration -----------------------------------------------------------

    def _iteration(self, snapshot_id: int, first: bool) -> None:
        with self.db.transaction():
            rewritten = rewrite_qq(self.qq, snapshot_id)
            clock = self.sink.clock
            current = self.sink.current
            index_before = current.index_creation_seconds
            started = clock()
            columns, rows = self.db.execute_cursor(rewritten)
            if first:
                self._bind_columns(columns)
                self._create_result_table(self._columns)
            table, writer = self.db.table_writer(self.table)
            if first:
                udf = self._first_pass(rows, writer)
                # Build the grouping-column index at the end of the
                # first iteration (paper Section 3).  Its cost belongs
                # to the UDF (Figure 12), not to Qq index creation, so
                # neutralize the CREATE INDEX statement's own metering.
                index_cols = ", ".join(
                    _quote(self._columns[p]) for p in self._group_positions
                )
                idx_start = clock()
                self.db.execute(
                    f"CREATE INDEX {_quote(self.index_name)} ON "
                    f"{_quote(self.table)} ({index_cols})"
                )
                udf += clock() - idx_start
                current.index_creation_seconds = index_before
            else:
                udf = self._probe_pass(rows, table, writer)
            total = clock() - started
            index_delta = current.index_creation_seconds - index_before
            current.udf_seconds += udf
            current.query_eval_seconds += max(
                total - udf - index_delta, 0.0,
            )

    def _first_pass(self, rows, writer: TableWriter) -> float:
        clock = self.sink.clock
        current = self.sink.current
        udf = 0.0
        for row in rows:
            current.qq_rows += 1
            cb = clock()
            writer.insert(self._widen(row))
            self.rows_inserted += 1
            udf += clock() - cb
        return udf

    def _probe_pass(self, rows, table: TableAccess,
                    writer: TableWriter) -> float:
        index = next(
            (ix for ix in writer.indexes
             if ix.info.name.lower() == self.index_name.lower()),
            None,
        )
        if index is None:
            raise MechanismError("result-table index vanished")
        clock = self.sink.clock
        current = self.sink.current
        udf = 0.0
        for row in rows:
            current.qq_rows += 1
            cb = clock()
            group_values = [row[p] for p in self._group_positions]
            rowid = next(iter(index.lookup_equal(group_values)), None)
            self.probes += 1
            if rowid is None:
                writer.insert(self._widen(row))
                self.rows_inserted += 1
            else:
                existing = table.get(rowid)
                updated = self._apply_aggregates(existing, row)
                if updated is not None:
                    writer.update(rowid, updated)
                    self.updates_applied += 1
            udf += clock() - cb
        return udf


# ---------------------------------------------------------------------------
# Collate Data Into Intervals
# ---------------------------------------------------------------------------

class CollateDataIntoIntervalsRun(_LoopBody):
    """Compress per-snapshot records into lifetime intervals.

    T holds the Qq columns plus ``start_snapshot`` / ``end_snapshot``.
    A record present in consecutive snapshots extends its interval; a
    gap (record absent then reappearing) opens a new interval — the
    record-lifetime representation of temporal databases (Section 2.4).
    """

    START_COLUMN = "start_snapshot"
    END_COLUMN = "end_snapshot"

    def __init__(self, db: Database, qq: str, table: str,
                 persistent: bool = False,
                 sink: Optional[MetricsSink] = None) -> None:
        super().__init__(db, qq, table, persistent, sink=sink)
        self.index_name = f"__rqlidx_{table.lower()}"
        self._qq_width = 0
        self._previous_snapshot: Optional[int] = None

    def visible_columns(self, all_columns: List[str]) -> List[str]:
        return all_columns

    def _iteration(self, snapshot_id: int, first: bool) -> None:
        with self.db.transaction():
            rewritten = rewrite_qq(self.qq, snapshot_id)
            clock = self.sink.clock
            current = self.sink.current
            index_before = current.index_creation_seconds
            started = clock()
            columns, rows = self.db.execute_cursor(rewritten)
            if first:
                self._qq_width = len(columns)
                self._create_result_table(
                    list(columns) + [self.START_COLUMN, self.END_COLUMN]
                )
            table, writer = self.db.table_writer(self.table)
            udf = 0.0
            if first:
                for row in rows:
                    current.qq_rows += 1
                    cb = clock()
                    writer.insert(tuple(row) + (snapshot_id, snapshot_id))
                    udf += clock() - cb
                index_cols = ", ".join(_quote(c) for c in columns)
                idx_start = clock()
                self.db.execute(
                    f"CREATE INDEX {_quote(self.index_name)} ON "
                    f"{_quote(self.table)} ({index_cols})"
                )
                udf += clock() - idx_start
                current.index_creation_seconds = index_before
            else:
                udf = self._extend_pass(rows, table, writer, snapshot_id)
            total = clock() - started
            index_delta = current.index_creation_seconds - index_before
            current.udf_seconds += udf
            current.query_eval_seconds += max(
                total - udf - index_delta, 0.0,
            )
        self._previous_snapshot = snapshot_id

    def _extend_pass(self, rows, table: TableAccess, writer: TableWriter,
                     snapshot_id: int) -> float:
        index = next(
            (ix for ix in writer.indexes
             if ix.info.name.lower() == self.index_name.lower()),
            None,
        )
        if index is None:
            raise MechanismError("result-table index vanished")
        end_position = self._qq_width + 1
        previous = self._previous_snapshot
        clock = self.sink.clock
        current = self.sink.current
        udf = 0.0
        for row in rows:
            current.qq_rows += 1
            cb = clock()
            values = list(row)
            extended = False
            for rowid in index.lookup_equal(values):
                stored = table.get(rowid)
                if stored is not None and stored[end_position] == previous:
                    new_row = list(stored)
                    new_row[end_position] = snapshot_id
                    writer.update(rowid, tuple(new_row))
                    extended = True
                    break
            if not extended:
                writer.insert(tuple(values) + (snapshot_id, snapshot_id))
            udf += clock() - cb
        return udf


# ---------------------------------------------------------------------------
# Convenience entry points (the paper's Section 2 call forms)
# ---------------------------------------------------------------------------

def collate_data(db: Database, qs: str, qq: str, table: str,
                 persistent: bool = False) -> RQLResult:
    """CollateData(Qs, Qq, T)."""
    return CollateDataRun(db, qq, table, persistent).run(qs)


def aggregate_data_in_variable(db: Database, qs: str, qq: str, table: str,
                               agg_func: str,
                               persistent: bool = False) -> RQLResult:
    """AggregateDataInVariable(Qs, Qq, T, AggFunc)."""
    return AggregateDataInVariableRun(
        db, qq, table, agg_func, persistent,
    ).run(qs)


def aggregate_data_in_table(db: Database, qs: str, qq: str, table: str,
                            col_func_pairs,
                            persistent: bool = False) -> RQLResult:
    """AggregateDataInTable(Qs, Qq, T, ListOfColFuncPairs)."""
    return AggregateDataInTableRun(
        db, qq, table, col_func_pairs, persistent,
    ).run(qs)


def collate_data_into_intervals(db: Database, qs: str, qq: str, table: str,
                                persistent: bool = False) -> RQLResult:
    """CollateDataIntoIntervals(Qs, Qq, T)."""
    return CollateDataIntoIntervalsRun(db, qq, table, persistent).run(qs)
