"""Qq rewriting — the RQL loop body's first step (paper Section 3).

For the iteration on snapshot ``Si``, the programmer's Qq::

    SELECT DISTINCT current_snapshot() FROM LoggedIn
    WHERE l_userid = 'UserB';

is rewritten to::

    SELECT AS OF Si DISTINCT Si FROM LoggedIn
    WHERE l_userid = 'UserB';

i.e. (1) ``AS OF Si`` is injected after the first top-level SELECT, and
(2) every ``current_snapshot()`` call becomes the literal ``Si``.  The
rewrite is token-based (not regex) so string literals containing
``select`` or ``current_snapshot`` are never touched.

``wrap_qs`` builds the Section 3 implementation form: the Qs query with
its select list wrapped in the mechanism UDF, e.g.
``SELECT rql_udf(snap_id, ...) FROM SnapIds WHERE ...``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import MechanismError
from repro.sql.lexer import EOF, IDENT, KEYWORD, OPERATOR, Token, tokenize

CURRENT_SNAPSHOT = "current_snapshot"


def rewrite_qq(qq: str, snapshot_id: int) -> str:
    """Bind Qq to one snapshot: inject AS OF, inline current_snapshot()."""
    sql = qq.strip().rstrip(";")
    tokens = tokenize(sql)
    edits: List[Tuple[int, int, str]] = []  # (start, end, replacement)

    select_seen = False
    for position, token in enumerate(tokens):
        if token.kind == EOF:
            break
        if token.kind == KEYWORD and token.value == "SELECT":
            if not select_seen:
                select_seen = True
                if _already_as_of(tokens, position):
                    raise MechanismError(
                        "Qq must not contain AS OF; RQL binds snapshots"
                    )
                end = token.position + len("SELECT")
                edits.append((end, end, f" AS OF {snapshot_id}"))
            continue
        if token.kind == IDENT and \
                str(token.value).lower() == CURRENT_SNAPSHOT:
            call_end = _call_end(tokens, position, sql)
            edits.append((token.position, call_end, str(snapshot_id)))

    if not select_seen:
        raise MechanismError("Qq must be a SELECT statement")

    return _apply_edits(sql, edits)


def references_current_snapshot(qq: str) -> bool:
    """True if Qq calls ``current_snapshot()`` — i.e. its rewritten
    form differs per snapshot even over unchanged tables.  Incremental
    view refresh uses this to tell when identical table contents imply
    identical Qq output across a snapshot range.
    """
    for token in tokenize(qq.strip().rstrip(";")):
        if token.kind == EOF:
            break
        if token.kind == IDENT and \
                str(token.value).lower() == CURRENT_SNAPSHOT:
            return True
    return False


def _already_as_of(tokens: List[Token], select_pos: int) -> bool:
    nxt = tokens[select_pos + 1] if select_pos + 1 < len(tokens) else None
    nxt2 = tokens[select_pos + 2] if select_pos + 2 < len(tokens) else None
    return (nxt is not None and nxt.matches(KEYWORD, "AS")
            and nxt2 is not None and nxt2.matches(KEYWORD, "OF"))


def _call_end(tokens: List[Token], ident_pos: int, sql: str) -> int:
    """End offset of ``current_snapshot()`` (the closing paren)."""
    open_tok = tokens[ident_pos + 1] if ident_pos + 1 < len(tokens) else None
    close_tok = tokens[ident_pos + 2] if ident_pos + 2 < len(tokens) else None
    if open_tok is None or not open_tok.matches(OPERATOR, "(") or \
            close_tok is None or not close_tok.matches(OPERATOR, ")"):
        raise MechanismError(
            "current_snapshot must be called with no arguments"
        )
    return close_tok.position + 1


def _apply_edits(sql: str, edits: List[Tuple[int, int, str]]) -> str:
    out = sql
    for start, end, replacement in sorted(edits, reverse=True):
        out = out[:start] + replacement + out[end:]
    return out


def wrap_qs(qs: str, udf_call: str) -> str:
    """Wrap Qs's (single-column) select list in a UDF invocation.

    ``wrap_qs("SELECT snap_id FROM SnapIds WHERE x", "rql(%s)")`` yields
    ``SELECT rql(snap_id) FROM SnapIds WHERE x`` — the implementation
    syntax of paper Figure 5.  ``udf_call`` must contain one ``%s``.
    """
    sql = qs.strip().rstrip(";")
    tokens = tokenize(sql)
    select_tok = None
    from_tok = None
    depth = 0
    for token in tokens:
        if token.kind == OPERATOR and token.value == "(":
            depth += 1
        elif token.kind == OPERATOR and token.value == ")":
            depth -= 1
        elif token.kind == KEYWORD and depth == 0:
            if token.value == "SELECT" and select_tok is None:
                select_tok = token
            elif token.value == "FROM" and select_tok is not None \
                    and from_tok is None:
                from_tok = token
    if select_tok is None or from_tok is None:
        raise MechanismError("Qs must be a SELECT ... FROM ... query")
    head = sql[:select_tok.position + len("SELECT")]
    select_list = sql[select_tok.position + len("SELECT"):
                      from_tok.position].strip()
    tail = sql[from_tok.position:]
    if "," in select_list:
        raise MechanismError(
            "Qs must return a single snapshot-id column"
        )
    return f"{head} {udf_call % select_list} {tail}"


def validate_qs(qs: str) -> None:
    """Light validation: Qs is a single-column SELECT (no AS OF)."""
    sql = qs.strip().rstrip(";")
    tokens = tokenize(sql)
    first = tokens[0] if tokens else None
    if first is None or not first.matches(KEYWORD, "SELECT"):
        raise MechanismError("Qs must be a SELECT statement")
    if _already_as_of(tokens, 0):
        raise MechanismError("Qs runs on the SnapIds table, not a snapshot")
