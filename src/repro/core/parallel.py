"""Parallel snapshot-set execution (paper Section 7, "parallelize the
computation over the snapshot set").

The serial mechanisms iterate the Qs snapshot ids one by one.  This
module partitions those ids into **contiguous runs**, evaluates each
partition on its own worker thread — each worker owns a private
:class:`~repro.retro.metrics.MetricsSink` and opens private read-only
contexts per iteration, so workers share nothing but the (latched)
buffer pool, snapshot page cache, and SPT cache — and then merges the
per-partition partial results on the calling thread:

* **CollateData** — row-stream concatenation: partial row lists are
  inserted into T in global snapshot order, mirroring the serial
  per-iteration ``INSERT``s.
* **AggregateDataInVariable** — each worker folds a private
  :class:`~repro.core.aggregates.CrossSnapshotAggregate`; partials are
  combined with the abelian-monoid ``merge()`` in partition order.
* **AggregateDataInTable** — each worker simulates the serial
  first/probe passes on an in-memory group table keyed by
  ``encode_key`` of the grouping values (the exact identity the serial
  index probe uses); stored group rows are merged column-wise with
  :func:`~repro.core.aggregates.merge_stored_value` /
  :func:`~repro.core.aggregates.merge_avg_stored`.
* **CollateDataIntoIntervals** — workers build local interval lists;
  the merge stitches a later partition's interval that starts at the
  partition's first snapshot onto the earliest same-key accumulated
  interval ending at the previous partition's last snapshot — exactly
  the extension the serial index probe would have performed across the
  partition boundary.

Contiguous partitioning is what makes the merges this simple: each
worker sees an unbroken prefix-free slice of the iteration order, so
only the two boundary snapshots of adjacent partitions interact — and
it preserves the hot-iteration page sharing the paper measures, since
consecutive snapshots share most Pagelog slots.

Each entry point first obtains an rqlint **merge certificate**
(:func:`repro.analysis.query.mergeclass.certify_mechanism`, or a
pre-built one via the ``certificate`` kwarg) and selects its merge
implementation *by the certified merge class*: ``concat``, ``monoid``,
``stored-row`` or ``interval-stitch``.  A ``serial-only`` verdict — a
non-monoid aggregate, a non-mergeable column function, a stateful
builtin in the Qq — has no merge implementation to dispatch to and is
refused with :class:`~repro.errors.MechanismError` carrying the RQL1NN
diagnostics, instead of being silently merged wrong.

Equivalence with the serial mechanisms is proven by the differential
harness in ``tests/core/test_parallel_equivalence.py``; certificate
consumption (including refusal on stripped/forged certificates) by
``tests/core/test_parallel_certificates.py``.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.aggregates import (
    CrossSnapshotAggregate,
    make_cross_snapshot_aggregate,
    merge_avg_stored,
    merge_stored_value,
    parse_col_func_pairs,
)
from repro.core.mechanisms import (
    CollateDataIntoIntervalsRun,
    RQLResult,
    TableAggregateSchema,
    _quote,
    _result_table_stats,
)
from repro.core.rewrite import rewrite_qq, validate_qs
from repro.errors import MechanismError, QueryCancelled
from repro.retro.metrics import MetricsSink
from repro.sql.database import Database
from repro.sql.types import SqlValue
from repro.storage.record import encode_key


def partition_snapshots(snapshot_ids: Sequence[int],
                        workers: int) -> List[List[int]]:
    """Split ``snapshot_ids`` into at most ``workers`` contiguous runs.

    Sizes differ by at most one, earlier partitions taking the extra
    element; iteration order within and across partitions is preserved.
    """
    if workers < 1:
        raise MechanismError("workers must be >= 1")
    count = len(snapshot_ids)
    parts = min(workers, count)
    partitions: List[List[int]] = []
    if parts == 0:
        return partitions
    base, extra = divmod(count, parts)
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        partitions.append(list(snapshot_ids[start:start + size]))
        start += size
    return partitions


@dataclass
class ParallelRunInfo:
    """Telemetry for one parallel run.

    ``worker_eval_seconds`` is captured at join time, before the merge
    phase mutates any sink, so :meth:`makespan_seconds` models the
    wall-clock of truly concurrent workers: the slowest partition's
    evaluation plus the serial merge.
    """

    workers: int
    partitions: List[List[int]] = field(default_factory=list)
    worker_sinks: List[MetricsSink] = field(default_factory=list)
    worker_eval_seconds: List[float] = field(default_factory=list)
    merge_seconds: float = 0.0

    def makespan_seconds(self) -> float:
        return max(self.worker_eval_seconds, default=0.0) \
            + self.merge_seconds


class _Partial:
    """One worker's partition outcome (payload shape is per mechanism)."""

    def __init__(self, index: int, snapshot_ids: List[int],
                 sink: MetricsSink) -> None:
        self.index = index
        self.snapshot_ids = snapshot_ids
        self.sink = sink
        self.payload: object = None


class PoolTicket:
    """Completion handle for one task submitted to a :class:`WorkerPool`.

    ``error`` carries anything the task raised (the pool thread itself
    never dies on a task failure); ``done`` is set exactly once, after
    the task has fully retired.
    """

    __slots__ = ("done", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.error: Optional[BaseException] = None


class WorkerPool:
    """A fixed set of reusable worker threads.

    The multi-session server owns one pool shared by every concurrent
    retrospective query, bounding total worker threads regardless of how
    many clients are connected.  Embedded sessions keep the historical
    thread-per-partition behaviour (no pool).

    Tasks never nest (partition bodies do not submit further tasks), so
    a bounded pool cannot deadlock on its own queue.
    """

    def __init__(self, size: int, name: str = "rql-pool") -> None:
        if size < 1:
            raise MechanismError("worker pool size must be >= 1")
        self.size = size
        self._tasks: "queue.SimpleQueue[Optional[Tuple[Callable[[], None], PoolTicket]]]" = (  # noqa: E501
            queue.SimpleQueue()
        )
        self._latch = threading.Lock()
        self._closed = False
        self._threads = [
            threading.Thread(target=self._drain, name=f"{name}-{i + 1}",
                             daemon=True)
            for i in range(size)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, task: Callable[[], None]) -> PoolTicket:
        """Queue ``task``; it runs as soon as a pool thread frees up."""
        ticket = PoolTicket()
        with self._latch:
            if self._closed:
                raise MechanismError("submit on a closed worker pool")
            self._tasks.put((task, ticket))
        return ticket

    def _drain(self) -> None:
        while True:
            item = self._tasks.get()
            if item is None:
                return
            task, ticket = item
            try:
                task()
            except BaseException as exc:  # replint: taxonomy-exempt -- stored on the ticket; the submitter re-raises it
                # Keep the pool thread alive: the submitter re-raises
                # (or records) the error off the ticket.
                ticket.error = exc
            finally:
                ticket.done.set()

    def close(self) -> None:
        """Idempotent: stop accepting tasks, drain, join every thread."""
        with self._latch:
            if self._closed:
                return
            self._closed = True
            for _ in self._threads:
                self._tasks.put(None)
        for thread in self._threads:
            thread.join()

    @property
    def closed(self) -> bool:
        with self._latch:
            return self._closed


class _CancelScope:
    """The run's internal error-cancel joined with an external event.

    Workers poll ``is_set()`` between iterations; an externally supplied
    event (client disconnect, server shutdown) cancels the run without
    being confused with a worker error.
    """

    __slots__ = ("_local", "_external")

    def __init__(self, external: Optional[threading.Event] = None) -> None:
        self._local = threading.Event()
        self._external = external

    def set(self) -> None:
        self._local.set()

    def is_set(self) -> bool:
        if self._local.is_set():
            return True
        return self._external is not None and self._external.is_set()

    @property
    def cancelled_externally(self) -> bool:
        return self._external is not None and self._external.is_set()


class _ErrorBoard:
    """First-in-partition-order error, shared across worker threads."""

    def __init__(self, partitions: int) -> None:
        self._latch = threading.Lock()
        self._index = partitions
        self._error: Optional[BaseException] = None

    def record(self, index: int, error: BaseException) -> None:
        with self._latch:
            if index < self._index:
                self._index = index
                self._error = error

    def first_error(self) -> Optional[BaseException]:
        with self._latch:
            return self._error


class ParallelExecutor:
    """Runs one RQL mechanism over contiguous snapshot partitions.

    The executor never runs while a write transaction is open: workers
    read through private read contexts (main + aux), which is only safe
    when no writer can move the committed roots underneath them.
    """

    def __init__(self, db: Database, workers: int = 2,
                 charges=None, clock: Optional[Callable[[], float]] = None,
                 pool: Optional[WorkerPool] = None,
                 cancel: Optional[threading.Event] = None,
                 ) -> None:
        if workers < 1:
            raise MechanismError("workers must be >= 1")
        self.db = db
        self.workers = workers
        self._charges = charges
        self._clock = clock if clock is not None else time.perf_counter
        #: shared worker pool (server mode); None = thread per partition
        self._pool = pool
        #: external cancel event (client disconnect / server shutdown)
        self._cancel = cancel
        #: telemetry of the most recent run (also on ``RQLResult.parallel``)
        self.last_run: Optional[ParallelRunInfo] = None

    # -- certification ------------------------------------------------------

    def certify(self, mechanism: str, qs: str, qq: str, arg=None):
        """rqlint certificate for one invocation, against the live catalog.

        Imported lazily: certification is an analysis-layer concern and
        ``import repro.core`` must not drag the lint machinery in.
        """
        from repro.analysis.query.mergeclass import certify_mechanism
        from repro.sql.semantic import CatalogSchema
        return certify_mechanism(mechanism, qs, qq, arg=arg,
                                 schema=CatalogSchema(self.db))

    def _admit(self, mechanism: str, qs: str, qq: str, arg, certificate):
        """Select the merge implementation from the certificate.

        The dispatch is keyed off ``certificate.merge_class`` — not the
        mechanism — so a ``serial-only`` verdict (or a forged/mismatched
        certificate) has no merge to reach and is refused with the
        certificate's diagnostics instead of silently merged wrong.
        """
        from repro.analysis.query.mergeclass import (
            CONCAT,
            INTERVAL_STITCH,
            MECHANISM_CLASSES,
            MONOID,
            STORED_ROW,
        )
        cert = certificate if certificate is not None \
            else self.certify(mechanism, qs, qq, arg)
        expected = MECHANISM_CLASSES[mechanism.replace("_", "").lower()]
        impls = {
            CONCAT: self._merge_concat,
            MONOID: self._merge_monoid,
            STORED_ROW: self._merge_stored_row,
            INTERVAL_STITCH: self._merge_interval_stitch,
        }
        merge = impls.get(cert.merge_class)
        if cert.merge_class != expected or merge is None:
            reasons = "; ".join(
                f"{f.rule}: {f.message}" for f in cert.errors
            ) or (f"certified merge class {cert.merge_class!r}, "
                  f"{mechanism} merges by {expected!r}")
            raise MechanismError(
                f"rqlint refuses parallel execution of {mechanism}: "
                f"{reasons}"
            )
        return merge

    # -- mechanism entry points ---------------------------------------------

    def collate_data(self, qs: str, qq: str, table: str,
                     persistent: bool = False,
                     certificate=None) -> RQLResult:
        """Parallel CollateData(Qs, Qq, T)."""
        self._check_idle()
        merge = self._admit("CollateData", qs, qq, None, certificate)
        snapshot_ids = self._snapshot_ids(qs)
        partitions = partition_snapshots(snapshot_ids, self.workers)

        def eval_partition(index: int, sids: List[int], sink: MetricsSink,
                           cancel: threading.Event) -> list:
            payload = []
            for sid in sids:
                if cancel.is_set():
                    break
                current = sink.begin_iteration(sid)
                try:
                    columns, rows = self._eval_qq(sid, sink, qq, current)
                finally:
                    sink.end_iteration()
                payload.append((sid, columns, rows, current))
            return payload

        partials, info = self._run_partitions(partitions, eval_partition)
        return merge(snapshot_ids, partials, info, table, persistent)

    def _merge_concat(self, snapshot_ids: List[int],
                      partials: List["_Partial"], info: ParallelRunInfo,
                      table: str, persistent: bool) -> RQLResult:
        # Merge: per-snapshot transactions in global order, mirroring the
        # serial per-iteration CREATE/INSERT pattern (and its udf split).
        clock = self._clock
        merge_started = clock()
        first_done = False
        for partial in partials:
            for sid, columns, rows, iteration in partial.payload:
                with self.db.transaction():
                    if not first_done:
                        self._create_result_table(table, columns,
                                                  persistent)
                        first_done = True
                    _, writer = self.db.table_writer(table)
                    insert_started = clock()
                    for row in rows:
                        writer.insert(row)
                    iteration.udf_seconds += clock() - insert_started
        info.merge_seconds = clock() - merge_started
        return self._build_result(snapshot_ids, table, None, info)

    def aggregate_data_in_variable(self, qs: str, qq: str, table: str,
                                   agg_func: str,
                                   persistent: bool = False,
                                   certificate=None) -> RQLResult:
        """Parallel AggregateDataInVariable(Qs, Qq, T, AggFunc)."""
        make_cross_snapshot_aggregate(agg_func)  # validate before threading
        self._check_idle()
        merge = self._admit("AggregateDataInVariable", qs, qq, agg_func,
                            certificate)
        snapshot_ids = self._snapshot_ids(qs)
        partitions = partition_snapshots(snapshot_ids, self.workers)

        def eval_partition(index: int, sids: List[int], sink: MetricsSink,
                           cancel: threading.Event):
            state = make_cross_snapshot_aggregate(agg_func)
            column: Optional[str] = None
            for sid in sids:
                if cancel.is_set():
                    break
                current = sink.begin_iteration(sid)
                try:
                    columns, rows = self._eval_qq(sid, sink, qq, current)
                    if len(columns) != 1:
                        raise MechanismError(
                            "AggregateDataInVariable requires a "
                            "single-column Qq"
                        )
                    if column is None:
                        column = columns[0]
                    if len(rows) > 1:
                        raise MechanismError(
                            "AggregateDataInVariable requires Qq to return "
                            f"a single row; snapshot {sid} returned "
                            f"{len(rows)}"
                        )
                    started = sink.clock()
                    if rows:
                        state.absorb(rows[0][0])
                    current.udf_seconds += sink.clock() - started
                finally:
                    sink.end_iteration()
            return column, state

        partials, info = self._run_partitions(partitions, eval_partition)
        return merge(snapshot_ids, partials, info, table, persistent)

    def _merge_monoid(self, snapshot_ids: List[int],
                      partials: List["_Partial"], info: ParallelRunInfo,
                      table: str, persistent: bool) -> RQLResult:
        clock = self._clock
        merge_started = clock()
        column: Optional[str] = None
        state: Optional[CrossSnapshotAggregate] = None
        for partial in partials:
            part_column, part_state = partial.payload
            if column is None:
                column = part_column
            if state is None:
                state = part_state
            else:
                state.merge(part_state)
        if column is not None and state is not None:
            with self.db.transaction():
                self._create_result_table(table, [column], persistent)
                _, writer = self.db.table_writer(table)
                writer.insert((state.result(),))
        info.merge_seconds = clock() - merge_started
        return self._build_result(snapshot_ids, table, None, info)

    def aggregate_data_in_table(self, qs: str, qq: str, table: str,
                                col_func_pairs,
                                persistent: bool = False,
                                certificate=None) -> RQLResult:
        """Parallel AggregateDataInTable(Qs, Qq, T, ListOfColFuncPairs)."""
        pairs = parse_col_func_pairs(col_func_pairs)
        self._check_idle()
        merge = self._admit("AggregateDataInTable", qs, qq, col_func_pairs,
                            certificate)
        snapshot_ids = self._snapshot_ids(qs)
        partitions = partition_snapshots(snapshot_ids, self.workers)

        def eval_partition(index: int, sids: List[int], sink: MetricsSink,
                           cancel: threading.Event):
            schema = TableAggregateSchema(list(pairs))
            stored: List[Tuple[SqlValue, ...]] = []
            by_key: Dict[bytes, int] = {}
            for n, sid in enumerate(sids):
                if cancel.is_set():
                    break
                current = sink.begin_iteration(sid)
                try:
                    columns, rows = self._eval_qq(sid, sink, qq, current)
                    if not schema.bound:
                        schema.bind(columns)
                    started = sink.clock()
                    if index == 0 and n == 0:
                        # Serial first pass inserts every Qq record
                        # without probing (duplicate group rows possible).
                        for row in rows:
                            key = self._group_key(schema, row)
                            by_key.setdefault(key, len(stored))
                            stored.append(schema.widen(row))
                    else:
                        for row in rows:
                            key = self._group_key(schema, row)
                            at = by_key.get(key)
                            if at is None:
                                by_key[key] = len(stored)
                                stored.append(schema.widen(row))
                            else:
                                updated = schema.apply(stored[at], row)
                                if updated is not None:
                                    stored[at] = updated
                    current.udf_seconds += sink.clock() - started
                finally:
                    sink.end_iteration()
            return schema, stored, by_key

        partials, info = self._run_partitions(partitions, eval_partition)
        return merge(snapshot_ids, partials, info, table, persistent)

    def _merge_stored_row(self, snapshot_ids: List[int],
                          partials: List["_Partial"],
                          info: ParallelRunInfo,
                          table: str, persistent: bool) -> RQLResult:
        index_name = f"__rqlidx_{table.lower()}"
        clock = self._clock
        merge_started = clock()
        schema: Optional[TableAggregateSchema] = None
        acc_rows: List[Tuple[SqlValue, ...]] = []
        acc_by_key: Dict[bytes, int] = {}
        seeded = False
        for partial in partials:
            part_schema, part_rows, part_keys = partial.payload
            if schema is None and part_schema.bound:
                schema = part_schema
            if not seeded:
                # The first partition ran serial first-pass semantics and
                # may legitimately hold duplicate group rows (the serial
                # first iteration inserts without probing) — copy it
                # verbatim rather than merging it against itself.
                acc_rows = list(part_rows)
                acc_by_key = dict(part_keys)
                seeded = True
                continue
            if not part_rows:
                continue
            assert schema is not None
            # Later partitions ran pure probe semantics, so their local
            # tables hold one row per group; merge them row-by-row, each
            # targeting the earliest accumulated row of its group (the
            # row the serial index probe would have updated).
            fold_stored_rows(schema, acc_rows, acc_by_key, part_rows)
        if schema is not None:
            with self.db.transaction():
                self._create_result_table(table, schema.columns, persistent)
                _, writer = self.db.table_writer(table)
                for row in acc_rows:
                    writer.insert(row)
                index_cols = ", ".join(
                    _quote(schema.columns[p])
                    for p in schema.group_positions
                )
                self.db.execute(
                    f"CREATE INDEX {_quote(index_name)} ON "
                    f"{_quote(table)} ({index_cols})"
                )
        info.merge_seconds = clock() - merge_started
        return self._build_result(snapshot_ids, table, index_name, info)

    def collate_data_into_intervals(self, qs: str, qq: str, table: str,
                                    persistent: bool = False,
                                    certificate=None) -> RQLResult:
        """Parallel CollateDataIntoIntervals(Qs, Qq, T)."""
        self._check_idle()
        merge = self._admit("CollateDataIntoIntervals", qs, qq, None,
                            certificate)
        snapshot_ids = self._snapshot_ids(qs)
        partitions = partition_snapshots(snapshot_ids, self.workers)

        def eval_partition(index: int, sids: List[int], sink: MetricsSink,
                           cancel: threading.Event):
            columns: Optional[List[str]] = None
            # interval: [key, values, start, end]; kept in open order,
            # mirroring the serial result table's rowid order.
            intervals: List[list] = []
            by_key: Dict[bytes, List[int]] = {}
            previous: Optional[int] = None
            for sid in sids:
                if cancel.is_set():
                    break
                current = sink.begin_iteration(sid)
                try:
                    qq_columns, rows = self._eval_qq(sid, sink, qq, current)
                    if columns is None:
                        columns = qq_columns
                    started = sink.clock()
                    for row in rows:
                        values = tuple(row)
                        key = encode_key(values)
                        extended = False
                        if previous is not None:
                            for at in by_key.get(key, ()):
                                interval = intervals[at]
                                if interval[3] == previous:
                                    interval[3] = sid
                                    extended = True
                                    break
                        if not extended:
                            by_key.setdefault(key, []).append(
                                len(intervals))
                            intervals.append([key, values, sid, sid])
                    current.udf_seconds += sink.clock() - started
                finally:
                    sink.end_iteration()
                previous = sid
            return columns, intervals

        partials, info = self._run_partitions(partitions, eval_partition)
        return merge(snapshot_ids, partials, info, table, persistent)

    def _merge_interval_stitch(self, snapshot_ids: List[int],
                               partials: List["_Partial"],
                               info: ParallelRunInfo,
                               table: str, persistent: bool) -> RQLResult:
        index_name = f"__rqlidx_{table.lower()}"
        clock = self._clock
        merge_started = clock()
        columns: Optional[List[str]] = None
        acc: List[list] = []
        acc_by_key: Dict[bytes, List[int]] = {}
        global_prev: Optional[int] = None
        for partial in partials:
            part_columns, part_intervals = partial.payload
            if columns is None:
                columns = part_columns
            if not partial.snapshot_ids:
                continue
            fold_intervals(acc, acc_by_key, part_intervals,
                           partial.snapshot_ids[0], global_prev)
            global_prev = partial.snapshot_ids[-1]
        if columns is not None:
            with self.db.transaction():
                self._create_result_table(
                    table,
                    list(columns) + [
                        CollateDataIntoIntervalsRun.START_COLUMN,
                        CollateDataIntoIntervalsRun.END_COLUMN,
                    ],
                    persistent,
                )
                _, writer = self.db.table_writer(table)
                for _key, values, start, end in acc:
                    writer.insert(values + (start, end))
                index_cols = ", ".join(_quote(c) for c in columns)
                self.db.execute(
                    f"CREATE INDEX {_quote(index_name)} ON "
                    f"{_quote(table)} ({index_cols})"
                )
        info.merge_seconds = clock() - merge_started
        # Like the serial run, intervals expose every column (including
        # any ``__``-prefixed Qq output columns).
        return self._build_result(snapshot_ids, table, index_name, info,
                                  hide_helpers=False)

    # -- worker machinery ---------------------------------------------------

    def _snapshot_ids(self, qs: str) -> List[int]:
        validate_qs(qs)
        return [int(row[0]) for row in self.db.execute(qs).rows]

    def _check_idle(self) -> None:
        if self.db._in_explicit_txn or self.db._main.txn is not None \
                or self.db._aux.txn is not None:
            raise MechanismError(
                "parallel execution requires no open write transaction"
            )

    def _new_sink(self, worker: int) -> MetricsSink:
        sink = MetricsSink(self._charges, clock=self._clock)
        sink.worker = worker
        return sink

    def _run_partitions(self, partitions: List[List[int]],
                        eval_partition) -> Tuple[List[_Partial],
                                                 ParallelRunInfo]:
        """Run ``eval_partition(index, sids, sink, cancel)`` per partition
        on worker threads; raises the first partition's error (in
        partition order) after every worker has stopped.

        With a shared :class:`WorkerPool` the partitions are submitted as
        pool tasks (server mode); otherwise each partition gets its own
        short-lived thread.  An external cancel event (client disconnect)
        surfaces as :class:`~repro.errors.QueryCancelled` once every
        worker has retired — never while a worker still runs.
        """
        self._check_idle()
        if self._cancel is not None and self._cancel.is_set():
            raise QueryCancelled("query cancelled before admission")
        partials = [
            _Partial(i, sids, self._new_sink(i + 1))
            for i, sids in enumerate(partitions)
        ]
        board = _ErrorBoard(len(partials))
        cancel = _CancelScope(self._cancel)
        retro = self.db.engine.retro

        def body(partial: _Partial) -> None:
            with retro.route_metrics(partial.sink):
                try:
                    partial.payload = eval_partition(
                        partial.index, partial.snapshot_ids, partial.sink,
                        cancel,
                    )
                except BaseException as exc:
                    board.record(partial.index, exc)  # re-raised after join
                    cancel.set()
                    if not isinstance(exc, Exception):
                        raise  # KeyboardInterrupt etc.: also let
                        # threading.excepthook report it immediately

        if self._pool is not None:
            tickets = [
                self._pool.submit(lambda p=partial: body(p))
                for partial in partials
            ]
            for ticket in tickets:
                ticket.done.wait()
            for ticket in tickets:
                # body() only re-raises non-Exception escapees
                # (KeyboardInterrupt etc.); surface those here too.
                error = ticket.error
                if error is not None:
                    raise error
        else:
            threads = [
                threading.Thread(target=body, args=(partial,),
                                 name=f"rql-worker-{partial.index + 1}")
                for partial in partials
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        error = board.first_error()
        if error is not None:
            raise error
        if cancel.cancelled_externally:
            raise QueryCancelled(
                "query cancelled while partitions were running"
            )
        info = ParallelRunInfo(
            workers=self.workers,
            partitions=partitions,
            worker_sinks=[p.sink for p in partials],
            worker_eval_seconds=[
                p.sink.total_seconds() for p in partials
            ],
        )
        self.last_run = info
        return partials, info

    def _eval_qq(self, snapshot_id: int, sink: MetricsSink, qq: str,
                 current) -> Tuple[List[str], List[tuple]]:
        """Evaluate rewritten Qq as of ``snapshot_id`` through a private
        read-only cursor, metering like the serial ``_run_qq``.
        """
        return eval_qq_at(self.db, qq, snapshot_id, sink, current)

    # -- merge helpers ------------------------------------------------------

    @staticmethod
    def _group_key(schema: TableAggregateSchema,
                   row: Sequence[SqlValue]) -> bytes:
        """The serial probe's group identity: ``encode_key`` of the
        grouping values (so e.g. 1 and 1.0 coalesce, as in the index).
        """
        return encode_key(tuple(row[p] for p in schema.group_positions))

    @staticmethod
    def _merge_stored_rows(schema: TableAggregateSchema,
                           earlier: Sequence[SqlValue],
                           later: Sequence[SqlValue],
                           ) -> Tuple[SqlValue, ...]:
        out = list(earlier)
        for position, func, sum_pos, cnt_pos in schema.agg_specs:
            if func == "avg":
                assert sum_pos is not None and cnt_pos is not None
                (out[position], out[sum_pos],
                 out[cnt_pos]) = merge_avg_stored(
                    earlier[position], earlier[sum_pos], earlier[cnt_pos],
                    later[position], later[sum_pos], later[cnt_pos],
                )
            else:
                out[position] = merge_stored_value(
                    func, earlier[position], later[position],
                )
        return tuple(out)

    def _create_result_table(self, table: str, columns: Sequence[str],
                             persistent: bool) -> None:
        temp = "" if persistent else "TEMP "
        cols = ", ".join(_quote(c) for c in columns)
        self.db.execute(
            f"CREATE {temp}TABLE {_quote(table)} ({cols})"
        )

    def _build_result(self, snapshot_ids: List[int], table: str,
                      index_name: Optional[str], info: ParallelRunInfo,
                      hide_helpers: bool = True) -> RQLResult:
        merged = self._new_sink(0)
        for sink in info.worker_sinks:
            merged.adopt(sink.iterations)
        result = RQLResult(
            table=table, snapshots=snapshot_ids, metrics=merged,
            parallel=info,
        )
        stats = _result_table_stats(self.db, table, index_name)
        if stats is not None:
            (result.result_rows, result.result_table_bytes,
             result.result_index_bytes, all_columns) = stats
            if hide_helpers:
                result.columns = [c for c in all_columns
                                  if not c.startswith("__")]
            else:
                result.columns = list(all_columns)
        return result


# ---------------------------------------------------------------------------
# Delta-fold entry points
#
# The partition merges above are exactly the algebra an incremental
# materialized view needs to fold a refresh delta into its stored
# result: the view's stored state is the "first partition" and the
# newly-declared snapshot range is a single "later partition".  These
# module-level functions expose the later-partition side of the merge
# so :mod:`repro.retro.views` folds through the same code path the
# parallel differential harness proves equivalent to serial execution.
# ---------------------------------------------------------------------------


def eval_qq_at(db: Database, qq: str, snapshot_id: int, sink: MetricsSink,
               current) -> Tuple[List[str], List[tuple]]:
    """Evaluate rewritten Qq as of ``snapshot_id``, metering into
    ``current`` (an open :class:`IterationMetrics`) like the serial
    ``_run_qq`` — shared by the executor workers and view refresh.
    """
    clock = sink.clock
    index_before = current.index_creation_seconds
    started = clock()
    columns, rows = db.execute_readonly_cursor(
        rewrite_qq(qq, snapshot_id), metrics=sink,
    )
    out: List[tuple] = []
    try:
        for row in rows:
            current.qq_rows += 1
            out.append(tuple(row))
    finally:
        rows.close()
    total = clock() - started
    index_delta = current.index_creation_seconds - index_before
    current.query_eval_seconds += max(total - index_delta, 0.0)
    return columns, out


def fold_stored_rows(schema: TableAggregateSchema,
                     acc_rows: List[Tuple[SqlValue, ...]],
                     acc_by_key: Dict[bytes, int],
                     delta_rows: Sequence[Sequence[SqlValue]]) -> None:
    """Fold probe-semantics group rows into a stored-row accumulator.

    Mutates ``acc_rows``/``acc_by_key`` in place; each delta row targets
    the earliest accumulated row of its group — the row the serial
    index probe would have updated.
    """
    for row in delta_rows:
        key = ParallelExecutor._group_key(schema, row)
        at = acc_by_key.get(key)
        if at is None:
            acc_by_key[key] = len(acc_rows)
            acc_rows.append(tuple(row))
        else:
            acc_rows[at] = ParallelExecutor._merge_stored_rows(
                schema, acc_rows[at], row,
            )


def fold_intervals(acc: List[list], acc_by_key: Dict[bytes, List[int]],
                   delta_intervals: Sequence[list],
                   delta_first_sid: int,
                   base_last_sid: Optional[int]) -> None:
    """Stitch a later snapshot range's intervals onto an accumulator.

    A delta interval that starts at the range's first snapshot extends
    the earliest same-key accumulated interval ending at
    ``base_last_sid`` (the snapshot just before the range) — the exact
    extension the serial probe performs across the boundary.  Mutates
    ``acc``/``acc_by_key`` in place.
    """
    for interval in delta_intervals:
        key, values, start, end = interval
        if start == delta_first_sid and base_last_sid is not None:
            stitched = False
            for at in acc_by_key.get(key, ()):
                acc_interval = acc[at]
                if acc_interval[3] == base_last_sid:
                    acc_interval[3] = end
                    stitched = True
                    break
            if stitched:
                continue
        acc_by_key.setdefault(key, []).append(len(acc))
        acc.append([key, values, start, end])
