"""RQLSession: the top-level public API.

Binds an application :class:`~repro.sql.database.Database` (with its
integrated Retro snapshot system) to the SnapIds table and the four RQL
mechanisms.  Both call forms from the paper work:

* the Section 2 declarative form::

      session.collate_data("SELECT snap_id FROM SnapIds",
                           "SELECT DISTINCT l_userid, current_snapshot()"
                           " FROM LoggedIn", "Result")

* the Section 3 UDF form, via plain SQL::

      SELECT CollateData(snap_id,
          'SELECT DISTINCT l_userid, current_snapshot() FROM LoggedIn',
          'Result') FROM SnapIds;
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.core.mechanisms import (
    AggregateDataInTableRun,
    AggregateDataInVariableRun,
    CollateDataIntoIntervalsRun,
    CollateDataRun,
    RQLResult,
)
from repro.core.parallel import ParallelExecutor, WorkerPool
from repro.core.snapids import SnapIds
from repro.errors import MechanismError
from repro.retro.metrics import MetricsSink
from repro.retro.views import RefreshReport, ViewManager
from repro.sql.database import Database
from repro.sql.executor import ResultSet
from repro.storage.disk import SimulatedDisk


class TransactionHandle:
    """Result of a :meth:`RQLSession.transaction` scope.

    ``snapshot_id`` is populated on a successful ``with_snapshot=True``
    exit and stays ``None`` otherwise.
    """

    __slots__ = ("snapshot_id",)

    def __init__(self) -> None:
        self.snapshot_id: Optional[int] = None


class RQLSession:
    """An application database plus RQL machinery."""

    def __init__(self, db: Optional[Database] = None,
                 disk: Optional[SimulatedDisk] = None,
                 page_size: int = 4096,
                 clock: Optional[Callable[[], str]] = None,
                 workers: Optional[int] = None,
                 name: Optional[str] = None,
                 pool: Optional[WorkerPool] = None) -> None:
        self.db = db or Database(disk=disk, page_size=page_size)
        #: registry handle for server-managed sessions (None when embedded)
        self.name = name
        #: shared worker pool (server mode); None = thread per partition
        self.pool = pool
        self.snapids = SnapIds(self.db, clock=clock)
        #: default worker count for the four mechanisms; 1 = serial loop,
        #: >1 = the partition/merge executor (:mod:`repro.core.parallel`).
        #: When the constructor argument is omitted, the RQL_WORKERS
        #: environment variable supplies the default (CI runs the test
        #: suite under RQL_WORKERS=4 to exercise the parallel paths).
        if workers is None:
            workers = int(os.environ.get("RQL_WORKERS", "1"))
        self.workers = self._validate_workers(workers)
        self._udf_runs: Dict[Tuple[str, str, str], object] = {}
        self._register_udfs()
        # Named snapshots inside SQL: SELECT AS OF snapshot_id('tag') ...
        self.db.register_function(
            "snapshot_id", lambda name: self.snapids.id_for_name(str(name)),
        )
        # SQL-surface knob: SELECT rql_workers(4) sets the session
        # default; SELECT rql_workers() reads it back.
        self.db.register_function("rql_workers", self._udf_workers)
        #: incremental materialized retrospective views; also installed
        #: as the Database's view_handler so the CREATE/REFRESH/DROP
        #: MATERIALIZED VIEW statements route here.
        self.views = ViewManager(self)
        self.db.view_handler = self.views

    @staticmethod
    def _validate_workers(workers: int) -> int:
        workers = int(workers)
        if workers < 1:
            raise MechanismError("workers must be >= 1")
        return workers

    def _effective_workers(self, workers: Optional[int]) -> int:
        if workers is None:
            return self.workers
        return self._validate_workers(workers)

    def _udf_workers(self, workers=None):
        if workers is not None:
            self.workers = self._validate_workers(workers)
        return self.workers

    # ------------------------------------------------------------------
    # SQL passthrough + snapshot declaration
    # ------------------------------------------------------------------

    def execute(self, sql: str) -> ResultSet:
        return self.db.execute(sql)

    def executescript(self, sql: str) -> Optional[ResultSet]:
        return self.db.executescript(sql)

    def declare_snapshot(self, name: Optional[str] = None,
                         timestamp: Optional[str] = None) -> int:
        """BEGIN; COMMIT WITH SNAPSHOT; plus the SnapIds bookkeeping.

        The declaration and its SnapIds row happen under one write-gate
        hold so concurrent sessions cannot interleave between them —
        SnapIds row order always matches snapshot-id order.
        """
        with self.db.write_lock():
            snapshot_id = self.db.declare_snapshot()
            self.snapids.record(snapshot_id, name=name, timestamp=timestamp)
        return snapshot_id

    def commit_with_snapshot(self, name: Optional[str] = None,
                             timestamp: Optional[str] = None) -> int:
        """COMMIT WITH SNAPSHOT for an already-open transaction."""
        with self.db.write_lock():
            snapshot_id = int(
                self.db.execute("COMMIT WITH SNAPSHOT").scalar()
            )
            self.snapids.record(snapshot_id, name=name, timestamp=timestamp)
        return snapshot_id

    @contextmanager
    def transaction(self, with_snapshot: bool = False,
                    name: Optional[str] = None,
                    timestamp: Optional[str] = None
                    ) -> Iterator[TransactionHandle]:
        """``BEGIN`` ... ``COMMIT [WITH SNAPSHOT]``, rollback on error.

        With ``with_snapshot=True`` the commit declares a snapshot and
        records it in SnapIds; read the id off the yielded handle after
        the block exits::

            with session.transaction(with_snapshot=True) as txn:
                session.execute("UPDATE ...")
            snap = txn.snapshot_id
        """
        handle = TransactionHandle()
        self.db.execute("BEGIN")
        try:
            yield handle
        except BaseException:
            self.db.execute("ROLLBACK")
            raise
        if with_snapshot:
            handle.snapshot_id = self.commit_with_snapshot(
                name=name, timestamp=timestamp,
            )
        else:
            self.db.execute("COMMIT")

    @property
    def latest_snapshot_id(self) -> int:
        return self.db.latest_snapshot_id

    def checkpoint(self) -> None:
        self.db.checkpoint()

    def close(self) -> None:
        """Idempotent: releases the facade and any read contexts it
        still holds (a double close must never deregister an MVCC
        reader twice, nor leak one that a crashed caller left open).

        The view manager is aborted first so an in-flight refresh on
        another thread unwinds (via QueryCancelled) before the facade
        rolls back its transaction and releases its read contexts."""
        views = getattr(self, "views", None)
        if views is not None:
            views.close()
        self.db.close()

    @property
    def closed(self) -> bool:
        return self.db.closed

    # ------------------------------------------------------------------
    # The four mechanisms (Section 2 call forms)
    # ------------------------------------------------------------------

    def collate_data(self, qs: str, qq: str, table: str,
                     persistent: bool = False,
                     workers: Optional[int] = None) -> RQLResult:
        """CollateData(Qs, Qq, T)."""
        self._drop_result_table(table)
        count = self._effective_workers(workers)
        if count > 1:
            return self._executor(count).collate_data(
                qs, qq, table, persistent,
            )
        return CollateDataRun(self.db, qq, table, persistent).run(qs)

    def aggregate_data_in_variable(self, qs: str, qq: str, table: str,
                                   agg_func: str,
                                   persistent: bool = False,
                                   workers: Optional[int] = None,
                                   ) -> RQLResult:
        """AggregateDataInVariable(Qs, Qq, T, AggFunc)."""
        self._drop_result_table(table)
        count = self._effective_workers(workers)
        if count > 1:
            return self._executor(count).aggregate_data_in_variable(
                qs, qq, table, agg_func, persistent,
            )
        return AggregateDataInVariableRun(
            self.db, qq, table, agg_func, persistent,
        ).run(qs)

    def aggregate_data_in_table(self, qs: str, qq: str, table: str,
                                col_func_pairs,
                                persistent: bool = False,
                                workers: Optional[int] = None) -> RQLResult:
        """AggregateDataInTable(Qs, Qq, T, ListOfColFuncPairs)."""
        self._drop_result_table(table)
        count = self._effective_workers(workers)
        if count > 1:
            return self._executor(count).aggregate_data_in_table(
                qs, qq, table, col_func_pairs, persistent,
            )
        return AggregateDataInTableRun(
            self.db, qq, table, col_func_pairs, persistent,
        ).run(qs)

    def collate_data_into_intervals(self, qs: str, qq: str, table: str,
                                    persistent: bool = False,
                                    workers: Optional[int] = None,
                                    ) -> RQLResult:
        """CollateDataIntoIntervals(Qs, Qq, T)."""
        self._drop_result_table(table)
        count = self._effective_workers(workers)
        if count > 1:
            return self._executor(count).collate_data_into_intervals(
                qs, qq, table, persistent,
            )
        return CollateDataIntoIntervalsRun(
            self.db, qq, table, persistent,
        ).run(qs)

    def _executor(self, workers: int) -> ParallelExecutor:
        return ParallelExecutor(self.db, workers=workers, pool=self.pool)

    def certify(self, mechanism: str, qs: str, qq: str, arg=None):
        """rqlint merge certificate for one mechanism invocation.

        Resolves Qs/Qq against the live catalog (main + temp + UDF
        registry) without executing either; the same verdict the
        parallel executor consumes.  See
        :mod:`repro.analysis.query.mergeclass`.
        """
        return self._executor(max(self.workers, 1)).certify(
            mechanism, qs, qq, arg)

    def _drop_result_table(self, table: str) -> None:
        self.db.execute(f'DROP TABLE IF EXISTS "{table}"')

    # ------------------------------------------------------------------
    # Materialized retrospective views (convenience over the SQL forms)
    # ------------------------------------------------------------------

    def create_materialized_view(self, name: str, mechanism: str, qq: str,
                                 arg: Optional[str] = None,
                                 if_not_exists: bool = False,
                                 ) -> Optional[RefreshReport]:
        """CREATE MATERIALIZED VIEW name AS Mechanism('Qq'[, 'arg'])."""
        return self.views.create(name, mechanism, qq, arg=arg,
                                 if_not_exists=if_not_exists)

    def refresh_view(self, name: str, full: bool = False,
                     cancel=None) -> RefreshReport:
        """REFRESH MATERIALIZED VIEW name [FULL], returning the report."""
        return self.views.refresh(name, full=full, cancel=cancel)

    def drop_view(self, name: str, if_exists: bool = False) -> None:
        self.views.drop(name, if_exists=if_exists)

    # ------------------------------------------------------------------
    # The Section 3 UDF forms
    # ------------------------------------------------------------------

    def _register_udfs(self) -> None:
        """Expose the mechanisms as scalar UDFs over SnapIds rows.

        Each invocation runs one loop-body iteration for the snapshot id
        in its first argument.  State is keyed by (mechanism, Qq, T) and
        reset whenever the result table is absent, so consecutive
        queries reusing the same table name start fresh.
        """
        self.db.register_function("CollateData", self._udf_collate)
        self.db.register_function("AggregateDataInVariable",
                                  self._udf_agg_variable)
        self.db.register_function("AggregateDataInTable",
                                  self._udf_agg_table)
        self.db.register_function("CollateDataIntoIntervals",
                                  self._udf_intervals)

    def _udf_run(self, key: Tuple[str, str, str], factory):
        run = self._udf_runs.get(key)
        if run is None:
            run = factory()
            prior = self.db.metrics
            if prior is None:
                self.db.attach_metrics(run.sink)
            self._udf_runs[key] = run
        return run

    def reset_udf_state(self) -> None:
        """Forget per-(mechanism, Qq, T) UDF loop state."""
        self._udf_runs.clear()

    def udf_metrics(self, mechanism: str, qq: str,
                    table: str) -> Optional[MetricsSink]:
        run = self._udf_runs.get((mechanism, qq, table))
        return run.sink if run is not None else None  # type: ignore[union-attr]

    def _udf_collate(self, snap_id, qq, table):
        run = self._udf_run(
            ("CollateData", str(qq), str(table)),
            lambda: CollateDataRun(self.db, str(qq), str(table)),
        )
        run.iteration(int(snap_id))
        return snap_id

    def _udf_agg_variable(self, snap_id, qq, table, agg_func):
        run = self._udf_run(
            ("AggregateDataInVariable", str(qq), str(table)),
            lambda: AggregateDataInVariableRun(
                self.db, str(qq), str(table), str(agg_func),
            ),
        )
        run.iteration(int(snap_id))
        # The UDF form cannot observe end-of-query, so refresh the
        # result table after every iteration (idempotent).
        self.db.execute(f'DROP TABLE IF EXISTS "{table}"')
        run.finalize()
        return snap_id

    def _udf_agg_table(self, snap_id, qq, table, col_func_pairs):
        run = self._udf_run(
            ("AggregateDataInTable", str(qq), str(table)),
            lambda: AggregateDataInTableRun(
                self.db, str(qq), str(table), col_func_pairs,
            ),
        )
        run.iteration(int(snap_id))
        return snap_id

    def _udf_intervals(self, snap_id, qq, table):
        run = self._udf_run(
            ("CollateDataIntoIntervals", str(qq), str(table)),
            lambda: CollateDataIntoIntervalsRun(
                self.db, str(qq), str(table),
            ),
        )
        run.iteration(int(snap_id))
        return snap_id
