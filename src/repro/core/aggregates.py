"""Cross-snapshot aggregate functions.

Section 2.3 of the paper requires aggregates used by the RQL aggregation
mechanisms to be definable by an **abelian monoid** ``(X, op, e)`` — an
associative, commutative binary operation with identity — because values
arrive one snapshot at a time and are folded incrementally.  MIN, MAX,
SUM and COUNT qualify; AVG does not, but is "widely used in SQL", so the
paper implements it as a special case (a (sum, count) pair folded
monoidally, divided at the end).  ``COUNT DISTINCT`` / ``SUM DISTINCT``
are rejected with a pointer to Collate Data, exactly as the paper
prescribes.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import AggregateError
from repro.sql.types import SqlValue, compare, to_number

#: Names the mechanisms accept (case-insensitive).
MONOID_AGGREGATES = ("min", "max", "sum", "count")
SPECIAL_AGGREGATES = ("avg",)
SUPPORTED_AGGREGATES = MONOID_AGGREGATES + SPECIAL_AGGREGATES

_REJECTED_HINT = (
    "is not definable by an abelian monoid; use CollateData and run the "
    "aggregation over the collated result instead (paper Section 2.3)"
)


class CrossSnapshotAggregate:
    """Incremental fold of one value per snapshot (or per record)."""

    name: str = ""

    def absorb(self, value: SqlValue) -> None:
        """Fold one observed value into the state (NULLs are skipped)."""
        raise NotImplementedError

    def merge(self, other: "CrossSnapshotAggregate") -> None:
        """Fold another partial state in (monoid op; used by tests)."""
        raise NotImplementedError

    def result(self) -> SqlValue:
        raise NotImplementedError


class _MinAgg(CrossSnapshotAggregate):
    name = "min"

    def __init__(self) -> None:
        self.best: SqlValue = None

    def absorb(self, value: SqlValue) -> None:
        if value is None:
            return
        if self.best is None or compare(value, self.best) == -1:
            self.best = value

    def merge(self, other: "CrossSnapshotAggregate") -> None:
        self.absorb(other.result())

    def result(self) -> SqlValue:
        return self.best


class _MaxAgg(CrossSnapshotAggregate):
    name = "max"

    def __init__(self) -> None:
        self.best: SqlValue = None

    def absorb(self, value: SqlValue) -> None:
        if value is None:
            return
        if self.best is None or compare(value, self.best) == 1:
            self.best = value

    def merge(self, other: "CrossSnapshotAggregate") -> None:
        self.absorb(other.result())

    def result(self) -> SqlValue:
        return self.best


class _SumAgg(CrossSnapshotAggregate):
    name = "sum"

    def __init__(self) -> None:
        self.total: Optional[float] = None

    def absorb(self, value: SqlValue) -> None:
        if value is None:
            return
        number = to_number(value)
        self.total = number if self.total is None else self.total + number

    def merge(self, other: "CrossSnapshotAggregate") -> None:
        self.absorb(other.result())

    def result(self) -> SqlValue:
        return self.total


class _CountAgg(CrossSnapshotAggregate):
    name = "count"

    def __init__(self) -> None:
        self.count = 0

    def absorb(self, value: SqlValue) -> None:
        if value is not None:
            self.count += 1

    def merge(self, other: "CrossSnapshotAggregate") -> None:
        if isinstance(other, _CountAgg):
            self.count += other.count
        else:
            raise AggregateError("cannot merge count with non-count state")

    def result(self) -> SqlValue:
        return self.count


class _AvgAgg(CrossSnapshotAggregate):
    """The paper's AVG special case: a (sum, count) monoid, divided last."""

    name = "avg"

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def absorb(self, value: SqlValue) -> None:
        if value is None:
            return
        self.total += float(to_number(value))
        self.count += 1

    def merge(self, other: "CrossSnapshotAggregate") -> None:
        if isinstance(other, _AvgAgg):
            self.total += other.total
            self.count += other.count
        else:
            raise AggregateError("cannot merge avg with non-avg state")

    def result(self) -> SqlValue:
        return self.total / self.count if self.count else None


_FACTORIES: Dict[str, Callable[[], CrossSnapshotAggregate]] = {
    "min": _MinAgg,
    "max": _MaxAgg,
    "sum": _SumAgg,
    "count": _CountAgg,
    "avg": _AvgAgg,
}


def make_cross_snapshot_aggregate(name: str) -> CrossSnapshotAggregate:
    """Build an aggregate state; rejects non-monoid aggregate names."""
    key = name.strip().lower()
    if key in ("count distinct", "count_distinct", "sum distinct",
               "sum_distinct", "distinct"):
        raise AggregateError(f"{name!r} {_REJECTED_HINT}")
    factory = _FACTORIES.get(key)
    if factory is None:
        raise AggregateError(
            f"unknown aggregate {name!r}; supported: "
            f"{', '.join(SUPPORTED_AGGREGATES)}"
        )
    return factory()


def binary_op(name: str) -> Callable[[SqlValue, SqlValue], SqlValue]:
    """The underlying binary operation (for monoid property tests).

    For AVG this raises — AVG is not a monoid on plain values, which is
    exactly why the paper treats it specially.
    """
    key = name.strip().lower()
    if key == "min":
        return lambda a, b: b if a is None else a if b is None else (
            a if compare(a, b) <= 0 else b)
    if key == "max":
        return lambda a, b: b if a is None else a if b is None else (
            a if compare(a, b) >= 0 else b)
    if key == "sum":
        return lambda a, b: b if a is None else a if b is None else (
            to_number(a) + to_number(b))
    if key == "count":
        return lambda a, b: (a or 0) + (b or 0)
    raise AggregateError(f"{name!r} has no plain-value monoid operation")


def identity_element(name: str) -> SqlValue:
    """The monoid identity (None acts as identity for min/max/sum)."""
    key = name.strip().lower()
    if key in ("min", "max", "sum"):
        return None
    if key == "count":
        return 0
    raise AggregateError(f"{name!r} has no plain-value monoid identity")


def merge_stored_value(func: str, earlier: SqlValue,
                       later: SqlValue) -> SqlValue:
    """Merge two *stored* aggregate column values from disjoint
    contiguous snapshot partitions (``earlier`` precedes ``later``).

    Mirrors exactly what the serial probe pass would have produced had
    the later partition's records been applied onto the earlier
    partition's stored row — including the tie-keeps-earlier behaviour
    of MIN/MAX and the None-as-identity behaviour of SUM.
    """
    key = func.strip().lower()
    if key == "min":
        if earlier is None:
            return later
        if later is None:
            return earlier
        return later if compare(later, earlier) == -1 else earlier
    if key == "max":
        if earlier is None:
            return later
        if later is None:
            return earlier
        return later if compare(later, earlier) == 1 else earlier
    if key == "sum":
        if earlier is None:
            return later
        if later is None:
            return earlier
        return earlier + later
    if key == "count":
        return (earlier or 0) + (later or 0)
    raise AggregateError(f"{func!r} has no stored-value merge")


def merge_avg_stored(earlier_visible: SqlValue, earlier_sum: SqlValue,
                     earlier_cnt: SqlValue, later_visible: SqlValue,
                     later_sum: SqlValue, later_cnt: SqlValue,
                     ) -> Tuple[SqlValue, SqlValue, SqlValue]:
    """Merge AVG's (visible, __avg_sum, __avg_cnt) stored triple.

    Serial semantics: the visible column is only re-divided when a
    non-NULL value is applied, so a later partition contributing no
    non-NULL values leaves the earlier visible value (possibly the raw
    first observation, or NULL) untouched.
    """
    total = (earlier_sum or 0.0) + (later_sum or 0.0)
    count = (earlier_cnt or 0) + (later_cnt or 0)
    if later_cnt:
        visible: SqlValue = total / count
    else:
        visible = earlier_visible
    return visible, total, count


def parse_col_func_pairs(spec) -> Tuple[Tuple[str, str], ...]:
    """Normalize ListOfColFuncPairs.

    Accepts a list of (column, func) tuples, or the paper's string form
    ``"(l_time,min)"`` / ``"(MAX,cn):(MAX,av)"`` — the paper writes both
    orders, so when exactly one element names a known aggregate it is
    taken as the function regardless of position.
    """
    if isinstance(spec, str):
        pairs = []
        for chunk in spec.split(":"):
            chunk = chunk.strip()
            if not (chunk.startswith("(") and chunk.endswith(")")):
                raise AggregateError(
                    f"bad ListOfColFuncPairs element {chunk!r}"
                )
            parts = [p.strip() for p in chunk[1:-1].split(",")]
            if len(parts) != 2:
                raise AggregateError(
                    f"bad ListOfColFuncPairs element {chunk!r}"
                )
            pairs.append(tuple(parts))
    else:
        pairs = [tuple(p) for p in spec]
    normalized = []
    for first, second in pairs:
        first_is_func = first.lower() in SUPPORTED_AGGREGATES
        second_is_func = second.lower() in SUPPORTED_AGGREGATES
        if second_is_func and not first_is_func:
            column, func = first, second
        elif first_is_func and not second_is_func:
            column, func = second, first
        elif second_is_func:  # both look like functions: paper order
            column, func = first, second
        else:
            raise AggregateError(
                f"no aggregate function in pair ({first}, {second})"
            )
        make_cross_snapshot_aggregate(func)  # validates
        normalized.append((column, func.lower()))
    if not normalized:
        raise AggregateError("ListOfColFuncPairs is empty")
    return tuple(normalized)
