"""The SnapIds table.

The paper stores SnapIds "in a separate SQLite database than application
data because it is a non-snapshotable persistent table" — here, the aux
engine.  Every snapshot declaration transactionally inserts
``(snap_id, snap_ts, snap_name)``; programmers select snapshot sets (the
Qs parameter) from this table, optionally by friendly name or timestamp
range.
"""

from __future__ import annotations

import datetime as _dt
from typing import Callable, List, Optional

from repro.errors import RqlError
from repro.sql.database import Database

SNAPIDS_TABLE = "SnapIds"

Clock = Callable[[], str]


def _default_clock() -> str:
    return _dt.datetime.now().strftime("%Y-%m-%d %H:%M:%S")


class SnapIds:
    """Manages the SnapIds table inside a Database's aux engine."""

    def __init__(self, db: Database, clock: Optional[Clock] = None) -> None:
        self._db = db
        self._clock = clock or _default_clock
        db.execute(
            f"CREATE TEMP TABLE IF NOT EXISTS {SNAPIDS_TABLE} ("
            f"snap_id INTEGER PRIMARY KEY, snap_ts TEXT, snap_name TEXT)"
        )

    # -- registration --------------------------------------------------------

    def record(self, snap_id: int, name: Optional[str] = None,
               timestamp: Optional[str] = None) -> None:
        """Insert a declared snapshot id (transactional, per the paper)."""
        ts = timestamp if timestamp is not None else self._clock()
        name_sql = "NULL" if name is None else f"'{_escape(name)}'"
        self._db.execute(
            f"INSERT INTO {SNAPIDS_TABLE} (snap_id, snap_ts, snap_name) "
            f"VALUES ({snap_id}, '{_escape(ts)}', {name_sql})"
        )

    # -- lookups ---------------------------------------------------------------

    def all_ids(self) -> List[int]:
        result = self._db.execute(
            f"SELECT snap_id FROM {SNAPIDS_TABLE} ORDER BY snap_id"
        )
        return [int(r[0]) for r in result.rows]

    def latest(self) -> Optional[int]:
        result = self._db.execute(
            f"SELECT MAX(snap_id) FROM {SNAPIDS_TABLE}"
        )
        value = result.scalar()
        return int(value) if value is not None else None

    def id_for_name(self, name: str) -> int:
        result = self._db.execute(
            f"SELECT snap_id FROM {SNAPIDS_TABLE} "
            f"WHERE snap_name = '{_escape(name)}'"
        )
        if not result.rows:
            raise RqlError(f"no snapshot named {name!r}")
        return int(result.rows[0][0])

    # -- Qs builders (snapshot-set helpers beyond the bare table) ------------------

    def qs_all(self) -> str:
        return f"SELECT snap_id FROM {SNAPIDS_TABLE}"

    def qs_last(self, count: int, step: int = 1,
                end: Optional[int] = None) -> str:
        """Qs for the last ``count`` snapshots (optionally strided).

        ``end`` pins the newest snapshot of the interval (default: the
        latest declared), matching the paper's ``Slast-k`` notation.
        """
        if count < 1 or step < 1:
            raise RqlError("count and step must be positive")
        last = end if end is not None else self.latest()
        if last is None:
            raise RqlError("no snapshots declared yet")
        first = last - (count - 1) * step
        predicate = (
            f"snap_id BETWEEN {first} AND {last}"
        )
        if step > 1:
            predicate += f" AND (snap_id - {first}) % {step} = 0"
        return (
            f"SELECT snap_id FROM {SNAPIDS_TABLE} WHERE {predicate} "
            f"ORDER BY snap_id"
        )

    def qs_range(self, first: int, last: int, step: int = 1) -> str:
        if step < 1:
            raise RqlError("step must be positive")
        predicate = f"snap_id BETWEEN {first} AND {last}"
        if step > 1:
            predicate += f" AND (snap_id - {first}) % {step} = 0"
        return (
            f"SELECT snap_id FROM {SNAPIDS_TABLE} WHERE {predicate} "
            f"ORDER BY snap_id"
        )

    def qs_time_range(self, start_ts: str, end_ts: str) -> str:
        return (
            f"SELECT snap_id FROM {SNAPIDS_TABLE} "
            f"WHERE snap_ts BETWEEN '{_escape(start_ts)}' "
            f"AND '{_escape(end_ts)}' ORDER BY snap_id"
        )


def _escape(text: str) -> str:
    return text.replace("'", "''")
