"""Sort-merge AggregateDataInTable — the paper's discarded alternative.

Section 3: "We have also experimented with alternative Aggregate Data
in Table implementation using a sort-merge based algorithm that turned
out to be costlier."  This module implements that alternative so the
claim is reproducible (``benchmarks/test_ablation_sort_merge.py``):

* the result table carries **no index**;
* every subsequent iteration materializes the current result table,
  sorts it and the Qq output by the grouping columns, and merges —
  so each iteration rescans T, which is what makes it costlier than the
  index-probe implementation once T has any size.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.mechanisms import AggregateDataInTableRun
from repro.sql.types import row_sort_key


class SortMergeAggregateDataInTableRun(AggregateDataInTableRun):
    """AggregateDataInTable with per-iteration sort-merge combining."""

    def __init__(self, db, qq: str, table: str, col_func_pairs,
                 persistent: bool = False) -> None:
        super().__init__(db, qq, table, col_func_pairs, persistent)
        # No index on the result table in this variant.
        self.index_name = None
        #: result-table rows materialized across all merge iterations —
        #: the rescan work that the index-probe variant avoids
        self.rows_rescanned = 0

    # The first iteration inserts the Qq output but skips the index.
    def _iteration(self, snapshot_id: int, first: bool) -> None:
        if first:
            self._first_iteration_no_index(snapshot_id)
        else:
            self._merge_iteration(snapshot_id)

    def _first_iteration_no_index(self, snapshot_id: int) -> None:
        from repro.core.rewrite import rewrite_qq

        with self.db.transaction():
            rewritten = rewrite_qq(self.qq, snapshot_id)
            clock = self.sink.clock
            current = self.sink.current
            started = clock()
            columns, rows = self.db.execute_cursor(rewritten)
            self._bind_columns(columns)
            self._create_result_table(self._columns)
            _, writer = self.db.table_writer(self.table)
            udf = 0.0
            for row in rows:
                current.qq_rows += 1
                cb = clock()
                writer.insert(self._widen(row))
                self.rows_inserted += 1
                udf += clock() - cb
            total = clock() - started
            current.udf_seconds += udf
            current.query_eval_seconds += max(total - udf, 0.0)

    def _merge_iteration(self, snapshot_id: int) -> None:
        from repro.core.rewrite import rewrite_qq

        with self.db.transaction():
            rewritten = rewrite_qq(self.qq, snapshot_id)
            clock = self.sink.clock
            current = self.sink.current
            started = clock()
            _, rows = self.db.execute_cursor(rewritten)
            qq_rows = list(rows)
            current.qq_rows += len(qq_rows)
            query_seconds = clock() - started

            merge_started = clock()
            table, writer = self.db.table_writer(self.table)

            def group_of(row: Sequence) -> tuple:
                return tuple(row[p] for p in self._group_positions)

            # Materialize + sort the current result table (the rescan
            # that makes this variant costlier).
            stored: List[Tuple[tuple, int, tuple]] = sorted(
                ((group_of(row), rowid, row)
                 for rowid, row in table.scan()),
                key=lambda item: row_sort_key(item[0]),
            )
            self.rows_rescanned += len(stored)
            incoming: List[Tuple[tuple, tuple]] = sorted(
                ((group_of(row), tuple(row)) for row in qq_rows),
                key=lambda item: row_sort_key(item[0]),
            )
            stored_index: Dict[tuple, Tuple[int, tuple]] = {}
            position = 0
            for group, qq_row in incoming:
                # Advance the stored cursor to the group (merge step).
                while position < len(stored) and \
                        row_sort_key(stored[position][0]) < \
                        row_sort_key(group):
                    entry = stored[position]
                    stored_index[entry[0]] = (entry[1], entry[2])
                    position += 1
                while position < len(stored) and \
                        stored[position][0] == group:
                    entry = stored[position]
                    stored_index[entry[0]] = (entry[1], entry[2])
                    position += 1
                match = stored_index.get(group)
                self.probes += 1
                if match is None:
                    widened = self._widen(qq_row)
                    rowid = writer.insert(widened)
                    stored_index[group] = (rowid, widened)
                    self.rows_inserted += 1
                else:
                    rowid, existing = match
                    updated = self._apply_aggregates(existing, qq_row)
                    if updated is not None:
                        writer.update(rowid, updated)
                        stored_index[group] = (rowid, updated)
                        self.updates_applied += 1
            udf = clock() - merge_started
            current.udf_seconds += udf
            current.query_eval_seconds += query_seconds


def sort_merge_aggregate_data_in_table(db, qs: str, qq: str, table: str,
                                       col_func_pairs,
                                       persistent: bool = False):
    """Convenience entry point matching the mechanism call forms."""
    return SortMergeAggregateDataInTableRun(
        db, qq, table, col_func_pairs, persistent,
    ).run(qs)
