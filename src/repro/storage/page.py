"""Fixed-size logical pages.

The storage engine, the Retro snapshot system, and the buffer pool all deal
in :class:`Page` objects: a page id plus a fixed-size mutable byte buffer.
Pages are the unit of copy-on-write snapshotting, so everything the SQL
layer stores (table B+trees, index B+trees, the catalog) lives in pages.

A page buffer is laid out by its user (see :mod:`repro.storage.btree` for
the B+tree node layout).  This module only provides the raw container, a
small typed header shared by all users, and helpers for cloning pre-states.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.errors import PageError

DEFAULT_PAGE_SIZE = 4096

#: Value used for "no page" links (e.g. rightmost leaf's next pointer).
NO_PAGE = 0

# Shared page header: type tag (1 byte), LSN (8 bytes), reserved (7 bytes).
_HEADER = struct.Struct("<BQ7x")
HEADER_SIZE = _HEADER.size

PAGE_TYPE_FREE = 0
PAGE_TYPE_BTREE_LEAF = 1
PAGE_TYPE_BTREE_INTERNAL = 2
PAGE_TYPE_META = 3
PAGE_TYPE_OVERFLOW = 4

_VALID_TYPES = frozenset(
    (
        PAGE_TYPE_FREE,
        PAGE_TYPE_BTREE_LEAF,
        PAGE_TYPE_BTREE_INTERNAL,
        PAGE_TYPE_META,
        PAGE_TYPE_OVERFLOW,
    )
)


class Page:
    """A fixed-size page: id + byte buffer + dirty flag.

    The buffer pool owns ``Page`` objects; other layers receive references
    and must call :meth:`mark_dirty` after mutating ``data`` so the pool,
    the WAL, and the Retro COW hook all observe the modification.
    """

    __slots__ = ("page_id", "data", "dirty", "pin_count", "decoded_node")

    def __init__(self, page_id: int, data: Optional[bytearray] = None,
                 page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_id < 0:
            raise PageError(f"page id must be non-negative, got {page_id}")
        if data is None:
            data = bytearray(page_size)
        elif len(data) != page_size:
            raise PageError(
                f"page {page_id}: buffer is {len(data)} bytes, "
                f"expected {page_size}"
            )
        self.page_id = page_id
        self.data = data
        self.dirty = False
        self.pin_count = 0
        #: cache of the decoded B+tree node for these bytes (see
        #: repro.storage.btree); invalidated whenever the raw buffer is
        #: replaced wholesale.
        self.decoded_node = None

    # -- header -----------------------------------------------------------

    @property
    def page_type(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[0]

    @page_type.setter
    def page_type(self, value: int) -> None:
        if value not in _VALID_TYPES:
            raise PageError(f"unknown page type {value}")
        lsn = self.lsn
        _HEADER.pack_into(self.data, 0, value, lsn)

    @property
    def lsn(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[1]

    @lsn.setter
    def lsn(self, value: int) -> None:
        ptype = self.page_type
        _HEADER.pack_into(self.data, 0, ptype, value)

    # -- lifecycle ---------------------------------------------------------

    def mark_dirty(self) -> None:
        self.dirty = True

    def snapshot_bytes(self) -> bytes:
        """Immutable copy of the page contents (a COW pre-state)."""
        return bytes(self.data)

    def load(self, raw: bytes) -> None:
        """Replace the page contents with ``raw`` (e.g. read from disk)."""
        if len(raw) != len(self.data):
            raise PageError(
                f"page {self.page_id}: cannot load {len(raw)} bytes into "
                f"{len(self.data)}-byte page"
            )
        self.data[:] = raw
        self.decoded_node = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Page(id={self.page_id}, type={self.page_type}, "
            f"lsn={self.lsn}, dirty={self.dirty}, pins={self.pin_count})"
        )
