"""B+trees over fixed-size pages.

Tables are B+trees keyed by rowid, secondary indexes are B+trees keyed by
memcomparable key bytes — the same design as SQLite/BDB, which matters
here because the Retro snapshot system operates on *pages*: every byte the
SQL layer stores (rows, indexes, catalog) must live in pages so snapshots
capture the complete database state.

Design notes
------------
* Keys and values are opaque byte strings; keys collate bytewise (see
  :mod:`repro.storage.record` for the memcomparable key codec).
* The root page id is **fixed** for the lifetime of the tree: root splits
  copy the root's content into a fresh child instead of moving the root.
  This keeps the catalog entry for a tree immutable.
* Deletion is lazy: leaves may underflow; empty pages are unlinked and
  freed, and a single-child internal root collapses.  The tree stays
  correct (all invariants except minimum fill hold), which matches the
  reproduction's needs — page-level COW behaviour is about which pages are
  *touched*, not about perfect occupancy.
* Iteration uses an explicit descent stack rather than sibling links, so
  page frees never have to patch neighbour pointers.

Node layouts (after the shared 16-byte page header)::

    leaf:     u16 ncells | (u16 klen, u32 vlen, key, value)*
    internal: u16 nkeys  | u64 child[nkeys+1] | (u16 klen, key)*
"""

from __future__ import annotations

import bisect
import struct
from typing import Iterator, List, Optional, Tuple

from repro.errors import BTreeError
from repro.storage.page import (
    HEADER_SIZE,
    PAGE_TYPE_BTREE_INTERNAL,
    PAGE_TYPE_BTREE_LEAF,
    Page,
)

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_CELL_HDR = struct.Struct("<HI")  # u16 klen + u32 vlen, packed

_LEAF_FIXED = HEADER_SIZE + _U16.size
_LEAF_CELL_OVERHEAD = _U16.size + _U32.size
_INT_FIXED = HEADER_SIZE + _U16.size
_INT_KEY_OVERHEAD = _U16.size
_INT_CHILD_SIZE = _U64.size


class MutablePageSource:
    """Page access protocol the B+tree needs for writes.

    The current-state implementation is the transaction page workspace
    (:mod:`repro.storage.transaction`); snapshot readers implement only
    ``fetch``/``release`` and the tree's read paths never call the rest.
    """

    def fetch(self, page_id: int) -> Page:
        raise NotImplementedError

    def release(self, page: Page) -> None:
        """Drop a fetch reference (no-op for workspace sources)."""

    def allocate_page(self) -> Page:
        raise NotImplementedError("read-only page source")

    def free_page(self, page_id: int) -> None:
        raise NotImplementedError("read-only page source")

    def mark_dirty(self, page: Page) -> None:
        raise NotImplementedError("read-only page source")

    def make_writable(self, page: Page) -> Page:
        """Return a transaction-private copy of ``page`` safe to mutate.

        Pages returned by :meth:`fetch` may be shared (buffer pool); the
        tree must never encode into them directly.  Workspace sources
        return the page itself when it is already private.
        """
        raise NotImplementedError("read-only page source")


# ---------------------------------------------------------------------------
# Node codecs
# ---------------------------------------------------------------------------

class _LeafNode:
    __slots__ = ("keys", "values")

    def __init__(self, keys: List[bytes], values: List[bytes]) -> None:
        self.keys = keys
        self.values = values

    @classmethod
    def decode(cls, page: Page) -> "_LeafNode":
        cached = page.decoded_node
        if type(cached) is cls:
            # Shallow-copy the cached node: callers mutate the returned
            # lists, the cache copy must stay in sync with the bytes.
            return cls(list(cached.keys), list(cached.values))
        raw = page.data
        (ncells,) = _U16.unpack_from(raw, HEADER_SIZE)
        pos = HEADER_SIZE + _U16.size
        keys: List[bytes] = []
        values: List[bytes] = []
        unpack_cell = _CELL_HDR.unpack_from
        hdr = _CELL_HDR.size
        for _ in range(ncells):
            klen, vlen = unpack_cell(raw, pos)
            pos += hdr
            keys.append(bytes(raw[pos:pos + klen]))
            pos += klen
            values.append(bytes(raw[pos:pos + vlen]))
            pos += vlen
        page.decoded_node = cls(list(keys), list(values))
        return cls(keys, values)

    def encode_into(self, page: Page) -> None:
        page.decoded_node = _LeafNode(list(self.keys), list(self.values))
        raw = page.data
        raw[HEADER_SIZE:] = bytes(len(raw) - HEADER_SIZE)
        page.page_type = PAGE_TYPE_BTREE_LEAF
        pos = HEADER_SIZE
        _U16.pack_into(raw, pos, len(self.keys))
        pos += _U16.size
        hdr = _CELL_HDR.size
        for key, value in zip(self.keys, self.values):
            _CELL_HDR.pack_into(raw, pos, len(key), len(value))
            pos += hdr
            raw[pos:pos + len(key)] = key
            pos += len(key)
            raw[pos:pos + len(value)] = value
            pos += len(value)

    def byte_size(self) -> int:
        return _LEAF_FIXED + sum(
            _LEAF_CELL_OVERHEAD + len(k) + len(v)
            for k, v in zip(self.keys, self.values)
        )


class _InternalNode:
    __slots__ = ("keys", "children")

    def __init__(self, keys: List[bytes], children: List[int]) -> None:
        self.keys = keys
        self.children = children

    @classmethod
    def decode(cls, page: Page) -> "_InternalNode":
        cached = page.decoded_node
        if type(cached) is cls:
            return cls(list(cached.keys), list(cached.children))
        raw = page.data
        (nkeys,) = _U16.unpack_from(raw, HEADER_SIZE)
        pos = HEADER_SIZE + _U16.size
        span = (nkeys + 1) * _U64.size
        children: List[int] = [
            u[0] for u in _U64.iter_unpack(bytes(raw[pos:pos + span]))
        ]
        pos += span
        keys: List[bytes] = []
        for _ in range(nkeys):
            (klen,) = _U16.unpack_from(raw, pos)
            pos += _U16.size
            keys.append(bytes(raw[pos:pos + klen]))
            pos += klen
        page.decoded_node = cls(list(keys), list(children))
        return cls(keys, children)

    def encode_into(self, page: Page) -> None:
        page.decoded_node = _InternalNode(list(self.keys),
                                          list(self.children))
        raw = page.data
        raw[HEADER_SIZE:] = bytes(len(raw) - HEADER_SIZE)
        page.page_type = PAGE_TYPE_BTREE_INTERNAL
        pos = HEADER_SIZE
        _U16.pack_into(raw, pos, len(self.keys))
        pos += _U16.size
        for child in self.children:
            _U64.pack_into(raw, pos, child)
            pos += _U64.size
        for key in self.keys:
            _U16.pack_into(raw, pos, len(key))
            pos += _U16.size
            raw[pos:pos + len(key)] = key
            pos += len(key)

    def byte_size(self) -> int:
        return (
            _INT_FIXED
            + len(self.children) * _INT_CHILD_SIZE
            + sum(_INT_KEY_OVERHEAD + len(k) for k in self.keys)
        )


# ---------------------------------------------------------------------------
# The tree
# ---------------------------------------------------------------------------

class BTree:
    """A B+tree rooted at a fixed page id.

    Read-only operations (:meth:`get`, :meth:`scan_from`, :meth:`scan_all`)
    work against any :class:`~repro.storage.pager.PageSource`; mutating
    operations require a :class:`MutablePageSource`.
    """

    def __init__(self, source: MutablePageSource, root_id: int) -> None:
        self.source = source
        self.root_id = root_id
        self._page_size = None  # discovered lazily from the first fetch

    # -- creation --------------------------------------------------------------

    @classmethod
    def create(cls, source: MutablePageSource) -> "BTree":
        """Allocate and initialize an empty tree; returns the new tree."""
        page = source.allocate_page()
        _LeafNode([], []).encode_into(page)
        source.mark_dirty(page)
        tree = cls(source, page.page_id)
        return tree

    # -- helpers --------------------------------------------------------------

    def _capacity(self, page: Page) -> int:
        return len(page.data)

    def _max_cell(self, page: Page) -> int:
        return (len(page.data) - _LEAF_FIXED) // 2 - _LEAF_CELL_OVERHEAD

    def _fetch(self, page_id: int) -> Page:
        return self.source.fetch(page_id)

    # -- point operations ----------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value stored under ``key``, or None."""
        page = self._fetch(self.root_id)
        try:
            while page.page_type == PAGE_TYPE_BTREE_INTERNAL:
                node = _InternalNode.decode(page)
                idx = bisect.bisect_right(node.keys, key)
                # Latch coupling: pin the child before dropping the
                # parent, so an unwind never releases a page twice.
                child = self._fetch(node.children[idx])
                self.source.release(page)
                page = child
            leaf = _LeafNode.decode(page)
            idx = bisect.bisect_left(leaf.keys, key)
            if idx < len(leaf.keys) and leaf.keys[idx] == key:
                return leaf.values[idx]
            return None
        finally:
            self.source.release(page)

    def contains(self, key: bytes) -> bool:
        return self.get(key) is not None

    # -- insert ---------------------------------------------------------------

    def insert(self, key: bytes, value: bytes) -> bool:
        """Insert or replace; returns True if the key was new."""
        root = self._fetch(self.root_id)
        try:
            max_cell = self._max_cell(root)
            if len(key) + len(value) > max_cell:
                raise BTreeError(
                    f"cell of {len(key) + len(value)} bytes exceeds max "
                    f"{max_cell} for this page size"
                )
            inserted, split = self._insert(root, key, value)
            if split is not None:
                sep_key, right_id = split
                # Fixed-root split: move the root's current (left-half)
                # content into a fresh page and turn the root into a 1-key
                # internal.
                root_w = self.source.make_writable(root)
                left = self.source.allocate_page()
                left.data[:] = root_w.data
                left.decoded_node = root_w.decoded_node
                self.source.mark_dirty(left)
                _InternalNode([sep_key],
                              [left.page_id, right_id]).encode_into(root_w)
                self.source.mark_dirty(root_w)
        finally:
            self.source.release(root)
        return inserted

    def _insert(self, page: Page, key: bytes,
                value: bytes) -> Tuple[bool, Optional[Tuple[bytes, int]]]:
        """Insert under ``page``; returns (was_new, optional split info).

        On split, ``page`` retains the left half and the returned
        ``(separator, right_page_id)`` must be added to the parent.
        """
        if page.page_type == PAGE_TYPE_BTREE_LEAF:
            leaf = _LeafNode.decode(page)
            idx = bisect.bisect_left(leaf.keys, key)
            if idx < len(leaf.keys) and leaf.keys[idx] == key:
                leaf.values[idx] = value
                was_new = False
            else:
                leaf.keys.insert(idx, key)
                leaf.values.insert(idx, value)
                was_new = True
            if leaf.byte_size() <= self._capacity(page):
                writable = self.source.make_writable(page)
                leaf.encode_into(writable)
                self.source.mark_dirty(writable)
                return was_new, None
            return was_new, self._split_leaf(page, leaf)

        node = _InternalNode.decode(page)
        idx = bisect.bisect_right(node.keys, key)
        child = self._fetch(node.children[idx])
        try:
            was_new, split = self._insert(child, key, value)
        finally:
            self.source.release(child)
        if split is None:
            return was_new, None
        sep_key, right_id = split
        node.keys.insert(idx, sep_key)
        node.children.insert(idx + 1, right_id)
        if node.byte_size() <= self._capacity(page):
            writable = self.source.make_writable(page)
            node.encode_into(writable)
            self.source.mark_dirty(writable)
            return was_new, None
        return was_new, self._split_internal(page, node)

    def _split_leaf(self, page: Page,
                    leaf: _LeafNode) -> Tuple[bytes, int]:
        half = self._split_point(
            [_LEAF_CELL_OVERHEAD + len(k) + len(v)
             for k, v in zip(leaf.keys, leaf.values)]
        )
        right = _LeafNode(leaf.keys[half:], leaf.values[half:])
        left = _LeafNode(leaf.keys[:half], leaf.values[:half])
        right_page = self.source.allocate_page()
        right.encode_into(right_page)
        self.source.mark_dirty(right_page)
        writable = self.source.make_writable(page)
        left.encode_into(writable)
        self.source.mark_dirty(writable)
        return right.keys[0], right_page.page_id

    def _split_internal(self, page: Page,
                        node: _InternalNode) -> Tuple[bytes, int]:
        half = max(1, len(node.keys) // 2)
        sep = node.keys[half]
        right = _InternalNode(node.keys[half + 1:], node.children[half + 1:])
        left = _InternalNode(node.keys[:half], node.children[:half + 1])
        right_page = self.source.allocate_page()
        right.encode_into(right_page)
        self.source.mark_dirty(right_page)
        writable = self.source.make_writable(page)
        left.encode_into(writable)
        self.source.mark_dirty(writable)
        return sep, right_page.page_id

    @staticmethod
    def _split_point(cell_sizes: List[int]) -> int:
        """Index splitting cells into byte-balanced halves (>=1 each side)."""
        total = sum(cell_sizes)
        acc = 0
        for i, size in enumerate(cell_sizes):
            acc += size
            if acc * 2 >= total:
                return min(max(1, i + 1), len(cell_sizes) - 1)
        return max(1, len(cell_sizes) - 1)

    # -- delete ---------------------------------------------------------------

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns True if it was present."""
        root = self._fetch(self.root_id)
        try:
            removed = self._delete(root, key)
            # Collapse a single-child internal root to keep height honest.
            while root.page_type == PAGE_TYPE_BTREE_INTERNAL:
                node = _InternalNode.decode(root)
                if node.keys:
                    break
                child_id = node.children[0]
                child = self._fetch(child_id)
                try:
                    root_w = self.source.make_writable(root)
                    root_w.data[:] = child.data
                    root_w.decoded_node = child.decoded_node
                    self.source.mark_dirty(root_w)
                finally:
                    self.source.release(child)
                self.source.free_page(child_id)
                root = root_w
        finally:
            self.source.release(root)
        return removed

    def _delete(self, page: Page, key: bytes) -> bool:
        if page.page_type == PAGE_TYPE_BTREE_LEAF:
            leaf = _LeafNode.decode(page)
            idx = bisect.bisect_left(leaf.keys, key)
            if idx >= len(leaf.keys) or leaf.keys[idx] != key:
                return False
            del leaf.keys[idx]
            del leaf.values[idx]
            writable = self.source.make_writable(page)
            leaf.encode_into(writable)
            self.source.mark_dirty(writable)
            return True

        node = _InternalNode.decode(page)
        idx = bisect.bisect_right(node.keys, key)
        child = self._fetch(node.children[idx])
        try:
            removed = self._delete(child, key)
            child_empty = self._is_empty(child)
            child_id = child.page_id
        finally:
            self.source.release(child)
        if removed and child_empty and len(node.children) > 1:
            # Unlink and free the empty child (lazy rebalancing).
            del node.children[idx]
            if node.keys:
                # Child i is bounded by separators k[i-1] and k[i]; drop the
                # nearer one (k[i-1] when it exists, else k[0]).
                del node.keys[max(idx - 1, 0)]
            writable = self.source.make_writable(page)
            node.encode_into(writable)
            self.source.mark_dirty(writable)
            self.source.free_page(child_id)
        return removed

    @staticmethod
    def _is_empty(page: Page) -> bool:
        if page.page_type == PAGE_TYPE_BTREE_LEAF:
            return len(_LeafNode.decode(page).keys) == 0
        return False

    # -- iteration ---------------------------------------------------------------

    def scan_all(self) -> Iterator[Tuple[bytes, bytes]]:
        """Yield every (key, value) in key order."""
        return self.scan_from(b"")

    def scan_from(self, start_key: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Yield (key, value) pairs with key >= start_key, in order."""
        # Explicit descent stack: (internal node, next child index).
        stack: List[Tuple[_InternalNode, int]] = []
        page = self._fetch(self.root_id)
        try:
            while page.page_type == PAGE_TYPE_BTREE_INTERNAL:
                node = _InternalNode.decode(page)
                idx = bisect.bisect_right(node.keys, start_key)
                stack.append((node, idx + 1))
                child = self._fetch(node.children[idx])
                self.source.release(page)
                page = child
            leaf = _LeafNode.decode(page)
        finally:
            self.source.release(page)
        idx = bisect.bisect_left(leaf.keys, start_key)
        while True:
            for i in range(idx, len(leaf.keys)):
                yield leaf.keys[i], leaf.values[i]
            idx = 0
            # Advance to the next leaf via the stack.
            leaf = None  # type: ignore[assignment]
            while stack:
                node, next_idx = stack.pop()
                if next_idx < len(node.children):
                    stack.append((node, next_idx + 1))
                    page = self._fetch(node.children[next_idx])
                    try:
                        while page.page_type == PAGE_TYPE_BTREE_INTERNAL:
                            inner = _InternalNode.decode(page)
                            stack.append((inner, 1))
                            child = self._fetch(inner.children[0])
                            self.source.release(page)
                            page = child
                        leaf = _LeafNode.decode(page)
                    finally:
                        self.source.release(page)
                    break
            if leaf is None:
                return

    def scan_prefix(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Yield entries whose key starts with ``prefix``."""
        for key, value in self.scan_from(prefix):
            if not key.startswith(prefix):
                return
            yield key, value

    def scan_range(self, lo: Optional[bytes],
                   hi: Optional[bytes],
                   hi_inclusive: bool = False) -> Iterator[Tuple[bytes, bytes]]:
        """Yield entries with lo <= key < hi (or <= hi if inclusive)."""
        start = lo if lo is not None else b""
        for key, value in self.scan_from(start):
            if hi is not None:
                if hi_inclusive:
                    # Composite index keys extend the bound with a rowid
                    # suffix; a key that *starts with* hi still matches.
                    if key > hi and not key.startswith(hi):
                        return
                elif key >= hi:
                    return
            yield key, value

    def last_key(self) -> Optional[bytes]:
        """The largest key in the tree, or None when empty.

        Descends the rightmost spine; used for rowid assignment (new
        rowid = max + 1, as in SQLite).
        """
        page = self._fetch(self.root_id)
        try:
            while page.page_type == PAGE_TYPE_BTREE_INTERNAL:
                node = _InternalNode.decode(page)
                child = self._fetch(node.children[-1])
                self.source.release(page)
                page = child
            leaf = _LeafNode.decode(page)
        finally:
            self.source.release(page)
        if not leaf.keys:
            return None
        return leaf.keys[-1]

    # -- bulk / maintenance ----------------------------------------------------------

    def count(self) -> int:
        return sum(1 for _ in self.scan_all())

    def clear(self) -> None:
        """Remove every entry, freeing all pages except the root."""
        self._free_subtree(self.root_id, keep=True)
        root = self._fetch(self.root_id)
        try:
            writable = self.source.make_writable(root)
            _LeafNode([], []).encode_into(writable)
            self.source.mark_dirty(writable)
        finally:
            self.source.release(root)

    def drop(self) -> None:
        """Free the whole tree including the root."""
        self._free_subtree(self.root_id, keep=False)

    def _free_subtree(self, page_id: int, keep: bool) -> None:
        page = self._fetch(page_id)
        try:
            if page.page_type == PAGE_TYPE_BTREE_INTERNAL:
                children = _InternalNode.decode(page).children
            else:
                children = []
        finally:
            self.source.release(page)
        for child in children:
            self._free_subtree(child, keep=False)
        if not keep:
            self.source.free_page(page_id)

    # -- introspection (used by tests and the bench harness) --------------------------

    def height(self) -> int:
        height = 1
        page = self._fetch(self.root_id)
        try:
            while page.page_type == PAGE_TYPE_BTREE_INTERNAL:
                node = _InternalNode.decode(page)
                child = self._fetch(node.children[0])
                self.source.release(page)
                page = child
                height += 1
        finally:
            self.source.release(page)
        return height

    def page_ids(self) -> List[int]:
        """All page ids used by this tree (root first, DFS order)."""
        out: List[int] = []
        self._collect_pages(self.root_id, out)
        return out

    def _collect_pages(self, page_id: int, out: List[int]) -> None:
        out.append(page_id)
        page = self._fetch(page_id)
        try:
            if page.page_type == PAGE_TYPE_BTREE_INTERNAL:
                children = _InternalNode.decode(page).children
            else:
                children = []
        finally:
            self.source.release(page)
        for child in children:
            self._collect_pages(child, out)

    def check_invariants(self) -> None:
        """Raise BTreeError if structural invariants are violated."""
        self._check(self.root_id, None, None, self._leaf_depth())

    def _leaf_depth(self) -> int:
        return self.height()

    def _check(self, page_id: int, lo: Optional[bytes],
               hi: Optional[bytes], depth: int) -> None:
        page = self._fetch(page_id)
        try:
            is_leaf = page.page_type == PAGE_TYPE_BTREE_LEAF
            if is_leaf:
                if depth != 1:
                    raise BTreeError("leaves at unequal depth")
                leaf = _LeafNode.decode(page)
            else:
                node = _InternalNode.decode(page)
        finally:
            self.source.release(page)
        if is_leaf:
            for i, key in enumerate(leaf.keys):
                if i and leaf.keys[i - 1] >= key:
                    raise BTreeError("leaf keys out of order")
                if lo is not None and key < lo:
                    raise BTreeError("leaf key below subtree bound")
                if hi is not None and key >= hi:
                    raise BTreeError("leaf key above subtree bound")
            return
        for i, key in enumerate(node.keys):
            if i and node.keys[i - 1] >= key:
                raise BTreeError("internal keys out of order")
        bounds = [lo] + list(node.keys) + [hi]
        for i, child in enumerate(node.children):
            self._check(child, bounds[i], bounds[i + 1], depth - 1)
