"""Value and record serialization.

The SQL layer stores rows as tuples of Python values drawn from the SQL
value model: ``None`` (NULL), ``int``, ``float``, ``str`` and ``bytes``.
This module provides a compact, order-preserving-enough binary codec used
both for B+tree payloads (row storage) and B+tree keys (index storage).

Two codecs live here:

``encode_record`` / ``decode_record``
    Length-prefixed tagged encoding for payloads.  Not comparable as bytes.

``encode_key`` / ``decode_key``
    Memcomparable encoding: for any two tuples of SQL values, comparing the
    encodings as byte strings agrees with SQL ordering (NULL < numbers <
    text < blob, numbers compared numerically across int/float).  The
    B+tree compares raw key bytes, which keeps its node layout simple.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

from repro.errors import RecordCodecError

SqlValue = object  # None | int | float | str | bytes

_TAG_NULL = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_TEXT = 3
_TAG_BLOB = 4

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")
_F64_BE = struct.Struct(">d")


# ---------------------------------------------------------------------------
# Payload codec
# ---------------------------------------------------------------------------

def encode_record(values: Sequence[SqlValue]) -> bytes:
    """Encode a row into bytes.  Raises RecordCodecError on bad types."""
    out = bytearray()
    out += _U32.pack(len(values))
    for value in values:
        if value is None:
            out.append(_TAG_NULL)
        elif isinstance(value, bool):
            # bool is an int subclass; normalize so decode returns int.
            out.append(_TAG_INT)
            out += _I64.pack(int(value))
        elif isinstance(value, int):
            out.append(_TAG_INT)
            try:
                out += _I64.pack(value)
            except struct.error as exc:
                raise RecordCodecError(
                    f"integer out of 64-bit range: {value}"
                ) from exc
        elif isinstance(value, float):
            out.append(_TAG_FLOAT)
            out += _F64.pack(value)
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            out.append(_TAG_TEXT)
            out += _U32.pack(len(raw))
            out += raw
        elif isinstance(value, (bytes, bytearray)):
            raw = bytes(value)
            out.append(_TAG_BLOB)
            out += _U32.pack(len(raw))
            out += raw
        else:
            raise RecordCodecError(
                f"unsupported SQL value type: {type(value).__name__}"
            )
    return bytes(out)


def decode_record(raw: bytes) -> Tuple[SqlValue, ...]:
    """Decode bytes produced by :func:`encode_record`."""
    try:
        (count,) = _U32.unpack_from(raw, 0)
        pos = _U32.size
        values: List[SqlValue] = []
        for _ in range(count):
            tag = raw[pos]
            pos += 1
            if tag == _TAG_NULL:
                values.append(None)
            elif tag == _TAG_INT:
                (v,) = _I64.unpack_from(raw, pos)
                pos += _I64.size
                values.append(v)
            elif tag == _TAG_FLOAT:
                (f,) = _F64.unpack_from(raw, pos)
                pos += _F64.size
                values.append(f)
            elif tag == _TAG_TEXT:
                (n,) = _U32.unpack_from(raw, pos)
                pos += _U32.size
                values.append(raw[pos:pos + n].decode("utf-8"))
                pos += n
            elif tag == _TAG_BLOB:
                (n,) = _U32.unpack_from(raw, pos)
                pos += _U32.size
                values.append(bytes(raw[pos:pos + n]))
                pos += n
            else:
                raise RecordCodecError(f"unknown value tag {tag}")
        return tuple(values)
    except (struct.error, IndexError, UnicodeDecodeError) as exc:
        raise RecordCodecError(f"corrupt record: {exc}") from exc


# ---------------------------------------------------------------------------
# Memcomparable key codec
# ---------------------------------------------------------------------------
#
# Type-class bytes establish NULL < numeric < text < blob.  Within numerics,
# int and float collate together: both are encoded as big-endian IEEE-754
# doubles with the sign bit flipped (and the whole word inverted for
# negatives), which yields total order by value.  64-bit ints above 2**53
# lose precision under this scheme; TPC-H keys stay far below that, and the
# payload codec (used for stored rows) is always exact.

_KCLASS_NULL = 0x10
_KCLASS_NUM = 0x20
_KCLASS_TEXT = 0x30
_KCLASS_BLOB = 0x40

#: Lower bound that sorts after every key whose first value is NULL and
#: before every non-NULL key.  Range predicates never match NULL (SQL
#: three-valued logic), so unbounded-below index ranges start here.
KEY_AFTER_NULLS = bytes([_KCLASS_NULL + 1])

_SEP = b"\x00\x00"
_ESCAPED = b"\x00\xff"


def _encode_num(value: float) -> bytes:
    value = float(value) + 0.0  # normalize -0.0 so it collates as 0.0
    raw = bytearray(_F64_BE.pack(value))
    if raw[0] & 0x80:  # negative: invert all bits
        for i in range(8):
            raw[i] ^= 0xFF
    else:  # positive: flip sign bit
        raw[0] ^= 0x80
    return bytes(raw)


def _decode_num(raw: bytes) -> float:
    buf = bytearray(raw)
    if buf[0] & 0x80:  # was positive
        buf[0] ^= 0x80
    else:  # was negative
        for i in range(8):
            buf[i] ^= 0xFF
    return _F64_BE.unpack(bytes(buf))[0]


def _escape(raw: bytes) -> bytes:
    """NUL-escape so the 0x00 0x00 separator never appears inside data."""
    return raw.replace(b"\x00", _ESCAPED)


def _unescape(raw: bytes) -> bytes:
    return raw.replace(_ESCAPED, b"\x00")


def encode_key(values: Sequence[SqlValue]) -> bytes:
    """Encode a tuple so byte-wise comparison matches SQL ordering."""
    out = bytearray()
    for value in values:
        if value is None:
            out.append(_KCLASS_NULL)
        elif isinstance(value, bool):
            out.append(_KCLASS_NUM)
            out += _encode_num(float(int(value)))
        elif isinstance(value, (int, float)):
            out.append(_KCLASS_NUM)
            out += _encode_num(float(value))
        elif isinstance(value, str):
            out.append(_KCLASS_TEXT)
            out += _escape(value.encode("utf-8"))
            out += _SEP
        elif isinstance(value, (bytes, bytearray)):
            out.append(_KCLASS_BLOB)
            out += _escape(bytes(value))
            out += _SEP
        else:
            raise RecordCodecError(
                f"unsupported key value type: {type(value).__name__}"
            )
    return bytes(out)


def decode_key(raw: bytes) -> Tuple[SqlValue, ...]:
    """Decode bytes produced by :func:`encode_key`.

    Numeric values come back as ``float`` (ints are recovered when the
    float is integral); callers that need exact values should store them
    in the payload and treat the key as opaque.
    """
    values: List[SqlValue] = []
    pos = 0
    n = len(raw)
    while pos < n:
        kclass = raw[pos]
        pos += 1
        if kclass == _KCLASS_NULL:
            values.append(None)
        elif kclass == _KCLASS_NUM:
            num = _decode_num(raw[pos:pos + 8])
            pos += 8
            values.append(int(num) if num.is_integer() else num)
        elif kclass in (_KCLASS_TEXT, _KCLASS_BLOB):
            end = raw.find(_SEP, pos)
            # Skip separators that are actually escape sequences: an escape
            # is 0x00 0xff, so a genuine separator is 0x00 0x00 that is not
            # the tail of an escape.  Because escapes never produce 0x00
            # 0x00, the first find() hit is always the real separator.
            if end < 0:
                raise RecordCodecError("unterminated string key component")
            data = _unescape(raw[pos:end])
            pos = end + len(_SEP)
            if kclass == _KCLASS_TEXT:
                values.append(data.decode("utf-8"))
            else:
                values.append(data)
        else:
            raise RecordCodecError(f"unknown key class byte {kclass:#x}")
    return tuple(values)
