"""Transactions and their private page workspaces.

A transaction buffers every page it writes in a private overlay; nothing
touches shared state until commit.  The overlay doubles as the
:class:`~repro.storage.btree.MutablePageSource` handed to B+trees, so the
same tree code serves read-only queries (straight through the buffer
pool / MVCC) and updates (through the overlay).

Commit and rollback are driven by the :class:`~repro.storage.engine.
StorageEngine`; this module only manages per-transaction state.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Set

from repro.errors import TransactionError
from repro.storage.btree import MutablePageSource
from repro.storage.page import Page


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One transaction: id, begin timestamp, page overlay, bookkeeping."""

    def __init__(self, txn_id: int, begin_ts: int,
                 first_new_page_id: int) -> None:
        self.txn_id = txn_id
        self.begin_ts = begin_ts
        #: page ids >= this existed only after the txn began (no pre-state)
        self.first_new_page_id = first_new_page_id
        self.state = TxnState.ACTIVE
        self.overlay: Dict[int, Page] = {}
        self.dirty: Set[int] = set()
        self.allocated: List[int] = []
        self.freed: List[int] = []
        #: set by the engine when COMMIT WITH SNAPSHOT is requested
        self.declare_snapshot = False

    def is_active(self) -> bool:
        return self.state == TxnState.ACTIVE

    def ensure_active(self) -> None:
        if self.state != TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}"
            )

    def modified_pages(self) -> Dict[int, bytes]:
        """After-images of every dirty page (commit payload)."""
        return {
            pid: bytes(self.overlay[pid].data)
            for pid in sorted(self.dirty)
        }


class TransactionPageSource(MutablePageSource):
    """The overlay-backed page source a transaction hands to B+trees.

    Reads fall through to the committed state (zero copy); writes are
    isolated in the overlay via :meth:`make_writable`.
    """

    def __init__(self, txn: Transaction,
                 read_committed: Callable[[int], Page],
                 release_committed: Callable[[Page], None],
                 allocate_id: Callable[[], int],
                 page_size: int) -> None:
        self._txn = txn
        self._read_committed = read_committed
        self._release_committed = release_committed
        self._allocate_id = allocate_id
        self._page_size = page_size

    # -- reads -----------------------------------------------------------

    def fetch(self, page_id: int) -> Page:
        page = self._txn.overlay.get(page_id)
        if page is not None:
            return page
        return self._read_committed(page_id)

    def release(self, page: Page) -> None:
        if page.page_id not in self._txn.overlay:
            self._release_committed(page)

    # -- writes ----------------------------------------------------------

    def make_writable(self, page: Page) -> Page:
        self._txn.ensure_active()
        existing = self._txn.overlay.get(page.page_id)
        if existing is not None:
            return existing
        private = Page(page.page_id, bytearray(page.data), self._page_size)
        # Decoded-node caches are immutable snapshots; share them.
        private.decoded_node = page.decoded_node
        self._txn.overlay[page.page_id] = private
        return private

    def mark_dirty(self, page: Page) -> None:
        self._txn.ensure_active()
        if page.page_id not in self._txn.overlay:
            raise TransactionError(
                f"page {page.page_id} dirtied outside the overlay"
            )
        page.dirty = True
        self._txn.dirty.add(page.page_id)

    def allocate_page(self) -> Page:
        self._txn.ensure_active()
        page_id = self._allocate_id()
        page = Page(page_id, page_size=self._page_size)
        # Workers are only spawned with no open write txn (_check_idle),
        # so no TransactionPageSource is live while they run; the static
        # worker region reaches here only through PageSource dispatch
        # over-approximation (ephemeral indexes use memory sources).
        self._txn.overlay[page_id] = page  # replint: race-exempt -- single-writer protocol, see above
        self._txn.allocated.append(page_id)
        self._txn.dirty.add(page_id)
        page.dirty = True
        return page

    def free_page(self, page_id: int) -> None:
        self._txn.ensure_active()
        self._txn.overlay.pop(page_id, None)
        self._txn.dirty.discard(page_id)
        if page_id in self._txn.allocated:
            # Allocated and freed within this txn: hand the id back later
            # at commit; net effect is nil.
            self._txn.allocated.remove(page_id)
        self._txn.freed.append(page_id)


class ReadOnlyPageSource(MutablePageSource):
    """Zero-copy read path for queries outside any write transaction.

    ``read_page`` resolves through MVCC for a fixed ``begin_ts`` so a
    long-running query sees a stable logical state.
    """

    def __init__(self, read_page: Callable[[int], Page],
                 release_page: Callable[[Page], None]) -> None:
        self._read_page = read_page
        self._release_page = release_page

    def fetch(self, page_id: int) -> Page:
        return self._read_page(page_id)

    def release(self, page: Page) -> None:
        self._release_page(page)
