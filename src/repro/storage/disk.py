"""Simulated storage devices with cost accounting.

The paper's testbed keeps the current-state database memory resident while
snapshot pre-states live in an on-SSD Pagelog.  Reproducing the evaluation
therefore needs a device model that (a) stores page images durably across
simulated crashes and (b) meters every read/write so the benchmark harness
can charge I/O costs deterministically.

:class:`SimulatedDisk` is a named collection of :class:`DiskFile` objects.
A ``DiskFile`` supports both random page access (the database file) and
append-only access (WAL, Pagelog, Maplog).  All accesses update a shared
:class:`DeviceStats`, and a :class:`CostModel` converts the counters into
simulated seconds.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import PageError, StorageError


@dataclass
class CostModel:
    """Charge table converting device operations to simulated seconds.

    Defaults model the paper's setup: the database is memory resident
    (reads are cheap), while Pagelog reads hit an SSD.
    """

    #: Cost of reading one page from a random-access file (memory-resident
    #: database page in the paper's configuration).
    db_read_seconds: float = 2e-6
    #: Cost of reading one page from an append-only log file (SSD Pagelog).
    log_read_seconds: float = 1e-4
    #: Cost of writing one page (batched sequential writes amortize well).
    write_seconds: float = 2e-5

    def charge(self, stats: "DeviceStats") -> float:
        """Total simulated seconds implied by ``stats``."""
        return (
            stats.random_reads * self.db_read_seconds
            + stats.log_reads * self.log_read_seconds
            + (stats.random_writes + stats.log_writes) * self.write_seconds
        )


@dataclass
class DeviceStats:
    """Operation counters for one device (or a delta between two points).

    One stats block is shared by every file of a disk — and with
    parallel snapshot workers, by every worker thread — so the counters
    only move through the latched ``note_*`` methods.
    """

    random_reads: int = 0
    random_writes: int = 0
    log_reads: int = 0
    log_writes: int = 0

    def __post_init__(self) -> None:
        self._latch = threading.Lock()

    def __getstate__(self) -> dict:
        # Locks can't be copied or pickled; the copy gets a fresh one.
        state = self.__dict__.copy()
        state.pop("_latch", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._latch = threading.Lock()

    def note_random_read(self) -> None:
        with self._latch:
            self.random_reads += 1

    def note_random_write(self) -> None:
        with self._latch:
            self.random_writes += 1

    def note_log_read(self) -> None:
        with self._latch:
            self.log_reads += 1

    def note_log_write(self) -> None:
        with self._latch:
            self.log_writes += 1

    def snapshot(self) -> "DeviceStats":
        with self._latch:
            return DeviceStats(
                self.random_reads, self.random_writes,
                self.log_reads, self.log_writes,
            )

    def delta(self, earlier: "DeviceStats") -> "DeviceStats":
        """Counters accumulated since ``earlier`` was captured."""
        with self._latch:
            return DeviceStats(
                self.random_reads - earlier.random_reads,
                self.random_writes - earlier.random_writes,
                self.log_reads - earlier.log_reads,
                self.log_writes - earlier.log_writes,
            )

    def reset(self) -> None:
        with self._latch:
            self.random_reads = 0
            self.random_writes = 0
            self.log_reads = 0
            self.log_writes = 0


class DiskFile:
    """One simulated file: a growable array of fixed-size page images.

    ``append_only=True`` marks log-structured files (WAL, Pagelog, Maplog)
    whose reads are charged at log-read cost.  Random files (the database)
    charge the cheap random-read cost.
    """

    def __init__(self, name: str, page_size: int, stats: DeviceStats,
                 append_only: bool = False) -> None:
        self.name = name
        self.page_size = page_size
        self.append_only = append_only
        self._stats = stats
        self._pages: List[bytes] = []

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def size_bytes(self) -> int:
        return len(self._pages) * self.page_size

    def _check(self, raw: bytes) -> None:
        # A short slot would round-trip silently (slots are stored as
        # whole python bytes objects, not fixed-size extents) and only
        # blow up much later, when a reader unpacks fields past its end
        # — exactly the failure shape of a torn write, but with no
        # injection to blame.  Reject it at the write boundary with the
        # taxonomy's page error so callers can tell "my image is
        # malformed" from generic device failures.
        if len(raw) != self.page_size:
            raise PageError(
                f"{self.name}: image is {len(raw)} bytes, expected "
                f"{self.page_size}"
            )

    def append(self, raw: bytes) -> int:
        """Append a page image, returning its slot number."""
        self._check(raw)
        self._pages.append(bytes(raw))
        self._stats.note_log_write()
        return len(self._pages) - 1

    def read(self, slot: int) -> bytes:
        if not 0 <= slot < len(self._pages):
            raise StorageError(f"{self.name}: slot {slot} out of range")
        if self.append_only:
            self._stats.note_log_read()
        else:
            self._stats.note_random_read()
        return self._pages[slot]

    def write(self, slot: int, raw: bytes) -> None:
        """Random write (extends the file with zero pages if needed)."""
        if self.append_only:
            raise StorageError(f"{self.name}: random writes not allowed")
        self._check(raw)
        while slot >= len(self._pages):
            self._pages.append(bytes(self.page_size))
        self._pages[slot] = bytes(raw)
        self._stats.note_random_write()

    def truncate(self, length: int = 0) -> None:
        if length < 0:
            raise StorageError(f"{self.name}: negative truncate length")
        del self._pages[length:]

    def scan(self, start: int = 0) -> Iterator[bytes]:
        """Sequential scan from ``start``; charges one read per page."""
        for slot in range(start, len(self._pages)):
            yield self.read(slot)


class SimulatedDisk:
    """A set of named :class:`DiskFile` objects sharing one stats block.

    Contents survive "crashes" (the in-memory engine state being thrown
    away) as long as the ``SimulatedDisk`` object itself is kept, which is
    how the recovery tests simulate power loss.
    """

    def __init__(self, page_size: int, cost_model: Optional[CostModel] = None) -> None:
        self.page_size = page_size
        self.cost_model = cost_model or CostModel()
        self.stats = DeviceStats()
        self._files: Dict[str, DiskFile] = {}

    def open_file(self, name: str, append_only: bool = False) -> DiskFile:
        """Open (creating if missing) the file ``name``."""
        existing = self._files.get(name)
        if existing is not None:
            if existing.append_only != append_only:
                raise StorageError(
                    f"file {name} reopened with different append_only flag"
                )
            return existing
        f = self._make_file(name, append_only)
        self._files[name] = f
        return f

    def _make_file(self, name: str, append_only: bool) -> DiskFile:
        """File factory — overridden by the fault-injecting ChaosDisk."""
        return DiskFile(name, self.page_size, self.stats, append_only)

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete_file(self, name: str) -> None:
        self._files.pop(name, None)

    def file_names(self) -> List[str]:
        return sorted(self._files)

    def simulated_seconds(self) -> float:
        """Simulated time implied by all operations so far."""
        return self.cost_model.charge(self.stats)
