"""Checksum primitives shared by the durable-log formats.

Every durable block written by :class:`~repro.storage.logfile.BlockLogWriter`
(WAL, Maplog) carries a CRC32 + format-epoch trailer, and every Maplog
mapping records the CRC32 of the Pagelog pre-state it references.  The
recovery rule is *truncate-don't-guess*: a slot that fails its checksum
at the tail of a log is treated as a torn write and truncated; one in
the middle is corruption and raises a typed error.

``set_verification`` is a **test-only** hook used by the mutation-style
regression (``tests/storage/test_crash_sweep.py``) to prove the crash
oracle actually detects corruption: with verification disabled, injected
corruption must make the oracle fail.
"""

from __future__ import annotations

import struct
import zlib

#: Bump when the on-disk framing of any checksummed structure changes.
#: Readers reject trailers from a different epoch instead of guessing.
FORMAT_EPOCH = 1

#: Block trailer: <u32 crc32 of payload+epoch> <u16 format epoch> <u16 0>.
TRAILER = struct.Struct("<IHH")
_EPOCH_BYTES = struct.Struct("<H")

_verify = True


def page_crc(data: bytes) -> int:
    """CRC32 of one page image / payload (masked to u32)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def seal_block(payload: bytes) -> bytes:
    """Append the CRC + format-epoch trailer to a block payload."""
    crc = page_crc(payload + _EPOCH_BYTES.pack(FORMAT_EPOCH))
    return payload + TRAILER.pack(crc, FORMAT_EPOCH, 0)


def block_is_valid(block: bytes) -> bool:
    """Whether a sealed block's trailer matches its payload."""
    if len(block) <= TRAILER.size:
        return False
    payload, trailer = block[:-TRAILER.size], block[-TRAILER.size:]
    crc, epoch, _ = TRAILER.unpack(trailer)
    if epoch != FORMAT_EPOCH:
        return False
    return crc == page_crc(payload + _EPOCH_BYTES.pack(epoch))


def verification_enabled() -> bool:
    return _verify


def set_verification(enabled: bool) -> None:
    """Test-only: globally enable/disable checksum verification."""
    global _verify
    _verify = bool(enabled)
