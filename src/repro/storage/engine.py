"""The transactional storage engine (the paper's Berkeley DB substrate).

:class:`StorageEngine` coordinates the pager/buffer pool, the write-ahead
log, page-level MVCC, and the Retro snapshot manager.  It exposes exactly
the interposition points Retro needs (paper Section 4): transaction
commit, page flush, page fetch, and recovery.

Concurrency model: a single writer at a time (as in BDB SQLite) with any
number of concurrent read-only transactions served by MVCC version
chains.  Snapshot queries run as read-only MVCC transactions so they
never block, and are never blocked by, updates.

Durability model: WAL at commit; checkpoints drain Retro pre-states to
the Pagelog, flush dirty pages, persist the meta page, and advance the
WAL replay start.  A crash is simulated by discarding the engine while
keeping its :class:`~repro.storage.disk.SimulatedDisk`; reopening the
disk runs recovery.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import CorruptPageError, StorageError, TransactionError
from repro.storage.disk import SimulatedDisk
from repro.storage.logfile import LogScanStatus
from repro.storage.mvcc import VersionStore
from repro.storage.page import DEFAULT_PAGE_SIZE, Page
from repro.storage.pager import Pager
from repro.storage.transaction import (
    ReadOnlyPageSource,
    Transaction,
    TransactionPageSource,
    TxnState,
)
from repro.storage.wal import WriteAheadLog

DB_FILE = "database"
WAL_FILE = "wal"
META_FILE = "meta"
_WAL_START_ROOT = "__wal_start"
_LAST_TS_ROOT = "__last_ts"
_MAPLOG_RECORDS_ROOT = "__maplog_records"
_SNAP_EPOCH_ROOT = "__snap_epoch"


@dataclass
class RecoveryReport:
    """What recovery found and what (if anything) it had to give up."""

    replayed_txns: int = 0
    wal_status: Optional[LogScanStatus] = None
    maplog_status: Optional[LogScanStatus] = None
    unavailable_snapshots: List[int] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when any torn tail was truncated or snapshots were lost."""
        return bool(self.unavailable_snapshots) or any(
            s is not None and s.torn
            for s in (self.wal_status, self.maplog_status)
        )


class ReadContext:
    """A registered MVCC reader: stable view at ``begin_ts`` until closed.

    ``owner`` is an opaque token (a session or database facade) used by
    the multi-session server to find and reap contexts a disconnected
    client left open.  ``close`` is idempotent.
    """

    def __init__(self, engine: "StorageEngine", begin_ts: int,
                 reader_id: int, owner: Optional[object] = None) -> None:
        self._engine = engine
        self.begin_ts = begin_ts
        self._reader_id = reader_id
        self.owner = owner
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # The registry pop is the atomic claim: concurrent closes (a
        # session closing while the registry reaps it) deregister once.
        if self._engine._forget_context(self._reader_id):
            self._engine._versions.deregister_reader(self._reader_id)

    def __enter__(self) -> "ReadContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class StorageEngine:
    """Transactional page store with integrated Retro snapshots."""

    def __init__(self, disk: Optional[SimulatedDisk] = None,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 pool_capacity: int = 1 << 20,
                 snapshot_cache_pages: Optional[int] = None) -> None:
        self.disk = disk or SimulatedDisk(page_size)
        if self.disk.page_size != page_size and disk is not None:
            page_size = self.disk.page_size
        self.page_size = page_size
        existing = self.disk.exists(DB_FILE)
        db_file = self.disk.open_file(DB_FILE)
        meta_file = self.disk.open_file(META_FILE)
        wal_file = self.disk.open_file(WAL_FILE, append_only=True)
        if len(meta_file) == 0 and len(wal_file) > 0:
            # A non-empty WAL implies at least one checkpointed meta
            # write preceded it, so an empty meta file can only be
            # media-level truncation — refuse rather than silently
            # reinitializing over a store with acknowledged commits.
            raise CorruptPageError(
                "meta file is empty but the WAL is not: meta was lost "
                "to media truncation"
            )
        try:
            self.pager = Pager(db_file, pool_capacity, meta_file=meta_file)
        except CorruptPageError:
            if len(wal_file) == 0:
                # No valid meta copy, but also no WAL: no commit was
                # ever acknowledged (commits hit the WAL before
                # returning), so this is a torn bootstrap write — wipe
                # and reinitialize rather than refuse to open.
                meta_file.truncate(0)
                db_file.truncate(0)
                self.pager = Pager(db_file, pool_capacity,
                                   meta_file=meta_file)
                existing = False
            else:
                raise
        self.wal = WriteAheadLog(wal_file)
        # Imported here (not at module level) to break the package
        # cycle storage/__init__ -> engine -> retro.manager -> maplog
        # -> storage.disk -> storage/__init__.
        from repro.retro.manager import RetroManager

        cache_pages = snapshot_cache_pages
        if cache_pages is None:
            self.retro = RetroManager(self.disk)
        else:
            self.retro = RetroManager(self.disk, cache_pages=cache_pages)
        # Eviction-time flush hook: pre-states drain to the Pagelog
        # before an evicted dirty page overwrites the db file (the same
        # ordering flush_all enforces at checkpoints).
        self.pager.pool.set_flush_hook(self.retro.on_flush)
        self._versions = VersionStore()
        # Serializes reader registration against the commit's
        # retain/install/timestamp-bump window: without it a reader
        # registering mid-commit could read a page installed at a
        # timestamp later than its own begin_ts (the version chain never
        # retained the image it needed).  Latch order:
        # StorageEngine._commit_latch -> {VersionStore._latch,
        # Pager._latch -> BufferPool._latch}.
        self._commit_latch = threading.RLock()
        # reader_id -> open ReadContext; the multi-session server reaps
        # contexts a crashed or disconnected client never closed.
        self._contexts: Dict[int, ReadContext] = {}
        self._next_txn_id = 1
        self._last_commit_ts = 0
        self._active_writer: Optional[Transaction] = None
        #: report of the last crash recovery (None on a clean open)
        self.last_recovery: Optional[RecoveryReport] = None
        if existing:
            self._recover()
        else:
            # Bootstrap checkpoint of a fresh database.
            self.checkpoint()  # replint: wal-exempt -- nothing committed yet, nothing to log

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a write transaction (single writer at a time).

        Concurrent sessions serialize *blocking* on the server's write
        gate before reaching here; this check is the non-blocking
        backstop that keeps the single-writer invariant explicit.
        """
        with self._commit_latch:
            if self._active_writer is not None \
                    and self._active_writer.is_active():
                raise TransactionError("another write transaction is active")
            txn = Transaction(
                txn_id=self._next_txn_id,
                begin_ts=self._last_commit_ts,
                first_new_page_id=self.pager.next_page_id,
            )
            self._next_txn_id += 1
            self._active_writer = txn
            return txn

    def page_source(self, txn: Transaction) -> TransactionPageSource:
        """The overlay-backed page source for ``txn``."""
        txn.ensure_active()
        return TransactionPageSource(
            txn,
            read_committed=self._fetch_committed,
            release_committed=lambda page: None,
            allocate_id=self.pager.allocate,
            page_size=self.page_size,
        )

    def commit(self, txn: Transaction,
               declare_snapshot: bool = False) -> Optional[int]:
        """Commit; returns the declared snapshot id if one was requested.

        Commit order (the Retro interposition point):
        1. COW-capture pre-states of pages first-modified since the last
           snapshot declaration;
        2. append after-images + commit seal to the WAL (durability);
        3. retain MVCC versions for active readers, install after-images;
        4. declare the snapshot (it reflects this transaction's updates).
        """
        txn.ensure_active()
        commit_ts = self._last_commit_ts + 1
        pages = txn.modified_pages()
        snapshot_id = (self.retro.latest_snapshot_id + 1
                       if declare_snapshot else 0)

        for page_id in pages:
            if page_id < txn.first_new_page_id:
                self.retro.capture_if_needed(
                    page_id,
                    lambda pid=page_id: self._committed_bytes(pid),
                )
        for page_id in txn.freed:
            # Freed pages may be reallocated and overwritten later; their
            # pre-state must survive for older snapshots.
            if page_id < txn.first_new_page_id:
                self.retro.capture_if_needed(
                    page_id,
                    lambda pid=page_id: self._committed_bytes(pid),
                )

        self.wal.log_commit(
            txn_id=txn.txn_id,
            commit_ts=commit_ts,
            pages=pages,
            freed=list(txn.freed),
            declared_snapshot=declare_snapshot,
            snapshot_id=snapshot_id,
            next_page_id=self.pager.next_page_id,
        )

        # Retain/install/bump is atomic with respect to reader
        # registration (begin_read takes the same latch): a reader can
        # never slot in between the retention decision and the install,
        # which would hand it a page newer than its begin_ts.
        with self._commit_latch:
            retain_needed = self._versions.active_reader_count > 0
            for page_id, image in pages.items():
                if retain_needed and page_id < txn.first_new_page_id:
                    old = self._committed_bytes(page_id)
                    self._versions.retain(page_id, old, commit_ts)
                self.pager.install(page_id, image)
            for page_id in txn.freed:
                self.pager.free(page_id)

            self._last_commit_ts = commit_ts
            txn.state = TxnState.COMMITTED
            self._active_writer = None

        if declare_snapshot:
            declared = self.retro.declare_snapshot()
            if declared != snapshot_id:
                raise StorageError("snapshot id drifted from WAL record")
            return declared
        return None

    def rollback(self, txn: Transaction) -> None:
        """Discard the transaction's overlay; fresh page ids are leaked
        (never reused) so pre-state capture can assume every reusable id
        has committed content."""
        txn.ensure_active()
        with self._commit_latch:
            txn.state = TxnState.ABORTED
            txn.overlay.clear()
            txn.dirty.clear()
            self._active_writer = None

    # ------------------------------------------------------------------
    # Read paths
    # ------------------------------------------------------------------

    def begin_read(self, owner: Optional[object] = None) -> ReadContext:
        """Register an MVCC reader at the current committed timestamp.

        The timestamp read and the registration are atomic with respect
        to commits (same latch as the commit's retain/install window).
        ``owner`` tags the context so a per-session facade can later
        find and release everything it left open.
        """
        with self._commit_latch:
            begin_ts = self._last_commit_ts
            reader_id = self._versions.register_reader(begin_ts,
                                                       owner=owner)
            try:
                context = ReadContext(self, begin_ts, reader_id,
                                      owner=owner)
                self._contexts[reader_id] = context
                return context
            except BaseException:
                # A registered reader pins version chains against
                # pruning; never leave it behind if the handle can't
                # reach the caller.
                self._versions.deregister_reader(reader_id)
                raise

    def _forget_context(self, reader_id: int) -> bool:
        """Drop a context from the open-reader registry; True if present."""
        with self._commit_latch:
            return self._contexts.pop(reader_id, None) is not None

    def open_read_contexts(self,
                           owner: Optional[object] = None
                           ) -> List[ReadContext]:
        """Open contexts, optionally only those tagged with ``owner``."""
        with self._commit_latch:
            return [c for c in self._contexts.values()
                    if owner is None or c.owner is owner]

    def release_read_contexts(self, owner: Optional[object] = None) -> int:
        """Close leftover read contexts (all, or one owner's); returns
        how many were still open.  The reaping path for session close,
        crashed clients, and leak-detecting teardown."""
        leaked = self.open_read_contexts(owner)
        for context in leaked:
            context.close()
        return len(leaked)

    def read_source(self, context: ReadContext) -> ReadOnlyPageSource:
        """Page source with a stable view as of ``context.begin_ts``."""
        def read_page(page_id: int) -> Page:
            return self._mvcc_read(page_id, context.begin_ts)

        return ReadOnlyPageSource(read_page, lambda page: None)

    def snapshot_source(self, snapshot_id: int, context: ReadContext,
                        use_skippy: bool = True):
        """Page source serving reads as of a declared snapshot.

        Pages shared with the current database resolve through MVCC at
        the reader's ``begin_ts`` so concurrent updates never interfere.
        """
        def read_current(page_id: int):
            return self._mvcc_read(page_id, context.begin_ts)

        return self.retro.snapshot_source(
            snapshot_id, read_current, self.page_size, use_skippy=use_skippy,
        )

    def _mvcc_read(self, page_id: int, begin_ts: int) -> Page:
        retained = self._versions.read(page_id, begin_ts)
        if retained is not None:
            return Page(page_id, bytearray(retained), self.page_size)
        return self._fetch_committed(page_id)

    def _fetch_committed(self, page_id: int) -> Page:
        return self.pager.pool.fetch(page_id, pin=False)

    def _committed_bytes(self, page_id: int) -> bytes:
        """Latest committed image of a page (pool first, then disk)."""
        if self.pager.pool.resident(page_id):
            return bytes(self.pager.pool.fetch(page_id, pin=False).data)
        return self.pager.read_committed_from_disk(page_id)

    # ------------------------------------------------------------------
    # Checkpoint & recovery
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Flush Retro pre-states, dirty pages, and the meta page.

        Treated as atomic by the simulation (a crash never lands mid-
        checkpoint); the WAL replay start only advances once everything
        the WAL covered is durable.
        """
        self.retro.on_flush()
        boundary = self.wal.sync_boundary()
        self.pager.set_root(_WAL_START_ROOT, boundary)
        self.pager.set_root(_LAST_TS_ROOT, self._last_commit_ts)
        # Durable Maplog extent at this checkpoint: recovery compares the
        # recovered log against these to tell replayable tail loss from
        # non-replayable corruption (see RetroManager.recover).
        self.pager.set_root(_MAPLOG_RECORDS_ROOT,
                            self.retro.maplog.records_written)
        self.pager.set_root(_SNAP_EPOCH_ROOT, self.retro.latest_snapshot_id)
        self.pager.checkpoint()

    def _recover(self) -> None:
        """Replay the WAL from the last checkpoint boundary.

        Retro's recovery interposition: pre-states that were pending in
        memory at the crash are re-captured from the (checkpointed)
        database file before replayed after-images overwrite them.
        """
        start_block = self.pager.get_root(_WAL_START_ROOT) or 0
        self._last_commit_ts = self.pager.get_root(_LAST_TS_ROOT) or 0
        self.retro.recover(
            self.disk,
            expected_records=self.pager.get_root(_MAPLOG_RECORDS_ROOT) or 0,
            checkpoint_epoch=self.pager.get_root(_SNAP_EPOCH_ROOT) or 0,
        )
        replayed = 0
        running_next = self.pager.next_page_id
        # Captures during replay must use the epoch in effect at each
        # transaction's ORIGINAL commit.  The recovered Maplog may
        # already be ahead of the replay position (a crash between a
        # checkpoint's Maplog flush and its meta write leaves durable
        # declares past the WAL boundary), so the epoch is tracked along
        # the replayed declare sequence, not read from the Maplog.
        replay_epoch = self.pager.get_root(_SNAP_EPOCH_ROOT) or 0
        for txn in self.wal.replay(start_block):
            for page_id in sorted(txn.pages):
                if page_id < running_next:
                    self.retro.capture_if_needed(
                        page_id,
                        lambda pid=page_id: self._committed_bytes(pid),
                        epoch=replay_epoch,
                    )
            for page_id in txn.freed:
                if page_id < running_next:
                    self.retro.capture_if_needed(
                        page_id,
                        lambda pid=page_id: self._committed_bytes(pid),
                        epoch=replay_epoch,
                    )
            for page_id, image in sorted(txn.pages.items()):
                self.pager.install(page_id, image)
            for page_id in txn.freed:
                self.pager.free(page_id)
            running_next = max(running_next, txn.next_page_id)
            self._sync_next_page_id(running_next)
            if txn.declared_snapshot:
                if txn.snapshot_id <= self.retro.latest_snapshot_id:
                    # Declaration already durable in the recovered
                    # Maplog: replaying it again would double-declare.
                    pass
                else:
                    declared = self.retro.declare_snapshot()
                    if declared != txn.snapshot_id:
                        raise StorageError(
                            f"recovered snapshot id {declared} != WAL "
                            f"{txn.snapshot_id}"
                        )
                replay_epoch = txn.snapshot_id
            self._last_commit_ts = max(self._last_commit_ts, txn.commit_ts)
            self._next_txn_id = max(self._next_txn_id, txn.txn_id + 1)
            replayed += 1
        self.last_recovery = RecoveryReport(
            replayed_txns=replayed,
            wal_status=self.wal.last_scan_status,
            maplog_status=self.retro.maplog.recovery_status,
            unavailable_snapshots=self.retro.unavailable_snapshots(),
        )
        self.checkpoint()

    def _sync_next_page_id(self, next_page_id: int) -> None:
        state = self.pager.allocation_state()
        if int(state["next"]) < next_page_id:  # type: ignore[arg-type]
            state["next"] = next_page_id
            self.pager.restore_allocation_state(state)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def last_commit_ts(self) -> int:
        return self._last_commit_ts

    def database_pages(self) -> int:
        return self.pager.page_count

    def crash(self) -> SimulatedDisk:
        """Simulate power loss: drop all volatile state, return the disk.

        The engine object must not be used afterwards; reopen the disk
        with a fresh ``StorageEngine`` to run recovery.
        """
        self.pager.pool.drop_all()
        return self.disk
