"""Transactional page store: the Berkeley DB substrate."""

from repro.storage.btree import BTree, MutablePageSource
from repro.storage.disk import CostModel, DeviceStats, SimulatedDisk
from repro.storage.engine import ReadContext, StorageEngine
from repro.storage.page import DEFAULT_PAGE_SIZE, Page
from repro.storage.record import (
    decode_key,
    decode_record,
    encode_key,
    encode_record,
)

__all__ = [
    "BTree",
    "CostModel",
    "DEFAULT_PAGE_SIZE",
    "DeviceStats",
    "MutablePageSource",
    "Page",
    "ReadContext",
    "SimulatedDisk",
    "StorageEngine",
    "decode_key",
    "decode_record",
    "encode_key",
    "encode_record",
]
