"""ChaosDisk: deterministic crash-point and corruption injection.

A :class:`ChaosDisk` is a drop-in :class:`~repro.storage.disk.SimulatedDisk`
whose files route every durable write through a shared
:class:`ChaosController`.  The controller can

* **crash** at the N-th write across *all* files (simulated power loss:
  :class:`~repro.errors.SimulatedCrash` is raised, and until
  :meth:`ChaosController.power_on` every later write is silently dropped
  — a powered-off device persists nothing);
* **tear** the crashing write: a deterministic prefix of the slot bytes
  is persisted and the remainder filled with seeded garbage, modelling a
  sector-level partial write;
* **corrupt** durable slots after the fact (bit flips, truncation) via
  the module-level helpers, for the Hypothesis corruption properties.

Everything is deterministic in ``(seed, crash ordinal)`` so a failing
crash point reproduces exactly.

Typical harness shape (see :mod:`repro.chaos` for the full oracle)::

    disk = ChaosDisk(page_size, seed=7)
    total = run_workload(disk)            # count the write boundaries
    for k in range(1, total + 1):
        disk = ChaosDisk(page_size, seed=7)
        disk.schedule_crash(at_write=k, tear=True)
        try:
            run_workload(disk)
        except SimulatedCrash:
            pass
        disk.power_on()
        check_recovery(Database(disk=disk))
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Optional

from repro.errors import SimulatedCrash, StorageError
from repro.storage.disk import CostModel, DiskFile, SimulatedDisk

__all__ = [
    "ChaosController",
    "ChaosDisk",
    "ChaosFile",
    "SimulatedCrash",
    "flip_bit",
    "corrupt_slot",
    "tear_slot",
    "truncate_file",
]


class ChaosController:
    """Shared fault schedule + write counter for one or more disks.

    Passing the same controller to several :class:`ChaosDisk` objects
    (e.g. a Database's main and aux disks) makes the crash ordinal count
    writes across all of them, so a sweep covers every boundary of the
    whole deployment.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        # One controller may sit under every worker thread's disk: the
        # schedule and counters are latched (reentrant: ``on_write``
        # runs ``persist`` while holding it).
        self._latch = threading.RLock()
        #: durable writes performed while powered on
        self.write_count = 0
        #: writes silently swallowed while powered off
        self.dropped_writes = 0
        self.crash_at: Optional[int] = None
        self.tear = False
        self.powered_off = False
        #: description of the last injected fault (for failure reports)
        self.last_event = ""

    def __getstate__(self) -> dict:
        # Locks can't be copied or pickled (the sweep harness deep-copies
        # whole disks per crash point); the copy gets a fresh latch.
        state = self.__dict__.copy()
        state.pop("_latch", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._latch = threading.RLock()

    # -- scheduling ------------------------------------------------------

    def schedule_crash(self, at_write: int, tear: bool = False) -> None:
        """Crash (power off) at the ``at_write``-th write from now (1-based).

        With ``tear=True`` the crashing write persists a random prefix of
        its bytes; otherwise it persists nothing.
        """
        if at_write < 1:
            raise StorageError("crash ordinal must be >= 1")
        with self._latch:
            self.crash_at = self.write_count + at_write
            self.tear = tear

    def power_on(self) -> None:
        """Clear power-off state and any pending schedule (pre-recovery)."""
        with self._latch:
            self.powered_off = False
            self.crash_at = None

    @property
    def armed(self) -> bool:
        return self.crash_at is not None and not self.powered_off

    # -- the write interposition point ----------------------------------

    def on_write(self, file: DiskFile, raw: bytes,
                 persist: Callable[[bytes], object]) -> object:
        """Route one durable write, applying the fault schedule.

        ``persist`` performs the real write when invoked; it may be
        called with mangled bytes (torn write) or not at all (clean
        crash / powered off).
        """
        with self._latch:
            if self.powered_off:
                self.dropped_writes += 1
                return None
            self.write_count += 1
            if self.crash_at is not None \
                    and self.write_count >= self.crash_at:
                self.powered_off = True
                self.crash_at = None
                detail = f"write #{self.write_count} to {file.name!r}"
                if self.tear:
                    keep = self._rng.randrange(1, len(raw))
                    garbage = bytes(
                        self._rng.getrandbits(8)
                        for _ in range(len(raw) - keep)
                    )
                    persist(raw[:keep] + garbage)
                    self.last_event = \
                        f"torn crash at {detail} (kept {keep}B)"
                else:
                    self.last_event = f"clean crash at {detail}"
                raise SimulatedCrash(
                    f"simulated power loss: {self.last_event}")
            return persist(raw)


class ChaosFile(DiskFile):
    """A :class:`DiskFile` whose writes pass through a ChaosController."""

    def __init__(self, name: str, page_size: int, stats,
                 append_only: bool, controller: ChaosController) -> None:
        super().__init__(name, page_size, stats, append_only)
        self._controller = controller

    def append(self, raw: bytes) -> int:
        self._check(raw)
        slot = self._controller.on_write(
            self, bytes(raw), lambda data: DiskFile.append(self, data))
        if slot is None:
            # Powered off: the caller's slot arithmetic keeps advancing,
            # but the in-memory engine is about to be discarded anyway.
            return len(self._pages)
        return slot  # type: ignore[return-value]

    def write(self, slot: int, raw: bytes) -> None:
        self._check(raw)
        self._controller.on_write(
            self, bytes(raw), lambda data: DiskFile.write(self, slot, data))


class ChaosDisk(SimulatedDisk):
    """A SimulatedDisk whose files inject scheduled faults."""

    def __init__(self, page_size: int,
                 cost_model: Optional[CostModel] = None,
                 seed: int = 0,
                 controller: Optional[ChaosController] = None) -> None:
        super().__init__(page_size, cost_model)
        self.chaos = controller if controller is not None \
            else ChaosController(seed)

    def _make_file(self, name: str, append_only: bool) -> DiskFile:
        return ChaosFile(name, self.page_size, self.stats, append_only,
                         self.chaos)

    # -- conveniences mirrored from the controller -----------------------

    @property
    def write_count(self) -> int:
        return self.chaos.write_count

    def schedule_crash(self, at_write: int, tear: bool = False) -> None:
        self.chaos.schedule_crash(at_write, tear=tear)

    def power_on(self) -> None:
        self.chaos.power_on()


# ---------------------------------------------------------------------------
# Post-hoc corruption helpers (bit rot / fuzzing, not crash simulation).
# They reach into DiskFile._pages on purpose: corruption bypasses the
# write interposition exactly like real media decay bypasses the driver.
# ---------------------------------------------------------------------------

def _slot_bytes(file: DiskFile, slot: int) -> bytes:
    if not 0 <= slot < len(file._pages):
        raise StorageError(f"{file.name}: slot {slot} out of range")
    return file._pages[slot]


def corrupt_slot(file: DiskFile, slot: int, data: bytes) -> None:
    """Replace a durable slot's bytes wholesale (must stay page-sized)."""
    _slot_bytes(file, slot)
    if len(data) != file.page_size:
        raise StorageError("corrupt_slot requires a full page image")
    file._pages[slot] = bytes(data)


def flip_bit(file: DiskFile, slot: int, bit_index: int) -> None:
    """Flip one bit of a durable slot."""
    raw = bytearray(_slot_bytes(file, slot))
    byte, bit = divmod(bit_index % (len(raw) * 8), 8)
    raw[byte] ^= 1 << bit
    file._pages[slot] = bytes(raw)


def tear_slot(file: DiskFile, slot: int, keep: int,
              filler: int = 0) -> None:
    """Keep a prefix of a durable slot, filling the rest with ``filler``."""
    raw = _slot_bytes(file, slot)
    keep = max(0, min(keep, len(raw)))
    file._pages[slot] = raw[:keep] + bytes([filler & 0xFF]) * (len(raw) - keep)


def truncate_file(file: DiskFile, length: int) -> None:
    """Drop every slot at index >= ``length`` (media-level truncation)."""
    file.truncate(length)
