"""Page-level multi-version concurrency control.

Retro runs snapshot queries as read-only MVCC transactions so they never
block, and are never blocked by, update transactions (paper Section 4).
This module provides the version retention that makes that possible:

* every transaction gets a ``begin_ts`` (the last commit timestamp);
* when a commit replaces a page that some active reader may still need,
  the replaced image is retained in a version chain;
* readers resolve a page to the newest version with
  ``replaced_at > begin_ts`` (i.e. the version that was current when the
  reader began), falling back to the live page;
* chains are pruned as the oldest active reader advances.

Latching: reader registration and version chains are guarded by a
leaf-level reentrant latch so parallel snapshot workers can register,
read, and deregister concurrently with each other (and with commits
retaining versions).  The latch never wraps a call into another latched
component, keeping the global latch order (RPL011) acyclic.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import TransactionError


class VersionStore:
    """Retains superseded page images for active readers."""

    def __init__(self) -> None:
        # page_id -> ascending list of (replaced_at_ts, image). An entry
        # means: `image` was the committed content for all timestamps in
        # [previous_replaced_at, replaced_at).
        self._chains: Dict[int, List[Tuple[int, bytes]]] = {}
        self._active_readers: Dict[int, int] = {}  # reader id -> begin_ts
        # reader id -> opaque owner token (a session/database facade);
        # lets a multi-session server attribute and reap leaked readers.
        self._reader_owners: Dict[int, object] = {}
        self._next_reader_id = 1
        self._latch = threading.RLock()
        #: retained version count, exposed for tests/metrics
        self.retained_versions = 0

    # -- reader registration ------------------------------------------------

    def register_reader(self, begin_ts: int,
                        owner: Optional[object] = None) -> int:
        """Track an active reader; returns a handle for deregistering."""
        with self._latch:
            reader_id = self._next_reader_id
            self._next_reader_id += 1
            self._active_readers[reader_id] = begin_ts
            if owner is not None:
                self._reader_owners[reader_id] = owner
            return reader_id

    def deregister_reader(self, reader_id: int) -> None:
        with self._latch:
            if reader_id not in self._active_readers:
                raise TransactionError(f"unknown reader handle {reader_id}")
            del self._active_readers[reader_id]
            self._reader_owners.pop(reader_id, None)
            self.prune()

    def readers_for(self, owner: object) -> List[int]:
        """Active reader handles registered under ``owner``."""
        with self._latch:
            return [rid for rid, who in self._reader_owners.items()
                    if who is owner]

    def oldest_active_ts(self) -> Optional[int]:
        with self._latch:
            if not self._active_readers:
                return None
            return min(self._active_readers.values())

    @property
    def active_reader_count(self) -> int:
        return len(self._active_readers)

    # -- version retention ------------------------------------------------------

    def retain(self, page_id: int, old_image: bytes, replaced_at: int) -> None:
        """Retain a replaced page image if any active reader may need it."""
        with self._latch:
            oldest = self.oldest_active_ts()
            if oldest is None or oldest >= replaced_at:
                return
            chain = self._chains.setdefault(page_id, [])
            chain.append((replaced_at, old_image))
            self.retained_versions += 1

    def read(self, page_id: int, begin_ts: int) -> Optional[bytes]:
        """Image visible at ``begin_ts``, or None if the live page is."""
        with self._latch:
            chain = self._chains.get(page_id)
            if not chain:
                return None
            for replaced_at, image in chain:
                if replaced_at > begin_ts:
                    return image
            return None

    # -- pruning ---------------------------------------------------------------

    def prune(self) -> None:
        """Drop versions no active reader can still see."""
        with self._latch:
            oldest = self.oldest_active_ts()
            if oldest is None:
                dropped = sum(len(c) for c in self._chains.values())
                self._chains.clear()
                self.retained_versions -= dropped
                return
            empty: Set[int] = set()
            for page_id, chain in self._chains.items():
                keep = [(ts, img) for ts, img in chain if ts > oldest]
                self.retained_versions -= len(chain) - len(keep)
                if keep:
                    self._chains[page_id] = keep
                else:
                    empty.add(page_id)
            for page_id in empty:
                del self._chains[page_id]
