"""Block-structured record logs.

The WAL and the Retro Maplog both append variable-size records to an
append-only :class:`~repro.storage.disk.DiskFile` whose unit is a fixed
page-size block.  :class:`BlockLogWriter` frames records (length-prefixed,
allowed to span blocks) and flushes full blocks; :class:`BlockLogReader`
reassembles them.

A record is ``<u32 length><payload>``.  A zero length marks end-of-log
padding inside the final flushed block, after which parsing resumes at the
next block boundary.
"""

from __future__ import annotations

import struct
from typing import Iterator, List

from repro.errors import StorageError
from repro.storage.disk import DiskFile

_LEN = struct.Struct("<I")


class BlockLogWriter:
    """Appends length-prefixed records to a block-oriented file."""

    def __init__(self, log_file: DiskFile) -> None:
        if not log_file.append_only:
            raise StorageError("block logs require an append-only file")
        self._file = log_file
        self._buffer = bytearray()
        #: Number of records appended over the writer's lifetime.
        self.records_written = 0

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)

    def append(self, payload: bytes) -> int:
        """Buffer one record; returns its record sequence number.

        Zero-length payloads are rejected: a zero length on disk is the
        padding sentinel.
        """
        if not payload:
            raise StorageError("block-log records must be non-empty")
        block = self._file.page_size
        # Never let a record header straddle a block boundary: the reader
        # treats a sub-header-size block tail as padding.  The buffer always
        # starts block-aligned (full blocks drain immediately), so its
        # length is the in-block offset of the next header.
        tail_room = block - len(self._buffer)
        if tail_room < _LEN.size:
            self._buffer += bytes(tail_room)
        self._buffer += _LEN.pack(len(payload))
        self._buffer += payload
        seq = self.records_written
        self.records_written += 1
        block = self._file.page_size
        while len(self._buffer) >= block:
            self._file.append(bytes(self._buffer[:block]))
            del self._buffer[:block]
        return seq

    def flush(self) -> None:
        """Force any buffered tail out as a zero-padded block.

        The zero padding parses as a zero record length, which tells the
        reader to skip to the next block boundary.
        """
        if self._buffer:
            block = self._file.page_size
            tail = bytes(self._buffer) + bytes(block - len(self._buffer))
            self._file.append(tail)
            self._buffer.clear()

    def sync_boundary(self) -> int:
        """Flush and return the durable block count (for checkpoints)."""
        self.flush()
        return len(self._file)


class BlockLogReader:
    """Iterates records out of a block log written by BlockLogWriter."""

    def __init__(self, log_file: DiskFile) -> None:
        self._file = log_file

    def records(self, start_block: int = 0) -> Iterator[bytes]:
        """Yield record payloads from ``start_block`` to the end.

        ``start_block`` must be a block boundary at which a record starts
        (e.g. a value previously returned by ``sync_boundary``).  The scan
        charges one log read per block, matching the device cost model.
        """
        block = self._file.page_size
        stream = bytearray()
        for raw in self._file.scan(start_block):
            stream += raw
        pos = 0
        end = len(stream)
        while pos + _LEN.size <= end:
            remaining_in_block = block - (pos % block)
            if remaining_in_block < _LEN.size:
                # Too few bytes left in this block to hold a header: the
                # writer padded them, so skip to the next block boundary.
                pos += remaining_in_block
                continue
            (length,) = _LEN.unpack_from(stream, pos)
            if length == 0:
                # Padding: resume at the next block boundary.
                pos = ((pos // block) + 1) * block
                continue
            pos += _LEN.size
            if pos + length > end:
                raise StorageError("truncated record at end of log")
            yield bytes(stream[pos:pos + length])
            pos += length


def read_all_records(log_file: DiskFile, start_block: int = 0) -> List[bytes]:
    """Convenience: materialize all records from ``start_block``."""
    return list(BlockLogReader(log_file).records(start_block))
