"""Block-structured record logs with per-block checksums.

The WAL and the Retro Maplog both append variable-size records to an
append-only :class:`~repro.storage.disk.DiskFile` whose unit is a fixed
page-size block.  :class:`BlockLogWriter` frames records (length-prefixed,
allowed to span blocks) and flushes full blocks; :class:`BlockLogReader`
reassembles them.

A record is ``<u32 length><payload>``.  A zero length marks end-of-log
padding inside the final flushed block, after which parsing resumes at the
next block boundary.

Every durable block ends with the 8-byte trailer from
:mod:`repro.storage.checksums` (CRC32 + format epoch), so the usable
payload area of a block is ``page_size - TRAILER.size``.  On read the
recovery rule is *truncate-don't-guess*:

* a run of invalid blocks at the **tail** is a torn write — the log is
  logically truncated there and the loss is reported via
  :class:`LogScanStatus` (WAL semantics make the drop safe: any record
  in a torn tail never had its durability acknowledged);
* an invalid block **followed by a valid one** cannot be a torn write —
  that is corruption of acknowledged data and raises
  :class:`~repro.errors.CorruptPageError`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import CorruptPageError, StorageError, TornWriteError
from repro.storage import checksums
from repro.storage.disk import DiskFile

_LEN = struct.Struct("<I")


def payload_capacity(page_size: int) -> int:
    """Usable record bytes per block (page size minus the CRC trailer)."""
    capacity = page_size - checksums.TRAILER.size
    if capacity <= _LEN.size:
        raise StorageError(
            f"page size {page_size} too small for checksummed block logs"
        )
    return capacity


@dataclass
class LogScanStatus:
    """What a checksum-verified scan found besides the records."""

    blocks_scanned: int = 0
    #: invalid blocks at the tail, treated as torn and truncated
    truncated_blocks: int = 0
    #: a record spanning into the truncated/unwritten tail was dropped
    dropped_partial_record: bool = False

    @property
    def torn(self) -> bool:
        return self.truncated_blocks > 0 or self.dropped_partial_record

    def raise_if_torn(self, what: str) -> None:
        if self.torn:
            raise TornWriteError(
                f"{what}: torn tail ({self.truncated_blocks} truncated "
                f"block(s), partial record dropped: "
                f"{self.dropped_partial_record})"
            )


class BlockLogWriter:
    """Appends length-prefixed records to a block-oriented file."""

    def __init__(self, log_file: DiskFile) -> None:
        if not log_file.append_only:
            raise StorageError("block logs require an append-only file")
        self._file = log_file
        self._capacity = payload_capacity(log_file.page_size)
        self._buffer = bytearray()
        #: Number of records appended over the writer's lifetime.
        self.records_written = 0

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)

    def append(self, payload: bytes) -> int:
        """Buffer one record; returns its record sequence number.

        Zero-length payloads are rejected: a zero length on disk is the
        padding sentinel.
        """
        if not payload:
            raise StorageError("block-log records must be non-empty")
        capacity = self._capacity
        # Never let a record header straddle a payload boundary: the
        # reader treats a sub-header-size payload tail as padding.  The
        # buffer always starts block-aligned (full blocks drain
        # immediately), so its length is the in-block offset of the next
        # header.
        tail_room = capacity - len(self._buffer)
        if tail_room < _LEN.size:
            self._buffer += bytes(tail_room)
        self._buffer += _LEN.pack(len(payload))
        self._buffer += payload
        seq = self.records_written
        self.records_written += 1
        while len(self._buffer) >= capacity:
            self._file.append(
                checksums.seal_block(bytes(self._buffer[:capacity])))
            del self._buffer[:capacity]
        return seq

    def flush(self) -> None:
        """Force any buffered tail out as a zero-padded sealed block.

        The zero padding parses as a zero record length, which tells the
        reader to skip to the next block boundary.
        """
        if self._buffer:
            payload = bytes(self._buffer) \
                + bytes(self._capacity - len(self._buffer))
            self._file.append(checksums.seal_block(payload))
            self._buffer.clear()

    def sync_boundary(self) -> int:
        """Flush and return the durable block count (for checkpoints)."""
        self.flush()
        return len(self._file)


class BlockLogReader:
    """Iterates records out of a block log written by BlockLogWriter."""

    def __init__(self, log_file: DiskFile) -> None:
        self._file = log_file
        self._capacity = payload_capacity(log_file.page_size)

    def scan(self, start_block: int = 0) -> Tuple[List[bytes],
                                                  LogScanStatus]:
        """Record payloads from ``start_block``, checksum-verified.

        ``start_block`` must be a block boundary at which a record starts
        (e.g. a value previously returned by ``sync_boundary``).  The scan
        charges one log read per block, matching the device cost model.

        Invalid tail blocks are truncated (reported in the status);
        invalid blocks followed by valid ones raise
        :class:`~repro.errors.CorruptPageError`.
        """
        status = LogScanStatus()
        blocks: List[bytes] = []
        first_bad = -1
        for raw in self._file.scan(start_block):
            status.blocks_scanned += 1
            if checksums.verification_enabled() \
                    and not checksums.block_is_valid(raw):
                if first_bad < 0:
                    first_bad = len(blocks)
                continue
            if first_bad >= 0:
                raise CorruptPageError(
                    f"{self._file.name}: block "
                    f"{start_block + first_bad} failed its checksum but "
                    f"later blocks are valid — mid-log corruption, not a "
                    f"torn tail"
                )
            blocks.append(raw[:self._capacity])
        if first_bad >= 0:
            status.truncated_blocks = status.blocks_scanned - first_bad
        return self._parse(blocks, status), status

    def records(self, start_block: int = 0) -> Iterator[bytes]:
        """Yield record payloads from ``start_block`` to the end."""
        records, _ = self.scan(start_block)
        return iter(records)

    def _parse(self, blocks: List[bytes],
               status: LogScanStatus) -> List[bytes]:
        capacity = self._capacity
        stream = b"".join(blocks)
        records: List[bytes] = []
        pos = 0
        end = len(stream)
        while pos + _LEN.size <= end:
            remaining_in_block = capacity - (pos % capacity)
            if remaining_in_block < _LEN.size:
                # Too few bytes left in this block to hold a header: the
                # writer padded them, so skip to the next block boundary.
                pos += remaining_in_block
                continue
            (length,) = _LEN.unpack_from(stream, pos)
            if length == 0:
                # Padding: resume at the next block boundary.
                pos = ((pos // capacity) + 1) * capacity
                continue
            pos += _LEN.size
            if pos + length > end:
                # The record continues into blocks that were torn away
                # (or never written): its durability was never
                # acknowledged, so dropping it is the truncate-don't-
                # guess rule, not data loss.
                status.dropped_partial_record = True
                break
            records.append(stream[pos:pos + length])
            pos += length
        return records


def read_all_records(log_file: DiskFile, start_block: int = 0) -> List[bytes]:
    """Convenience: materialize all records from ``start_block``."""
    return list(BlockLogReader(log_file).records(start_block))
