"""Page allocation and access for the current-state database.

The pager owns page 0 (the meta page), the free list, and the buffer pool.
It is also the *fetch interposition point* the Retro snapshot system relies
on: every page read from the SQL layer goes through a
:class:`PageSource`, and snapshot queries simply substitute a snapshot
reader for the pager (see :mod:`repro.retro.manager`).

Meta page layout (after the shared page header)::

    magic u32 | seq u64 | crc u32 | next_page_id u64 | free_count u32
    | free ids u64... | root_count u32 | (name, page_id) record pairs

``crc`` is the CRC32 of the whole page computed with the crc field
zeroed; ``seq`` increments on every meta write.  When the pager is given
a dedicated ``meta_file`` (the engine path) it ping-pongs writes between
the file's slots 0 and 1 and loads the valid copy with the highest seq,
so a torn meta write (crash mid-checkpoint) falls back to the previous
checkpoint's meta instead of bricking the store.  Without a meta file
(unit tests, legacy layout) the meta lives at database page 0 as a
single checksummed copy.

The free list and named roots are small at our simulation scale; if they
ever outgrow the meta page the pager raises rather than corrupting it.

Latching: allocation state (next id, free list, roots) is guarded by a
reentrant latch.  The global latch order is ``Pager._latch ->
BufferPool._latch`` (RPL011 checks it): pager methods may call into the
pool while latched, never the reverse.
"""

from __future__ import annotations

import struct
import threading
from typing import Callable, Dict, List, Optional

from repro.errors import CorruptPageError, ReproError, StorageError
from repro.storage import checksums
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskFile
from repro.storage.page import HEADER_SIZE, PAGE_TYPE_META, Page
from repro.storage.record import decode_record, encode_record

_MAGIC = 0x52514C21  # "RQL!"
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

META_PAGE_ID = 0


class PageSource:
    """Read-only page access protocol shared by pager and snapshot reader."""

    def fetch(self, page_id: int) -> Page:
        raise NotImplementedError

    def release(self, page: Page) -> None:
        """Drop a reference obtained from :meth:`fetch` (default no-op)."""


class Pager(PageSource):
    """Allocates, frees and fetches current-state database pages."""

    def __init__(self, db_file: DiskFile, pool_capacity: int = 4096,
                 meta_file: Optional[DiskFile] = None) -> None:
        self._file = db_file
        self._meta_file = meta_file
        self.pool = BufferPool(db_file, pool_capacity)
        self._latch = threading.RLock()
        self._next_page_id = 1
        self._free: List[int] = []
        self._roots: Dict[str, int] = {}
        self._meta_seq = 0
        existing = (len(meta_file) > 0 if meta_file is not None
                    else len(db_file) > 0)
        if existing:
            self._load_meta()
        else:
            if meta_file is not None and len(db_file) == 0:
                # Reserve db slot 0 so page id 0 keeps existing (and
                # stays un-allocatable) even though the meta now lives
                # in its own file.
                db_file.write(META_PAGE_ID, bytes(db_file.page_size))
            # Fresh database: materialize the meta page.
            self.write_meta()

    # -- meta page -----------------------------------------------------------

    _CRC_OFFSET = HEADER_SIZE + _U32.size + _U64.size  # after magic + seq

    def _encode_meta(self) -> bytes:
        buf = bytearray(self._file.page_size)
        page = Page(META_PAGE_ID, buf, self._file.page_size)
        page.page_type = PAGE_TYPE_META
        pos = HEADER_SIZE
        _U32.pack_into(buf, pos, _MAGIC)
        pos += _U32.size
        _U64.pack_into(buf, pos, self._meta_seq)
        pos += _U64.size
        crc_pos = pos
        _U32.pack_into(buf, pos, 0)  # crc placeholder
        pos += _U32.size
        _U64.pack_into(buf, pos, self._next_page_id)
        pos += _U64.size
        _U32.pack_into(buf, pos, len(self._free))
        pos += _U32.size
        for pid in self._free:
            _U64.pack_into(buf, pos, pid)
            pos += _U64.size
        roots = encode_record(
            [v for kv in sorted(self._roots.items()) for v in kv]
        )
        if pos + _U32.size + len(roots) > len(buf):
            raise StorageError("meta page overflow (free list too large)")
        _U32.pack_into(buf, pos, len(roots))
        pos += _U32.size
        buf[pos:pos + len(roots)] = roots
        _U32.pack_into(buf, crc_pos, checksums.page_crc(bytes(buf)))
        return bytes(buf)

    def _parse_meta(self, raw: bytes) -> int:
        """Load allocation state + roots from one meta image.

        Returns the image's seq.  Raises CorruptPageError when the magic
        or checksum does not match (a torn or rotted meta write).
        """
        pos = HEADER_SIZE
        (magic,) = _U32.unpack_from(raw, pos)
        if magic != _MAGIC:
            raise CorruptPageError("database meta page has bad magic")
        pos += _U32.size
        (seq,) = _U64.unpack_from(raw, pos)
        pos += _U64.size
        (crc,) = _U32.unpack_from(raw, pos)
        pos += _U32.size
        if checksums.verification_enabled():
            zeroed = bytearray(raw)
            _U32.pack_into(zeroed, self._CRC_OFFSET, 0)
            if crc != checksums.page_crc(bytes(zeroed)):
                raise CorruptPageError(
                    "database meta page failed its checksum")
        (self._next_page_id,) = _U64.unpack_from(raw, pos)
        pos += _U64.size
        (nfree,) = _U32.unpack_from(raw, pos)
        pos += _U32.size
        self._free = []
        for _ in range(nfree):
            (pid,) = _U64.unpack_from(raw, pos)
            pos += _U64.size
            self._free.append(pid)
        (rlen,) = _U32.unpack_from(raw, pos)
        pos += _U32.size
        flat = decode_record(raw[pos:pos + rlen])
        self._roots = {
            str(flat[i]): int(flat[i + 1]) for i in range(0, len(flat), 2)
        }
        self._meta_seq = seq
        return seq

    def _load_meta(self) -> None:
        if self._meta_file is None:
            self._parse_meta(self._file.read(META_PAGE_ID))
            return
        # Dual-slot meta: pick the valid copy with the highest seq.  A
        # torn write can damage at most the slot being written, so the
        # other slot always holds the previous checkpoint's meta.
        best_raw: Optional[bytes] = None
        best_seq = -1
        for slot in range(min(2, len(self._meta_file))):
            raw = self._meta_file.read(slot)
            try:
                probe = Pager.__new__(Pager)
                probe._meta_file = self._meta_file
                seq = probe._parse_meta(raw)
            except (ReproError, struct.error):
                continue
            if seq > best_seq:
                best_seq, best_raw = seq, raw
        if best_raw is None:
            raise CorruptPageError(
                "no valid meta copy: both slots failed validation")
        self._parse_meta(best_raw)

    def write_meta(self) -> None:
        """Persist allocation state + roots (called at checkpoint).

        With a dedicated meta file the write ping-pongs between slots so
        the previous copy survives a torn write; the seq field tells the
        loader which copy is newest.
        """
        with self._latch:
            self._meta_seq += 1
            image = self._encode_meta()
            if self._meta_file is not None:
                self._meta_file.write(self._meta_seq % 2, image)
            else:
                self._file.write(META_PAGE_ID, image)

    # -- named roots -----------------------------------------------------------

    def get_root(self, name: str) -> Optional[int]:
        return self._roots.get(name)

    def set_root(self, name: str, page_id: Optional[int]) -> None:
        with self._latch:
            if page_id is None:
                self._roots.pop(name, None)
            else:
                self._roots[name] = page_id

    def root_names(self) -> List[str]:
        return sorted(self._roots)

    # -- allocation --------------------------------------------------------------

    @property
    def next_page_id(self) -> int:
        return self._next_page_id

    @property
    def page_count(self) -> int:
        """Number of allocated pages (including meta, excluding freed)."""
        return self._next_page_id - len(self._free)

    def allocate(self) -> int:
        with self._latch:
            if self._free:
                return self._free.pop()
            pid = self._next_page_id
            self._next_page_id += 1
            return pid

    def free(self, page_id: int) -> None:
        if page_id == META_PAGE_ID:
            raise StorageError("cannot free the meta page")
        with self._latch:
            self._free.append(page_id)

    def allocation_state(self) -> Dict[str, object]:
        """Allocation info recorded in WAL commit records for recovery."""
        return {"next": self._next_page_id, "free": list(self._free)}

    def restore_allocation_state(self, state: Dict[str, object]) -> None:
        with self._latch:
            self._next_page_id = int(state["next"])  # type: ignore[arg-type]
            self._free = [int(x) for x in state["free"]]  # type: ignore[union-attr]

    # -- page access --------------------------------------------------------------

    def fetch(self, page_id: int) -> Page:
        return self.pool.fetch(page_id)

    def release(self, page: Page) -> None:
        self.pool.unpin(page)

    def create_page(self, page_id: int) -> Page:
        return self.pool.create(page_id)

    def install(self, page_id: int, raw: bytes) -> None:
        """Install committed page bytes (commit-time write path)."""
        self.pool.put_raw(page_id, raw)

    def checkpoint(self, extra_flush: Optional[Callable[[], None]] = None) -> None:
        """Flush dirty pages + meta to the database file."""
        with self._latch:
            if extra_flush is not None:
                extra_flush()
            self.pool.flush_all()
            self.write_meta()

    def read_committed_from_disk(self, page_id: int) -> bytes:
        """Bypass the pool and read the on-disk (checkpointed) image.

        Used during recovery to recapture COW pre-states that were lost
        with the in-memory Retro buffer.
        """
        return self._file.read(page_id)
