"""Write-ahead log.

Commit durability: before a transaction's after-images are installed in
the buffer pool, they are appended to the WAL together with a sealing
commit record.  Recovery replays committed transactions from the last
checkpoint boundary (stored in the pager meta page).

Record formats (record-codec encoded tuples):

* ``("P", txn_id, page_id, image)`` — after-image of one page
* ``("F", txn_id, page_id)``        — page freed by the transaction
* ``("C", txn_id, commit_ts, declared, snapshot_id, next_page_id)`` —
  commit seal; ``declared`` is 1 when the transaction ended with
  ``COMMIT WITH SNAPSHOT`` and ``snapshot_id`` is the id it produced.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import RecoveryError
from repro.storage.disk import DiskFile
from repro.storage.logfile import BlockLogReader, BlockLogWriter, LogScanStatus
from repro.storage.record import decode_record, encode_record


@dataclass
class CommittedTxn:
    """One committed transaction reconstructed from the WAL."""

    txn_id: int
    commit_ts: int
    declared_snapshot: bool
    snapshot_id: int
    next_page_id: int
    pages: Dict[int, bytes] = field(default_factory=dict)
    freed: List[int] = field(default_factory=list)


class WriteAheadLog:
    """Appends commit groups and replays them for recovery."""

    def __init__(self, wal_file: DiskFile) -> None:
        self._file = wal_file
        self._writer = BlockLogWriter(wal_file)
        #: scan status of the most recent replay (torn-tail reporting)
        self.last_scan_status: Optional[LogScanStatus] = None
        # Leaf latch in the global order: log_commit never calls into the
        # pager or pool, so commit groups stay contiguous without
        # participating in the Pager -> BufferPool ordering.
        self._latch = threading.RLock()

    def log_commit(self, txn_id: int, commit_ts: int,
                   pages: Dict[int, bytes], freed: List[int],
                   declared_snapshot: bool, snapshot_id: int,
                   next_page_id: int) -> None:
        """Append one transaction's after-images + commit seal, durably."""
        with self._latch:
            for page_id, image in sorted(pages.items()):
                self._writer.append(
                    encode_record(["P", txn_id, page_id, image]))
            for page_id in freed:
                self._writer.append(encode_record(["F", txn_id, page_id]))
            self._writer.append(encode_record([
                "C", txn_id, commit_ts,
                1 if declared_snapshot else 0, snapshot_id, next_page_id,
            ]))
            self._writer.flush()

    def sync_boundary(self) -> int:
        """Durable block count — recorded by checkpoints."""
        return self._writer.sync_boundary()

    def replay(self, start_block: int = 0) -> List[CommittedTxn]:
        """Committed transactions in commit order from start_block.

        Page/free records belonging to transactions without a commit seal
        (a crash mid-commit-group) are dropped, matching WAL semantics.
        A checksum-invalid tail is likewise truncated (its contents were
        never acknowledged durable) and reported via
        :attr:`last_scan_status`; mid-log corruption raises
        :class:`~repro.errors.CorruptPageError` from the reader.
        """
        pending_pages: Dict[int, Dict[int, bytes]] = {}
        pending_freed: Dict[int, List[int]] = {}
        committed: List[CommittedTxn] = []
        reader = BlockLogReader(self._file)
        records, status = reader.scan(start_block)
        self.last_scan_status = status
        for raw in records:
            rec = decode_record(raw)
            kind = rec[0]
            if kind == "P":
                _, txn_id, page_id, image = rec
                pending_pages.setdefault(int(txn_id), {})[int(page_id)] = bytes(image)  # type: ignore[arg-type]
            elif kind == "F":
                _, txn_id, page_id = rec
                pending_freed.setdefault(int(txn_id), []).append(int(page_id))  # type: ignore[arg-type]
            elif kind == "C":
                _, txn_id, commit_ts, declared, snap_id, next_pid = rec
                txn_id = int(txn_id)  # type: ignore[arg-type]
                committed.append(CommittedTxn(
                    txn_id=txn_id,
                    commit_ts=int(commit_ts),  # type: ignore[arg-type]
                    declared_snapshot=bool(declared),
                    snapshot_id=int(snap_id),  # type: ignore[arg-type]
                    next_page_id=int(next_pid),  # type: ignore[arg-type]
                    pages=pending_pages.pop(txn_id, {}),
                    freed=pending_freed.pop(txn_id, []),
                ))
            else:
                raise RecoveryError(f"unknown WAL record kind {kind!r}")
        return committed

    def block_count(self) -> int:
        return len(self._file)
