"""LRU buffer pool over the database file.

The pool caches :class:`~repro.storage.page.Page` objects for the current
database.  Two interposition points matter to the Retro snapshot system
(Section 4 of the paper):

* ``on_flush`` fires before dirty pages are written back, which is where
  Retro drains its accumulated pre-states to the Pagelog;
* page *fetches* for snapshot queries do **not** come through this pool at
  all — the snapshot manager redirects them to the snapshot page cache —
  so this pool only ever holds current-state pages, mirroring the paper's
  "database is memory resident" assumption when capacity is large enough.

Latching: the page table is guarded by a per-pool reentrant latch.  The
global latch order is ``Pager._latch -> BufferPool._latch`` (RPL011
checks it): the pool never calls back into the pager while holding its
own latch.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import BufferPoolError
from repro.storage.disk import DiskFile
from repro.storage.page import Page


class BufferPoolStats:
    """Hit/miss/eviction counters for one pool."""

    __slots__ = ("hits", "misses", "evictions", "writebacks")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferPool:
    """Fixed-capacity LRU cache of database pages.

    Pages are pinned while in use; only unpinned pages are evictable.
    Dirty pages are written back to ``db_file`` on eviction and on
    :meth:`flush_all` (checkpoint).
    """

    def __init__(self, db_file: DiskFile, capacity: int = 1024,
                 on_flush: Optional[Callable[[], None]] = None) -> None:
        if capacity < 1:
            raise BufferPoolError("buffer pool capacity must be >= 1")
        self._file = db_file
        self._capacity = capacity
        self._pages: "OrderedDict[int, Page]" = OrderedDict()
        self._on_flush = on_flush
        self._latch = threading.RLock()
        self.stats = BufferPoolStats()

    # -- configuration ------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    def set_flush_hook(self, hook: Optional[Callable[[], None]]) -> None:
        self._on_flush = hook

    # -- page access --------------------------------------------------------

    def fetch(self, page_id: int, pin: bool = True) -> Page:
        """Return the page, reading from disk on a miss."""
        with self._latch:
            page = self._pages.get(page_id)
            if page is not None:
                self.stats.hits += 1
                self._pages.move_to_end(page_id)
            else:
                self.stats.misses += 1
                raw = self._file.read(page_id)
                page = Page(page_id, bytearray(raw), self._file.page_size)
                self._admit(page)
            if pin:
                page.pin_count += 1
            return page

    def create(self, page_id: int, pin: bool = True) -> Page:
        """Materialize a brand-new zeroed page (not read from disk)."""
        with self._latch:
            if page_id in self._pages:
                raise BufferPoolError(f"page {page_id} already resident")
            page = Page(page_id, page_size=self._file.page_size)
            page.dirty = True
            self._admit(page)
            if pin:
                page.pin_count += 1
            return page

    def unpin(self, page: Page) -> None:
        with self._latch:
            if page.pin_count <= 0:
                raise BufferPoolError(f"page {page.page_id} is not pinned")
            page.pin_count -= 1

    def put_raw(self, page_id: int, raw: bytes) -> None:
        """Install committed bytes for ``page_id`` (commit-time install)."""
        with self._latch:
            page = self._pages.get(page_id)
            if page is None:
                page = Page(page_id, bytearray(raw), self._file.page_size)
                page.dirty = True
                self._admit(page)
            else:
                page.load(raw)
                page.dirty = True
                self._pages.move_to_end(page_id)

    def resident(self, page_id: int) -> bool:
        with self._latch:
            return page_id in self._pages

    def resident_ids(self) -> List[int]:
        with self._latch:
            return list(self._pages)

    # -- eviction / flushing --------------------------------------------------

    def _admit(self, page: Page) -> None:
        while len(self._pages) >= self._capacity:
            self._evict_one()
        self._pages[page.page_id] = page

    # replint: wal-exempt -- evicted pages only became dirty via install()/put_raw, after commit already WAL-logged their images
    def _evict_one(self) -> None:
        for page_id, page in self._pages.items():
            if page.pin_count == 0:
                if page.dirty:
                    if self._on_flush is not None:
                        # Same ordering rule as flush_all: Retro's pending
                        # pre-states must reach the Pagelog before the
                        # current-state page overwrites the db file, or a
                        # post-crash re-capture would read the new bytes.
                        self._on_flush()
                    self._writeback(page)
                del self._pages[page_id]
                self.stats.evictions += 1
                return
        raise BufferPoolError("all buffer pool pages are pinned")

    def _writeback(self, page: Page) -> None:
        self._file.write(page.page_id, bytes(page.data))
        page.dirty = False
        self.stats.writebacks += 1

    def flush_all(self) -> None:
        """Checkpoint: write every dirty page back to the database file.

        Fires the ``on_flush`` hook first so Retro can drain pre-states to
        the Pagelog before the corresponding current-state pages go out.
        """
        with self._latch:
            if self._on_flush is not None:
                self._on_flush()
            for page in self._pages.values():
                if page.dirty:
                    self._writeback(page)

    def drop_all(self) -> None:
        """Discard the pool without writing back (crash simulation)."""
        with self._latch:
            self._pages.clear()

    def dirty_pages(self) -> Iterable[Page]:
        with self._latch:
            return [p for p in self._pages.values() if p.dirty]
