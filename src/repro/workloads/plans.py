"""Golden-plan corpus: SELECT statements with certified plan renderings.

Every entry pairs one SELECT (over the corpus schema — TPC-H + LoggedIn
+ SnapIds, see :func:`repro.workloads.corpus.corpus_schema`) with the
declared ANALYZE statistics it plans under, the exact plan rendering
:func:`repro.sql.planner.render_plan` must produce, and the RQL11N
rules planlint must assign it.  The corpus serves three consumers:

* the golden-plan tests (``tests/analysis/test_planlint.py``) certify
  each entry and compare rendering and rule set;
* ``repro.cli lint --queries`` re-certifies the corpus on every run
  (:func:`repro.analysis.query.planlint.plan_corpus_findings`), so a
  cost-model change that silently flips an access path fails CI as
  RQL110 drift until this file is updated deliberately;
* the differential gate (``tests/sql/test_plan_equivalence.py``) runs
  stats-driven and heuristic plans side by side and demands identical
  result sets.

Statistics are *declared*, not gathered: entries must stay stable
without a database, and a few deliberately carry corrupt statistics
(reversed domains, impossible page counts) to pin the RQL114 arms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.sql.stats import ColumnStats, DeclaredStats, TableStats


@dataclass(frozen=True)
class PlanEntry:
    """One SELECT with its certified golden plan."""

    name: str
    sql: str
    stats: Tuple[TableStats, ...] = ()
    latest_snapshot: Optional[int] = None  #: enables RQL112 staleness
    golden: Tuple[str, ...] = ()           #: render_plan output, pinned
    expected_rules: Tuple[str, ...] = ()   #: RQL11N set planlint assigns


def _table(name: str, snapshot: int, rows: int, pages: int,
           **columns: Tuple[int, object, object]) -> TableStats:
    """Shorthand: ``col=(distinct, min, max)`` -> :class:`TableStats`."""
    return TableStats(
        table=name, snapshot_id=snapshot, row_count=rows,
        page_count=pages,
        columns={
            column: ColumnStats(column=column, distinct=distinct,
                                min_value=lo, max_value=hi)
            for column, (distinct, lo, hi) in columns.items()
        },
    )


#: orders at a plausible TPC-H scale (0.001): PK dense in [1, 1500].
_ORDERS = _table(
    "orders", 3, 1500, 60,
    o_orderkey=(1500, 1, 1500),
    o_custkey=(100, 1, 150),
    o_totalprice=(1400, 900.0, 480000.0),
)

#: lineitem: big enough that RQL111 fires for an unindexed sargable
#: predicate (row_count >= the scale threshold).
_LINEITEM = _table(
    "lineitem", 3, 6000, 240,
    l_orderkey=(1500, 1, 1500),
    l_quantity=(50, 1, 50),
    l_extendedprice=(5800, 900.0, 95000.0),
    l_discount=(11, 0.0, 0.1),
)

_CUSTOMER = _table(
    "customer", 3, 1500, 50,
    c_custkey=(1500, 1, 1500),
    c_mktsegment=(5, None, None),
)

#: deliberately corrupt: 10 rows can't fill 10000 pages, so the seq
#: scan costs out absurdly high and an index probe "wins" even for a
#: predicate spanning the whole [0, 10] domain (raw selectivity 1.0).
_ORDERS_CORRUPT = _table(
    "orders", 3, 10, 10000,
    o_orderkey=(10, 0, 10),
)


PLAN_CORPUS: Tuple[PlanEntry, ...] = (
    PlanEntry(
        # No statistics at all: heuristic scan + RQL112 fallback note,
        # with the AS OF pin surfacing in the rendering.
        name="loggedin-heuristic-asof",
        sql="SELECT AS OF 3 l_userid FROM LoggedIn "
            "WHERE l_country = 'DK'",
        golden=(
            "AS OF snapshot (Retro SPT + snapshot cache)",
            "SCAN LoggedIn",
            "COST: LoggedIn no statistics (heuristic access path)",
        ),
        expected_rules=("RQL112",),
    ),
    PlanEntry(
        # TPC-H Q6 shape: the predicate is sargable but nothing indexes
        # l_quantity, and at 6000 rows the scan is certifiably
        # expensive -> RQL111 (the statistics-backed RQL104 upgrade).
        name="tpch-q6-unindexed-scan",
        sql="SELECT SUM(l_extendedprice * l_discount) AS revenue "
            "FROM lineitem WHERE l_quantity < 24",
        stats=(_LINEITEM,),
        golden=(
            "SCAN lineitem",
            "AGGREGATE (hash group-by)",
            "COST: lineitem est. rows 2816.33 est. pages 240 "
            "cost 300 via seq scan",
        ),
        expected_rules=("RQL111",),
    ),
    PlanEntry(
        # Point lookup on the PK: the cost model picks the index probe
        # (2.01) over 60 sequential pages.
        name="tpch-orders-pk-probe",
        sql="SELECT o_totalprice FROM orders WHERE o_orderkey = 7",
        stats=(_ORDERS,),
        golden=(
            "SEARCH orders USING INDEX __pk_orders (=)",
            "COST: orders est. rows 1 est. pages 1 "
            "cost 2.01 via index __pk_orders (=)",
        ),
    ),
    PlanEntry(
        # Narrow PK range: ~3 of 1500 rows, still far under the
        # seq-scan crossover.
        name="tpch-orders-pk-range",
        sql="SELECT o_totalprice FROM orders "
            "WHERE o_orderkey BETWEEN 10 AND 12",
        stats=(_ORDERS,),
        golden=(
            "SEARCH orders USING INDEX __pk_orders (range)",
            "COST: orders est. rows 2.00133 est. pages 1 "
            "cost 3.02135 via index __pk_orders (range)",
        ),
    ),
    PlanEntry(
        # TPC-H Q3 shape: cost-based outer choice and native-index join
        # sides, with the unindexed c_mktsegment filter at scale.
        name="tpch-q3-join-order",
        sql="SELECT o.o_orderkey, "
            "SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue "
            "FROM customer c, orders o, lineitem l "
            "WHERE c.c_mktsegment = 'BUILDING' "
            "AND c.c_custkey = o.o_custkey "
            "AND l.l_orderkey = o.o_orderkey "
            "GROUP BY o.o_orderkey",
        stats=(_CUSTOMER, _ORDERS, _LINEITEM),
        golden=(
            "SCAN c",
            "SEARCH o USING AUTOMATIC COVERING INDEX (o_custkey=?)",
            "SEARCH l USING INDEX __pk_lineitem (l_orderkey=?)",
            "AGGREGATE (hash group-by)",
            "COST: c est. rows 300 est. pages 50 "
            "cost 65 via seq scan",
            "COST: o est. rows 15 est. pages 1 "
            "cost 91.15 via automatic index join",
            "COST: l est. rows 4 est. pages 1 "
            "cost 5.04 via index __pk_lineitem join",
        ),
        expected_rules=("RQL111",),
    ),
    PlanEntry(
        # Statistics exist but predate the latest declared snapshot:
        # the staleness arm of RQL112.
        name="tpch-orders-stale-stats",
        sql="SELECT o_custkey FROM orders WHERE o_orderkey = 7",
        stats=(_ORDERS,),
        latest_snapshot=5,
        golden=(
            "SEARCH orders USING INDEX __pk_orders (=)",
            "COST: orders est. rows 1 est. pages 1 "
            "cost 2.01 via index __pk_orders (=)",
        ),
        expected_rules=("RQL112",),
    ),
    PlanEntry(
        # Corrupt statistics: 10 rows / 10000 pages make the seq scan
        # cost 10000, so an index probe wins a filter-nothing range ->
        # RQL114's zero-selectivity arm.
        name="tpch-orders-corrupt-stats",
        sql="SELECT o_custkey FROM orders "
            "WHERE o_orderkey BETWEEN 0 AND 10",
        stats=(_ORDERS_CORRUPT,),
        golden=(
            "SEARCH orders USING INDEX __pk_orders (range)",
            "COST: orders est. rows 10 est. pages 10000 "
            "cost 11.1 via index __pk_orders (range)",
        ),
        expected_rules=("RQL114",),
    ),
)


def plan_schema():
    """The schema every corpus entry plans against."""
    from repro.workloads.corpus import corpus_schema

    return corpus_schema()


def certify_plan_entry(entry: PlanEntry, schema=None):
    """Certify one corpus entry (against :func:`plan_schema` by default)."""
    from repro.analysis.query.planlint import certify_plan

    return certify_plan(
        entry.sql,
        schema if schema is not None else plan_schema(),
        DeclaredStats(entry.stats),
        file=f"<plans:{entry.name}>", symbol=entry.name,
        golden=entry.golden or None,
        latest_snapshot=entry.latest_snapshot,
    )
