"""Workloads: TPC-H dbgen/refresh and the LoggedIn example."""

from repro.workloads.driver import (
    UW7_5,
    UW15,
    UW30,
    UW60,
    WORKLOADS,
    SnapshotHistoryBuilder,
    UpdateWorkload,
)
from repro.workloads.loggedin import (
    LOGGEDIN_DDL,
    LoggedInSimulator,
    setup_paper_example,
)

__all__ = [
    "LOGGEDIN_DDL",
    "LoggedInSimulator",
    "SnapshotHistoryBuilder",
    "UW15",
    "UW30",
    "UW60",
    "UW7_5",
    "UpdateWorkload",
    "WORKLOADS",
    "setup_paper_example",
]
