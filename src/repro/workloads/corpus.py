"""Golden rqlint corpus: mechanism invocations with certified verdicts.

Every entry pairs one RQL mechanism invocation (Qs, Qq, argument) with
the merge class and RQL1NN rules rqlint must assign it.  The corpus
serves three consumers:

* the golden-verdict tests (``tests/analysis/test_rqlint_corpus.py``)
  certify each entry against :data:`CORPUS_SCHEMA` and compare;
* the differential gate (``tests/core/test_parallel_certificates.py``)
  *runs* every ``runnable`` entry serially and at ``workers=4`` and
  asserts byte-identical results for mergeable verdicts — a false
  "mergeable" verdict fails there, not in review;
* ``repro.cli lint --queries`` includes the corpus in every run, so a
  rule regression shows up in CI output immediately.

Entries deliberately reuse the paper's workloads: TPC-H Q1/Q3/Q6 shapes
(:mod:`repro.workloads.tpch.queries`) and the LoggedIn running example
(:mod:`repro.workloads.loggedin`).  Aggregated values are integer-valued
on purpose — float addition is non-associative, and the differential
gate demands *byte* equality between serial and partitioned merges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.workloads.loggedin import LOGGEDIN_DDL
from repro.workloads.tpch.schema import ALL_DDL

#: SnapIds lives in the aux engine at runtime; the static corpus schema
#: only needs its shape (see :mod:`repro.core.snapids`).
SNAPIDS_DDL = ("CREATE TABLE SnapIds (snap_id INTEGER PRIMARY KEY, "
               "snap_ts TEXT, snap_name TEXT)")

#: Qs over the first 8 snapshots of the TPC-H history fixture.
QS_TPCH = ("SELECT snap_id FROM SnapIds "
           "WHERE snap_id BETWEEN 1 AND 8 ORDER BY snap_id")
#: Qs over the paper's three LoggedIn snapshots.
QS_PAPER = ("SELECT snap_id FROM SnapIds "
            "WHERE snap_id >= 1 AND snap_id <= 3 ORDER BY snap_id")


@dataclass(frozen=True)
class CorpusEntry:
    """One mechanism invocation with its certified golden verdict."""

    name: str
    workload: str        #: "tpch" or "loggedin" (which fixture runs it)
    mechanism: str
    qs: str
    qq: str
    expected_class: str
    expected_rules: Tuple[str, ...] = ()
    arg: object = None   #: agg_func string or col/func pair list
    runnable: bool = True  #: include in the differential gate


CORPUS: Tuple[CorpusEntry, ...] = (
    # -- TPC-H: mergeable ---------------------------------------------------
    CorpusEntry(
        name="tpch-q6-revenue-history",
        workload="tpch",
        mechanism="CollateData",
        qs=QS_TPCH,
        qq="SELECT current_snapshot() AS sid, "
           "SUM(l_extendedprice * l_discount) AS revenue "
           "FROM lineitem WHERE l_quantity < 24",
        expected_class="concat",
        expected_rules=("RQL104",),  # no index leads with l_quantity
    ),
    CorpusEntry(
        name="tpch-q6-quantity-total",
        workload="tpch",
        mechanism="AggregateDataInVariable",
        qs=QS_TPCH,
        qq="SELECT SUM(l_quantity) AS qty FROM lineitem "
           "WHERE l_quantity < 24",
        arg="sum",
        expected_class="monoid",
        expected_rules=("RQL104",),
    ),
    CorpusEntry(
        name="tpch-q1-pricing-summary",
        workload="tpch",
        mechanism="AggregateDataInTable",
        qs=QS_TPCH,
        qq="SELECT l_returnflag, l_linestatus, "
           "SUM(l_quantity) AS sum_qty, COUNT(*) AS count_order "
           "FROM lineitem GROUP BY l_returnflag, l_linestatus",
        arg=[("sum_qty", "sum"), ("count_order", "count")],
        expected_class="stored-row",
    ),
    CorpusEntry(
        name="tpch-q3-shipping-priority",
        workload="tpch",
        mechanism="CollateData",
        qs=QS_TPCH,
        qq="SELECT o.o_orderkey, "
           "SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue "
           "FROM customer c, orders o, lineitem l "
           "WHERE c.c_mktsegment = 'BUILDING' "
           "AND c.c_custkey = o.o_custkey "
           "AND l.l_orderkey = o.o_orderkey "
           "GROUP BY o.o_orderkey ORDER BY revenue DESC LIMIT 10",
        expected_class="concat",
        # c_mktsegment has no leading index; ORDER BY/LIMIT are
        # per-snapshot inside a concat merge.
        expected_rules=("RQL104", "RQL105"),
    ),
    # -- TPC-H: serial-only -------------------------------------------------
    CorpusEntry(
        name="tpch-serial-median",
        workload="tpch",
        mechanism="AggregateDataInVariable",
        qs=QS_TPCH,
        qq="SELECT COUNT(*) AS n FROM orders",
        arg="median",
        expected_class="serial-only",
        expected_rules=("RQL101",),
    ),
    CorpusEntry(
        name="tpch-serial-group-concat-pairs",
        workload="tpch",
        mechanism="AggregateDataInTable",
        qs=QS_TPCH,
        qq="SELECT l_linestatus, GROUP_CONCAT(l_returnflag) AS flags "
           "FROM lineitem GROUP BY l_linestatus",
        arg=[("flags", "group_concat")],
        expected_class="serial-only",
        expected_rules=("RQL102",),
    ),
    # -- LoggedIn (paper Figures 1-3): mergeable ----------------------------
    CorpusEntry(
        name="loggedin-user-history",
        workload="loggedin",
        mechanism="CollateData",
        qs=QS_PAPER,
        qq="SELECT DISTINCT l_userid, current_snapshot() FROM LoggedIn",
        expected_class="concat",
    ),
    CorpusEntry(
        name="loggedin-session-intervals",
        workload="loggedin",
        mechanism="CollateDataIntoIntervals",
        qs=QS_PAPER,
        qq="SELECT DISTINCT l_userid FROM LoggedIn",
        expected_class="interval-stitch",
    ),
    CorpusEntry(
        name="loggedin-peak-users",
        workload="loggedin",
        mechanism="AggregateDataInVariable",
        qs=QS_PAPER,
        qq="SELECT COUNT(*) AS online FROM LoggedIn",
        arg="max",
        expected_class="monoid",
    ),
    CorpusEntry(
        name="loggedin-avg-online",
        workload="loggedin",
        mechanism="AggregateDataInVariable",
        qs=QS_PAPER,
        qq="SELECT COUNT(*) AS online FROM LoggedIn",
        arg="avg",
        expected_class="monoid",
    ),
    CorpusEntry(
        name="loggedin-country-counts",
        workload="loggedin",
        mechanism="AggregateDataInTable",
        qs=QS_PAPER,
        qq="SELECT l_country, COUNT(*) AS online FROM LoggedIn "
           "GROUP BY l_country",
        arg=[("online", "sum")],
        expected_class="stored-row",
    ),
    # -- LoggedIn: warnings that stay mergeable -----------------------------
    CorpusEntry(
        name="loggedin-unbounded-history",
        workload="loggedin",
        mechanism="CollateData",
        qs="SELECT snap_id FROM SnapIds ORDER BY snap_id",
        qq="SELECT DISTINCT l_userid, current_snapshot() FROM LoggedIn",
        expected_class="concat",
        expected_rules=("RQL103",),
    ),
    CorpusEntry(
        name="loggedin-empty-range",
        workload="loggedin",
        mechanism="CollateData",
        qs="SELECT snap_id FROM SnapIds "
           "WHERE snap_id > 3 AND snap_id < 2",
        qq="SELECT l_userid FROM LoggedIn",
        expected_class="concat",
        expected_rules=("RQL103",),
    ),
    CorpusEntry(
        name="loggedin-ordered-roster",
        workload="loggedin",
        mechanism="CollateData",
        qs=QS_PAPER,
        qq="SELECT l_userid FROM LoggedIn ORDER BY l_userid",
        expected_class="concat",
        expected_rules=("RQL105",),
    ),
    # -- LoggedIn: serial-only / hygiene ------------------------------------
    CorpusEntry(
        name="loggedin-workers-knob",
        workload="loggedin",
        mechanism="CollateData",
        qs=QS_PAPER,
        qq="SELECT l_userid, rql_workers() FROM LoggedIn",
        expected_class="serial-only",
        expected_rules=("RQL106",),
    ),
    CorpusEntry(
        name="loggedin-asof-qq",
        workload="loggedin",
        mechanism="CollateData",
        qs=QS_PAPER,
        qq="SELECT AS OF 2 l_userid FROM LoggedIn",
        expected_class="concat",
        expected_rules=("RQL100",),
        runnable=False,  # the rewriter owns AS OF; hygiene error only
    ),
)


def corpus_schema():
    """A :class:`~repro.sql.semantic.StaticSchema` covering the corpus.

    TPC-H + LoggedIn + SnapIds DDL, plus the session-registered
    functions a live :class:`~repro.sql.semantic.CatalogSchema` would
    know about.
    """
    from repro.sql.semantic import StaticSchema

    schema = StaticSchema()
    for _name, ddl in ALL_DDL:
        schema.add_ddl(ddl)
    schema.add_ddl(LOGGEDIN_DDL)
    schema.add_ddl(SNAPIDS_DDL)
    for name in ("current_snapshot", "snapshot_id", "rql_workers"):
        schema.add_function(name)
    return schema


def certify_entry(entry: CorpusEntry, schema=None):
    """Certify one corpus entry (against :func:`corpus_schema` by default)."""
    from repro.analysis.query.mergeclass import certify_mechanism

    return certify_mechanism(
        entry.mechanism, entry.qs, entry.qq, arg=entry.arg,
        schema=schema if schema is not None else corpus_schema(),
        file=f"<corpus:{entry.name}>", symbol=entry.name,
    )


def run_entry(session, entry: CorpusEntry, table: str,
              workers: Optional[int] = None):
    """Execute one corpus entry through the session mechanism API."""
    canonical = entry.mechanism.replace("_", "").lower()
    if canonical == "collatedata":
        return session.collate_data(entry.qs, entry.qq, table,
                                    workers=workers)
    if canonical == "aggregatedatainvariable":
        return session.aggregate_data_in_variable(
            entry.qs, entry.qq, table, str(entry.arg), workers=workers)
    if canonical == "aggregatedataintable":
        return session.aggregate_data_in_table(
            entry.qs, entry.qq, table, entry.arg, workers=workers)
    if canonical == "collatedataintointervals":
        return session.collate_data_into_intervals(
            entry.qs, entry.qq, table, workers=workers)
    from repro.errors import MechanismError
    raise MechanismError(f"unknown mechanism {entry.mechanism!r}")
