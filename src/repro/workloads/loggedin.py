"""The paper's running LoggedIn example (Figures 1-3).

A tiny session-tracking workload: users log in and out; every snapshot
captures who is logged in.  Used by the quickstart example and the
integration tests that replay the paper's Section 2 examples verbatim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.session import RQLSession

LOGGEDIN_DDL = """
CREATE TABLE LoggedIn (
    l_userid  TEXT,
    l_time    TEXT,
    l_country TEXT
)
"""

#: The exact state transitions of the paper's Figures 1-3.
PAPER_SNAPSHOTS: List[Tuple[str, List[str]]] = [
    ("2008-11-09 23:59:59", ["UserA", "UserB", "UserC"]),
    ("2008-11-10 23:59:59", ["UserB", "UserC"]),
    ("2008-11-11 23:59:59", ["UserB", "UserC", "UserD"]),
]


def setup_paper_example(session: RQLSession) -> List[int]:
    """Create the LoggedIn table and replay Figure 3 exactly.

    Returns the three snapshot ids (1, 2, 3 in a fresh session).
    """
    session.execute(LOGGEDIN_DDL)
    session.execute(
        "INSERT INTO LoggedIn VALUES "
        "('UserA', '2008-11-09 13:23:44', 'USA'), "
        "('UserB', '2008-11-09 15:45:21', 'UK'), "
        "('UserC', '2008-11-09 15:45:21', 'USA')"
    )
    ids = []
    # Declare snapshot S1 (empty declaring transaction).
    session.execute("BEGIN")
    ids.append(session.commit_with_snapshot(timestamp="2008-11-09 23:59:59"))
    # Update table and declare snapshot S2.
    session.execute("BEGIN")
    session.execute("DELETE FROM LoggedIn WHERE l_userid = 'UserA'")
    ids.append(session.commit_with_snapshot(timestamp="2008-11-10 23:59:59"))
    # Update table and declare snapshot S3.
    session.execute("BEGIN")
    session.execute(
        "INSERT INTO LoggedIn (l_userid, l_time, l_country) "
        "VALUES ('UserD', '2008-11-11 10:08:04', 'UK')"
    )
    ids.append(session.commit_with_snapshot(timestamp="2008-11-11 23:59:59"))
    return ids


@dataclass
class LoggedInSimulator:
    """A randomized login/logout churn generator for larger histories."""

    session: RQLSession
    users: int = 200
    countries: Tuple[str, ...] = ("USA", "UK", "FR", "DE", "JP", "BR")
    seed: int = 11
    _rng: random.Random = field(init=False)
    _online: Dict[str, str] = field(init=False, default_factory=dict)
    _clock: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self.session.execute(LOGGEDIN_DDL)

    def _timestamp(self) -> str:
        self._clock += 37
        minutes, seconds = divmod(self._clock, 60)
        hours, minutes = divmod(minutes, 60)
        days, hours = divmod(hours, 24)
        return (f"2008-11-{9 + days:02d} "
                f"{hours:02d}:{minutes:02d}:{seconds:02d}")

    def churn_and_snapshot(self, logins: int, logouts: int,
                           name: Optional[str] = None) -> int:
        """Apply random logins/logouts, then declare a snapshot."""
        rng = self._rng
        self.session.execute("BEGIN")
        for _ in range(logouts):
            if not self._online:
                break
            user = rng.choice(sorted(self._online))
            del self._online[user]
            self.session.execute(
                f"DELETE FROM LoggedIn WHERE l_userid = '{user}'"
            )
        offline: Set[str] = {
            f"User{i:04d}" for i in range(self.users)
        } - set(self._online)
        for _ in range(min(logins, len(offline))):
            user = rng.choice(sorted(offline))
            offline.discard(user)
            country = rng.choice(self.countries)
            ts = self._timestamp()
            self._online[user] = country
            self.session.execute(
                f"INSERT INTO LoggedIn VALUES "
                f"('{user}', '{ts}', '{country}')"
            )
        return self.session.commit_with_snapshot(
            name=name, timestamp=self._timestamp(),
        )

    @property
    def online_users(self) -> Dict[str, str]:
        return dict(self._online)
