"""TPC-H: schema, deterministic dbgen, refresh functions."""

from repro.workloads.tpch.dbgen import GeneratorConfig, TpchGenerator
from repro.workloads.tpch.refresh import RefreshFunctions
from repro.workloads.tpch.queries import (
    Q1_PRICING_SUMMARY,
    q3,
    q6,
    retrospective,
)
from repro.workloads.tpch.schema import ALL_DDL, scaled_cardinality

__all__ = [
    "ALL_DDL",
    "Q1_PRICING_SUMMARY",
    "q3",
    "q6",
    "retrospective",
    "GeneratorConfig",
    "RefreshFunctions",
    "TpchGenerator",
    "scaled_cardinality",
]
