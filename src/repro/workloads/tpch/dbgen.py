"""dbgen: deterministic TPC-H data generation at any scale factor.

The paper builds its 1.4 GB database with the official ``dbgen`` at the
default scale (SF 1).  A pure-Python simulation cannot chew gigabytes in
benchmark loops, so the generator is *scale-faithful* instead of
byte-faithful: every cardinality, key range and value domain follows the
TPC-H spec proportionally, which preserves everything the evaluation
depends on (update-workload fractions, overwrite-cycle lengths, query
selectivities).  See DESIGN.md §2 for the substitution argument.

All randomness flows from one seeded :class:`random.Random`, so a given
(scale_factor, seed) pair always generates the identical database.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.sql.database import Database
from repro.workloads.tpch import text
from repro.workloads.tpch.schema import ALL_DDL, scaled_cardinality

START_DATE = (1992, 1, 1)
END_DATE = (1998, 8, 2)


def _date_ordinal(year: int, month: int, day: int) -> int:
    import datetime

    return datetime.date(year, month, day).toordinal()


_START_ORD = _date_ordinal(*START_DATE)
_END_ORD = _date_ordinal(*END_DATE)


def random_date(rng: random.Random, max_ordinal: Optional[int] = None) -> str:
    import datetime

    hi = max_ordinal if max_ordinal is not None else _END_ORD
    ordinal = rng.randint(_START_ORD, hi)
    return datetime.date.fromordinal(ordinal).isoformat()


def date_plus(date_iso: str, days: int) -> str:
    import datetime

    return (datetime.date.fromisoformat(date_iso)
            + datetime.timedelta(days=days)).isoformat()


@dataclass
class GeneratorConfig:
    scale_factor: float = 0.002
    seed: int = 7
    #: average lineitems per order (spec: uniform 1..7)
    max_lines_per_order: int = 7


class TpchGenerator:
    """Generates and loads a TPC-H database; also used by refresh."""

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        self.config = config or GeneratorConfig()
        self.rng = random.Random(self.config.seed)
        sf = self.config.scale_factor
        self.part_count = scaled_cardinality("part", sf)
        self.supplier_count = scaled_cardinality("supplier", sf)
        self.customer_count = scaled_cardinality("customer", sf)
        self.orders_count = scaled_cardinality("orders", sf)
        #: next orderkey for refresh inserts (monotonic, like RF1)
        self.next_orderkey = self.orders_count + 1

    # ------------------------------------------------------------------
    # Row generators
    # ------------------------------------------------------------------

    def region_rows(self) -> Iterator[Tuple]:
        for key, name in enumerate(text.REGIONS):
            yield (key, name, text.random_comment(self.rng))

    def nation_rows(self) -> Iterator[Tuple]:
        for key, (name, region) in enumerate(text.NATIONS):
            yield (key, name, region, text.random_comment(self.rng))

    def supplier_rows(self) -> Iterator[Tuple]:
        rng = self.rng
        for key in range(1, self.supplier_count + 1):
            nation = rng.randrange(len(text.NATIONS))
            yield (
                key, f"Supplier#{key:09d}",
                text.random_comment(rng, 3),
                nation, text.random_phone(rng, nation),
                round(rng.uniform(-999.99, 9999.99), 2),
                text.random_comment(rng),
            )

    def part_rows(self) -> Iterator[Tuple]:
        rng = self.rng
        for key in range(1, self.part_count + 1):
            yield (
                key, text.random_part_name(rng), rng.choice(text.MFGRS),
                rng.choice(text.BRANDS), text.random_type(rng),
                rng.randint(1, 50), text.random_container(rng),
                round(90000 + (key % 200001) / 10 + 100 * (key % 1000), 2)
                / 100,
                text.random_comment(rng),
            )

    def customer_rows(self) -> Iterator[Tuple]:
        rng = self.rng
        for key in range(1, self.customer_count + 1):
            nation = rng.randrange(len(text.NATIONS))
            yield (
                key, f"Customer#{key:09d}",
                text.random_comment(rng, 3), nation,
                text.random_phone(rng, nation),
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(text.SEGMENTS),
                text.random_comment(rng),
            )

    def order_with_lines(self, orderkey: int) -> Tuple[Tuple, List[Tuple]]:
        """One orders row + its lineitem rows (shared by load and RF1)."""
        rng = self.rng
        custkey = rng.randint(1, self.customer_count)
        orderdate = random_date(rng, _END_ORD - 151)
        lines: List[Tuple] = []
        total = 0.0
        open_lines = 0
        line_count = rng.randint(1, self.config.max_lines_per_order)
        for line_number in range(1, line_count + 1):
            partkey = rng.randint(1, self.part_count)
            suppkey = rng.randint(1, self.supplier_count)
            quantity = float(rng.randint(1, 50))
            extended = round(quantity * rng.uniform(900.0, 1100.0), 2)
            discount = round(rng.uniform(0.0, 0.10), 2)
            tax = round(rng.uniform(0.0, 0.08), 2)
            shipdate = date_plus(orderdate, rng.randint(1, 121))
            commitdate = date_plus(orderdate, rng.randint(30, 90))
            receiptdate = date_plus(shipdate, rng.randint(1, 30))
            shipped = shipdate <= "1998-08-02" and rng.random() < 0.5
            linestatus = "F" if shipped else "O"
            if linestatus == "O":
                open_lines += 1
            returnflag = (rng.choice(["R", "A"])
                          if receiptdate <= "1995-06-17" else "N")
            total += extended * (1 + tax) * (1 - discount)
            lines.append((
                orderkey, partkey, suppkey, line_number, quantity,
                extended, discount, tax, returnflag, linestatus,
                shipdate, commitdate, receiptdate,
                rng.choice(text.SHIP_MODES), text.random_comment(rng, 4),
            ))
        if open_lines == 0:
            status = "F"
        elif open_lines == len(lines):
            status = "O"
        else:
            status = "P"
        order = (
            orderkey, custkey, status, round(total, 2), orderdate,
            rng.choice(text.PRIORITIES),
            text.random_clerk(rng, self.config.scale_factor),
            0, text.random_comment(rng),
        )
        return order, lines

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self, db: Database, batch_rows: int = 2000) -> None:
        """Create the schema and load every table (engine bulk path)."""
        for _, ddl in ALL_DDL:
            db.execute(ddl)
        self._bulk_insert(db, "region", self.region_rows(), batch_rows)
        self._bulk_insert(db, "nation", self.nation_rows(), batch_rows)
        self._bulk_insert(db, "supplier", self.supplier_rows(), batch_rows)
        self._bulk_insert(db, "part", self.part_rows(), batch_rows)
        self._bulk_insert(db, "customer", self.customer_rows(), batch_rows)

        def orders_and_lines():
            for orderkey in range(1, self.orders_count + 1):
                yield self.order_with_lines(orderkey)

        order_batch: List[Tuple] = []
        line_batch: List[Tuple] = []
        for order, lines in orders_and_lines():
            order_batch.append(order)
            line_batch.extend(lines)
            if len(order_batch) >= batch_rows:
                self._bulk_insert(db, "orders", iter(order_batch), batch_rows)
                self._bulk_insert(db, "lineitem", iter(line_batch),
                                  batch_rows)
                order_batch, line_batch = [], []
        if order_batch:
            self._bulk_insert(db, "orders", iter(order_batch), batch_rows)
            self._bulk_insert(db, "lineitem", iter(line_batch), batch_rows)
        db.checkpoint()

    @staticmethod
    def _bulk_insert(db: Database, table: str, rows: Iterator[Tuple],
                     batch_rows: int) -> None:
        """Load rows through the engine write path, batched per txn."""
        batch: List[Tuple] = []

        def flush() -> None:
            if not batch:
                return
            with db.transaction():
                _, writer = db.table_writer(table)
                for row in batch:
                    writer.insert(row)
            batch.clear()

        for row in rows:
            batch.append(row)
            if len(batch) >= batch_rows:
                flush()
        flush()
