"""TPC-H refresh functions RF1 (insert) and RF2 (delete).

The paper's update workload program "receives as input the TPC-H
refresh function output, updates the database by deleting and inserting
a certain number of Orders and their Lineitem records and creates
snapshots" (Section 5).  These functions implement exactly that unit of
work; :mod:`repro.workloads.driver` composes them into snapshot
histories.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.errors import WorkloadError
from repro.sql.database import Database
from repro.workloads.tpch.dbgen import TpchGenerator


class RefreshFunctions:
    """RF1/RF2 against one loaded TPC-H database."""

    def __init__(self, db: Database, generator: TpchGenerator,
                 seed: int = 101) -> None:
        self.db = db
        self.generator = generator
        self.rng = random.Random(seed)
        self._live_orderkeys: Optional[List[int]] = None

    # ------------------------------------------------------------------

    def live_orderkeys(self) -> List[int]:
        """Orderkeys currently in the database (cached, kept in sync)."""
        if self._live_orderkeys is None:
            result = self.db.execute("SELECT o_orderkey FROM orders")
            self._live_orderkeys = [int(r[0]) for r in result.rows]
        return self._live_orderkeys

    def pick_deletions(self, count: int) -> List[int]:
        """RF2 input: the oldest live orderkeys.

        TPC-H RF2 deletes sequential blocks of old orders.  Because
        orders cluster by orderkey, deleting the oldest rows frees whole
        pages, so a fraction f of *rows* per snapshot translates into
        roughly a fraction f of *pages* — which is exactly what gives
        UW30/UW15 their 50/100-snapshot overwrite cycles in the paper.
        Random deletions would touch O(count) scattered pages instead
        and destroy the cycle arithmetic.
        """
        live = self.live_orderkeys()
        if count > len(live):
            raise WorkloadError(
                f"cannot delete {count} orders; only {len(live)} live"
            )
        live.sort()
        return live[:count]

    # ------------------------------------------------------------------

    def rf1_insert(self, count: int) -> List[int]:
        """Insert ``count`` new orders + lineitems; returns new keys.

        Must run inside an open transaction (the driver brackets each
        snapshot's work in BEGIN ... COMMIT WITH SNAPSHOT).
        """
        _, order_writer = self.db.table_writer("orders")
        _, line_writer = self.db.table_writer("lineitem")
        new_keys: List[int] = []
        for _ in range(count):
            orderkey = self.generator.next_orderkey
            self.generator.next_orderkey += 1
            order, lines = self.generator.order_with_lines(orderkey)
            order_writer.insert(order)
            for line in lines:
                line_writer.insert(line)
            new_keys.append(orderkey)
        if self._live_orderkeys is not None:
            self._live_orderkeys.extend(new_keys)
        return new_keys

    def rf2_delete(self, orderkeys: Sequence[int]) -> int:
        """Delete the given orders and their lineitems (RF2)."""
        deleted = 0
        doomed = set(orderkeys)
        for orderkey in orderkeys:
            self.db.execute(
                f"DELETE FROM lineitem WHERE l_orderkey = {int(orderkey)}"
            )
            result = self.db.execute(
                f"DELETE FROM orders WHERE o_orderkey = {int(orderkey)}"
            )
            deleted += getattr(result, "rowcount", 0)
        if self._live_orderkeys is not None:
            self._live_orderkeys = [
                k for k in self._live_orderkeys if k not in doomed
            ]
        return deleted

    def refresh_pair(self, count: int) -> None:
        """One delete+insert refresh unit (the paper's per-snapshot work)."""
        self.rf2_delete(self.pick_deletions(count))
        self.rf1_insert(count)
