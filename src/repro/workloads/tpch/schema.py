"""TPC-H schema (the subset the paper's evaluation touches, plus the
small dimension tables for completeness).

The paper creates the database "without additional indices"; primary
keys are declared (they exist in dbgen's DDL and our refresh functions
need them to locate rows), and the benchmarks optionally add the
"native index" of Figure 9 separately.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

REGION_DDL = """
CREATE TABLE region (
    r_regionkey INTEGER PRIMARY KEY,
    r_name      TEXT,
    r_comment   TEXT
)
"""

NATION_DDL = """
CREATE TABLE nation (
    n_nationkey INTEGER PRIMARY KEY,
    n_name      TEXT,
    n_regionkey INTEGER,
    n_comment   TEXT
)
"""

SUPPLIER_DDL = """
CREATE TABLE supplier (
    s_suppkey   INTEGER PRIMARY KEY,
    s_name      TEXT,
    s_address   TEXT,
    s_nationkey INTEGER,
    s_phone     TEXT,
    s_acctbal   REAL,
    s_comment   TEXT
)
"""

PART_DDL = """
CREATE TABLE part (
    p_partkey     INTEGER PRIMARY KEY,
    p_name        TEXT,
    p_mfgr        TEXT,
    p_brand       TEXT,
    p_type        TEXT,
    p_size        INTEGER,
    p_container   TEXT,
    p_retailprice REAL,
    p_comment     TEXT
)
"""

CUSTOMER_DDL = """
CREATE TABLE customer (
    c_custkey    INTEGER PRIMARY KEY,
    c_name       TEXT,
    c_address    TEXT,
    c_nationkey  INTEGER,
    c_phone      TEXT,
    c_acctbal    REAL,
    c_mktsegment TEXT,
    c_comment    TEXT
)
"""

ORDERS_DDL = """
CREATE TABLE orders (
    o_orderkey      INTEGER PRIMARY KEY,
    o_custkey       INTEGER,
    o_orderstatus   TEXT,
    o_totalprice    REAL,
    o_orderdate     DATE,
    o_orderpriority TEXT,
    o_clerk         TEXT,
    o_shippriority  INTEGER,
    o_comment       TEXT
)
"""

LINEITEM_DDL = """
CREATE TABLE lineitem (
    l_orderkey      INTEGER,
    l_partkey       INTEGER,
    l_suppkey       INTEGER,
    l_linenumber    INTEGER,
    l_quantity      REAL,
    l_extendedprice REAL,
    l_discount      REAL,
    l_tax           REAL,
    l_returnflag    TEXT,
    l_linestatus    TEXT,
    l_shipdate      DATE,
    l_commitdate    DATE,
    l_receiptdate   DATE,
    l_shipmode      TEXT,
    l_comment       TEXT,
    PRIMARY KEY (l_orderkey, l_linenumber)
)
"""

ALL_DDL: List[Tuple[str, str]] = [
    ("region", REGION_DDL),
    ("nation", NATION_DDL),
    ("supplier", SUPPLIER_DDL),
    ("part", PART_DDL),
    ("customer", CUSTOMER_DDL),
    ("orders", ORDERS_DDL),
    ("lineitem", LINEITEM_DDL),
]

#: Base cardinalities at scale factor 1.0 (TPC-H specification).
SF1_CARDINALITIES: Dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "part": 200_000,
    "customer": 150_000,
    "orders": 1_500_000,
    # lineitem: 1-7 per order, ~4 average
}


def scaled_cardinality(table: str, scale_factor: float) -> int:
    """Row count at the given scale factor (dimension tables are fixed)."""
    base = SF1_CARDINALITIES[table]
    if table in ("region", "nation"):
        return base
    return max(1, int(base * scale_factor))
