"""TPC-H text pools: the value domains dbgen draws from.

These follow the TPC-H specification's grammar closely enough for the
paper's queries — in particular ``p_type`` is the three-part
``<TYPE_S1> <TYPE_S2> <TYPE_S3>`` string (150 combinations), because
Qq_cpu filters on ``p_type = 'STANDARD POLISHED TIN'``.
"""

from __future__ import annotations

import random
from typing import List

TYPE_S1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_S2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_S3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

CONTAINERS_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINERS_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]

PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]

SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]

RETURN_FLAGS = ["R", "A", "N"]

NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]

MFGRS = [f"Manufacturer#{i}" for i in range(1, 6)]

_NOUNS = [
    "packages", "requests", "accounts", "deposits", "foxes", "ideas",
    "theodolites", "pinto beans", "instructions", "dependencies",
    "excuses", "platelets", "asymptotes", "courts", "dolphins",
]
_VERBS = [
    "sleep", "wake", "haggle", "nag", "use", "boost", "affix", "detect",
    "integrate", "cajole", "doze", "engage", "wake", "promise", "believe",
]
_ADJECTIVES = [
    "furious", "sly", "careful", "blithe", "quick", "fluffy", "slow",
    "quiet", "ruthless", "thin", "close", "dogged", "daring", "bold",
]


def random_comment(rng: random.Random, max_words: int = 6) -> str:
    words: List[str] = []
    for _ in range(rng.randint(2, max_words)):
        pool = rng.choice((_NOUNS, _VERBS, _ADJECTIVES))
        words.append(rng.choice(pool))
    return " ".join(words)


def random_type(rng: random.Random) -> str:
    return " ".join((rng.choice(TYPE_S1), rng.choice(TYPE_S2),
                     rng.choice(TYPE_S3)))


def random_container(rng: random.Random) -> str:
    return f"{rng.choice(CONTAINERS_1)} {rng.choice(CONTAINERS_2)}"


def random_phone(rng: random.Random, nation_key: int) -> str:
    return (f"{10 + nation_key}-{rng.randint(100, 999)}-"
            f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}")


def random_part_name(rng: random.Random) -> str:
    colors = ["almond", "azure", "beige", "blue", "coral", "cyan",
              "khaki", "lime", "plum", "rose", "tan", "wheat"]
    picked = rng.sample(colors, 3)
    return " ".join(picked)


def random_clerk(rng: random.Random, scale_factor: float) -> str:
    count = max(1, int(1000 * scale_factor))
    return f"Clerk#{rng.randint(1, count):09d}"
