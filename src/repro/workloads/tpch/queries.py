"""Runnable TPC-H queries (the subset our SQL dialect covers).

The paper's evaluation deliberately avoids full TPC-H queries ("their
complexity makes them CPU intensive and does not allow us to stress ...
a single RQL cost"), but a reproduction should still demonstrate that
real decision-support queries run — both on the current state and
retrospectively over snapshots.  Q1 (pricing summary), Q3 (shipping
priority) and Q6 (revenue change) fit the implemented dialect.

``retrospective(q, sid)`` rewrites any of them to run AS OF a snapshot,
and each query also works as an RQL Qq (e.g. CollateData over Q6's
revenue per snapshot).
"""

from __future__ import annotations

from repro.core.rewrite import rewrite_qq

#: Q1 — pricing summary report (aggregates over lineitem).
Q1_PRICING_SUMMARY = """
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
"""

#: Q3 — shipping priority (3-way join), parameterized by market segment.
Q3_SHIPPING_PRIORITY = """
SELECT o.o_orderkey,
       SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
       o.o_orderdate, o.o_shippriority
FROM customer c, orders o, lineitem l
WHERE c.c_mktsegment = '{segment}'
  AND c.c_custkey = o.o_custkey
  AND l.l_orderkey = o.o_orderkey
  AND o.o_orderdate < '{date}'
GROUP BY o.o_orderkey, o.o_orderdate, o.o_shippriority
ORDER BY revenue DESC, o.o_orderdate
LIMIT 10
"""

#: Q6 — forecasting revenue change (selective scan aggregate).
Q6_REVENUE_CHANGE = """
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= '{date}'
  AND l_shipdate < '{date_plus_year}'
  AND l_discount BETWEEN {discount} - 0.01 AND {discount} + 0.01
  AND l_quantity < {quantity}
"""


def q3(segment: str = "BUILDING", date: str = "1995-03-15") -> str:
    return Q3_SHIPPING_PRIORITY.format(segment=segment, date=date)


def q6(date: str = "1994-01-01", discount: float = 0.06,
       quantity: int = 24) -> str:
    year = int(date[:4]) + 1
    return Q6_REVENUE_CHANGE.format(
        date=date, date_plus_year=f"{year}{date[4:]}",
        discount=discount, quantity=quantity,
    )


def retrospective(query: str, snapshot_id: int) -> str:
    """The query rewritten to run AS OF ``snapshot_id``.

    Reuses the RQL rewrite machinery (AS OF injection on the first
    top-level SELECT).
    """
    return rewrite_qq(query, snapshot_id)
