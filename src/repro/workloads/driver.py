"""Snapshot-history construction: the paper's update workloads.

The paper's UW15 / UW30 delete-and-insert 15K / 30K orders per snapshot
against the SF-1 orders table (1.5M rows) — i.e. 1% / 2% of the table —
yielding overwrite cycles of ~100 / ~50 snapshots.  At simulation scale
the *fractions* are what matter, so :class:`UpdateWorkload` carries the
fraction and resolves the per-snapshot order count against the actual
table size.  All four workloads from the paper appear (UW7.5, UW15,
UW30, UW60).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.session import RQLSession
from repro.errors import WorkloadError
from repro.workloads.tpch.dbgen import GeneratorConfig, TpchGenerator
from repro.workloads.tpch.refresh import RefreshFunctions


@dataclass(frozen=True)
class UpdateWorkload:
    """A named per-snapshot update volume (paper Table 1 notation)."""

    name: str
    #: fraction of the orders table deleted+inserted per snapshot
    fraction: float

    @property
    def overwrite_cycle(self) -> int:
        """Snapshots until (approximately) every orders page is rewritten."""
        return round(1.0 / self.fraction)

    def orders_per_snapshot(self, total_orders: int) -> int:
        return max(1, round(self.fraction * total_orders))


#: Paper Table 1 / Section 5.3 workloads (fractions of the orders table;
#: at SF 1 these are exactly 7.5K/15K/30K/60K orders per snapshot).
UW7_5 = UpdateWorkload("UW7.5", 7_500 / 1_500_000)
UW15 = UpdateWorkload("UW15", 15_000 / 1_500_000)
UW30 = UpdateWorkload("UW30", 30_000 / 1_500_000)
UW60 = UpdateWorkload("UW60", 60_000 / 1_500_000)

WORKLOADS: Dict[str, UpdateWorkload] = {
    w.name: w for w in (UW7_5, UW15, UW30, UW60)
}


class SnapshotHistoryBuilder:
    """Loads TPC-H and builds a snapshot history under one workload."""

    def __init__(self, session: RQLSession,
                 scale_factor: float = 0.002,
                 seed: int = 7) -> None:
        self.session = session
        self.generator = TpchGenerator(
            GeneratorConfig(scale_factor=scale_factor, seed=seed)
        )
        self.refresh: Optional[RefreshFunctions] = None
        self._loaded = False

    # ------------------------------------------------------------------

    def load_initial(self) -> None:
        """dbgen the initial database state (no snapshots yet)."""
        if self._loaded:
            raise WorkloadError("initial state already loaded")
        self.generator.load(self.session.db)
        self.refresh = RefreshFunctions(self.session.db, self.generator,
                                        seed=self.generator.config.seed + 1)
        self._loaded = True

    def build_history(self, workload: UpdateWorkload,
                      snapshots: int) -> List[int]:
        """Declare ``snapshots`` snapshots, refreshing between each.

        Between two consecutive declarations a constant number of orders
        (the workload's fraction of the table) plus their lineitems are
        deleted and re-inserted, exactly as in the paper's setup.
        Returns the declared snapshot ids.
        """
        if not self._loaded or self.refresh is None:
            raise WorkloadError("call load_initial() first")
        per_snapshot = workload.orders_per_snapshot(
            self.generator.orders_count
        )
        declared: List[int] = []
        for _ in range(snapshots):
            with self.session.transaction(with_snapshot=True) as txn:
                self.refresh.refresh_pair(per_snapshot)
            declared.append(txn.snapshot_id)
        return declared

    # -- stats used by benches/tests -----------------------------------------------

    def orders_pages(self) -> int:
        """Page count of the orders table B+tree (current state)."""
        return self._table_pages(("orders",))

    def refreshed_pages(self) -> int:
        """Pages of the tables the refresh workload rewrites."""
        return self._table_pages(("orders", "lineitem"))

    def _table_pages(self, tables) -> int:
        from repro.sql.catalog import Catalog
        from repro.storage.btree import BTree

        engine = self.session.db.engine
        ctx = engine.begin_read()
        try:
            source = engine.read_source(ctx)
            catalog = Catalog(source, engine.pager.get_root("catalog"))
            total = 0
            for name in tables:
                info = catalog.get_table(name)
                if info is None:
                    raise WorkloadError(f"{name} table missing")
                total += len(BTree(source, info.root_id).page_ids())
                for index in catalog.indexes_for(name):
                    total += len(BTree(source, index.root_id).page_ids())
            return total
        finally:
            ctx.close()

    def measured_overwrite_cycle(self, workload: UpdateWorkload,
                                 probe_snapshots: int = 10) -> float:
        """Empirical overwrite-cycle estimate from Maplog capture rates.

        A snapshot's pages are fully rewritten once the refresh window
        has slid across the whole orders/lineitem key range; the capture
        rate per epoch approximates the per-snapshot page turnover.
        """
        maplog = self.session.db.engine.retro.maplog
        epoch = maplog.current_epoch
        if epoch < probe_snapshots + 1:
            raise WorkloadError("history too short to probe")
        pages = self.refreshed_pages()
        captured = sum(
            maplog.captures_in_epoch(e)
            for e in range(epoch - probe_snapshots, epoch)
        ) / probe_snapshots
        if captured == 0:
            return float("inf")
        return pages / captured
