"""Exception hierarchy for the repro package.

Every layer raises a subclass of :class:`ReproError` so callers can catch
library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class StorageError(ReproError):
    """Base class for storage-engine failures."""


class PageError(StorageError):
    """A page is malformed, out of range, or otherwise unusable."""


class BufferPoolError(StorageError):
    """The buffer pool cannot satisfy a request (e.g. all pages pinned)."""


class TransactionError(StorageError):
    """Illegal transaction lifecycle transition or conflict."""


class RecoveryError(StorageError):
    """The write-ahead log cannot be replayed."""


class CorruptPageError(StorageError):
    """A durable slot failed checksum or structural validation."""


class TornWriteError(CorruptPageError):
    """A partially persisted (torn) write was detected at a log tail."""


class SimulatedCrash(StorageError):
    """Injected power loss from the chaos test harness.

    Raised by :class:`repro.storage.chaosdisk.ChaosDisk` at a scheduled
    write boundary.  The in-memory engine state must be discarded and
    the disk reopened to run recovery, exactly as after real power loss.
    """


class RecordCodecError(StorageError):
    """A record cannot be encoded or decoded."""


class BTreeError(StorageError):
    """B+tree structural invariant violation."""


class SnapshotError(ReproError):
    """Base class for Retro snapshot-system failures."""


class UnknownSnapshotError(SnapshotError):
    """A query referenced a snapshot id that was never declared."""


class SnapshotUnavailableError(SnapshotError):
    """A declared snapshot's pre-states were lost or failed checksums.

    Raised instead of serving potentially wrong data: recovery marks a
    snapshot unavailable when its Pagelog/Maplog evidence is damaged
    beyond what WAL replay can reconstruct (truncate-don't-guess)."""


class SqlError(ReproError):
    """Base class for SQL front-end failures."""


class LexerError(SqlError):
    """The SQL text contains an unrecognized token."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class ParseError(SqlError):
    """The SQL text does not match the grammar."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class PlanError(SqlError):
    """A statement cannot be planned (unknown table/column, etc.)."""


class ExecutionError(SqlError):
    """A runtime failure while executing a planned statement."""


class CatalogError(SqlError):
    """Schema-object lookup or mutation failed."""


class TypeMismatchError(ExecutionError):
    """An operator or function was applied to incompatible SQL types."""


class UdfError(SqlError):
    """A user-defined function misbehaved or was misused."""


class RqlError(ReproError):
    """Base class for RQL mechanism failures."""


class AggregateError(RqlError):
    """An aggregate function is unknown or not monoid-compatible."""


class MechanismError(RqlError):
    """An RQL mechanism was invoked with invalid parameters."""


class ViewError(RqlError):
    """A materialized-view operation failed (unknown view, duplicate
    name, refresh inside an open transaction, dependency cycle)."""


class ServerError(ReproError):
    """Base class for multi-session server failures (registry,
    scheduler, wire protocol)."""


class SessionStateError(ServerError):
    """A session handle was used after close, or a registry invariant
    (unique names, empty at shutdown) was violated."""


class QueryCancelled(ServerError):
    """A running retrospective query was cancelled (client disconnect,
    server shutdown).  The partial result table is dropped; the store
    is left exactly as if the query never ran."""


class WorkloadError(ReproError):
    """Workload generation failure (bad scale factor, exhausted keys...)."""


class AnalysisError(ReproError):
    """replint (static analysis) misuse: bad baseline, unknown rule..."""
