"""Chaos harness: crash-point sweeps with a checksummed-recovery oracle.

This module owns the *semantics* of durability testing; the injection
mechanics live in :mod:`repro.storage.chaosdisk`.  Three pieces:

* a **canonical workload** — a fixed sequence of DML, ``COMMIT WITH
  SNAPSHOT`` and checkpoint operations over a small-page database, sized
  so one run crosses well over 50 durable-write boundaries across the
  WAL, Pagelog, Maplog, database and meta files of both engines;
* **golden states** — the logical content (current rows + every declared
  snapshot's rows) captured after each acknowledged operation of a clean
  run;
* a **recovery oracle** — after a crash at write boundary *k* and
  recovery, the store must equal the golden state of exactly the
  acknowledged prefix: committed data present, the in-flight operation
  absent, every declared snapshot answering ``AS OF`` queries exactly
  (:func:`verify_recovery`).  Under *corruption* (bit rot, truncation —
  not plain power loss) the weaker :func:`verify_consistent_prefix`
  oracle applies: some committed prefix, with damaged snapshots either
  correct or explicitly unavailable, never silently wrong.

The sweep is deterministic in ``seed``: a failing crash point reproduces
with ``run_crash_sweep(seed=s, crash_points=[k])``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    CorruptPageError,
    PlanError,
    SimulatedCrash,
    SnapshotUnavailableError,
    UnknownSnapshotError,
)
from repro.sql.database import Database
from repro.storage.chaosdisk import ChaosDisk
from repro.storage.disk import SimulatedDisk

#: Small pages -> many write boundaries per workload run.
PAGE_SIZE = 512

#: Query errors a corrupted store may raise instead of answering; any
#: other outcome but the exact golden answer is an oracle violation.
#: UnknownSnapshotError qualifies only under *corruption* (a damaged
#: index may forget a declaration — a typed refusal, not a lie); the
#: strict crash oracle never tolerates it.
ACCEPTABLE_QUERY_ERRORS = (CorruptPageError, SnapshotUnavailableError,
                           UnknownSnapshotError)

Rows = Tuple[Tuple[object, ...], ...]


# ---------------------------------------------------------------------------
# Canonical workload
# ---------------------------------------------------------------------------

def workload_ops() -> List[Tuple[str, List[str]]]:
    """The canonical DML + snapshot + checkpoint sequence.

    Kinds: ``sql`` (autocommit statements), ``snap`` (one transaction
    sealed by COMMIT WITH SNAPSHOT), ``checkpoint``.  The mix is chosen
    to exercise every write path: WAL groups of several blocks, COW
    captures into the Pagelog, Maplog mappings + declares, dirty-page
    writebacks and dual-slot meta writes at checkpoints, and inserts
    that split B-tree pages (page_size is small).
    """
    return [
        ("sql", ["CREATE TABLE accounts (id INTEGER PRIMARY KEY, "
                 "balance INTEGER)"]),
        ("sql", ["INSERT INTO accounts VALUES " + ", ".join(
            f"({i}, {i * 100})" for i in range(1, 9))]),
        ("snap", ["UPDATE accounts SET balance = balance + 10 "
                  "WHERE id <= 4"]),
        ("snap", ["INSERT INTO accounts VALUES (9, 900), (10, 1000)",
                  "UPDATE accounts SET balance = balance - 3 "
                  "WHERE id >= 7"]),
        ("checkpoint", []),
        ("snap", ["DELETE FROM accounts WHERE id = 2"]),
        ("sql", ["UPDATE accounts SET balance = balance * 2 "
                 "WHERE id > 8"]),
        ("snap", ["UPDATE accounts SET balance = balance + 1 "
                  "WHERE id <= 9"]),
        ("checkpoint", []),
        ("snap", ["INSERT INTO accounts VALUES (11, 42)",
                  "DELETE FROM accounts WHERE id = 5"]),
        ("snap", ["UPDATE accounts SET balance = 0 WHERE id = 11"]),
    ]


def open_database(disk: SimulatedDisk, aux_disk: SimulatedDisk) -> Database:
    """Open the workload's database (manual checkpoints only)."""
    return Database(disk=disk, aux_disk=aux_disk, page_size=PAGE_SIZE,
                    auto_checkpoint_on_snapshot=False)


def apply_ops(db: Database,
              on_op_done: Optional[Callable[[int, Database], None]] = None,
              ) -> None:
    """Run the canonical workload, reporting each acknowledged op."""
    for index, (kind, stmts) in enumerate(workload_ops()):
        if kind == "checkpoint":
            db.checkpoint()
        elif kind == "snap":
            db.execute("BEGIN")
            for stmt in stmts:
                db.execute(stmt)
            db.execute("COMMIT WITH SNAPSHOT")
        else:
            for stmt in stmts:
                db.execute(stmt)
        if on_op_done is not None:
            on_op_done(index, db)


# ---------------------------------------------------------------------------
# Golden states
# ---------------------------------------------------------------------------

@dataclass
class WorkloadState:
    """Logical content of the store at one acknowledged point."""

    #: sorted (id, balance) rows, or None when the table does not exist
    rows: Optional[Rows]
    #: snapshot id -> its sorted rows at declaration time
    snapshots: Dict[int, Rows]

    @property
    def snapshot_count(self) -> int:
        return max(self.snapshots, default=0)


def _table_rows(db: Database, as_of: Optional[int] = None) -> Optional[Rows]:
    prefix = f"AS OF {as_of} " if as_of is not None else ""
    try:
        result = db.execute(f"SELECT {prefix}id, balance FROM accounts")
    except PlanError:
        return None  # table not created yet at this point in history
    return tuple(sorted(result.rows))


def capture_state(db: Database) -> WorkloadState:
    snapshots = {
        sid: _table_rows(db, as_of=sid)
        for sid in range(1, db.latest_snapshot_id + 1)
    }
    return WorkloadState(rows=_table_rows(db), snapshots=snapshots)


def golden_states(seed: int = 0) -> Tuple[List[WorkloadState], int]:
    """Clean chaos-free run: per-op golden states + total write count.

    ``states[i]`` is the store's content after ``i`` acknowledged ops
    (``states[0]`` right after construction), which is exactly what a
    crash during op ``i`` must recover to.  The returned write count is
    the number of crash boundaries a sweep must cover.
    """
    disk = ChaosDisk(PAGE_SIZE, seed=seed)
    aux = ChaosDisk(PAGE_SIZE, controller=disk.chaos)
    db = open_database(disk, aux)
    states = [capture_state(db)]
    apply_ops(db, on_op_done=lambda i, d: states.append(capture_state(d)))
    return states, disk.write_count


# ---------------------------------------------------------------------------
# Recovery oracles
# ---------------------------------------------------------------------------

def verify_recovery(db: Database, state: WorkloadState,
                    context: str = "") -> None:
    """Strict post-crash oracle (pure power loss, torn or clean).

    Every acknowledged commit must be present exactly, the in-flight
    operation absent, and every declared snapshot must answer AS OF
    queries with its golden rows.  Pure crashes never lose acknowledged
    state in this design (acknowledged implies durable implies
    checksum-valid), so no degradation is tolerated here — that laxity
    belongs to :func:`verify_consistent_prefix` only.
    """
    where = f" [{context}]" if context else ""
    actual = _table_rows(db)
    assert actual == state.rows, (
        f"current rows diverged after recovery{where}:\n"
        f"  expected {state.rows}\n  actual   {actual}"
    )
    assert db.latest_snapshot_id == state.snapshot_count, (
        f"snapshot count {db.latest_snapshot_id} != "
        f"{state.snapshot_count}{where}"
    )
    for sid, rows in state.snapshots.items():
        got = _table_rows(db, as_of=sid)
        assert got == rows, (
            f"snapshot {sid} diverged after recovery{where}:\n"
            f"  expected {rows}\n  actual   {got}"
        )


def verify_recovery_any(db: Database,
                        candidates: Sequence[WorkloadState],
                        context: str = "") -> None:
    """Strict oracle over the in-flight window.

    A crash interrupts at most one workload op, but an op can span
    several engine-level commits (the main commit is acknowledged at its
    WAL seal, before the aux engine's).  Atomicity per commit therefore
    pins recovery to one of *two* golden states: everything acked, with
    the in-flight op either fully absent or fully present.  Each
    candidate is checked in full (rows and snapshots from the same
    state) — anything else is a violation.
    """
    failures: List[AssertionError] = []
    for state in candidates:
        try:
            verify_recovery(db, state, context)
            return
        except AssertionError as exc:
            failures.append(exc)
    raise AssertionError(
        "recovered state matches no acknowledged-prefix candidate:\n"
        + "\n".join(str(f) for f in failures)
    )


def verify_consistent_prefix(db: Database,
                             states: Sequence[WorkloadState],
                             context: str = "") -> None:
    """Corruption oracle: correct prefix or typed refusal, never lies.

    The recovered current state must equal *some* golden prefix (WAL
    tail corruption legitimately rolls back to the last valid commit
    boundary).  A snapshot's content is immutable once declared, so any
    snapshot the store *answers* for must answer with its golden rows —
    refusing with a typed error is always allowed, a different answer
    never is.  The store must not claim snapshots that were never
    declared.
    """
    where = f" [{context}]" if context else ""
    actual = _table_rows(db)
    assert any(s.rows == actual for s in states), (
        f"recovered rows match no committed prefix{where}:\n"
        f"  rows {actual}"
    )
    golden = states[-1].snapshots  # sid -> immutable declared content
    count = db.latest_snapshot_id
    assert count <= len(golden), (
        f"store claims {count} snapshots, only {len(golden)} were "
        f"declared{where}"
    )
    for sid in range(1, count + 1):
        try:
            got = _table_rows(db, as_of=sid)
        except ACCEPTABLE_QUERY_ERRORS:
            continue  # explicitly unavailable: allowed, never wrong
        assert got == golden[sid], (
            f"snapshot {sid} silently diverged{where}:\n"
            f"  expected {golden[sid]}\n  actual   {got}"
        )


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------

@dataclass
class SweepResult:
    """Outcome + recovery-cost accounting of one crash-point sweep."""

    crash_points: int = 0
    verified: int = 0
    torn: bool = False
    seed: int = 0
    #: wall-clock seconds spent inside recovery (Database reopen)
    recovery_wall_seconds: float = 0.0
    #: simulated device seconds charged during recovery
    recovery_sim_seconds: float = 0.0
    #: chaos event description per crash point (for failure reports)
    events: List[str] = field(default_factory=list)

    @property
    def mean_recovery_wall_seconds(self) -> float:
        return (self.recovery_wall_seconds / self.crash_points
                if self.crash_points else 0.0)


def run_crash_sweep(seed: int = 0, tear: bool = False,
                    crash_points: Optional[Sequence[int]] = None,
                    oracle: Callable[[Database, Sequence[WorkloadState],
                                      str], None] = verify_recovery_any,
                    ) -> SweepResult:
    """Crash at every write boundary, recover, verify the oracle.

    ``crash_points`` narrows the sweep (1-based write ordinals) when
    reproducing a single failure; by default every boundary of the
    clean run is covered.  Raises AssertionError (with the chaos event
    in the message) on the first oracle violation.
    """
    states, total_writes = golden_states(seed)
    points = list(crash_points) if crash_points is not None \
        else list(range(1, total_writes + 1))
    result = SweepResult(crash_points=len(points), torn=tear, seed=seed)
    for k in points:
        disk = ChaosDisk(PAGE_SIZE, seed=seed)
        aux = ChaosDisk(PAGE_SIZE, controller=disk.chaos)
        disk.schedule_crash(at_write=k, tear=tear)
        acked = 0

        def op_done(index: int, _db: Database) -> None:
            nonlocal acked
            acked = index + 1

        try:
            db = open_database(disk, aux)
            apply_ops(db, on_op_done=op_done)
        except SimulatedCrash:
            pass
        disk.power_on()
        context = (f"seed={seed} crash_at={k} tear={tear}: "
                   f"{disk.chaos.last_event}")
        result.events.append(disk.chaos.last_event)
        sim_before = disk.simulated_seconds()
        wall_before = time.perf_counter()
        recovered = open_database(disk, aux)
        result.recovery_wall_seconds += time.perf_counter() - wall_before
        result.recovery_sim_seconds += disk.simulated_seconds() - sim_before
        oracle(recovered, states[acked:acked + 2], context)
        result.verified += 1
    return result
