"""The Retro snapshot manager.

Ties together COW pre-state capture, the Pagelog, the Maplog/Skippy index,
and snapshot readers.  The storage engine interposes this manager on its
commit, flush, fetch and recovery paths, mirroring how Retro extends the
Berkeley DB storage manager (paper Section 4):

* **commit** — :meth:`capture_if_needed` archives the pre-state of every
  page modified for the first time since the last snapshot declaration;
* **flush** — :meth:`on_flush` drains pending pre-states to the Pagelog
  before the database overwrites current pages;
* **fetch** — :meth:`snapshot_source` returns a page source that resolves
  reads through SPT -> snapshot cache -> Pagelog, falling back to the
  current database for shared pages;
* **recovery** — :meth:`recover` rebuilds epoch + capture state from the
  durable Maplog so WAL replay can re-capture lost pre-states.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import (
    CorruptPageError,
    SnapshotError,
    SnapshotUnavailableError,
    UnknownSnapshotError,
)
from repro.retro.maplog import MapEntry, Maplog, SptBuildResult
from repro.retro.metrics import IterationMetrics, MetricsSink
from repro.retro.pagelog import Pagelog
from repro.retro.snapshot_cache import SnapshotPageCache
from repro.storage import checksums
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page
from repro.storage.pager import PageSource

PAGELOG_FILE = "pagelog"
MAPLOG_FILE = "maplog"

#: Default snapshot cache size: large enough to hold the pages one RQL
#: query requests, per the paper's experimental assumption (Section 5).
DEFAULT_CACHE_PAGES = 65536

#: Distinct snapshot SPTs retained per manager when ``incremental_spt``
#: is on.  Parallel workers iterate disjoint contiguous partitions, so
#: each needs its own chain of predecessors to advance from; one stripe
#: per recent snapshot keeps every partition on the cheap
#: diff-proportional path.
SPT_CACHE_SLOTS = 16

_UNSET = object()


class RetroManager:
    """COW capture + snapshot query machinery for one database."""

    def __init__(self, disk: SimulatedDisk,
                 cache_pages: int = DEFAULT_CACHE_PAGES,
                 share_cache_by_slot: bool = True) -> None:
        self.pagelog = Pagelog(disk.open_file(PAGELOG_FILE, append_only=True))
        self.maplog = Maplog(disk.open_file(MAPLOG_FILE, append_only=True))
        self.cache = SnapshotPageCache(cache_pages)
        #: page_id -> last epoch whose pre-state has been captured
        self._cap: Dict[int, int] = {}
        #: ablation switch: False keys the cache by (snapshot, page),
        #: destroying cross-snapshot sharing (see DESIGN.md §7).
        self.share_cache_by_slot = share_cache_by_slot
        # Where snapshot reads account their costs.  The default sink is
        # set per RQL query via the ``metrics`` property; parallel workers
        # overlay a thread-local sink with :meth:`route_metrics` so each
        # partition meters into its own per-worker breakdown.
        self._metrics_default: Optional[MetricsSink] = None
        self._metrics_local = threading.local()
        #: opt-in future-work optimization (paper Section 7): derive the
        #: SPT of snapshot S+1 incrementally from S's instead of a fresh
        #: Skippy scan.  Cost becomes proportional to diff(S, S+1).
        self.incremental_spt = False
        # Striped SPT cache: snapshot id -> (result, maplog version),
        # LRU-bounded to SPT_CACHE_SLOTS.  None means empty (benchmarks
        # assign None directly to invalidate).  Guarded by a leaf-level
        # latch; cached SptBuildResults are immutable once published.
        self._spt_latch = threading.RLock()
        self._spt_cache: Optional[
            "OrderedDict[int, Tuple[SptBuildResult, int]]"] = None
        # Snapshots whose pre-states were lost to corruption.  Queries
        # against them raise SnapshotUnavailableError instead of serving
        # wrong bytes (the truncate-don't-guess rule at the query layer).
        self._unavailable: Set[int] = set()
        #: all snapshot ids <= this are unavailable (degraded recovery)
        self.unavailable_through = 0

    # -- metrics routing ------------------------------------------------------

    @property
    def metrics(self) -> Optional[MetricsSink]:
        override = getattr(self._metrics_local, "sink", _UNSET)
        if override is not _UNSET:
            return override  # type: ignore[return-value]
        return self._metrics_default

    @metrics.setter
    def metrics(self, sink: Optional[MetricsSink]) -> None:
        self._metrics_default = sink

    @contextmanager
    def route_metrics(self, sink: Optional[MetricsSink]) -> Iterator[None]:
        """Route snapshot-read accounting on *this thread* to ``sink``."""
        previous = getattr(self._metrics_local, "sink", _UNSET)
        self._metrics_local.sink = sink
        try:
            yield
        finally:
            if previous is _UNSET:
                del self._metrics_local.sink
            else:
                self._metrics_local.sink = previous

    # -- snapshot declaration ------------------------------------------------

    @property
    def latest_snapshot_id(self) -> int:
        return self.maplog.current_epoch

    def declare_snapshot(self) -> int:
        """Declare a snapshot of the committed state; returns its id."""
        return self.maplog.declare_snapshot()

    # -- COW capture (commit interposition) ---------------------------------------

    def capture_if_needed(self, page_id: int,
                          read_pre_state: Callable[[], bytes],
                          epoch: Optional[int] = None) -> bool:
        """Archive ``page_id``'s pre-state if this is its first
        modification since the latest snapshot declaration.

        Returns True when a pre-state was captured.  ``read_pre_state`` is
        only invoked when needed (it reads the committed image).

        ``epoch`` overrides the capture epoch during WAL replay, where
        the durable Maplog can run *ahead* of the replay position (a
        crash mid-checkpoint flushes mappings before the meta advances):
        the replayed transaction must capture at the epoch in effect at
        its original commit, not at the recovered log's epoch.
        """
        if epoch is None:
            epoch = self.maplog.current_epoch
        if epoch == 0:
            return False
        last = self._cap.get(page_id, 0)
        if last >= epoch:
            return False
        if epoch < self.maplog.current_epoch:
            # A mapping needed for an epoch below the durable tip is
            # missing.  The log's write-ordering makes that impossible
            # under pure power loss (any mapping precedes the later
            # declare in the log, so it is durable whenever the declare
            # is); only media corruption gets here.  Archiving the
            # current image would serve wrong bytes to snapshots
            # [last+1, epoch] — mark them unavailable instead.
            self.mark_unavailable(last + 1, epoch)
            return False
        image = read_pre_state()
        slot = self.pagelog.append(image)
        self.maplog.record(MapEntry(
            page_id=page_id, from_snap=last + 1, to_snap=epoch, slot=slot,
            crc=checksums.page_crc(image),
        ))
        self._cap[page_id] = epoch
        return True

    def captured_epoch(self, page_id: int) -> int:
        """Last epoch for which ``page_id``'s pre-state exists (0 = none)."""
        return self._cap.get(page_id, 0)

    # -- flush interposition --------------------------------------------------------

    def on_flush(self) -> None:
        """Drain pending pre-states + mappings to disk (checkpoint path)."""
        self.pagelog.flush()
        self.maplog.flush()

    # -- snapshot reads ---------------------------------------------------------

    def build_spt(self, snapshot_id: int,
                  use_skippy: bool = True) -> SptBuildResult:
        sink = self.metrics
        clock = sink.clock if sink is not None else time.perf_counter
        start = clock()
        result = self._build_spt_cached(snapshot_id, use_skippy)
        if sink is not None:
            current = sink.current
            current.spt_entries_scanned += result.entries_scanned
            current.spt_build_seconds += clock() - start
        return result

    def _build_spt_cached(self, snapshot_id: int,
                          use_skippy: bool) -> SptBuildResult:
        if not self.incremental_spt:
            return self.maplog.build_spt(snapshot_id, use_skippy=use_skippy)
        version = self.maplog.entries_recorded
        with self._spt_latch:
            cache = self._spt_cache
            if cache is None:
                cache = self._spt_cache = OrderedDict()
            hit = cache.get(snapshot_id)
            if hit is not None and hit[1] == version:
                cache.move_to_end(snapshot_id)
                return hit[0]
            # Advance from the nearest cached predecessor: cost becomes
            # proportional to diff(predecessor, snapshot), so each worker
            # partition pays one full build at most.
            best_sid: Optional[int] = None
            best_result: Optional[SptBuildResult] = None
            for sid, (res, ver) in cache.items():
                if ver == version and sid < snapshot_id and (
                        best_sid is None or sid > best_sid):
                    best_sid, best_result = sid, res
            if best_sid is not None and best_result is not None:
                result = self.maplog.advance_spt(
                    best_result, best_sid, snapshot_id,
                )
            else:
                result = self.maplog.build_spt(snapshot_id,
                                               use_skippy=use_skippy)
            cache[snapshot_id] = (result, version)
            cache.move_to_end(snapshot_id)
            while len(cache) > SPT_CACHE_SLOTS:
                cache.popitem(last=False)
            return result

    def snapshot_source(self, snapshot_id: int,
                        read_current: Callable[[int], Page],
                        page_size: int,
                        use_skippy: bool = True) -> "SnapshotPageSource":
        """Page source serving reads as of ``snapshot_id``.

        ``read_current`` returns the committed current-state page; it is
        used for pages the snapshot shares with the database.
        """
        if snapshot_id < 1 or snapshot_id > self.latest_snapshot_id:
            raise UnknownSnapshotError(
                f"snapshot {snapshot_id} has not been declared"
            )
        if not self.snapshot_available(snapshot_id):
            raise SnapshotUnavailableError(
                f"snapshot {snapshot_id}'s pre-states were lost to "
                f"storage corruption"
            )
        result = self.build_spt(snapshot_id, use_skippy=use_skippy)
        return SnapshotPageSource(self, snapshot_id, result.spt,
                                  read_current, page_size,
                                  entries=result.entries)

    def diff_size(self, older: int, newer: int) -> int:
        """Pages not shared between two snapshots (paper's diff(S1,S2))."""
        return self.maplog.diff_size(older, newer)

    def diff_pages(self, older: int, newer: int) -> Set[int]:
        """Page ids modified between two snapshots' declarations."""
        return self.maplog.diff_pages(older, newer)

    # -- snapshot availability ------------------------------------------------------

    def mark_unavailable(self, from_snap: int, to_snap: int) -> None:
        """Declare snapshots in ``[from_snap, to_snap]`` unservable."""
        for sid in range(max(1, from_snap), to_snap + 1):
            self._unavailable.add(sid)

    def snapshot_available(self, snapshot_id: int) -> bool:
        return (snapshot_id > self.unavailable_through
                and snapshot_id not in self._unavailable)

    def unavailable_snapshots(self) -> List[int]:
        """Declared snapshot ids that cannot be served (for reports)."""
        sids = set(self._unavailable)
        sids.update(range(1, self.unavailable_through + 1))
        return sorted(s for s in sids if 1 <= s <= self.latest_snapshot_id)

    def scrub(self) -> List[MapEntry]:
        """Verify every archived pre-state against its recorded CRC.

        Mappings whose image fails (or whose Pagelog slot is missing) are
        returned and their snapshot ranges marked unavailable.  Intended
        for post-recovery integrity sweeps (CLI ``.chaos scrub``).
        """
        bad: List[MapEntry] = []
        total = self.pagelog.total_slots
        for entry in self.maplog.iter_entries():
            if entry.slot >= total:
                ok = False
            elif entry.crc and checksums.verification_enabled():
                ok = checksums.page_crc(
                    self.pagelog.read(entry.slot)) == entry.crc
            else:
                ok = True
            if not ok:
                bad.append(entry)
                self.mark_unavailable(entry.from_snap, entry.to_snap)
        return bad

    # -- recovery interposition ----------------------------------------------------

    def recover(self, disk: SimulatedDisk, expected_records: int = 0,
                checkpoint_epoch: int = 0) -> None:
        """Rebuild epoch + capture state from the durable Maplog.

        ``expected_records``/``checkpoint_epoch`` come from the pager
        roots written by the last checkpoint.  If the recovered Maplog
        holds fewer records than the checkpoint had made durable, the
        loss is *not* replayable from the WAL (replay starts at the
        checkpoint): every snapshot up to the checkpoint epoch is marked
        unavailable and the epoch counter realigned so WAL replay
        re-declares later snapshots under their original ids.  Tail loss
        at or past the checkpoint needs no degradation — replay
        re-captures it.
        """
        maplog, cap = Maplog.recover(disk.open_file(MAPLOG_FILE,
                                                    append_only=True))
        self.maplog = maplog
        self._cap = cap
        self._unavailable = set()
        self.unavailable_through = 0
        with self._spt_latch:
            self._spt_cache = None
        if maplog.records_written < expected_records:
            target = max(checkpoint_epoch, maplog.current_epoch)
            self.unavailable_through = target
            maplog.force_epoch(target)
        durable = self.pagelog.durable_slots
        for entry in maplog.iter_entries():
            if entry.slot >= durable:
                # The Pagelog lost the referenced pre-state (truncated
                # below a durable mapping): unservable, not replayable.
                self.mark_unavailable(entry.from_snap, entry.to_snap)


class SnapshotPageSource(PageSource):
    """Resolves page fetches as of one snapshot.

    Fetch order mirrors the paper: SPT lookup -> snapshot page cache ->
    Pagelog read (archived pre-state), or the current database for pages
    the snapshot still shares with it.  Every outcome is metered.
    """

    def __init__(self, manager: RetroManager, snapshot_id: int,
                 spt: Dict[int, int],
                 read_current: Callable[[int], bytes],
                 page_size: int,
                 entries: Optional[Dict[int, MapEntry]] = None) -> None:
        self._manager = manager
        self.snapshot_id = snapshot_id
        self.spt = spt
        self._read_current = read_current
        self._page_size = page_size
        self._entries = entries or {}

    def _metrics(self) -> Optional[IterationMetrics]:
        sink = self._manager.metrics
        return sink.current if sink is not None else None

    def fetch(self, page_id: int) -> Page:
        slot = self.spt.get(page_id)
        metrics = self._metrics()
        if slot is None:
            # Shared with the current database: a memory-resident read.
            if metrics is not None:
                metrics.db_reads += 1
            return self._read_current(page_id)
        if self._manager.share_cache_by_slot:
            key = slot
        else:
            key = (self.snapshot_id, page_id)
        cached = self._manager.cache.get(key)
        if cached is not None:
            if metrics is not None:
                metrics.cache_hits += 1
            return cached
        image = self._manager.pagelog.read(slot)
        entry = self._entries.get(page_id)
        if (entry is not None and entry.crc
                and checksums.verification_enabled()
                and checksums.page_crc(image) != entry.crc):
            # Bit rot in the archive.  Mark the whole validity range
            # unavailable so later queries fail fast, and raise rather
            # than serve bytes known to be wrong.
            self._manager.mark_unavailable(entry.from_snap, entry.to_snap)
            raise CorruptPageError(
                f"snapshot {self.snapshot_id}: archived pre-state of "
                f"page {page_id} (Pagelog slot {slot}) failed its "
                f"checksum"
            )
        # Cache the Page object itself: snapshot pages are immutable, and
        # keeping the object preserves its decoded-node cache across
        # iterations (the cross-snapshot sharing the paper measures).
        page = Page(page_id, bytearray(image), self._page_size)
        self._manager.cache.put(key, page)
        if metrics is not None:
            metrics.pagelog_reads += 1
        return page

    def release(self, page: Page) -> None:
        """Snapshot pages are private copies; nothing to unpin."""

    # Mutations are structurally impossible on a snapshot.

    def allocate_page(self) -> Page:
        raise SnapshotError("snapshots are immutable")

    def free_page(self, page_id: int) -> None:
        raise SnapshotError("snapshots are immutable")

    def mark_dirty(self, page: Page) -> None:
        raise SnapshotError("snapshots are immutable")

    def make_writable(self, page: Page) -> Page:
        raise SnapshotError("snapshots are immutable")
