"""Maplog: the snapshot page-table index, with Skippy skip levels.

Every archived pre-state produces a mapping ``(page_id, from_snap,
to_snap, pagelog_slot)``: the pre-state serves snapshot ids in
``[from_snap, to_snap]`` (to_snap is the snapshot after whose declaration
the page was first modified; from_snap extends back to just after the
previous capture, because the page was unmodified throughout).

Building the snapshot page table SPT(S) requires, for every page, the
*first* mapping at capture-epoch >= S.  A linear Maplog scan is O(history
length); Skippy [Shaull et al., SIGMOD'08] turns this into ~n log n by
maintaining skip levels.  We implement a binary-buddy variant:

* level 0 node *j* holds the mappings captured during epoch ``j+1``
  (each page appears at most once per epoch — COW captures once);
* node at level ``l+1`` merges two buddy nodes of level ``l``, keeping
  the *earliest* mapping per page;
* ``build_spt`` decomposes the epoch range ``[S, E]`` into O(log) aligned
  complete nodes (ascending), so every page's first qualifying mapping is
  found while scanning each page id at most once per node.

The mapping stream is also appended durably to a block log so recovery
can rebuild the in-memory structure (see :meth:`recover`).

Latching: a leaf-level reentrant latch guards the Skippy levels, the
open batch, and the durable writer, so concurrent snapshot readers can
build SPTs while a committing writer records new mappings.  The latch
never wraps a call into another latched component (RPL011).
"""

from __future__ import annotations

import struct
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import CorruptPageError, SnapshotError, UnknownSnapshotError
from repro.storage.disk import DiskFile
from repro.storage.logfile import (
    BlockLogReader,
    BlockLogWriter,
    LogScanStatus,
)

_ENTRY = struct.Struct("<BQQQQI")
_KIND_MAPPING = 1
_KIND_DECLARE = 2


@dataclass(frozen=True)
class MapEntry:
    """One Maplog mapping.

    ``crc`` is the CRC32 of the referenced Pagelog pre-state image,
    recorded at capture time so snapshot reads can detect bit rot in the
    archive (0 means "not recorded" for entries from older logs).
    """

    page_id: int
    from_snap: int
    to_snap: int
    slot: int
    crc: int = 0


@dataclass
class SptBuildResult:
    """SPT plus the scan-cost accounting the benchmarks need.

    ``spt`` maps page id -> Pagelog slot (what readers consume);
    ``entries`` keeps the full mappings so a consecutive snapshot's SPT
    can be derived incrementally (see :meth:`Maplog.advance_spt`).
    """

    spt: Dict[int, int]
    entries_scanned: int
    nodes_visited: int
    entries: Dict[int, MapEntry] = None  # type: ignore[assignment]


class Maplog:
    """In-memory Skippy structure + durable mapping log."""

    def __init__(self, log_file: DiskFile) -> None:
        self._writer = BlockLogWriter(log_file)
        self._file = log_file
        self._latch = threading.RLock()
        #: current epoch == id of the most recently declared snapshot
        self.current_epoch = 0
        # Completed per-epoch nodes at each level.  _levels[0][j] covers
        # epoch j+1; _levels[l][j] covers epochs [j*2^l+1, (j+1)*2^l].
        self._levels: List[List[Dict[int, MapEntry]]] = [[]]
        # Mappings captured during the current (incomplete) epoch.
        self._open_batch: Dict[int, MapEntry] = {}
        #: lifetime mapping count (for stats/tests)
        self.entries_recorded = 0
        #: scan status of the last :meth:`recover` (None for fresh logs)
        self.recovery_status: Optional[LogScanStatus] = None

    # -- writes --------------------------------------------------------------

    def declare_snapshot(self) -> int:
        """Close the current epoch and open the next; returns the new id."""
        with self._latch:
            self._seal_open_batch()
            self.current_epoch += 1
            self._writer.append(_ENTRY.pack(_KIND_DECLARE,
                                            self.current_epoch, 0, 0, 0, 0))
            return self.current_epoch

    def force_epoch(self, epoch: int) -> None:
        """Advance through empty epochs up to ``epoch``.

        Used after a degraded recovery (lost Maplog tail): WAL replay is
        about to re-declare snapshots whose original mappings are gone,
        and the declared ids must stay aligned with the epoch counter.
        The skipped epochs get empty level-0 nodes and synthetic DECLARE
        records, keeping both the Skippy structure and the durable log
        self-consistent.
        """
        while self.current_epoch < epoch:
            self.declare_snapshot()

    def record(self, entry: MapEntry) -> None:
        """Record a mapping captured during the current epoch."""
        with self._latch:
            if self.current_epoch == 0:
                raise SnapshotError("no snapshot declared; nothing to map")
            if entry.to_snap != self.current_epoch:
                raise SnapshotError(
                    f"mapping to_snap {entry.to_snap} != epoch "
                    f"{self.current_epoch}"
                )
            if entry.page_id in self._open_batch:
                raise SnapshotError(
                    f"page {entry.page_id} captured twice in epoch "
                    f"{self.current_epoch}"
                )
            self._open_batch[entry.page_id] = entry
            self.entries_recorded += 1
            self._writer.append(_ENTRY.pack(
                _KIND_MAPPING, entry.page_id, entry.from_snap,
                entry.to_snap, entry.slot, entry.crc,
            ))

    def flush(self) -> None:
        """Make the durable log catch up (checkpoint)."""
        with self._latch:
            self._writer.flush()

    @property
    def records_written(self) -> int:
        """Lifetime record count (mappings + declares), durable + pending.

        Checkpoints store this in the pager roots so recovery can tell a
        replayable tail loss (records past the checkpoint, recaptured by
        WAL replay) from non-replayable corruption below it.
        """
        return self._writer.records_written

    def iter_entries(self):
        """All recorded mappings (sealed level-0 nodes + the open batch).

        The list is materialized under the latch so a concurrent
        ``record``/``declare_snapshot`` cannot mutate the structures
        mid-iteration.
        """
        with self._latch:
            entries: List[MapEntry] = []
            for node in self._levels[0]:
                entries.extend(node.values())
            entries.extend(self._open_batch.values())
        return iter(entries)

    # -- Skippy maintenance ------------------------------------------------------

    def _seal_open_batch(self) -> None:
        if self.current_epoch == 0:
            # Mappings cannot exist before the first declaration.
            return
        node = dict(self._open_batch)
        self._open_batch = {}
        self._levels[0].append(node)
        # Binary-buddy merge upwards, like carrying in a binary counter:
        # whenever a level's node count turns even, its last two nodes are
        # aligned buddies — merge them (keeping the EARLIEST mapping per
        # page) into the next level.  Invariant: len(levels[l+1]) ==
        # len(levels[l]) // 2.
        level = 0
        while self._levels[level] and len(self._levels[level]) % 2 == 0:
            left, right = self._levels[level][-2], self._levels[level][-1]
            merged = dict(left)
            for page_id, entry in right.items():
                if page_id not in merged:
                    merged[page_id] = entry
            if level + 1 >= len(self._levels):
                self._levels.append([])
            self._levels[level + 1].append(merged)
            level += 1

    def _node_exists(self, level: int, index: int) -> bool:
        return level < len(self._levels) and index < len(self._levels[level])

    # -- SPT construction ----------------------------------------------------------

    def build_spt(self, snapshot_id: int,
                  use_skippy: bool = True) -> SptBuildResult:
        """Map every captured page of ``snapshot_id`` to its Pagelog slot.

        Pages absent from the result are shared with the current database.
        """
        with self._latch:
            if snapshot_id < 1 or snapshot_id > self.current_epoch:
                raise UnknownSnapshotError(
                    f"snapshot {snapshot_id} not declared (epoch "
                    f"{self.current_epoch})"
                )
            if use_skippy:
                return self._build_spt_skippy(snapshot_id)
            return self._build_spt_linear(snapshot_id)

    def _build_spt_skippy(self, snapshot_id: int) -> SptBuildResult:
        entries: Dict[int, MapEntry] = {}
        scanned = 0
        visited = 0
        sealed_epochs = len(self._levels[0])
        epoch = snapshot_id  # first epoch whose captures can serve S
        while epoch <= sealed_epochs:
            level = self._largest_aligned_level(epoch, sealed_epochs)
            node = self._levels[level][(epoch - 1) >> level]
            visited += 1
            for page_id, entry in node.items():
                scanned += 1
                if page_id not in entries \
                        and entry.from_snap <= snapshot_id:
                    entries[page_id] = entry
            epoch += 1 << level
        # The still-open batch also serves S (captures at current epoch).
        if self._open_batch:
            visited += 1
            for page_id, entry in self._open_batch.items():
                scanned += 1
                if page_id not in entries \
                        and entry.from_snap <= snapshot_id:
                    entries[page_id] = entry
        spt = {page: entry.slot for page, entry in entries.items()}
        return SptBuildResult(spt, scanned, visited, entries)

    def _largest_aligned_level(self, epoch: int, last: int) -> int:
        """Largest complete, aligned node starting at ``epoch``."""
        level = 0
        while True:
            nxt = level + 1
            span = 1 << nxt
            aligned = (epoch - 1) % span == 0
            fits = epoch - 1 + span <= last
            if aligned and fits and self._node_exists(nxt, (epoch - 1) >> nxt):
                level = nxt
            else:
                return level

    def _build_spt_linear(self, snapshot_id: int) -> SptBuildResult:
        """Reference implementation: plain forward scan (no skip levels)."""
        entries: Dict[int, MapEntry] = {}
        scanned = 0
        visited = 0
        for index in range(snapshot_id - 1, len(self._levels[0])):
            node = self._levels[0][index]
            visited += 1
            for page_id, entry in node.items():
                scanned += 1
                if page_id not in entries \
                        and entry.from_snap <= snapshot_id:
                    entries[page_id] = entry
        if self._open_batch:
            visited += 1
            for page_id, entry in self._open_batch.items():
                scanned += 1
                if page_id not in entries \
                        and entry.from_snap <= snapshot_id:
                    entries[page_id] = entry
        spt = {page: entry.slot for page, entry in entries.items()}
        return SptBuildResult(spt, scanned, visited, entries)

    # -- incremental SPT (future-work extension; DESIGN.md §7) -------------------

    def first_capture_at_or_after(self, page_id: int,
                                  snapshot_id: int):
        """First mapping of ``page_id`` captured at epoch >= snapshot_id.

        Returns (entry_or_None, entries_scanned).  Uses the skip levels
        to touch O(log n) nodes.
        """
        with self._latch:
            return self._first_capture_locked(page_id, snapshot_id)

    def _first_capture_locked(self, page_id: int, snapshot_id: int):
        scanned = 0
        sealed_epochs = len(self._levels[0])
        epoch = snapshot_id
        while epoch <= sealed_epochs:
            level = self._largest_aligned_level(epoch, sealed_epochs)
            node = self._levels[level][(epoch - 1) >> level]
            scanned += 1
            entry = node.get(page_id)
            if entry is not None and entry.to_snap >= snapshot_id:
                return entry, scanned
            epoch += 1 << level
        if self._open_batch:
            scanned += 1
            entry = self._open_batch.get(page_id)
            if entry is not None and entry.to_snap >= snapshot_id:
                return entry, scanned
        return None, scanned

    def advance_spt(self, previous: SptBuildResult,
                    from_snapshot: int,
                    to_snapshot: int) -> SptBuildResult:
        """Derive SPT(to) from SPT(from) for to > from.

        Only the entries whose validity range ends before ``to`` need a
        fresh lookup — the incremental form of SPT construction for RQL
        queries iterating consecutive snapshots (the paper's future-work
        "sharing computations across snapshots").  Cost is proportional
        to diff(from, to), not to the snapshot size.
        """
        with self._latch:
            if to_snapshot <= from_snapshot:
                raise SnapshotError("advance_spt requires to > from")
            if to_snapshot > self.current_epoch:
                raise UnknownSnapshotError(
                    f"snapshot {to_snapshot} not declared"
                )
            if previous.entries is None:
                raise SnapshotError("previous SPT lacks entry metadata")
            entries: Dict[int, MapEntry] = {}
            scanned = 0
            visited = 0
            for page_id, entry in previous.entries.items():
                scanned += 1
                if entry.to_snap >= to_snapshot:
                    # Still valid: the page is unmodified through `to`.
                    entries[page_id] = entry
                    continue
                replacement, nodes = self._first_capture_locked(
                    page_id, to_snapshot,
                )
                visited += nodes
                if replacement is not None and                     replacement.from_snap <= to_snapshot:
                    entries[page_id] = replacement
                # else: shared with the current database now.
            spt = {page: entry.slot for page, entry in entries.items()}
            return SptBuildResult(spt, scanned, visited, entries)

    # -- inter-snapshot sharing stats (diff sizes, used by tests/benches) ------------

    def diff_size(self, older: int, newer: int) -> int:
        """Number of pages NOT shared between two snapshots.

        Pages captured in epochs (older, newer] differ between the two
        snapshots; everything else is shared.
        """
        return len(self.diff_pages(older, newer))

    def diff_pages(self, older: int, newer: int) -> Set[int]:
        """The page ids NOT shared between two snapshots.

        The set whose size ``diff_size`` reports: any page modified
        between the two declarations was captured in one of the epochs
        (older, newer] and appears here; incremental view refresh
        intersects it with a table's page set to find affected pages.
        """
        if older > newer:
            older, newer = newer, older
        with self._latch:
            pages: Set[int] = set()
            for epoch in range(older, newer):
                if epoch - 1 < len(self._levels[0]):
                    pages.update(self._levels[0][epoch - 1].keys())
            return pages

    def captures_in_epoch(self, epoch: int) -> int:
        with self._latch:
            if epoch - 1 < len(self._levels[0]):
                return len(self._levels[0][epoch - 1])
            if epoch == self.current_epoch:
                return len(self._open_batch)
            return 0

    # -- recovery ------------------------------------------------------------

    @classmethod
    def recover(cls, log_file: DiskFile) -> Tuple["Maplog", Dict[int, int]]:
        """Rebuild from the durable log, tolerating a torn tail.

        Returns the Maplog plus the COW capture map (page_id -> last epoch
        whose pre-state was captured) needed by the COW tracker.  A
        checksum-invalid tail is *repaired*: the surviving records are
        rewritten so future appends extend a clean log instead of burying
        bad blocks mid-stream (which the next recovery would have to
        classify as mid-log corruption).  The loss itself is reported via
        :attr:`recovery_status`; deciding whether it was replayable is the
        RetroManager's job.
        """
        reader = BlockLogReader(log_file)
        raws, status = reader.scan(0)
        parsed: List[Tuple[int, int, int, int, int, int]] = []
        for raw in raws:
            try:
                parsed.append(_ENTRY.unpack(raw))
            except struct.error as exc:
                raise CorruptPageError(
                    f"Maplog record of {len(raw)} bytes is not a valid "
                    f"entry"
                ) from exc
        if status.torn:
            log_file.truncate(0)
            repair_writer = BlockLogWriter(log_file)
            for raw in raws:
                repair_writer.append(raw)
            repair_writer.flush()
        maplog = cls.__new__(cls)
        maplog._latch = threading.RLock()
        maplog._writer = BlockLogWriter(log_file)
        # Lifetime counter continues across restarts so checkpointed
        # record counts stay comparable.
        maplog._writer.records_written = len(raws)
        maplog._file = log_file
        maplog.current_epoch = 0
        maplog._levels = [[]]
        maplog._open_batch = {}
        maplog.entries_recorded = 0
        maplog.recovery_status = status
        cap: Dict[int, int] = {}
        for kind, a, b, c, d, e in parsed:
            if kind == _KIND_DECLARE:
                maplog._seal_open_batch()
                maplog.current_epoch += 1
                if maplog.current_epoch != a:
                    raise SnapshotError("Maplog declaration ids out of order")
            elif kind == _KIND_MAPPING:
                entry = MapEntry(page_id=a, from_snap=b, to_snap=c, slot=d,
                                 crc=e)
                maplog._open_batch[entry.page_id] = entry
                maplog.entries_recorded += 1
                cap[entry.page_id] = entry.to_snap
            else:
                raise CorruptPageError(f"unknown Maplog record kind {kind}")
        return maplog, cap
