"""Pagelog: the log-structured archive of page pre-states.

At transaction commit, Retro copies out the pre-modification state of each
page modified for the first time since the last snapshot declaration.  The
pre-states accumulate in memory and are written to the on-disk Pagelog
when the database flushes (checkpoint), exactly as in the paper's
Section 4.

Slots are assigned eagerly (durable length + pending position) so Maplog
entries can reference a pre-state before it reaches disk; reads of pending
slots are served from memory at zero I/O cost.

Latching: a leaf-level reentrant latch keeps slot numbering and the
durable/pending split consistent for concurrent readers.  Without it, a
``read`` racing a ``flush`` can observe the file already grown but the
pending list not yet cleared, compute a negative pending index, and
silently return the wrong pre-state.
"""

from __future__ import annotations

import threading
from typing import List

from repro.errors import PageError, SnapshotError
from repro.storage.disk import DiskFile


class Pagelog:
    """Append-only archive of page pre-states with deferred flushing."""

    def __init__(self, log_file: DiskFile) -> None:
        if not log_file.append_only:
            raise SnapshotError("Pagelog requires an append-only file")
        self._file = log_file
        self._pending: List[bytes] = []
        self._latch = threading.RLock()
        #: lifetime count of pre-states archived (durable + pending)
        self.prestates_archived = 0

    # -- writes ------------------------------------------------------------

    def append(self, image: bytes) -> int:
        """Archive a pre-state; returns its (stable) slot number."""
        if len(image) != self._file.page_size:
            # Validate here, not only at flush: a short pending image
            # would be served from memory as-is and only explode at the
            # (much later) checkpoint, far from the buggy caller.
            raise PageError(
                f"Pagelog image is {len(image)} bytes, expected "
                f"{self._file.page_size}"
            )
        with self._latch:
            slot = len(self._file) + len(self._pending)
            self._pending.append(bytes(image))
            self.prestates_archived += 1
            return slot

    def flush(self) -> int:
        """Write pending pre-states to disk; returns how many were written.

        Called from the buffer pool's flush hook so pre-states always hit
        the Pagelog before the corresponding current pages overwrite the
        database file.
        """
        with self._latch:
            written = len(self._pending)
            for image in self._pending:
                self._file.append(image)
            self._pending.clear()
            return written

    # -- reads ---------------------------------------------------------------

    def read(self, slot: int) -> bytes:
        """Read one pre-state; pending slots cost no I/O."""
        with self._latch:
            durable = len(self._file)
            if slot < durable:
                return self._file.read(slot)
            pending_index = slot - durable
            if pending_index < len(self._pending):
                return self._pending[pending_index]
        raise SnapshotError(f"Pagelog slot {slot} does not exist")

    # -- introspection ---------------------------------------------------------

    @property
    def durable_slots(self) -> int:
        with self._latch:
            return len(self._file)

    @property
    def pending_slots(self) -> int:
        with self._latch:
            return len(self._pending)

    @property
    def total_slots(self) -> int:
        with self._latch:
            return len(self._file) + len(self._pending)

    @property
    def size_bytes(self) -> int:
        with self._latch:
            return self._file.size_bytes + sum(len(p) for p in self._pending)
