"""Snapshot page cache.

Snapshot pages are cached **by Pagelog slot**, not by (snapshot, page).
Because consecutive snapshots share pre-states — a page unmodified between
S1 and S2 occupies a single Pagelog slot serving both — a query iterating
over S1 then S2 hits the cache for every shared page.  This keying is what
turns the paper's ``shared(S1, S2)`` into cache hits and ``diff(S1, S2)``
into Pagelog I/O (Section 4).

An alternative keying by ``(snapshot_id, page_id)`` is provided for the
ablation bench: it deliberately destroys cross-snapshot sharing, isolating
how much of RQL's hot-iteration speedup comes from COW slot identity.

Latching: the entry table and its counters are guarded by a leaf-level
reentrant latch — parallel snapshot workers share one cache, and the
latch never wraps a call into any other latched component, keeping the
global latch order (RPL011) acyclic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional

from repro.errors import SnapshotError


class SnapshotPageCache:
    """LRU cache of snapshot page images keyed by an arbitrary identity."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 0:
            raise SnapshotError("cache capacity must be >= 0")
        self.capacity = capacity_pages
        self._entries: "OrderedDict[Hashable, bytes]" = OrderedDict()
        self._latch = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Optional[bytes]:
        with self._latch:
            image = self._entries.get(key)
            if image is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return image

    def put(self, key: Hashable, image: bytes) -> None:
        with self._latch:
            if self.capacity == 0:
                return
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = image
                return
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = image

    def clear(self) -> None:
        """Empty the cache (used to model 'snapshot not accessed recently')."""
        with self._latch:
            self._entries.clear()

    def reset_stats(self) -> None:
        with self._latch:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        with self._latch:
            return len(self._entries)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
