"""Incremental materialized retrospective views (ROADMAP open item 2).

``CREATE MATERIALIZED VIEW v AS Mechanism('Qq'[, 'arg'])`` stores the
result of a retrospective mechanism over *every declared snapshot* and
maintains it incrementally as new snapshots are declared:

* Each view records the snapshot it was last **built from** and the
  rqlint merge class of its defining query (``__rql_views`` metadata,
  aux engine — non-snapshotable but durable, like SnapIds).
* ``REFRESH MATERIALIZED VIEW v`` computes the **affected page set**:
  the Maplog diff between ``built_from`` and the refresh target,
  intersected with the pages of the certificate's read tables (plus the
  main catalog) *as of* ``built_from``.  Because the first mutation of
  a B-tree after a snapshot always writes a page that belonged to the
  tree at that snapshot, an empty intersection proves every read table
  is unchanged at every snapshot in ``(built_from, target]``.
* The delta — the newly declared snapshots — is evaluated per snapshot
  through the same rewritten-Qq path as the executors and folded into
  the stored result with the PR 3 merge algebra
  (:func:`repro.core.parallel.fold_stored_rows` /
  :func:`~repro.core.parallel.fold_intervals`, monoid ``merge`` for
  AggregateDataInVariable, row concat for CollateData): the stored
  state is the "first partition" and the delta a single "later
  partition" of the parallel run the differential harness proves
  equivalent to serial execution.  When the affected set is empty and
  the Qq never calls ``current_snapshot()``, the delta is evaluated
  **once** at the target and replayed per snapshot (identical table
  contents imply identical Qq output).
* Serial-only certificates, views whose Qq reads non-snapshotable
  (aux) sources — including other views — and monoid views without
  serializable fold state fall back to **full recompute** with the
  reason logged on the :class:`RefreshReport` and the EXPLAIN surface.
* Dependent views (a Qq reading another view's result table) refresh
  first, dependency-ordered, **pinned to the same target snapshot**, so
  a cascade observes one consistent snapshot across all sources.
* All refresh writes — the result table and the metadata row — land in
  one explicit transaction touching only the aux engine, so a crash
  recovers to fully-old or fully-new ``built_from``, never a torn mix
  (``tests/retro/test_view_crash.py``).

Refresh admission is a write: the whole refresh holds the store's
WriteGate, while MVCC keeps concurrently pinned readers on the
stale-but-consistent pre-refresh contents.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.aggregates import (
    make_cross_snapshot_aggregate,
    parse_col_func_pairs,
)
from repro.core.mechanisms import (
    CollateDataIntoIntervalsRun,
    TableAggregateSchema,
    _quote,
)
from repro.core.parallel import eval_qq_at, fold_intervals, fold_stored_rows
from repro.core.rewrite import references_current_snapshot, rewrite_qq
from repro.errors import (
    MechanismError,
    QueryCancelled,
    SqlError,
    ViewError,
)
from repro.retro.metrics import MetricsSink
from repro.sql.executor import ResultSet
from repro.storage.record import encode_key

VIEWS_TABLE = "__rql_views"

#: the implicit Qs of every view: all declared snapshots (certification
#: input; the actual refresh iterates 1..target directly).
VIEW_QS = "SELECT snap_id FROM SnapIds ORDER BY snap_id"

# Merge-class literals, mirroring repro.analysis.query.mergeclass (the
# analysis package is imported lazily through session.certify so that
# importing the retro layer never drags the lint machinery in).
CONCAT = "concat"
MONOID = "monoid"
STORED_ROW = "stored-row"
INTERVAL_STITCH = "interval-stitch"
SERIAL_ONLY = "serial-only"

_CANONICAL_MECHANISMS = {
    "collatedata": "CollateData",
    "aggregatedatainvariable": "AggregateDataInVariable",
    "aggregatedataintable": "AggregateDataInTable",
    "collatedataintointervals": "CollateDataIntoIntervals",
}

_ARG_MECHANISMS = ("AggregateDataInVariable", "AggregateDataInTable")


def _escape(text: str) -> str:
    return text.replace("'", "''")


def _canonical_mechanism(name: str) -> str:
    canonical = _CANONICAL_MECHANISMS.get(
        name.replace("_", "").strip().lower())
    if canonical is None:
        raise ViewError(
            f"unknown mechanism {name!r}; materialized views support "
            f"{', '.join(sorted(_CANONICAL_MECHANISMS.values()))}"
        )
    return canonical


@dataclass
class ViewMeta:
    """One ``__rql_views`` row."""

    name: str
    mechanism: str
    qq: str
    arg: Optional[str]
    merge_class: str
    built_from: int
    state: Optional[dict]

    @property
    def index_name(self) -> str:
        return f"__rqlidx_{self.name.lower()}"


@dataclass
class RefreshReport:
    """Telemetry of one refresh (in memory only — never persisted, so
    full-database dumps stay byte-identical across refresh modes)."""

    view: str
    mechanism: str
    merge_class: str
    mode: str          # noop | delta | delta-skip | full
    reason: str
    built_from: int    # before the refresh
    target: int
    diff_page_count: int
    affected_page_count: int
    evaluated_snapshots: int
    qq_rows: int
    pagelog_reads: int
    cache_hits: int
    db_reads: int
    table_written: bool
    cascaded: List[str] = field(default_factory=list)

    def summary_lines(self) -> List[str]:
        lines = [
            f"view {self.view}: {self.mechanism} "
            f"[merge class {self.merge_class}]",
            f"built_from {self.built_from} -> target {self.target}",
            f"maplog diff {self.diff_page_count} pages, "
            f"affected {self.affected_page_count} pages",
            f"decision: {self.mode} ({self.reason})",
            f"evaluated {self.evaluated_snapshots} snapshots, "
            f"{self.qq_rows} Qq rows",
            f"reads: pagelog {self.pagelog_reads}, cache "
            f"{self.cache_hits}, db {self.db_reads}",
        ]
        if self.cascaded:
            lines.append("cascaded: " + ", ".join(self.cascaded))
        return lines


@dataclass
class _WritePlan:
    """What the final (single, aux-only) transaction must do."""

    rewrite: bool = False                 # drop + recreate the table
    columns: Optional[List[str]] = None   # create with these columns
    rows: List[tuple] = field(default_factory=list)
    index_columns: Optional[List[str]] = None
    append_rows: List[tuple] = field(default_factory=list)
    state: Optional[dict] = None

    @property
    def touches_table(self) -> bool:
        return self.rewrite or bool(self.append_rows)


class ViewManager:
    """Materialized-view catalog + refresh engine for one session.

    Installed on the session's Database as ``view_handler``; the SQL
    layer routes CREATE/REFRESH/DROP MATERIALIZED VIEW (and EXPLAIN
    REFRESH) here.  Metadata lives in the shared aux engine, so every
    session over a SharedStore sees the same views; reports are
    per-session, in-memory telemetry.
    """

    def __init__(self, session) -> None:
        self._session = session
        self.db = session.db
        self._abort = threading.Event()
        self._closed = False
        #: name (lower) -> report of the most recent refresh via this
        #: session — EXPLAIN/CLI telemetry, deliberately not persisted.
        self.last_reports: Dict[str, RefreshReport] = {}
        self.db.execute(
            f"CREATE TEMP TABLE IF NOT EXISTS {VIEWS_TABLE} ("
            f"name, mechanism, qq, arg, merge_class, built_from, state)"
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Abort any in-flight refresh and refuse further view work.

        Called from ``RQLSession.close()`` — a refresh running on
        another thread observes the abort flag between snapshot
        evaluations and unwinds via :class:`QueryCancelled` before it
        opens its write transaction (an already-open one is rolled back
        by ``Database.close``).
        """
        self._closed = True
        self._abort.set()

    def _ensure_usable(self) -> None:
        if self._closed:
            raise ViewError("view manager is closed")
        if self.db._in_explicit_txn:
            raise ViewError(
                "materialized-view operations cannot run inside an "
                "open transaction"
            )

    def _check_cancel(self, cancel) -> None:
        if self._abort.is_set():
            raise QueryCancelled("view refresh aborted by session close")
        if cancel is not None and cancel.is_set():
            raise QueryCancelled("view refresh cancelled")

    # -- SQL statement surface ---------------------------------------------

    def execute_create(self, statement) -> ResultSet:
        report = self.create(
            statement.name, statement.mechanism, statement.qq,
            arg=statement.arg, if_not_exists=statement.if_not_exists,
        )
        if report is None:  # IF NOT EXISTS hit an existing view
            return ResultSet([], [])
        return ResultSet(
            ["view", "merge_class", "built_from"],
            [(report.view, report.merge_class, report.target)],
        )

    def execute_refresh(self, statement) -> ResultSet:
        report = self.refresh(statement.name, full=statement.full)
        return ResultSet(
            ["view", "mode", "built_from", "target", "affected_pages",
             "evaluated"],
            [(report.view, report.mode, report.built_from, report.target,
              report.affected_page_count, report.evaluated_snapshots)],
        )

    def execute_drop(self, statement) -> ResultSet:
        self.drop(statement.name, if_exists=statement.if_exists)
        return ResultSet([], [])

    # -- create / drop ------------------------------------------------------

    def create(self, name: str, mechanism: str, qq: str,
               arg: Optional[str] = None, if_not_exists: bool = False,
               cancel=None) -> Optional[RefreshReport]:
        """Create the view and run its initial (full) build atomically."""
        self._ensure_usable()
        mech = _canonical_mechanism(mechanism)
        if mech in _ARG_MECHANISMS and arg is None:
            raise ViewError(f"{mech} requires an aggregate argument")
        if mech not in _ARG_MECHANISMS and arg is not None:
            raise ViewError(f"{mech} takes no aggregate argument")
        if mech == "AggregateDataInVariable":
            make_cross_snapshot_aggregate(arg)
        elif mech == "AggregateDataInTable":
            parse_col_func_pairs(arg)
        rewrite_qq(qq, 1)  # fail fast on a malformed Qq
        with self.db.write_lock():
            views = self._load_all()
            if name.lower() in views:
                if if_not_exists:
                    return None
                raise ViewError(
                    f"materialized view {name!r} already exists")
            if self._table_exists(name):
                raise ViewError(
                    f"a table named {name!r} already exists")
            certificate = self._certify(mech, qq, arg)
            if name.lower() in {t.lower() for t in certificate.read_tables}:
                raise ViewError(
                    f"materialized view {name!r} cannot read itself")
            meta = ViewMeta(
                name=name, mechanism=mech, qq=qq, arg=arg,
                merge_class=certificate.merge_class, built_from=0,
                state=None,
            )
            try:
                return self._refresh_one(
                    meta, views, self._retro.latest_snapshot_id,
                    full=True, reason="initial build", cancel=cancel,
                    certificate=certificate, persist="insert",
                )
            except SqlError as exc:
                # A Qq that cannot run (unknown table — including the
                # view itself — bad column, ...) must fail the CREATE,
                # not linger as an unbuildable view.
                raise ViewError(
                    f"cannot build materialized view {name!r}: {exc}"
                ) from exc

    def drop(self, name: str, if_exists: bool = False) -> None:
        self._ensure_usable()
        with self.db.write_lock():
            views = self._load_all()
            meta = views.get(name.lower())
            if meta is None:
                if if_exists:
                    return
                raise ViewError(f"unknown materialized view {name!r}")
            dependents = self._dependents_of(meta, views)
            if dependents:
                raise ViewError(
                    f"materialized view {meta.name!r} is read by "
                    f"{', '.join(sorted(dependents))}; drop those first"
                )
            with self.db.transaction():
                self.db.execute(
                    f"DROP TABLE IF EXISTS {_quote(meta.name)}")
                self.db.execute(
                    f"DELETE FROM {VIEWS_TABLE} "
                    f"WHERE name = '{_escape(meta.name)}'"
                )
            self.last_reports.pop(meta.name.lower(), None)

    # -- refresh -----------------------------------------------------------

    def refresh(self, name: str, full: bool = False,
                cancel=None) -> RefreshReport:
        """Refresh ``name`` (cascading over view dependencies first, all
        pinned to one target snapshot); returns the refresh report."""
        self._ensure_usable()
        with self.db.write_lock():
            views = self._load_all()
            meta = views.get(name.lower())
            if meta is None:
                raise ViewError(f"unknown materialized view {name!r}")
            target = self._retro.latest_snapshot_id
            return self._refresh_cascade(meta, views, target, full=full,
                                         cancel=cancel, chain=())

    def _refresh_cascade(self, meta: ViewMeta, views: Dict[str, ViewMeta],
                         target: int, full: bool, cancel,
                         chain: Tuple[str, ...]) -> RefreshReport:
        if meta.name.lower() in chain:
            raise ViewError(
                "materialized-view dependency cycle: "
                + " -> ".join(chain + (meta.name.lower(),))
            )
        certificate = self._certify(meta.mechanism, meta.qq, meta.arg)
        cascaded: List[str] = []
        for table in sorted({t.lower() for t in certificate.read_tables}):
            dep = views.get(table)
            if dep is None or dep.name.lower() == meta.name.lower():
                continue
            if dep.built_from != target:
                self._refresh_cascade(
                    dep, views, target, full=False, cancel=cancel,
                    chain=chain + (meta.name.lower(),),
                )
                cascaded.append(dep.name)
                views = self._load_all()  # dep metadata advanced
        report = self._refresh_one(
            meta, views, target, full=full, reason=None, cancel=cancel,
            certificate=certificate, persist="update",
        )
        report.cascaded = cascaded + report.cascaded
        return report

    def _refresh_one(self, meta: ViewMeta, views: Dict[str, ViewMeta],
                     target: int, full: bool, reason: Optional[str],
                     cancel, certificate,
                     persist: str) -> RefreshReport:
        sink = MetricsSink()
        mode, why, diff_count, affected = self._plan(
            meta, views, target, full, certificate, sink)
        if reason is not None:
            why = reason
        report = RefreshReport(
            view=meta.name, mechanism=meta.mechanism,
            merge_class=meta.merge_class, mode=mode, reason=why,
            built_from=meta.built_from, target=target,
            diff_page_count=diff_count, affected_page_count=len(affected),
            evaluated_snapshots=0, qq_rows=0, pagelog_reads=0,
            cache_hits=0, db_reads=0, table_written=False,
        )
        if mode == "noop":
            self._account(report, sink)
            self.last_reports[meta.name.lower()] = report
            return report

        if mode == "full":
            sids = list(range(1, target + 1))
            base_empty = True
        else:
            sids = list(range(meta.built_from + 1, target + 1))
            base_empty = False
        skip_eval = mode == "delta-skip"

        if meta.merge_class == MONOID and mode != "full" \
                and self._monoid_state(meta) is None:
            # Cannot fold without the persisted (sum, count) state.
            mode = report.mode = "full"
            report.reason = "no stored aggregate fold state"
            sids = list(range(1, target + 1))
            base_empty = True
            skip_eval = False

        evaluated = self._eval_range(meta.qq, sids, sink, cancel,
                                     skip_eval)
        report.evaluated_snapshots = evaluated.evaluations
        plan = self._fold(meta, evaluated, base_empty)
        self._check_cancel(cancel)
        self._persist(meta, target, plan, persist)
        report.table_written = plan.touches_table
        self._account(report, sink)
        self.last_reports[meta.name.lower()] = report
        return report

    # -- refresh planning ---------------------------------------------------

    def _plan(self, meta: ViewMeta, views: Dict[str, ViewMeta],
              target: int, full: bool, certificate,
              sink: MetricsSink):
        """(mode, reason, diff_page_count, affected_pages) for a refresh
        of ``meta`` to ``target`` — shared by refresh and EXPLAIN."""
        if target < meta.built_from:
            raise ViewError(
                f"view {meta.name!r} was built from snapshot "
                f"{meta.built_from} but only {target} are declared"
            )
        if target == meta.built_from and not full:
            return "noop", "already at the latest snapshot", 0, set()
        if full:
            return "full", "explicit FULL refresh", 0, set()
        if meta.built_from == 0:
            return "full", "initial build", 0, set()
        if meta.merge_class == SERIAL_ONLY or not certificate.mergeable:
            detail = "; ".join(
                f.message for f in certificate.errors) or "not mergeable"
            return ("full", f"serial-only certificate: {detail}", 0,
                    set())
        aux_reads = sorted(
            t.lower() for t in set(certificate.read_tables)
            if self._aux_table_exists(t)
        )
        if aux_reads:
            return ("full",
                    "reads non-snapshotable source(s): "
                    + ", ".join(aux_reads), 0, set())
        diff = self._retro.diff_pages(meta.built_from, target)
        if not diff:
            affected: Set[int] = set()
        else:
            read_pages = self._read_page_set(
                meta.built_from, certificate.read_tables, sink)
            affected = diff & read_pages
        if not affected and not references_current_snapshot(meta.qq):
            return ("delta-skip",
                    "no affected pages and snapshot-invariant Qq: "
                    "evaluate once at the target and replay",
                    len(diff), affected)
        if affected:
            reason = (f"{len(affected)} affected pages in "
                      f"{len(certificate.read_tables)} read tables")
        else:
            reason = ("no affected pages but Qq calls "
                      "current_snapshot(); re-evaluating the delta")
        return "delta", reason, len(diff), affected

    def _read_page_set(self, built_from: int,
                       read_tables: Sequence[str],
                       sink: MetricsSink) -> Set[int]:
        """Pages of the read tables (plus the main catalog, so DDL is
        always detected) as of ``built_from``."""
        from repro.sql.catalog import Catalog
        from repro.storage.btree import BTree

        engine = self.db.engine
        ctx = engine.begin_read(owner=self.db._owner)
        try:
            with self._retro.route_metrics(sink):
                sink.begin_iteration(built_from)
                try:
                    source = engine.snapshot_source(built_from, ctx)
                    root = engine.pager.get_root("catalog")
                    pages: Set[int] = set(BTree(source, root).page_ids())
                    catalog = Catalog(source, root)
                    for table in read_tables:
                        info = catalog.get_table(table)
                        if info is not None:
                            pages.update(
                                BTree(source, info.root_id).page_ids())
                finally:
                    sink.end_iteration()
            return pages
        finally:
            ctx.close()

    # -- evaluation ---------------------------------------------------------

    @dataclass
    class _Evaluated:
        columns: Optional[List[str]]
        per_sid: List[Tuple[int, List[tuple]]]
        evaluations: int

    def _eval_range(self, qq: str, sids: List[int], sink: MetricsSink,
                    cancel, skip_eval) -> "ViewManager._Evaluated":
        if not sids:
            return self._Evaluated(None, [], 0)
        with self._retro.route_metrics(sink):
            if skip_eval:
                # Identical table contents at every sid + snapshot-
                # invariant Qq: one evaluation at the target stands in
                # for the whole range.
                self._check_cancel(cancel)
                current = sink.begin_iteration(sids[-1])
                try:
                    columns, rows = eval_qq_at(
                        self.db, qq, sids[-1], sink, current)
                finally:
                    sink.end_iteration()
                return self._Evaluated(
                    columns, [(sid, rows) for sid in sids], 1)
            columns: Optional[List[str]] = None
            per_sid: List[Tuple[int, List[tuple]]] = []
            for sid in sids:
                self._check_cancel(cancel)
                current = sink.begin_iteration(sid)
                try:
                    sid_columns, rows = eval_qq_at(
                        self.db, qq, sid, sink, current)
                finally:
                    sink.end_iteration()
                if columns is None:
                    columns = sid_columns
                per_sid.append((sid, rows))
            return self._Evaluated(columns, per_sid, len(sids))

    # -- delta folding -------------------------------------------------------

    #: fold shape per mechanism.  For certified views this matches the
    #: certificate's merge class; a SERIAL-ONLY view still folds by its
    #: mechanism's shape — the decision ladder has already forced a
    #: full recompute (base_empty), where the fold functions replicate
    #: the serial loop exactly.
    _FOLD_CLASSES = {
        "collatedata": CONCAT,
        "aggregatedatainvariable": MONOID,
        "aggregatedataintable": STORED_ROW,
        "collatedataintointervals": INTERVAL_STITCH,
    }

    def _fold(self, meta: ViewMeta, evaluated: "ViewManager._Evaluated",
              base_empty: bool) -> _WritePlan:
        fold_class = self._FOLD_CLASSES[meta.mechanism.lower()]
        if fold_class == CONCAT:
            return self._fold_concat(meta, evaluated, base_empty)
        if fold_class == MONOID:
            return self._fold_monoid(meta, evaluated, base_empty)
        if fold_class == STORED_ROW:
            return self._fold_stored_row(meta, evaluated, base_empty)
        return self._fold_intervals(meta, evaluated, base_empty)

    def _fold_concat(self, meta, evaluated, base_empty) -> _WritePlan:
        rows: List[tuple] = []
        for _sid, sid_rows in evaluated.per_sid:
            rows.extend(sid_rows)
        if base_empty:
            if evaluated.columns is None:
                return _WritePlan()
            return _WritePlan(rewrite=True, columns=list(evaluated.columns),
                              rows=rows)
        # Delta: the stored rows are exactly the serial prefix — append.
        return _WritePlan(append_rows=rows)

    def _fold_monoid(self, meta, evaluated, base_empty) -> _WritePlan:
        if base_empty:
            column: Optional[str] = None
            state = make_cross_snapshot_aggregate(meta.arg)
        else:
            stored = self._monoid_state(meta)
            column = stored["column"]
            state = self._restore_agg(stored)
        for sid, sid_rows in evaluated.per_sid:
            if evaluated.columns is not None and \
                    len(evaluated.columns) != 1:
                raise MechanismError(
                    "AggregateDataInVariable requires a single-column Qq"
                )
            if len(sid_rows) > 1:
                raise MechanismError(
                    "AggregateDataInVariable requires Qq to return a "
                    f"single row; snapshot {sid} returned {len(sid_rows)}"
                )
            if column is None and evaluated.columns is not None:
                column = evaluated.columns[0]
            if sid_rows:
                state.absorb(sid_rows[0][0])
        if column is None:
            return _WritePlan(state=None)
        return _WritePlan(
            rewrite=True, columns=[column], rows=[(state.result(),)],
            state=self._dump_agg(column, state),
        )

    def _fold_stored_row(self, meta, evaluated, base_empty) -> _WritePlan:
        schema = TableAggregateSchema(list(parse_col_func_pairs(meta.arg)))
        acc_rows: List[tuple] = []
        acc_by_key: Dict[bytes, int] = {}
        if not base_empty:
            stored_columns, base_rows = self._scan_table(meta.name)
            schema.bind(self._visible_columns(stored_columns))
            for row in base_rows:
                acc_rows.append(tuple(row))
                acc_by_key.setdefault(
                    _group_key(schema, row), len(acc_rows) - 1)
        delta_rows: List[tuple] = []
        delta_by_key: Dict[bytes, int] = {}
        first = True
        for _sid, sid_rows in evaluated.per_sid:
            if not schema.bound and evaluated.columns is not None:
                schema.bind(list(evaluated.columns))
            if base_empty and first:
                # Serial first pass: insert every record unprobed
                # (duplicate group rows possible), exactly like the
                # executors' partition 0.
                for row in sid_rows:
                    key = _group_key(schema, row)
                    delta_by_key.setdefault(key, len(delta_rows))
                    delta_rows.append(schema.widen(row))
            else:
                for row in sid_rows:
                    key = _group_key(schema, row)
                    at = delta_by_key.get(key)
                    if at is None:
                        delta_by_key[key] = len(delta_rows)
                        delta_rows.append(schema.widen(row))
                    else:
                        updated = schema.apply(delta_rows[at], row)
                        if updated is not None:
                            delta_rows[at] = updated
            first = False
        if not schema.bound:
            return _WritePlan()  # nothing ever evaluated; no table yet
        if base_empty:
            acc_rows, acc_by_key = delta_rows, delta_by_key
        elif delta_rows:
            fold_stored_rows(schema, acc_rows, acc_by_key, delta_rows)
        elif not base_empty:
            # Empty delta: the stored table is already exact.
            return _WritePlan()
        return _WritePlan(
            rewrite=True, columns=list(schema.columns), rows=acc_rows,
            index_columns=[schema.columns[p]
                           for p in schema.group_positions],
        )

    def _fold_intervals(self, meta, evaluated, base_empty) -> _WritePlan:
        acc: List[list] = []
        acc_by_key: Dict[bytes, List[int]] = {}
        columns: Optional[List[str]] = None
        if not base_empty:
            stored_columns, base_rows = self._scan_table(meta.name)
            columns = list(stored_columns[:-2])
            for row in base_rows:
                values = tuple(row[:-2])
                key = encode_key(values)
                acc_by_key.setdefault(key, []).append(len(acc))
                acc.append([key, values, row[-2], row[-1]])
        if columns is None and evaluated.columns is not None:
            columns = list(evaluated.columns)
        delta: List[list] = []
        delta_by_key: Dict[bytes, List[int]] = {}
        previous: Optional[int] = None
        for sid, sid_rows in evaluated.per_sid:
            for row in sid_rows:
                values = tuple(row)
                key = encode_key(values)
                extended = False
                if previous is not None:
                    for at in delta_by_key.get(key, ()):
                        interval = delta[at]
                        if interval[3] == previous:
                            interval[3] = sid
                            extended = True
                            break
                if not extended:
                    delta_by_key.setdefault(key, []).append(len(delta))
                    delta.append([key, values, sid, sid])
            previous = sid
        if columns is None:
            return _WritePlan()
        if base_empty:
            acc, acc_by_key = delta, delta_by_key
        elif delta:
            fold_intervals(acc, acc_by_key, delta,
                           evaluated.per_sid[0][0], meta.built_from)
        elif not base_empty:
            return _WritePlan()
        return _WritePlan(
            rewrite=True,
            columns=columns + [CollateDataIntoIntervalsRun.START_COLUMN,
                               CollateDataIntoIntervalsRun.END_COLUMN],
            rows=[values + (start, end)
                  for _key, values, start, end in acc],
            index_columns=columns,
        )

    # -- the single write transaction ---------------------------------------

    def _persist(self, meta: ViewMeta, target: int, plan: _WritePlan,
                 persist: str) -> None:
        """Apply the write plan and advance the metadata row in ONE
        explicit transaction.  Every statement here touches only the
        aux engine (the result table is TEMP, the metadata table is
        TEMP), so the commit is a single-WAL atomic step: a crash
        recovers to fully-old or fully-new, never a torn view.
        """
        state_sql = "NULL"
        if plan.state is not None:
            state_sql = f"'{_escape(json.dumps(plan.state, sort_keys=True))}'"
        with self.db.transaction():
            if plan.rewrite:
                self.db.execute(
                    f"DROP TABLE IF EXISTS {_quote(meta.name)}")
                assert plan.columns is not None
                cols = ", ".join(_quote(c) for c in plan.columns)
                self.db.execute(
                    f"CREATE TEMP TABLE {_quote(meta.name)} ({cols})")
                _, writer = self.db.table_writer(meta.name)
                for row in plan.rows:
                    writer.insert(tuple(row))
                if plan.index_columns:
                    index_cols = ", ".join(
                        _quote(c) for c in plan.index_columns)
                    self.db.execute(
                        f"CREATE INDEX {_quote(meta.index_name)} ON "
                        f"{_quote(meta.name)} ({index_cols})"
                    )
            elif plan.append_rows:
                _, writer = self.db.table_writer(meta.name)
                for row in plan.append_rows:
                    writer.insert(tuple(row))
            if persist == "insert":
                arg_sql = ("NULL" if meta.arg is None
                           else f"'{_escape(meta.arg)}'")
                self.db.execute(
                    f"INSERT INTO {VIEWS_TABLE} VALUES ("
                    f"'{_escape(meta.name)}', '{_escape(meta.mechanism)}', "
                    f"'{_escape(meta.qq)}', {arg_sql}, "
                    f"'{_escape(meta.merge_class)}', {target}, {state_sql})"
                )
            else:
                self.db.execute(
                    f"UPDATE {VIEWS_TABLE} SET built_from = {target}, "
                    f"state = {state_sql} "
                    f"WHERE name = '{_escape(meta.name)}'"
                )
        meta.built_from = target
        meta.state = plan.state

    # -- EXPLAIN / listing ---------------------------------------------------

    def explain_refresh(self, name: str, full: bool = False) -> List[str]:
        """Dry-run refresh plan: built_from, affected pages, the
        delta-vs-full decision, and the merge certificate."""
        self._ensure_usable()
        views = self._load_all()
        meta = views.get(name.lower())
        if meta is None:
            raise ViewError(f"unknown materialized view {name!r}")
        certificate = self._certify(meta.mechanism, meta.qq, meta.arg)
        target = self._retro.latest_snapshot_id
        sink = MetricsSink()
        mode, why, diff_count, affected = self._plan(
            meta, views, target, full, certificate, sink)
        lines = [
            f"view {meta.name}: {meta.mechanism} "
            f"[merge class {meta.merge_class}]",
            f"built_from {meta.built_from}, target {target}",
            f"maplog diff {diff_count} pages, affected {len(affected)} "
            f"pages",
            f"decision: {mode} ({why})",
        ]
        report = self.last_reports.get(meta.name.lower())
        if report is not None:
            lines.append(
                f"last refresh: {report.mode}, evaluated "
                f"{report.evaluated_snapshots} snapshots, pagelog reads "
                f"{report.pagelog_reads}"
            )
        lines.extend(certificate.summary_lines())
        return lines

    def list_views(self) -> List[ViewMeta]:
        return sorted(self._load_all().values(),
                      key=lambda m: m.name.lower())

    # -- helpers -------------------------------------------------------------

    @property
    def _retro(self):
        return self.db.engine.retro

    def _certify(self, mechanism: str, qq: str, arg):
        return self._session.certify(mechanism, VIEW_QS, qq, arg=arg)

    def _account(self, report: RefreshReport, sink: MetricsSink) -> None:
        for iteration in sink.iterations:
            report.qq_rows += iteration.qq_rows
            report.pagelog_reads += iteration.pagelog_reads
            report.cache_hits += iteration.cache_hits
            report.db_reads += iteration.db_reads

    def _load_all(self) -> Dict[str, ViewMeta]:
        result = self.db.execute(f"SELECT * FROM {VIEWS_TABLE}")
        views: Dict[str, ViewMeta] = {}
        for row in result.rows:
            name, mechanism, qq, arg, merge_class, built_from, state = row
            views[str(name).lower()] = ViewMeta(
                name=str(name), mechanism=str(mechanism), qq=str(qq),
                arg=None if arg is None else str(arg),
                merge_class=str(merge_class),
                built_from=int(built_from),
                state=None if state is None else json.loads(state),
            )
        return views

    def _dependents_of(self, meta: ViewMeta,
                       views: Dict[str, ViewMeta]) -> List[str]:
        dependents = []
        for other in views.values():
            if other.name.lower() == meta.name.lower():
                continue
            certificate = self._certify(other.mechanism, other.qq,
                                        other.arg)
            reads = {t.lower() for t in certificate.read_tables}
            if meta.name.lower() in reads:
                dependents.append(other.name)
        return dependents

    def _scan_table(self, name: str):
        result = self.db.execute(f"SELECT * FROM {_quote(name)}")
        return list(result.columns), [tuple(r) for r in result.rows]

    @staticmethod
    def _visible_columns(stored_columns: Sequence[str]) -> List[str]:
        return [c for c in stored_columns if not c.startswith("__avg_")]

    def _table_exists(self, name: str) -> bool:
        from repro.sql.catalog import Catalog

        for engine in (self.db.aux_engine, self.db.engine):
            ctx = engine.begin_read(owner=self.db._owner)
            try:
                source = engine.read_source(ctx)
                catalog = Catalog(source,
                                  engine.pager.get_root("catalog"))
                if catalog.get_table(name) is not None:
                    return True
            finally:
                ctx.close()
        return False

    def _aux_table_exists(self, name: str) -> bool:
        from repro.sql.catalog import Catalog

        engine = self.db.aux_engine
        ctx = engine.begin_read(owner=self.db._owner)
        try:
            source = engine.read_source(ctx)
            catalog = Catalog(source, engine.pager.get_root("catalog"))
            return catalog.get_table(name) is not None
        finally:
            ctx.close()

    # -- monoid fold-state (de)serialization ---------------------------------

    def _monoid_state(self, meta: ViewMeta) -> Optional[dict]:
        state = meta.state
        if not state or "column" not in state or "func" not in state:
            return None
        return state

    @staticmethod
    def _dump_agg(column: str, state) -> Optional[dict]:
        """JSON-serializable fold state; None when the aggregate value
        cannot round-trip through JSON (the next delta refresh then
        falls back to full recompute)."""
        func = state.name
        if func == "avg":
            payload = {"column": column, "func": func,
                       "sum": state.total, "count": state.count}
        elif func == "count":
            payload = {"column": column, "func": func,
                       "value": state.count}
        elif func == "sum":
            payload = {"column": column, "func": func,
                       "value": state.total}
        else:  # min / max
            payload = {"column": column, "func": func,
                       "value": state.best}
        try:
            json.dumps(payload)
        except (TypeError, ValueError):
            return None
        return payload

    @staticmethod
    def _restore_agg(payload: dict):
        state = make_cross_snapshot_aggregate(payload["func"])
        func = payload["func"]
        if func == "avg":
            state.total = payload["sum"]
            state.count = payload["count"]
        elif func == "count":
            state.count = payload["value"]
        elif func == "sum":
            state.total = payload["value"]
        else:
            state.best = payload["value"]
        return state


def _group_key(schema: TableAggregateSchema, row: Sequence) -> bytes:
    """The executors' group identity (see ParallelExecutor._group_key)."""
    return encode_key(tuple(row[p] for p in schema.group_positions))
