"""The Retro page-level copy-on-write snapshot system."""

from repro.retro.maplog import MapEntry, Maplog, SptBuildResult
from repro.retro.manager import RetroManager, SnapshotPageSource
from repro.retro.metrics import IoCharges, IterationMetrics, MetricsSink, Timer
from repro.retro.pagelog import Pagelog
from repro.retro.snapshot_cache import SnapshotPageCache

__all__ = [
    "IoCharges",
    "IterationMetrics",
    "MapEntry",
    "Maplog",
    "MetricsSink",
    "Pagelog",
    "RetroManager",
    "SnapshotPageCache",
    "SnapshotPageSource",
    "SptBuildResult",
    "Timer",
]
