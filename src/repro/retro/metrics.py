"""Cost instrumentation for snapshot computations.

The paper explains every figure with a per-iteration breakdown: Pagelog
I/O, SPT build, query evaluation, index creation, and RQL UDF processing.
:class:`IterationMetrics` holds one iteration's counters and timers;
:class:`MetricsSink` collects iterations for a whole RQL query.

Simulated seconds combine measured CPU time with deterministic per-I/O
charges so the *shape* of every figure is reproducible run to run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional


@dataclass
class IoCharges:
    """Per-operation simulated costs (mirrors the paper's SSD/RAM split)."""

    pagelog_read_seconds: float = 1e-4
    db_read_seconds: float = 2e-6
    spt_entry_seconds: float = 2e-6
    cache_hit_seconds: float = 1e-6


@dataclass
class IterationMetrics:
    """Cost breakdown for one snapshot iteration of an RQL query."""

    snapshot_id: int = 0
    #: pages fetched from the Pagelog on a cache miss (true snapshot I/O)
    pagelog_reads: int = 0
    #: snapshot pages served from the snapshot page cache
    cache_hits: int = 0
    #: pages shared with (and fetched from) the current-state database
    db_reads: int = 0
    #: Maplog/Skippy entries scanned while building the SPT
    spt_entries_scanned: int = 0
    #: rows the rewritten Qq produced for this snapshot
    qq_rows: int = 0
    #: worker thread that evaluated this iteration (0 = the serial loop)
    worker: int = 0
    #: measured wall-clock seconds per phase
    spt_build_seconds: float = 0.0
    query_eval_seconds: float = 0.0
    index_creation_seconds: float = 0.0
    udf_seconds: float = 0.0

    def copy(self) -> "IterationMetrics":
        return replace(self)

    def io_seconds(self, charges: IoCharges) -> float:
        return (
            self.pagelog_reads * charges.pagelog_read_seconds
            + self.db_reads * charges.db_read_seconds
            + self.cache_hits * charges.cache_hit_seconds
        )

    def spt_seconds(self, charges: IoCharges) -> float:
        return (
            self.spt_build_seconds
            + self.spt_entries_scanned * charges.spt_entry_seconds
        )

    def total_seconds(self, charges: IoCharges) -> float:
        return (
            self.io_seconds(charges)
            + self.spt_seconds(charges)
            + self.query_eval_seconds
            + self.index_creation_seconds
            + self.udf_seconds
        )

    def breakdown(self, charges: IoCharges) -> Dict[str, float]:
        """The paper's bar-chart components, in seconds."""
        return {
            "io": self.io_seconds(charges),
            "spt_build": self.spt_seconds(charges),
            "index_creation": self.index_creation_seconds,
            "query_eval": self.query_eval_seconds,
            "rql_udf": self.udf_seconds,
        }


class MetricsSink:
    """Collects per-iteration metrics across an RQL query run."""

    def __init__(self, charges: Optional[IoCharges] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.charges = charges or IoCharges()
        #: monotonic clock used for every timing in this sink; injectable
        #: so tests can assert on exact, deterministic durations
        self.clock: Callable[[], float] = clock or time.perf_counter
        self.iterations: List[IterationMetrics] = []
        self._current: Optional[IterationMetrics] = None
        #: worker id stamped onto iterations begun through this sink
        self.worker = 0

    # -- iteration lifecycle ------------------------------------------------

    def begin_iteration(self, snapshot_id: int) -> IterationMetrics:
        self._current = IterationMetrics(snapshot_id=snapshot_id,
                                         worker=self.worker)
        self.iterations.append(self._current)
        return self._current

    def adopt(self, iterations: Iterable[IterationMetrics]) -> None:
        """Append already-finished iterations (per-worker sink merging)."""
        self.iterations.extend(iterations)

    @property
    def current(self) -> IterationMetrics:
        if self._current is None:
            self._current = IterationMetrics()
            self.iterations.append(self._current)
        return self._current

    def end_iteration(self) -> None:
        self._current = None

    # -- aggregate views --------------------------------------------------------

    def total_seconds(self) -> float:
        return sum(it.total_seconds(self.charges) for it in self.iterations)

    def total_pagelog_reads(self) -> int:
        return sum(it.pagelog_reads for it in self.iterations)

    def cold(self) -> Optional[IterationMetrics]:
        """The first (cold) iteration, if any."""
        return self.iterations[0] if self.iterations else None

    def hot(self) -> List[IterationMetrics]:
        """All iterations after the first (the hot ones)."""
        return self.iterations[1:]

    def mean_hot_seconds(self) -> float:
        hot = self.hot()
        if not hot:
            return 0.0
        return sum(it.total_seconds(self.charges) for it in hot) / len(hot)

    def summary(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "iterations": float(len(self.iterations)),
            "total_seconds": self.total_seconds(),
            "pagelog_reads": float(self.total_pagelog_reads()),
            "cache_hits": float(sum(i.cache_hits for i in self.iterations)),
            "db_reads": float(sum(i.db_reads for i in self.iterations)),
            "qq_rows": float(sum(i.qq_rows for i in self.iterations)),
        }
        return out

    def __iter__(self) -> Iterator[IterationMetrics]:
        return iter(self.iterations)


class Timer:
    """Context manager adding elapsed clock time to a metrics attribute."""

    def __init__(self, metrics: IterationMetrics, attribute: str,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self._metrics = metrics
        self._attribute = attribute
        self._clock = clock or time.perf_counter
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = self._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = self._clock() - self._start
        current = getattr(self._metrics, self._attribute)
        setattr(self._metrics, self._attribute, current + elapsed)
