"""RPL031 — check-then-act atomicity.

A value read from a latched attribute makes a *decision* valid only
while the latch is held.  Writing the same attribute from an expression
computed off that value after the latch was released re-publishes a
possibly-stale observation — the classic lost-update window:

    with self._latch:
        current = self._count
    self._count = current + 1      # another thread bumped in between

The :class:`~repro.analysis.dataflow.typestate.AtomicityAnalysis` binds
names assigned from latched reads, tracks whether the latch has been
*continuously* held since, and flags writes that lost it.  Functions
whose *must* entry-lock context (PR 5 effects index) already includes
the latch are exempt — every caller provably holds it across the whole
body, so continuity never actually breaks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import ProgramChecker, register_program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.dataflow.program import Program


@register_program
class CheckThenActChecker(ProgramChecker):
    rule_id = "RPL031"
    name = "check-then-act"
    description = (
        "a write computed from a latched read must happen before the "
        "latch is released (or re-validate under the latch) — "
        "otherwise the read is a stale observation another thread may "
        "have invalidated"
    )
    example = (
        "with self._latch:\n"
        "    current = self._count\n"
        "self._count = current + 1   # RPL031: latch released between\n"
        "                            # the read and the write"
    )
    fix = (
        "widen the with-block so the read and the dependent write share "
        "one critical section, or re-read and validate the value after "
        "re-acquiring the latch"
    )

    def check_program(self, program: "Program") -> Iterator[Finding]:
        entry_must = program.effects.entry_must
        for qualname in sorted(program.results):
            func = program.graph.functions[qualname]
            held_at_entry = entry_must.get(qualname, frozenset())
            for write in program.results[qualname].stale_writes:
                if write.latch in held_at_entry:
                    continue
                finding = self.finding_at(
                    program, func, write.line,
                    f"write to {write.cls}.{write.attr} computed from "
                    f"'{write.name}' (read under {write.latch} at line "
                    f"{write.read_line}) after the latch was released",
                    hint="keep the read and the write in one "
                         f"'with {write.latch}' block, or re-validate "
                         "under the latch before publishing",
                )
                if finding is not None:
                    yield finding
