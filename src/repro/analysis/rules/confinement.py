"""RPL033 — reader/transaction confinement to the creating thread.

MVCC reader handles and write transactions are thread-confined by
design: the version store prunes chains against a reader's ``begin_ts``
on the registering thread's schedule, and the engine's single-writer
discipline assumes the transaction's overlay is touched by one thread.
Handing a live handle to ``threading.Thread`` — positionally, via
``args=``/``kwargs=``, or captured by a closure passed as ``target=`` —
publishes it across threads with no handoff protocol.  This is exactly
the property the planned multi-session server needs replint to hold
the line on (ROADMAP item 1).

The typestate engine records a :class:`ThreadEscape` whenever a value
carrying live protocol state flows into a ``Thread(...)`` constructor;
legitimate handoffs (a worker pool that owns per-thread contexts)
suppress with ``# replint: confinement-exempt -- <why>``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import ProgramChecker, register_program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.dataflow.program import Program


@register_program
class ReaderConfinementChecker(ProgramChecker):
    rule_id = "RPL033"
    name = "reader-confinement"
    description = (
        "live reader handles / transactions / read contexts must not "
        "escape their creating thread through a Thread(...) "
        "constructor without an explicit handoff"
    )
    example = (
        "ctx = engine.begin_read()\n"
        "def worker():\n"
        "    rows = scan(engine.read_source(ctx))\n"
        "t = threading.Thread(target=worker)   # RPL033: ctx crosses\n"
        "t.start()                             # the thread boundary"
    )
    fix = (
        "create the handle inside the worker (each thread begins and "
        "closes its own read context), or document the handoff with "
        "'# replint: confinement-exempt -- <why>'"
    )

    def check_program(self, program: "Program") -> Iterator[Finding]:
        for qualname in sorted(program.results):
            func = program.graph.functions[qualname]
            for escape in program.results[qualname].thread_escapes:
                finding = self.finding_at(
                    program, func, escape.line,
                    f"live {escape.kind} ({escape.what}) escapes into a "
                    f"spawned thread without a handoff",
                    hint="begin/close the handle inside the worker, or "
                         "mark an owned handoff with '# replint: "
                         "confinement-exempt -- <why>'",
                )
                if finding is not None:
                    yield finding
