"""RPL010 — interprocedural resource lifecycle.

Subsumes and upgrades the retired intraprocedural RPL001 pin check.
Where RPL001 only saw ``pool.fetch(...)`` paired with a ``finally`` in
the *same* function, RPL010 runs the resource-lifecycle dataflow over
per-function CFGs with call-graph summaries plugged in, so it tracks

* pins, read contexts and transactions acquired via *any* callee whose
  summary says it returns a live resource (``Pager.fetch`` wraps
  ``BufferPool.fetch`` — callers of either are checked);
* releases performed by callees (``Pager.release`` unpins through the
  pool — passing a page to it counts as a release);
* ownership transfer: returning, yielding or storing a resource marks
  it escaped and shifts the obligation to the consumer;
* exception paths: a resource held across a may-raise statement with no
  ``finally``/``with`` protection leaks on the unwind path even though
  the happy path releases it.

Pin accounting hygiene rides along: direct writes to ``page.pin_count``
outside the buffer pool remain flagged (pin arithmetic must go through
``BufferPool`` so eviction accounting stays truthful).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import ERROR, Finding
from repro.analysis.rules import (
    ProgramChecker, _suppressed_at, register_program,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.dataflow.program import Program

#: modules that own pin accounting (exempt from the pin_count check):
#: the pool does the counting, the page defines/initializes the field
_PIN_OWNERS = {"storage/buffer_pool.py", "storage/page.py"}


@register_program
class ResourceLifecycleChecker(ProgramChecker):
    rule_id = "RPL010"
    name = "resource-lifecycle"
    description = (
        "pins/cursors/read-contexts/transactions must be released on "
        "every path, including exception unwinds and across call "
        "boundaries (interprocedural; subsumes RPL001)"
    )
    example = (
        "page = pool.fetch(pid)\n"
        "total += page.value      # may raise -> pin never released\n"
        "pool.unpin(page)"
    )
    fix = (
        "page = pool.fetch(pid)\n"
        "try:\n"
        "    total += page.value\n"
        "finally:\n"
        "    pool.unpin(page)"
    )

    def check_program(self, program: "Program") -> Iterator[Finding]:
        for qualname in sorted(program.results):
            func = program.graph.functions[qualname]
            for leak in program.results[qualname].leaks:
                path = "an exception unwind" if leak.exceptional \
                    else "a normal return"
                finding = self.finding_at(
                    program, func, leak.line,
                    f"{leak.kind} from {leak.what} leaks on {path} path",
                    hint="release it in a finally block (or with-statement)"
                         ", hand it to a releasing callee, or return it to "
                         "transfer ownership",
                )
                if finding is not None:
                    yield finding
        yield from self._pin_count_writes(program)

    def _pin_count_writes(self, program: "Program") -> Iterator[Finding]:
        for relpath in sorted(program.contexts):
            if relpath in _PIN_OWNERS:
                continue
            ctx = program.contexts[relpath]
            for node in ast.walk(ctx.tree):
                target = None
                if isinstance(node, ast.Assign):
                    target = node.targets[0] if node.targets else None
                elif isinstance(node, ast.AugAssign):
                    target = node.target
                if isinstance(target, ast.Attribute) \
                        and target.attr == "pin_count":
                    func_node = ctx.enclosing_function(node)
                    if _suppressed_at(ctx, self.rule_id, node.lineno,
                                      func_node):
                        continue
                    yield Finding(
                        file=ctx.relpath, line=node.lineno,
                        rule=self.rule_id, severity=ERROR,
                        message="pin_count mutated outside the buffer pool",
                        hint="go through BufferPool.fetch/unpin so "
                             "eviction accounting stays truthful",
                        symbol=ctx.qualname(node),
                        content_hash=ctx.function_hash(node),
                    )
