"""RPL022 — durable surfaces only take checksummed payloads.

The crash/corruption guarantees (DESIGN §5c) hold only because every
byte reaching a durable surface — the block logs behind the WAL,
Maplog and Pagelog, and the Pager's dual-slot meta file — carries a
CRC trailer written by ``storage/checksums.seal_block`` (or the meta
encoder's embedded CRC).  A raw ``write``/``append``/``truncate``/
``seek`` on one of those surfaces bypasses the trailer: the data lands
on disk unverifiable and the recovery scan will either trust garbage
or refuse a log it should have repaired.

The durability scan classifies each function's file writes: a payload
is *sealed* if it flows (flow-insensitively, through locals and callee
summaries) from ``seal_block`` or a CRC-embedding encoder; a payload
received as a parameter makes the function a durable *sink* whose
callers are checked instead; anything else is flagged here.  Physical
stores (``storage/disk.py``, ``chaosdisk.py``) sit below the format
layer and are exempt, as are the page-image appends on the Pagelog
(page CRCs live inside the page, not in a block trailer) and the
block-log's own end-of-block truncation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import ProgramChecker, register_program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.dataflow.program import Program


@register_program
class DurabilityChecker(ProgramChecker):
    rule_id = "RPL022"
    name = "durable-surface"
    description = (
        "writes to durable surfaces (WAL/Maplog/Pagelog block logs, "
        "Pager meta) must carry checksummed trailers from "
        "storage/checksums.py — raw write/truncate/seek voids recovery"
    )
    example = (
        "self._file.write(bytes(self._buffer[:capacity]))\n"
        "# RPL022: raw append — a torn tail is indistinguishable from\n"
        "# a valid short record at recovery time"
    )
    fix = (
        "seal every durable append:\n"
        "self._file.write(checksums.seal_block("
        "bytes(self._buffer[:capacity])))"
    )

    def check_program(self, program: "Program") -> Iterator[Finding]:
        for qualname in sorted(program.results):
            result = program.results[qualname]
            if not result.raw_durable_writes:
                continue
            func = program.graph.functions.get(qualname)
            if func is None:
                continue
            for raw in result.raw_durable_writes:
                finding = self.finding_at(
                    program, func, raw.line,
                    f"raw {raw.api} on durable surface {raw.surface} "
                    f"bypasses the checksummed block format "
                    f"({raw.detail})",
                    hint="route the payload through "
                         "checksums.seal_block (block logs) or the "
                         "CRC-embedding meta encoder (dual-slot meta) "
                         "before it reaches the file",
                )
                if finding is not None:
                    yield finding
