"""RPL032 — recovery-before-use ordering on the Retro manager.

Snapshot correctness depends on ordering, not just pairing: WAL/Maplog
recovery and scrubbing must complete *before* snapshot reads are
served, and once a snapshot has been marked unavailable (torn pre-state
log, failed checksum) nothing may read through it until availability
has been re-checked.  The RETRO protocol spec encodes this as a state
machine over the manager receiver — fresh -> read on the first served
read, -> degraded on ``mark_unavailable``, back via
``snapshot_available``/``recover`` — and this rule reports its
definite violations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.protocols import SPECS_BY_NAME
from repro.analysis.rules import ProgramChecker, register_program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.dataflow.program import Program


@register_program
class RecoveryOrderChecker(ProgramChecker):
    rule_id = "RPL032"
    name = "recovery-order"
    description = (
        "RetroManager ordering: recover/scrub must run before snapshot "
        "reads, and reads after mark_unavailable must re-check "
        "snapshot_available first"
    )
    example = (
        "retro.mark_unavailable(snap_id)\n"
        "src = retro.snapshot_source(snap_id, read, size)  # RPL032:\n"
        "# reading a snapshot just marked unavailable without\n"
        "# re-checking snapshot_available()"
    )
    fix = (
        "order recovery before reads (recover()/scrub() first), and "
        "gate post-degradation reads on retro.snapshot_available(id)"
    )

    def check_program(self, program: "Program") -> Iterator[Finding]:
        for qualname in sorted(program.results):
            func = program.graph.functions[qualname]
            for violation in program.results[qualname].protocol_violations:
                if violation.rule != self.rule_id:
                    continue
                spec = SPECS_BY_NAME.get(violation.protocol)
                if violation.state == "degraded":
                    message = (
                        f"{violation.event}() on {violation.what} after "
                        f"mark_unavailable without re-checking "
                        f"snapshot_available()"
                    )
                else:
                    message = (
                        f"{violation.event}() on {violation.what} after "
                        f"snapshot reads were already served "
                        f"(state '{violation.state}')"
                    )
                finding = self.finding_at(
                    program, func, violation.line, message,
                    hint=spec.fix_hint if spec is not None else "",
                )
                if finding is not None:
                    yield finding
