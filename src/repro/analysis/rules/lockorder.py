"""RPL011 — global latch-acquisition order.

Builds the whole-program latch-order graph: a directed edge
``A -> B`` whenever some execution path acquires latch ``B`` while
already holding latch ``A`` — lexically (nested ``with`` blocks),
through explicit ``acquire``/``release`` calls, or *transitively*
through a callee whose summary says it takes latches of its own
(``Pager.fetch`` grabbing the pool latch while the caller holds the
B+tree latch contributes an edge even though no single function shows
both).  Any cycle in that graph is a potential deadlock the moment two
threads interleave, which is exactly the concurrency the ROADMAP is
heading toward; self-edges are ignored because the latches in this
tree are reentrant (``threading.RLock``).

One finding per distinct cycle, anchored at the acquisition site that
closes it, spelling out the full chain so the fix (a consistent global
order) is obvious.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import ProgramChecker, register_program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.dataflow.program import Program


@register_program
class LockOrderChecker(ProgramChecker):
    rule_id = "RPL011"
    name = "lock-order"
    description = (
        "latch acquisitions must follow one global order: any cycle in "
        "the held-latch -> acquired-latch graph is a potential deadlock"
    )
    example = (
        "# thread A                      # thread B\n"
        "with self._pool._latch:         with self._pager._latch:\n"
        "    with self._pager._latch:        with self._pool._latch:\n"
        "        ...                             ...\n"
        "# RPL011: Pool._latch -> Pager._latch and the reverse edge"
    )
    fix = (
        "pick one global order (document it next to the latch "
        "declarations) and acquire in that order everywhere; restructure "
        "one side so the inner acquisition happens after releasing"
    )

    def check_program(self, program: "Program") -> Iterator[Finding]:
        for cycle in program.lock_cycles():
            closing = cycle[-1]
            func = program.graph.functions.get(closing.func)
            if func is None:
                continue
            chain = " -> ".join(
                [edge.held for edge in cycle] + [cycle[0].held])
            witnesses = ", ".join(
                f"{edge.held}->{edge.acquired} in "
                f"{edge.func.split('::')[-1]} "
                f"({edge.func.split('::')[0]}:{edge.line})"
                for edge in cycle)
            finding = self.finding_at(
                program, func, closing.line,
                f"latch-order cycle {chain} (potential deadlock)",
                hint=f"acquire latches in one global order everywhere; "
                     f"witness edges: {witnesses}",
            )
            if finding is not None:
                yield finding
