"""RPL004 — aggregate registrations must be complete monoids.

Paper Section 2.3: aggregates folded across snapshots must be abelian
monoids ``(X, op, e)``.  The code encodes that as a registry
(``_FACTORIES``) of state classes plus two witness functions
(``binary_op`` → the operation, ``identity_element`` → the identity).
A registration that skips any leg breaks incremental folding in ways no
unit test catches until a workload exercises that aggregate.

Checked on any module that defines ``_FACTORIES``:

* every registered state class implements ``absorb``, ``merge`` and
  ``result`` itself or via a local base class — a ``raise
  NotImplementedError`` stub does not count;
* every state class's ``name`` attribute matches its registry key;
* every name listed in ``MONOID_AGGREGATES`` has a factory and is
  handled (appears as a string constant) in both ``binary_op`` and
  ``identity_element``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules import Checker, register

_REGISTRY_NAME = "_FACTORIES"
_MONOID_TUPLE = "MONOID_AGGREGATES"
_WITNESSES = ("binary_op", "identity_element")
_PROTOCOL = ("absorb", "merge", "result")


def _module_assign(tree: ast.Module, name: str) -> Optional[ast.Assign]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets
                       if isinstance(t, ast.Name)]
            if name in targets:
                return node
        if isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name) \
                and node.target.id == name and node.value is not None:
            assign = ast.Assign(targets=[node.target], value=node.value)
            ast.copy_location(assign, node)
            return assign
    return None


def _is_stub(fn: ast.FunctionDef) -> bool:
    body = [stmt for stmt in fn.body
            if not (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant))]
    if len(body) != 1 or not isinstance(body[0], ast.Raise):
        return False
    exc = body[0].exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    return isinstance(exc, ast.Name) and exc.id == "NotImplementedError"


def _implemented_methods(classes: Dict[str, ast.ClassDef],
                         name: str, seen: Set[str]) -> Set[str]:
    """Non-stub methods of ``name``, walking local base classes."""
    if name not in classes or name in seen:
        return set()
    seen.add(name)
    cls = classes[name]
    methods = {
        stmt.name for stmt in cls.body
        if isinstance(stmt, ast.FunctionDef) and not _is_stub(stmt)
    }
    for base in cls.bases:
        if isinstance(base, ast.Name):
            methods |= _implemented_methods(classes, base.id, seen)
    return methods


def _class_name_attr(cls: ast.ClassDef) -> Optional[str]:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "name" \
                        and isinstance(stmt.value, ast.Constant):
                    return str(stmt.value.value)
    return None


def _string_constants(node: ast.AST) -> Set[str]:
    return {
        n.value for n in ast.walk(node)
        if isinstance(n, ast.Constant) and isinstance(n.value, str)
    }


@register
class MonoidRegistryChecker(Checker):
    rule_id = "RPL004"
    name = "monoid-registration"
    description = (
        "registered aggregates must implement absorb/merge/result and "
        "declare identity + binary op for every monoid name"
    )
    example = (
        "@register_aggregate(\"p95\")\n"
        "class P95Aggregate:\n"
        "    def absorb(self, row): ...\n"
        "    # RPL004: no merge()/result(), no declared identity —\n"
        "    # the parallel executor cannot combine partitions"
    )
    fix = (
        "implement absorb/merge/result and declare the monoid:\n"
        "identity = 0\n"
        "def merge(self, other): ...\n"
        "def result(self): ..."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        registry = _module_assign(ctx.tree, _REGISTRY_NAME)
        if registry is None or not isinstance(registry.value, ast.Dict):
            return
        classes = {
            node.name: node for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
        }
        functions = {
            node.name: node for node in ctx.tree.body
            if isinstance(node, ast.FunctionDef)
        }
        entries: List[tuple] = []
        for key, value in zip(registry.value.keys, registry.value.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str) \
                    and isinstance(value, ast.Name):
                entries.append((key.value, value))
        yield from self._check_classes(ctx, entries, classes)
        yield from self._check_witnesses(ctx, registry, entries, functions)

    def _check_classes(self, ctx: ModuleContext, entries,
                       classes: Dict[str, ast.ClassDef]
                       ) -> Iterator[Finding]:
        for key, value in entries:
            cls = classes.get(value.id)
            if cls is None:
                finding = self.finding(
                    ctx, value,
                    f"aggregate {key!r} registers {value.id}, which is "
                    f"not a class defined in this module",
                    hint="register the state class itself so the checker "
                         "can verify its fold protocol",
                )
                if finding is not None:
                    yield finding
                continue
            implemented = _implemented_methods(classes, value.id, set())
            for method in _PROTOCOL:
                if method not in implemented:
                    finding = self.finding(
                        ctx, value,
                        f"aggregate {key!r} ({value.id}) does not "
                        f"implement {method}()",
                        hint="an incremental fold needs absorb (one "
                             "value), merge (partial states) and result",
                    )
                    if finding is not None:
                        yield finding
            declared = _class_name_attr(cls)
            if declared is not None and declared != key:
                finding = self.finding(
                    ctx, value,
                    f"aggregate {key!r} registers {value.id} whose "
                    f"name attribute is {declared!r}",
                    hint="keep registry key and state-class name in sync",
                )
                if finding is not None:
                    yield finding

    def _check_witnesses(self, ctx: ModuleContext, registry: ast.Assign,
                         entries, functions) -> Iterator[Finding]:
        monoids = _module_assign(ctx.tree, _MONOID_TUPLE)
        if monoids is None:
            return
        monoid_names = [
            elt.value for elt in getattr(monoids.value, "elts", [])
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
        ]
        registered = {key for key, _ in entries}
        missing_witnesses = [w for w in _WITNESSES if w not in functions]
        for witness in missing_witnesses:
            finding = self.finding(
                ctx, registry,
                f"module registers monoid aggregates but defines no "
                f"{witness}()",
                hint="declare the monoid witnesses next to the registry",
            )
            if finding is not None:
                yield finding
        for name in monoid_names:
            if name not in registered:
                finding = self.finding(
                    ctx, monoids,
                    f"monoid aggregate {name!r} has no factory in "
                    f"{_REGISTRY_NAME}",
                    hint="register a state class for it",
                )
                if finding is not None:
                    yield finding
            for witness in _WITNESSES:
                fn = functions.get(witness)
                if fn is None:
                    continue
                if name not in _string_constants(fn):
                    finding = self.finding(
                        ctx, fn,
                        f"monoid aggregate {name!r} is not handled in "
                        f"{witness}()",
                        hint=f"add the {name!r} case so the monoid "
                             f"declaration is complete (identity + op)",
                    )
                    if finding is not None:
                        yield finding
