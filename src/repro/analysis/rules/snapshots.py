"""RPL005 — snapshot-id hygiene in ``core/`` and ``retro/``.

Snapshot ids are declared by the engine and catalogued in the SnapIds
table; code above the storage layer receives them from Qs results,
``latest_snapshot_id``, or the :mod:`repro.core.snapids` helpers.  A raw
integer literal smuggled into a snapshot-id position ("query snapshot 3")
bakes one history's shape into the code — it dangles after recovery,
replays, or any re-run with a different snapshot count.

The rule: in ``core/`` and ``retro/`` modules (except ``core/snapids.py``
itself, which *owns* snapshot-id arithmetic), an ``int`` literal must not
be passed

* as a keyword argument named like a snapshot id (``snapshot_id``,
  ``snap_id``, ``from_snap``, ``to_snap``, ``as_of``), or
* positionally into a parameter with such a name, resolved against
  functions and methods defined in the same module.

Pass a declared id, a Qs result, or a named constant instead; genuinely
structural literals (e.g. "epoch 0 = before any snapshot") get a named
constant or a justified ``# replint: snapid-exempt`` pragma.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules import Checker, register

_SNAP_PARAMS = {"snapshot_id", "snap_id", "from_snap", "to_snap", "as_of"}
_BLESSED = "core/snapids.py"


def _int_literal(node: ast.expr) -> Optional[int]:
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _int_literal(node.operand)
        return -inner if inner is not None else None
    return None


def _local_signatures(tree: ast.Module) -> Dict[str, List[str]]:
    """Map function/method name -> positional parameter names.

    Methods drop their leading ``self``/``cls`` so positional indices
    line up with call sites (``obj.meth(a, b)``).
    """
    signatures: Dict[str, List[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = [a.arg for a in node.args.posonlyargs + node.args.args]
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        signatures[node.name] = params
    return signatures


@register
class SnapshotIdHygieneChecker(Checker):
    rule_id = "RPL005"
    name = "snapshot-id-hygiene"
    description = (
        "core/ and retro/ must not pass raw int literals as snapshot "
        "ids; use declared ids, snapids helpers, or named constants"
    )
    example = (
        "source = manager.snapshot_source(3, read, size)\n"
        "# RPL005: raw literal snapshot id — silently reads the wrong\n"
        "# snapshot when the declaration order changes"
    )
    fix = (
        "ids = manager.declared_ids()\n"
        "source = manager.snapshot_source(ids[-1], read, size)\n"
        "# or a named constant: BASELINE_SNAPSHOT = 3"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not (ctx.relpath.startswith("core/")
                or ctx.relpath.startswith("retro/")):
            return
        if ctx.relpath == _BLESSED:
            return
        signatures = _local_signatures(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, signatures)

    def _check_call(self, ctx: ModuleContext, call: ast.Call,
                    signatures: Dict[str, List[str]]) -> Iterator[Finding]:
        for param, value in self._snap_arguments(call, signatures):
            literal = _int_literal(value)
            if literal is None:
                continue
            finding = self.finding(
                ctx, value,
                f"raw int literal {literal} passed as {param}",
                hint="use a declared snapshot id, a snapids helper, or a "
                     "named constant ('# replint: snapid-exempt -- why' "
                     "if the literal is structural)",
            )
            if finding is not None:
                yield finding

    @staticmethod
    def _snap_arguments(call: ast.Call,
                        signatures: Dict[str, List[str]]
                        ) -> Iterator[Tuple[str, ast.expr]]:
        for keyword in call.keywords:
            if keyword.arg in _SNAP_PARAMS:
                yield keyword.arg, keyword.value
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        params = signatures.get(name or "")
        if not params:
            return
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if index < len(params) and params[index] in _SNAP_PARAMS:
                yield params[index], arg
