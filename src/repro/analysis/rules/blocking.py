"""RPL021 — no latch held across a blocking join/wait/cancel check.

A worker that blocks on ``thread.join()``, ``event.wait()`` or polls
``cancel.is_set()`` while holding a latch can deadlock the cancel
protocol: the cancel path needs that latch to make progress (or the
joined thread does), so both sides wait forever.  The rule flags any
blocking call made with a non-empty latch context — latches taken
locally plus the *may* entry-lock context for functions inside the
worker region (a latch a caller might hold when workers reach here is
just as much a deadlock as one taken in the same frame).

Receivers are matched by name hints (``thread``, ``cancel``, ``event``,
``cond``, ...) or by locals assigned from ``threading.Thread`` /
``Event`` / ``Condition`` / ``Barrier`` constructors, so string
``join``/dict ``is_set`` lookalikes on unrelated receivers stay quiet.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import ProgramChecker, register_program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.dataflow.program import Program


@register_program
class BlockingUnderLatchChecker(ProgramChecker):
    rule_id = "RPL021"
    name = "blocking-under-latch"
    description = (
        "never hold a latch across a blocking join/wait or cancel-event "
        "check — the cancel protocol (or the joined thread) may need "
        "that latch to make progress"
    )
    example = (
        "with self._latch:\n"
        "    for worker in self._workers:\n"
        "        worker.join()   # RPL021: worker may need self._latch"
    )
    fix = (
        "snapshot what you need under the latch, release it, then "
        "join/wait:\n"
        "with self._latch:\n"
        "    workers = list(self._workers)\n"
        "for worker in workers:\n"
        "    worker.join()"
    )

    def check_program(self, program: "Program") -> Iterator[Finding]:
        effects = program.effects
        for qualname in sorted(program.summaries):
            summary = program.summaries[qualname]
            if not summary.blocking_calls:
                continue
            func = program.graph.functions.get(qualname)
            if func is None:
                continue
            entry = effects.entry_may.get(qualname, frozenset())
            for display, line, held in sorted(
                    summary.blocking_calls, key=lambda b: (b[1], b[0])):
                context = frozenset(held) | entry
                if not context:
                    continue
                latches = ", ".join(sorted(context))
                via = "held here" if held else \
                    "held by a caller on the worker path"
                finding = self.finding_at(
                    program, func, line,
                    f"blocking call {display}() with latch(es) "
                    f"{latches} {via}",
                    hint="release the latch before blocking, or move "
                         "the join/wait/cancel check outside the "
                         "latched region",
                )
                if finding is not None:
                    yield finding
