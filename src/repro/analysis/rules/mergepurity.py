"""RPL023 — registered merge functions must be pure.

The parallel executor's correctness argument (DESIGN §5b) leans on the
merge step being a *function* of the partition results: the
differential harness proves serial/parallel equivalence only for the
workloads it samples, so a merge that additionally mutates engine,
pager or session state can diverge on unsampled workloads without any
test noticing.  Scope: ``CrossSnapshotAggregate.merge`` (and subclass
overrides), the ``merge_*`` helpers in ``core/aggregates.py``, and the
executor's stored-row merge.

The purity summaries track, interprocedurally, which parameters a
function mutates and any effects on program-class state reached through
attributes or globals.  A bound merge method may fold into ``self``
(that accumulator is the merge's output) but nothing else; a plain
merge function may mutate nothing it was given.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import ProgramChecker, register_program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.dataflow.callgraph import FunctionInfo
    from repro.analysis.dataflow.program import Program

_ROOT_CLASS = "CrossSnapshotAggregate"


def _is_cross_snapshot_aggregate(program: "Program",
                                 cls_qual: str) -> bool:
    graph = program.graph
    names = [cls_qual] + graph._all_bases(cls_qual)
    for qualname in names:
        cls = graph.classes.get(qualname)
        if cls is not None and cls.name == _ROOT_CLASS:
            return True
    return False


def _merge_targets(program: "Program") -> List[Tuple["FunctionInfo", str]]:
    targets: List[Tuple["FunctionInfo", str]] = []
    for qualname in sorted(program.graph.functions):
        func = program.graph.functions[qualname]
        if func.cls is not None and func.name == "merge" \
                and _is_cross_snapshot_aggregate(program,
                                                 func.cls.qualname):
            targets.append((func, "aggregate merge"))
        elif func.cls is None and func.name.startswith("merge_") \
                and func.module.endswith("core/aggregates.py"):
            targets.append((func, "stored-value merge"))
        elif func.name == "_merge_stored_rows" \
                and func.module.endswith("core/parallel.py"):
            targets.append((func, "executor stored-row merge"))
    return targets


@register_program
class MergePurityChecker(ProgramChecker):
    rule_id = "RPL023"
    name = "merge-purity"
    description = (
        "registered merge functions (CrossSnapshotAggregate.merge, "
        "merge_* helpers, stored-row merge) must be pure: fold into "
        "the accumulator only, never mutate engine/pager/session state"
    )
    example = (
        "def merge(self, other):\n"
        "    self.engine.install(self.page)   # RPL023: a merge that\n"
        "    self.total += other.total        # mutates engine state\n"
        "    return self                      # re-executes on replay"
    )
    fix = (
        "def merge(self, other):\n"
        "    self.total += other.total\n"
        "    return self\n"
        "# side effects belong to the caller, after the fold completes"
    )

    def check_program(self, program: "Program") -> Iterator[Finding]:
        for func, kind in _merge_targets(program):
            summary = program.summaries.get(func.qualname)
            if summary is None:
                continue
            bound = bool(func.params) and func.params[0] == "self"
            allowed = {0} if bound else set()
            for index in sorted(summary.mutates_params - allowed):
                param = func.params[index] if index < len(func.params) \
                    else f"#{index}"
                finding = self.finding_at(
                    program, func, func.node.lineno,
                    f"{kind} {func.name} mutates its input "
                    f"'{param}' — merges must fold into the "
                    f"accumulator only",
                    hint="copy the input (e.g. list(earlier)) before "
                         "building the merged value",
                )
                if finding is not None:
                    yield finding
            for effect in sorted(summary.impure_effects):
                finding = self.finding_at(
                    program, func, func.node.lineno,
                    f"{kind} {func.name} has a side effect: {effect}",
                    hint="merge functions run during result assembly; "
                         "state they touch is not covered by the "
                         "differential equivalence harness",
                )
                if finding is not None:
                    yield finding
