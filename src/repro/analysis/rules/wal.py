"""RPL003 — WAL writes must precede page flushes in ``storage/``.

Crash-recovery correctness hinges on write ordering: a page image that
reaches the database file before its after-image reaches the WAL cannot
be replayed, so the crash tests would pass for the wrong reason.  The
commit protocol in :mod:`repro.storage.engine` appends to the WAL *then*
installs/flushes; this rule keeps every future path honest.

Concretely, inside any function in a ``storage/`` module, a flush-like
call (``install``, ``put_raw``, ``flush_all``, ``_writeback``,
``checkpoint``) must be preceded — earlier in the same function — by a
WAL interaction: a call through a receiver named ``wal``/``_wal``, or a
call named ``log_*``/``sync_boundary``/``replay``.  Pass-through
wrappers (functions themselves named like a flush primitive, e.g.
``Pager.install`` wrapping ``pool.put_raw``) are exempt: ordering is
their *caller's* contract.  Paths where flushing without a WAL append is
genuinely correct carry ``# replint: wal-exempt -- <why>``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules import Checker, register

_FLUSH_CALLS = {"install", "put_raw", "flush_all", "_writeback",
                "checkpoint"}
_WRAPPER_NAMES = _FLUSH_CALLS | {"write_meta"}
_WAL_RECEIVERS = {"wal", "_wal"}
_WAL_CALL_NAMES = {"sync_boundary", "replay"}


def _call_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _touches_wal(call: ast.Call) -> bool:
    name = _call_name(call)
    if name is None:
        return False
    if name in _WAL_CALL_NAMES or name.startswith("log_"):
        return True
    func = call.func
    node = func.value if isinstance(func, ast.Attribute) else None
    while isinstance(node, ast.Attribute):
        if node.attr in _WAL_RECEIVERS:
            return True
        node = node.value
    return isinstance(node, ast.Name) and node.id in _WAL_RECEIVERS


@register
class WalOrderingChecker(Checker):
    rule_id = "RPL003"
    name = "wal-ordering"
    description = (
        "in storage/, page flushes must follow a WAL append in the same "
        "function (or carry '# replint: wal-exempt -- reason')"
    )
    example = (
        "def flush_page(self, page):\n"
        "    self._pager.write_page(page)   # RPL003: page image hits\n"
        "                                   # disk before its WAL record"
    )
    fix = (
        "def flush_page(self, page):\n"
        "    self._wal.append(page.redo_record())\n"
        "    self._pager.write_page(page)\n"
        "# or justify: # replint: wal-exempt -- images already logged"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.relpath.startswith("storage/"):
            return
        for func in ctx.functions():
            if func.name in _WRAPPER_NAMES:
                continue  # pass-through wrapper: caller owns the ordering
            yield from self._check_function(ctx, func)

    def _check_function(self, ctx: ModuleContext,
                        func: ast.FunctionDef) -> Iterator[Finding]:
        calls = [
            node for node in ast.walk(func)
            if isinstance(node, ast.Call)
            and ctx.enclosing_function(node) is func
        ]
        wal_lines = [c.lineno for c in calls if _touches_wal(c)]
        for call in calls:
            name = _call_name(call)
            if name not in _FLUSH_CALLS:
                continue
            if any(line <= call.lineno for line in wal_lines):
                continue
            finding = self.finding(
                ctx, call,
                f"{name}() flushes pages with no preceding WAL append "
                f"in {func.name}()",
                hint="append to the WAL first, or justify with "
                     "'# replint: wal-exempt -- <why>' on the def line",
            )
            if finding is not None:
                yield finding
