"""RPL030 — protocol typestate violations.

The typestate engine (:mod:`repro.analysis.dataflow.typestate`) runs
the declarative protocol registry (:mod:`repro.analysis.protocols`)
over every function: transactions must reach exactly one of
commit/rollback and accept no operations afterwards, MVCC reader
handles registered via ``VersionStore.register_reader`` must be
deregistered exactly once on *every* path (the exceptional exit of the
try/finally dual CFG included), read contexts must not serve reads
after ``close()``, and a chaos controller must not be re-armed while a
scheduled crash is still pending.

The analysis is interprocedural — callee summaries export the events a
helper applies to its parameters — and only *definite* violations are
reported: if any path leaves the subject in a legal state, the join
keeps the rule silent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.protocols import SPECS_BY_NAME
from repro.analysis.rules import ProgramChecker, register_program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.dataflow.program import Program


@register_program
class ProtocolTypestateChecker(ProgramChecker):
    rule_id = "RPL030"
    name = "protocol-typestate"
    description = (
        "lifecycle protocols must be followed: no transaction ops after "
        "commit/rollback, MVCC readers deregistered exactly once on "
        "every path, no reads through a closed read context, no "
        "re-arming a pending chaos crash"
    )
    example = (
        "txn = engine.begin()\n"
        "engine.commit(txn)\n"
        "engine.rollback(txn)   # RPL030: rollback after commit\n"
        "\n"
        "reader = versions.register_reader(ts)\n"
        "run_query(reader)      # raises -> handle never deregistered\n"
        "versions.deregister_reader(reader)"
    )
    fix = (
        "drive each handle to exactly one terminal state: guard late "
        "cleanup with txn.is_active(), and put deregister_reader/close "
        "in a finally block so exception paths complete the protocol too"
    )

    def check_program(self, program: "Program") -> Iterator[Finding]:
        for qualname in sorted(program.results):
            func = program.graph.functions[qualname]
            result = program.results[qualname]
            for violation in result.protocol_violations:
                if violation.rule != self.rule_id:
                    continue
                spec = SPECS_BY_NAME.get(violation.protocol)
                finding = self.finding_at(
                    program, func, violation.line,
                    f"{violation.event}() on a {violation.kind} "
                    f"({violation.what}) that is already "
                    f"'{violation.state}'",
                    hint=spec.fix_hint if spec is not None else "",
                )
                if finding is not None:
                    yield finding
            for leak in result.protocol_leaks:
                path = "an exception unwind" if leak.exceptional \
                    else "a normal return"
                spec = SPECS_BY_NAME.get(leak.protocol)
                finding = self.finding_at(
                    program, func, leak.line,
                    f"{leak.kind} from {leak.what} is never "
                    f"deregistered on {path} path",
                    hint=spec.fix_hint if spec is not None else "",
                )
                if finding is not None:
                    yield finding
