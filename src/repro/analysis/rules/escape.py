"""RPL020 — writes to worker-shared state must hold the guarding latch.

The escape analysis (:mod:`repro.analysis.dataflow.effects`) finds the
thread roots (``threading.Thread(target=...)``), closes the worker
region over the call graph (including closure-parameter callees and
receivers typed through the spawning function's locals), and derives
the set of classes the workers *share*: everything reachable from free
variables the worker closures capture, minus the per-worker payload
(the thread target's own parameters) and objects the workers construct
privately.

For every written attribute of a shared class the rule infers a guard:
the intersection of the latches held at every latched write site, where
"held" counts both latches taken locally and the *must* entry-lock
context (latches provably held whenever workers reach the writer).  A
write whose effective latch set misses both the inferred guard and the
owning class's own latches is a race window.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import ProgramChecker, register_program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.dataflow.program import Program


@register_program
class WorkerEscapeChecker(ProgramChecker):
    rule_id = "RPL020"
    name = "worker-escape"
    description = (
        "mutable state shared with worker threads must be written under "
        "its guarding latch (inferred from the latched write sites or "
        "the owning class's own latch)"
    )
    example = (
        "def note_failed(self):\n"
        "    self.failed += 1   # RPL020: Counters escapes into worker\n"
        "                       # closures; sibling sites latch, this\n"
        "                       # write does not"
    )
    fix = (
        "def note_failed(self):\n"
        "    with self._latch:\n"
        "        self.failed += 1"
    )

    def check_program(self, program: "Program") -> Iterator[Finding]:
        effects = program.effects
        if not effects.thread_roots:
            return
        roots = ", ".join(sorted(
            root.qualname.split("::")[-1]
            for root in effects.thread_roots))
        for write in effects.unguarded_writes():
            func = program.graph.functions.get(write.func)
            cls = program.graph.classes.get(write.cls)
            if func is None or cls is None:
                continue
            guard = effects.inferred_guard((write.cls, write.attr))
            own = effects.own_latches(write.cls)
            expected = sorted(guard | own)
            if expected:
                fix = f"hold {' or '.join(expected)} around the write"
            else:
                fix = (f"no latched write site exists anywhere — give "
                       f"{cls.name} a latch and take it here")
            finding = self.finding_at(
                program, func, write.line,
                f"write to worker-shared {cls.name}.{write.attr} "
                f"without its guarding latch",
                hint=f"{cls.name} is reachable from worker thread "
                     f"roots ({roots}); {fix}",
            )
            if finding is not None:
                yield finding
