"""RPL002 — exception taxonomy and no silent swallowing.

Callers catch ``ReproError`` subclasses by layer (see ``repro/errors.py``
and ``tests/test_errors.py``); a ``raise ValueError(...)`` deep in the
storage engine escapes every layered handler and surfaces as a
programming error.  Two sub-checks:

* every ``raise SomeClass(...)`` must use a class imported from
  ``repro.errors`` (directly or as ``errors.X``), a class locally derived
  from one, or a small stdlib allowlist (``NotImplementedError``,
  ``SystemExit``, ``AssertionError``, ...).  Bare ``raise`` and
  re-raising a captured exception variable are always fine.
* a broad handler (``except:``, ``except Exception:``,
  ``except BaseException:``) must re-raise on some path or hand the
  error to a logger — silently swallowing hides protocol bugs (a failed
  ROLLBACK, a half-applied refresh) behind "it kept running".
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules import Checker, register

_STDLIB_ALLOWED = {
    "NotImplementedError", "SystemExit", "KeyboardInterrupt",
    "StopIteration", "GeneratorExit", "AssertionError",
}
_BROAD_TYPES = {"Exception", "BaseException"}
_LOGGING_NAMES = {"warning", "warn", "error", "exception", "critical",
                  "log", "print"}


def _taxonomy_names(tree: ast.Module):
    """(class names, errors-module aliases) this module may raise from.

    Class names come from ``from repro.errors import X`` plus the stdlib
    allowlist plus local subclasses of either; module aliases are names
    bound to the errors module itself (``from repro import errors``,
    ``import repro.errors as rerr``) so ``raise errors.X(...)`` resolves.
    """
    allowed: Set[str] = set(_STDLIB_ALLOWED)
    module_aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module in (
                "repro.errors", "errors"):
            allowed.update(alias.asname or alias.name
                           for alias in node.names)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.errors":
                    module_aliases.add(alias.asname or "repro.errors")
        elif isinstance(node, ast.ImportFrom) and node.module == "repro":
            for alias in node.names:
                if alias.name == "errors":
                    module_aliases.add(alias.asname or "errors")
    # Locally defined subclasses of an allowed class are allowed too
    # (fixed point over the module's class definitions).
    changed = True
    while changed:
        changed = False
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef) or node.name in allowed:
                continue
            for base in node.bases:
                base_name = base.id if isinstance(base, ast.Name) else (
                    base.attr if isinstance(base, ast.Attribute) else None)
                if base_name in allowed:
                    allowed.add(node.name)
                    changed = True
                    break
    return allowed, module_aliases


def _raised_class(node: ast.Raise) -> Optional[ast.expr]:
    """The expression naming the raised class, or None for re-raises."""
    exc = node.exc
    if exc is None:
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        # Lowercase names are captured-exception variables (re-raise).
        return exc if exc.id[:1].isupper() else None
    if isinstance(exc, ast.Attribute):
        return exc
    return None


def _class_label(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _class_label(expr.value) if isinstance(
            expr.value, (ast.Name, ast.Attribute)) else "?"
        return f"{base}.{expr.attr}"
    return "?"


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) \
        else [handler.type]
    return any(isinstance(t, ast.Name) and t.id in _BROAD_TYPES
               for t in types)


def _handler_recovers(handler: ast.ExceptHandler) -> bool:
    """Does the handler body re-raise or log (ignoring nested defs)?"""
    def scan(nodes) -> bool:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                func = node.func
                name = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None)
                if name in _LOGGING_NAMES:
                    return True
            if scan(ast.iter_child_nodes(node)):
                return True
        return False
    return scan(handler.body)


@register
class ExceptionTaxonomyChecker(Checker):
    rule_id = "RPL002"
    name = "exception-taxonomy"
    description = (
        "raise only repro.errors classes; broad except blocks must "
        "re-raise or log"
    )
    example = (
        "raise ValueError(\"bad page id\")   # RPL002: not a\n"
        "                                   # repro.errors class\n"
        "try:\n"
        "    source.fetch(pid)\n"
        "except Exception:\n"
        "    pass                           # RPL002: swallowed"
    )
    fix = (
        "raise StorageError(\"bad page id\") from None\n"
        "# and in handlers: re-raise, raise a repro.errors class,\n"
        "# or log before continuing"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        allowed, module_aliases = _taxonomy_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise):
                finding = self._check_raise(ctx, node, allowed,
                                            module_aliases)
                if finding is not None:
                    yield finding
            elif isinstance(node, ast.ExceptHandler):
                finding = self._check_handler(ctx, node)
                if finding is not None:
                    yield finding

    def _check_raise(self, ctx: ModuleContext, node: ast.Raise,
                     allowed: Set[str],
                     module_aliases: Set[str]) -> Optional[Finding]:
        cls = _raised_class(node)
        if cls is None:
            return None
        label = _class_label(cls)
        if isinstance(cls, ast.Name) and cls.id in allowed:
            return None
        if isinstance(cls, ast.Attribute):
            base = _class_label(cls.value) if isinstance(
                cls.value, (ast.Name, ast.Attribute)) else ""
            if base in module_aliases:
                return None
            # method call like exc.with_traceback(...) — re-raise shape
            if cls.attr == "with_traceback":
                return None
        return self.finding(
            ctx, node,
            f"raise of {label} is outside the repro.errors taxonomy",
            hint="raise a repro.errors class (add one if no layer fits) "
                 "so callers can catch by layer",
        )

    def _check_handler(self, ctx: ModuleContext,
                       node: ast.ExceptHandler) -> Optional[Finding]:
        if not _is_broad(node) or _handler_recovers(node):
            return None
        caught = "bare except" if node.type is None else \
            f"except {_class_label(node.type)}" if not isinstance(
                node.type, ast.Tuple) else "broad except"
        return self.finding(
            ctx, node,
            f"{caught} swallows the error without re-raising or logging",
            hint="narrow the exception type, or re-raise wrapped in the "
                 "matching repro.errors class",
        )
