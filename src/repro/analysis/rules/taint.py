"""RPL012 — snapshot-epoch taint.

A snapshot is an immutable past epoch of the database: pages and
records served through :meth:`StorageEngine.snapshot_source` (or a
``SnapshotPageSource`` built directly in ``retro/``) must only ever be
*read*.  If a snapshot-scoped value flows into a current-database
mutation sink — ``pager.install``, ``pool.put_raw``, ``make_writable``,
``mark_dirty``, ``wal.log_commit`` — the current epoch is silently
polluted with bytes from the past: exactly the corruption class the
paper's copy-on-write design exists to prevent.

The taint dataflow tracks snapshot-scoped values through name copies,
attribute/subscript reads, ``bytes``/``bytearray`` conversion,
``.fetch()`` on a tainted page source, and callees summarized as
returning taint.  Propagation through arbitrary calls is deliberately
omitted: decoding snapshot records into *new* rows for a retrospective
result table is the legitimate use of this data and must stay clean.
Cross-function flows are still caught via summaries — a helper whose
parameter reaches a sink marks every tainted argument at its call
sites.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import ProgramChecker, register_program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.dataflow.program import Program


@register_program
class SnapshotTaintChecker(ProgramChecker):
    rule_id = "RPL012"
    name = "snapshot-epoch-taint"
    description = (
        "snapshot-scoped pages/records must never reach a "
        "current-database mutation sink (install/put_raw/make_writable/"
        "mark_dirty/log_commit)"
    )
    example = (
        "page = snapshot_src.fetch(pid)     # snapshot-epoch value\n"
        "pager.install(pid, page)           # RPL012: installs an old\n"
        "                                   # epoch into the current db"
    )
    fix = (
        "copy into a fresh current-epoch page before any mutation "
        "sink:\n"
        "current = Page(bytes(page.payload))\n"
        "pager.install(pid, current)"
    )

    def check_program(self, program: "Program") -> Iterator[Finding]:
        for qualname in sorted(program.results):
            func = program.graph.functions[qualname]
            for hit in program.results[qualname].taint_hits:
                finding = self.finding_at(
                    program, func, hit.line,
                    f"snapshot-scoped value from {hit.source} reaches "
                    f"mutation sink {hit.sink}",
                    hint="snapshot epochs are immutable: copy the data "
                         "into a current-epoch structure through the "
                         "normal write path instead of installing "
                         "snapshot bytes directly",
                )
                if finding is not None:
                    yield finding
