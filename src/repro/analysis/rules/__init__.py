"""replint rule registry.

Two kinds of checkers:

* :class:`Checker` — intraprocedural, run once per module;
* :class:`ProgramChecker` — interprocedural, run once per *program*
  (a whole-tree :class:`~repro.analysis.dataflow.program.Program` with
  call graph, CFGs and converged function summaries).

Adding a rule = write a module here, subclass the right base, decorate
with :func:`register` / :func:`register_program`.  Checkers decide
themselves which modules are in scope (e.g. the WAL rule only looks
under ``storage/``).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Type

from repro.analysis.context import ModuleContext
from repro.analysis.findings import ERROR, Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.dataflow.callgraph import FunctionInfo
    from repro.analysis.dataflow.program import Program

_REGISTRY: Dict[str, Type["Checker"]] = {}
_PROGRAM_REGISTRY: Dict[str, Type["ProgramChecker"]] = {}


def register(cls: Type["Checker"]) -> Type["Checker"]:
    _REGISTRY[cls.rule_id] = cls
    return cls


def register_program(cls: Type["ProgramChecker"]) -> Type["ProgramChecker"]:
    _PROGRAM_REGISTRY[cls.rule_id] = cls
    return cls


def all_checkers() -> List["Checker"]:
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def all_program_checkers() -> List["ProgramChecker"]:
    return [_PROGRAM_REGISTRY[rule_id]()
            for rule_id in sorted(_PROGRAM_REGISTRY)]


def _suppressed_at(ctx: ModuleContext, rule_id: str, line: int,
                   func_node: Optional[ast.AST]) -> bool:
    """Pragma check for findings anchored by (line, enclosing function)."""
    lines = [line]
    if func_node is not None and isinstance(
            func_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        first = min(
            [func_node.lineno] + [d.lineno for d in func_node.decorator_list])
        lines.extend([func_node.lineno, first - 1])
    for candidate in lines:
        pragma = ctx.pragmas.get(candidate)
        if pragma is not None and rule_id in pragma.rules \
                and pragma.justified:
            return True
    return False


class Checker:
    """Base class: one intraprocedural rule, run once per module."""

    rule_id: str = "RPL000"
    name: str = ""
    description: str = ""
    #: Minimal failing example / fix pattern for ``lint --explain``.
    example: str = ""
    fix: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    # -- emission helper ---------------------------------------------------

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str,
                hint: str = "", severity: str = ERROR,
                include_function: bool = True) -> Optional[Finding]:
        """Build a finding unless a pragma suppresses it."""
        if ctx.suppressed(self.rule_id, node, include_function):
            return None
        return Finding(
            file=ctx.relpath,
            line=getattr(node, "lineno", 0),
            rule=self.rule_id,
            severity=severity,
            message=message,
            hint=hint,
            symbol=ctx.qualname(node),
            content_hash=ctx.function_hash(node),
        )


class ProgramChecker:
    """Base class: one interprocedural rule, run once per program."""

    rule_id: str = "RPL010"
    name: str = ""
    description: str = ""
    #: Minimal failing example / fix pattern for ``lint --explain``.
    example: str = ""
    fix: str = ""

    def check_program(self, program: "Program") -> Iterator[Finding]:
        raise NotImplementedError

    # -- emission helper ---------------------------------------------------

    def finding_at(self, program: "Program", func: "FunctionInfo",
                   line: int, message: str, hint: str = "",
                   severity: str = ERROR) -> Optional[Finding]:
        """Build a finding anchored inside ``func`` at ``line``."""
        ctx = program.contexts[func.module]
        if _suppressed_at(ctx, self.rule_id, line, func.node):
            return None
        return Finding(
            file=ctx.relpath,
            line=line,
            rule=self.rule_id,
            severity=severity,
            message=message,
            hint=hint,
            symbol=ctx.qualname(func.node),
            content_hash=ctx.function_hash(func.node),
        )


# Import rule modules for their registration side effect.
from repro.analysis.rules import (  # noqa: E402,F401
    atomicity,
    blocking,
    confinement,
    durability,
    escape,
    exceptions,
    lifecycle,
    lockorder,
    mergepurity,
    monoids,
    recovery,
    snapshots,
    taint,
    typestate,
    wal,
)
