"""replint rule registry.

Each checker is a subclass of :class:`Checker` with a unique ``rule_id``.
Adding a rule = write a module here, subclass ``Checker``, decorate with
:func:`register`.  The driver instantiates every registered checker and
runs it over every module; checkers decide themselves which modules are
in scope (e.g. the WAL rule only looks under ``storage/``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Type

from repro.analysis.context import ModuleContext
from repro.analysis.findings import ERROR, Finding

_REGISTRY: Dict[str, Type["Checker"]] = {}


def register(cls: Type["Checker"]) -> Type["Checker"]:
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_checkers() -> List["Checker"]:
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


class Checker:
    """Base class: one rule, run once per module."""

    rule_id: str = "RPL000"
    name: str = ""
    description: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    # -- emission helper ---------------------------------------------------

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str,
                hint: str = "", severity: str = ERROR,
                include_function: bool = True) -> Optional[Finding]:
        """Build a finding unless a pragma suppresses it."""
        if ctx.suppressed(self.rule_id, node, include_function):
            return None
        return Finding(
            file=ctx.relpath,
            line=getattr(node, "lineno", 0),
            rule=self.rule_id,
            severity=severity,
            message=message,
            hint=hint,
            symbol=ctx.qualname(node),
        )


# Import rule modules for their registration side effect.
from repro.analysis.rules import (  # noqa: E402,F401
    exceptions,
    monoids,
    pins,
    snapshots,
    wal,
)
